"""Two-way RPQs."""

from repro.core.containment import Verdict
from repro.determinacy.checker import check_tests
from repro.rpq.query import graph_instance
from repro.rpq.two_way import two_way_rpq
from repro.views.view import View, ViewSet


def test_inverse_label_traversal():
    q = two_way_rpq("a b-", "Q")
    # x -a-> m <-b- y : pair (x, y)
    graph = graph_instance([(1, "a", 2), (3, "b", 2)])
    assert q.evaluate(graph) == {(1, 3)}


def test_mixed_directions():
    q = two_way_rpq("a ( b- ) * c", "Q")
    graph = graph_instance([
        (1, "a", 2), (3, "b", 2), (4, "b", 3), (4, "c", 5),
    ])
    assert (1, 5) in q.evaluate(graph)


def test_forward_only_agrees_with_rpq():
    from repro.rpq import rpq_query

    one_way = rpq_query("a ( b | c ) * d", "Q1").to_datalog()
    two_way = two_way_rpq("a ( b | c ) * d", "Q2")
    graph = graph_instance([
        (1, "a", 2), (2, "b", 3), (3, "c", 4), (4, "d", 5),
    ])
    assert one_way.evaluate(graph) == two_way.evaluate(graph)


def test_inverse_round_trip_is_reflexive_ish():
    """a a- relates x to every node sharing an a-target with x."""
    q = two_way_rpq("a a-", "Q")
    graph = graph_instance([(1, "a", 2), (3, "a", 2), (4, "a", 5)])
    assert q.evaluate(graph) == {
        (1, 1), (1, 3), (3, 1), (3, 3), (4, 4),
    }


def test_two_way_losslessness():
    """2RPQ views: Q = a over {a} is lossless; over {a | a-} it is not
    (the view confuses edge directions)."""
    q = two_way_rpq("a", "Q")
    lossless = ViewSet([View("Va", two_way_rpq("a", "Va"))])
    result = check_tests(q, lossless, approx_depth=3, view_depth=2)
    assert result.verdict is not Verdict.NO

    lossy = ViewSet([View("Vaa", two_way_rpq("a | a-", "Vaa"))])
    result2 = check_tests(q, lossy, approx_depth=3, view_depth=2)
    assert result2.verdict is Verdict.NO
