"""Regular path queries and losslessness."""

import itertools

import pytest

from repro.core.containment import Verdict
from repro.determinacy.checker import check_tests
from repro.rpq import nfa_of, parse_regex, rpq_query, rpq_views
from repro.rpq.query import graph_instance
from repro.rpq.regex import RegexParseError, labels_of, nullable


REGEX_CASES = [
    ("a", "a"),
    ("a b", "ab"),
    ("a *", "a*"),
    ("a ( b | c ) * d", "a(b|c)*d"),
    ("( a b ) *", "(ab)*"),
    ("a ? b +", "a?b+"),
    ("( a | b ) ( a | b )", "(a|b)(a|b)"),
    ("a | b c", "a|bc"),
]


@pytest.mark.parametrize("spaced,py", REGEX_CASES)
def test_nfa_matches_python_re(spaced, py):
    import re

    nfa = nfa_of(parse_regex(spaced))
    for n in range(0, 5):
        for word in itertools.product("abc", repeat=n):
            expected = re.fullmatch(py, "".join(word)) is not None
            assert nfa.accepts(word) == expected, (spaced, word)


def test_regex_helpers():
    regex = parse_regex("a ( b | c ) *")
    assert labels_of(regex) == {"a", "b", "c"}
    assert not nullable(regex)
    assert nullable(parse_regex("a *"))
    with pytest.raises(RegexParseError):
        parse_regex("( a")
    with pytest.raises(RegexParseError):
        parse_regex("a ) b")


def test_rpq_evaluation_on_graph():
    q = rpq_query("a ( b | c ) * d", "Q")
    graph = graph_instance([
        (1, "a", 2), (2, "b", 3), (3, "c", 4), (4, "d", 5),
        (2, "d", 6), (6, "a", 1),
    ])
    assert q.evaluate(graph) == {(1, 5), (1, 6)}


def test_rpq_datalog_is_linear_binary():
    q = rpq_query("( a b ) *", "Q").to_datalog()
    for rule in q.program.rules:
        assert rule.head.arity == 2
        idb_atoms = [
            a for a in rule.body
            if a.pred in q.program.idb_predicates()
        ]
        assert len(idb_atoms) <= 1  # linear


def test_rpq_epsilon_language():
    q = rpq_query("a *", "Q")
    graph = graph_instance([(1, "a", 2)])
    answers = q.evaluate(graph)
    # ε gives the reflexive pairs on the active domain
    assert (1, 1) in answers and (2, 2) in answers
    assert (1, 2) in answers and (2, 1) not in answers


def test_rpq_against_word_paths():
    """Evaluation agrees with explicit path enumeration."""
    q = rpq_query("a ( b | c ) +", "Q")
    edges = [
        (0, "a", 1), (1, "b", 2), (2, "c", 3), (1, "a", 4), (3, "b", 0),
    ]
    graph = graph_instance(edges)
    # enumerate all paths up to length 5
    expected = set()
    adjacency = {}
    for s, lab, t in edges:
        adjacency.setdefault(s, []).append((lab, t))
    stack = [(s, (), s) for s in {e[0] for e in edges} | {e[2] for e in edges}]
    while stack:
        start, word, here = stack.pop()
        if len(word) > 5:
            continue
        if word and q.accepts_word(word):
            expected.add((start, here))
        for lab, nxt in adjacency.get(here, ()):
            stack.append((start, word + (lab,), nxt))
    assert q.evaluate(graph) == expected


def test_rpq_losslessness_positive():
    """Q = a b over views {a, b}: lossless (mon. determined)."""
    q = rpq_query("a b", "Q").to_datalog()
    views = rpq_views({"Va": "a", "Vb": "b"})
    result = check_tests(q, views, approx_depth=3, view_depth=3)
    assert result.verdict is not Verdict.NO


def test_rpq_losslessness_negative():
    """Q = a over the view a|b: lossy — the view cannot tell a from b."""
    q = rpq_query("a", "Q").to_datalog()
    views = rpq_views({"Vab": "a | b"})
    result = check_tests(q, views, approx_depth=3, view_depth=3)
    assert result.verdict is Verdict.NO


def test_rpq_recursive_losslessness():
    """Q = (a b)* over views {a, b}: every test passes (bounded)."""
    q = rpq_query("( a b ) +", "Q").to_datalog()
    views = rpq_views({"Va": "a", "Vb": "b"})
    result = check_tests(
        q, views, approx_depth=4, view_depth=3, max_tests=200
    )
    assert result.verdict is not Verdict.NO
