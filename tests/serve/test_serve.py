"""The determinacy service: ops, coalescing, cache, socket, --once."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import ProgramCache, ReproServer, ServeService

TC_TEXT = (
    "Reach(x,y) <- E(x,y). "
    "Reach(x,y) <- E(x,z), Reach(z,y). "
    "Goal(y) <- S(x), Reach(x,y)."
)


def run(coro):
    return asyncio.run(coro)


def _create(session="s", **extra):
    return {
        "op": "create", "session": session, "program": TC_TEXT,
        "instance": "E('a','b'). S('a').", **extra,
    }


# ---------------------------------------------------------------------------
# op dispatch (no socket)
# ---------------------------------------------------------------------------
def test_create_insert_query_retract_query_lifecycle():
    async def drive():
        service = ServeService()
        created = await service.handle(_create())
        assert created["ok"] and created["session"] == "s"
        assert created["idb"] == ["Goal", "Reach"]

        inserted = await service.handle({
            "op": "insert", "session": "s",
            "facts": [["E", ["b", "c"]]],
        })
        assert inserted["ok"] and inserted["round"]["round"] == 1

        rows = await service.handle(
            {"op": "query", "session": "s", "pred": "Goal"}
        )
        assert rows["rows"] == [["b"], ["c"]]

        retracted = await service.handle({
            "op": "retract", "session": "s",
            "facts": [["E", ["a", "b"]]],
        })
        assert retracted["ok"] and retracted["round"]["deleted"] > 0

        rows = await service.handle(
            {"op": "query", "session": "s", "pred": "Goal"}
        )
        assert rows["rows"] == []

        closed = await service.handle({"op": "close", "session": "s"})
        assert closed["closed"] and closed["rounds"] == 2
        assert "s" not in service.sessions

    run(drive())


def test_certify_sessions_ship_checked_certificates():
    async def drive():
        service = ServeService(certify=True)
        await service.handle(_create())
        response = await service.handle({
            "op": "insert", "session": "s",
            "facts": [["E", ["b", "c"]]],
        })
        verdict = response["certificate"]
        assert verdict["valid"] is True
        assert verdict["claims"] == 1
        assert verdict["schema"] == 3

    run(drive())


def test_protocol_errors_are_in_band_not_fatal():
    async def drive():
        service = ServeService()
        for request, needle in [
            ({"op": "frobnicate"}, "unknown op"),
            ({"op": "query", "session": "nope", "pred": "X"},
             "no such session"),
            ({"op": "create", "session": "s"}, "program"),
            ({"op": "create", "session": "s", "program": "Goal(x <-"},
             ""),  # parse error text varies; ok flag matters
            ("not a dict", "JSON object"),
        ]:
            response = await service.handle(request)
            assert response["ok"] is False
            assert needle in response.get("error", "")
        # the service still works after every error
        assert (await service.handle(_create()))["ok"]

    run(drive())


def test_bad_facts_rejected_before_any_mutation():
    async def drive():
        service = ServeService()
        await service.handle(_create())
        before = len(service.sessions["s"].view.state)
        response = await service.handle({
            "op": "insert", "session": "s", "facts": [["E", [[1], 2]]],
        })
        assert response["ok"] is False
        assert "scalar" in response["error"]
        assert len(service.sessions["s"].view.state) == before

    run(drive())


def test_duplicate_session_rejected():
    async def drive():
        service = ServeService()
        assert (await service.handle(_create()))["ok"]
        dup = await service.handle(_create())
        assert not dup["ok"] and "already exists" in dup["error"]

    run(drive())


def test_concurrent_updates_coalesce_into_one_round():
    async def drive():
        service = ServeService()
        await service.handle(_create())
        session = service.sessions["s"]
        # enqueue while the session lock is held: both updates land in
        # the queue, one leader drains them into a single round
        async with session.lock:
            tasks = [
                asyncio.create_task(service.handle({
                    "op": "insert", "session": "s",
                    "facts": [["E", [i, i + 1]]],
                }))
                for i in (10, 20, 30)
            ]
            await asyncio.sleep(0)  # let all three enqueue
        first, second, third = await asyncio.gather(*tasks)
        assert first == second == third
        assert first["coalesced"] == 3
        assert session.view.rounds == 1
        assert session.view.state == session.view.recompute()

    run(drive())


def test_program_cache_hits_across_sessions():
    async def drive():
        service = ServeService()
        a = await service.handle(_create(session="a"))
        b = await service.handle(_create(session="b"))
        assert a["cached_program"] is False
        assert b["cached_program"] is True
        assert a["program_sha256"] == b["program_sha256"]
        stats = await service.handle({"op": "stats", "session": "b"})
        assert stats["cache"] == {"hits": 1, "misses": 1, "entries": 1}

    run(drive())


def test_stats_op_reports_engine_counters():
    async def drive():
        service = ServeService()
        await service.handle(_create())
        await service.handle({
            "op": "update", "session": "s",
            "inserts": [["E", ["b", "c"]]], "retracts": [["S", ["a"]]],
        })
        stats = await service.handle({"op": "stats", "session": "s"})
        assert stats["rounds"] == 1
        assert stats["engine"]["ivm_rounds"] == 1
        assert stats["engine"]["ivm_inserted"] > 0

    run(drive())


def test_reap_idle_drops_only_stale_sessions():
    async def drive():
        service = ServeService()
        await service.handle(_create(session="old"))
        service.sessions["old"].last_used -= 100.0
        await service.handle(_create(session="fresh"))
        assert service.reap_idle(50.0) == ["old"]
        assert set(service.sessions) == {"fresh"}

    run(drive())


def test_cache_eviction_is_lru():
    cache = ProgramCache(capacity=2)
    cache.fetch("T(x,y) <- E(x,y).", False)
    cache.fetch("U(x,y) <- E(x,y).", False)
    cache.fetch("T(x,y) <- E(x,y).", False)  # refresh T
    cache.fetch("V(x,y) <- E(x,y).", False)  # evicts U
    assert len(cache) == 2
    _, _, cached = cache.fetch("T(x,y) <- E(x,y).", False)
    assert cached is True
    _, _, cached = cache.fetch("U(x,y) <- E(x,y).", False)
    assert cached is False


# ---------------------------------------------------------------------------
# the socket layer
# ---------------------------------------------------------------------------
def test_socket_round_trip_and_graceful_shutdown():
    async def wrapped():
        service = ServeService(certify=True)
        server = ReproServer(service, port=0, request_timeout=10.0)
        runner = asyncio.create_task(server.run())
        while server._server is None:  # started?
            await asyncio.sleep(0.01)
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)

        async def rpc(obj):
            writer.write(json.dumps(obj).encode() + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        pong = await rpc({"op": "ping"})
        assert pong["ok"] and pong["protocol"] == 1
        assert (await rpc(_create()))["ok"]
        inserted = await rpc({
            "op": "insert", "session": "s",
            "facts": [["E", ["b", "c"]]],
        })
        assert inserted["certificate"]["valid"] is True

        bad = await rpc({"op": "query", "session": "s"})
        assert not bad["ok"]  # missing pred reported in-band

        garbage = await rpc(["not", "an", "object"])
        assert not garbage["ok"]

        writer.write(b"this is not json\n")
        await writer.drain()
        broken = json.loads(await reader.readline())
        assert "invalid JSON" in broken["error"]

        down = await rpc({"op": "shutdown"})
        assert down["shutting_down"] is True
        writer.close()
        await asyncio.wait_for(runner, timeout=5.0)

    run(wrapped())


def test_idle_connection_dropped_after_request_timeout():
    async def drive():
        service = ServeService()
        server = ReproServer(service, port=0, request_timeout=0.2)
        await server.start()
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        # no request: the server must hang up on us
        line = await asyncio.wait_for(reader.readline(), timeout=5.0)
        assert line == b""  # EOF
        writer.close()
        await server.stop()

    run(drive())


# ---------------------------------------------------------------------------
# --once scripted mode
# ---------------------------------------------------------------------------
def test_once_runs_the_shipped_example_script(capsys):
    from pathlib import Path

    from repro.serve.cli import run_script

    script = (
        Path(__file__).resolve().parents[2]
        / "examples" / "inputs" / "serve_session.json"
    )
    assert run_script(script) == 0
    lines = [
        json.loads(line)
        for line in capsys.readouterr().out.strip().splitlines()
    ]
    assert all(line["ok"] for line in lines)
    certified = [line for line in lines if "certificate" in line]
    assert certified, "script must exercise certified rounds"
    assert all(line["certificate"]["valid"] for line in certified)


def test_once_fails_on_invalid_request(tmp_path, capsys):
    from repro.serve.cli import run_script

    script = tmp_path / "bad.json"
    script.write_text(json.dumps([
        {"op": "query", "session": "ghost", "pred": "X"},
    ]))
    assert run_script(script) == 1


def test_once_cli_entry_point(capsys):
    from pathlib import Path

    from repro.cli import main

    script = (
        Path(__file__).resolve().parents[2]
        / "examples" / "inputs" / "serve_session.json"
    )
    assert main(["serve", "--once", str(script)]) == 0
    out = capsys.readouterr().out
    assert '"ok": true' in out


def test_rejects_unknown_backend():
    with pytest.raises(ValueError):
        ServeService(backend="warp-drive")


# ---------------------------------------------------------------------------
# analysis-driven admission (--max-delta)
# ---------------------------------------------------------------------------
def test_create_reports_maintenance_strategies():
    async def drive():
        service = ServeService()
        created = await service.handle(_create())
        assert created["maintain"] == {
            "Goal": "counting", "Reach": "dred",
        }

    run(drive())


def test_updates_carry_the_predicted_delta_bound():
    async def drive():
        service = ServeService()
        await service.handle(_create())
        response = await service.handle({
            "op": "insert", "session": "s",
            "facts": [["E", ["b", "c"]]],
        })
        assert response["ok"]
        predicted = response["predicted_delta"]
        assert isinstance(predicted, int)
        moved = (
            response["round"]["inserted"] + response["round"]["deleted"]
        )
        assert moved <= predicted

    run(drive())


def test_over_threshold_update_rejected_in_band_never_fatal():
    async def drive():
        service = ServeService(max_delta=0)
        await service.handle(_create())
        rejected = await service.handle({
            "op": "insert", "session": "s",
            "facts": [["E", ["b", "c"]]],
        })
        assert rejected["ok"] is False
        assert rejected["rejected"] is True
        assert rejected["predicted_delta"] > 0
        assert "max-delta" in rejected["error"]
        # the base was never touched and the session still works
        rows = await service.handle(
            {"op": "query", "session": "s", "pred": "Reach"}
        )
        assert rows["rows"] == [["a", "b"]]

    run(drive())


def test_generous_threshold_admits_updates():
    async def drive():
        service = ServeService(max_delta=10**9)
        await service.handle(_create())
        response = await service.handle({
            "op": "insert", "session": "s",
            "facts": [["E", ["b", "c"]]],
        })
        assert response["ok"]
        assert response["round"]["inserted"] >= 1

    run(drive())


def test_negative_max_delta_rejected():
    with pytest.raises(ValueError):
        ServeService(max_delta=-1)


def test_once_threads_max_delta(tmp_path, capsys):
    from repro.serve.cli import run_script

    script = tmp_path / "script.json"
    script.write_text(json.dumps([
        _create(),
        {"op": "insert", "session": "s", "facts": [["E", ["b", "c"]]]},
    ]))
    assert run_script(script, max_delta=0) == 1
    lines = [
        json.loads(line)
        for line in capsys.readouterr().out.strip().splitlines()
        if line.startswith("{")
    ]
    assert lines[-1]["rejected"] is True
