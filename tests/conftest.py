"""Shared fixtures and strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core import DatalogQuery, Instance, parse_instance, parse_program


@pytest.fixture
def path_instance() -> Instance:
    """A small R-path with a U-marked endpoint."""
    return parse_instance("R('a','b'). R('b','c'). R('c','d'). U('d').")


@pytest.fixture
def reach_query() -> DatalogQuery:
    """Reachability-to-U, the running MDL example."""
    program = parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal(x) <- P(x).
        """
    )
    return DatalogQuery(program, "Goal", "reach")


def random_instance(
    seed: int,
    preds: dict[str, int],
    max_elements: int = 5,
    max_facts: int = 6,
) -> Instance:
    """A deterministic pseudo-random instance (plain random, not
    hypothesis — for quick cross-validation loops)."""
    rng = random.Random(seed)
    n = rng.randint(1, max_elements)
    inst = Instance()
    for pred, arity in sorted(preds.items()):
        for _ in range(rng.randint(0, max_facts)):
            inst.add_tuple(pred, tuple(rng.randrange(n) for _ in range(arity)))
    return inst


# hypothesis strategy: small binary-relation instances
@st.composite
def small_graph_instances(draw, pred: str = "R", max_n: int = 5):
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=10,
        )
    )
    inst = Instance()
    for u, v in edges:
        inst.add_tuple(pred, (u, v))
    return inst
