"""CLI surface of the certified optimizer: optimize, lint --format sarif,
decide --optimize."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def reach_workspace(tmp_path):
    (tmp_path / "reach.txt").write_text(
        "# goal: Goal\n"
        "Reach(x,y) <- E(x,y).\n"
        "Reach(x,y) <- E(x,z), Reach(z,y).\n"
        "Goal(y) <- S(x), Reach(x,y).\n"
        "Dead(x) <- Z(x).\n"
    )
    (tmp_path / "db.txt").write_text(
        " ".join(f"E({i},{i + 1})." for i in range(8)) + " S(3).\n"
    )
    (tmp_path / "q_cq.txt").write_text("Q(x) <- R(x,y), S(y).\n")
    (tmp_path / "views.txt").write_text(
        "# view: VR\nV(x,y) <- R(x,y).\n"
        "# view: VS\nV(y) <- S(y).\n"
    )
    return tmp_path


def test_optimize_text_output(reach_workspace, capsys):
    code = main(["optimize", str(reach_workspace / "reach.txt")])
    out = capsys.readouterr().out
    assert code == 0
    assert "# goal: Goal" in out
    assert "[dead_code]" in out
    assert "magic_" in out  # the rewritten program is printed


def test_optimize_json_output(reach_workspace, capsys):
    code = main([
        "optimize", str(reach_workspace / "reach.txt"), "--format", "json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["goal"] == "Goal"
    assert payload["changed"] is True
    assert [s["name"] for s in payload["passes"]]
    assert isinstance(payload["diagnostics"], list)


def test_optimize_pass_selection(reach_workspace, capsys):
    code = main([
        "optimize", str(reach_workspace / "reach.txt"),
        "--passes", "dead_code",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "magic_" not in out


def test_optimize_unknown_pass_rejected(reach_workspace, capsys):
    code = main([
        "optimize", str(reach_workspace / "reach.txt"), "--passes", "nope",
    ])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown pass" in err


def test_optimize_rejects_cq_input(reach_workspace, capsys):
    code = main(["optimize", str(reach_workspace / "q_cq.txt")])
    assert code == 2
    assert "Datalog query" in capsys.readouterr().err


def test_optimize_with_instance_reorders_joins(reach_workspace, capsys):
    code = main([
        "optimize", str(reach_workspace / "reach.txt"),
        "--instance", str(reach_workspace / "db.txt"),
    ])
    assert code == 0


def test_optimize_emit_certificate_validates(reach_workspace, capsys):
    cert_path = reach_workspace / "cert.json"
    code = main([
        "optimize", str(reach_workspace / "reach.txt"),
        "--emit-certificate", str(cert_path),
    ])
    err = capsys.readouterr().err
    assert code == 0
    assert "valid" in err
    certificate = json.loads(cert_path.read_text())
    assert certificate["schema"] == 3
    assert all(
        claim["type"] == "program_equivalence"
        for claim in certificate["claims"]
    )
    from repro.certify import check_certificate

    assert check_certificate(certificate).valid


def test_lint_sarif_output(reach_workspace, capsys):
    code = main([
        "lint", str(reach_workspace / "reach.txt"),
        "--format", "sarif", "--semantic",
    ])
    assert code == 2  # the Dead rule warns (W105/W106)
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == "2.1.0"
    (run,) = report["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"I207", "I208", "W111"} <= rule_ids
    result_ids = {r["ruleId"] for r in run["results"]}
    assert "I207" in result_ids  # magic applicable on bound Reach


def test_lint_sarif_syntax_error(reach_workspace, tmp_path, capsys):
    bad = tmp_path / "bad.txt"
    bad.write_text("P(x <- R(x).\n")
    code = main(["lint", str(bad), "--format", "sarif"])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    (run,) = report["runs"]
    (result,) = run["results"]
    assert result["ruleId"] == "E004"
    assert result["level"] == "error"


def test_decide_optimize_flag(reach_workspace, capsys):
    code = main([
        "decide", str(reach_workspace / "q_cq.txt"),
        str(reach_workspace / "views.txt"), "--optimize",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "verdict : yes" in out
