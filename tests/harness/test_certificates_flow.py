"""Certificates through the harness: worker pipe, cache, manifest,
exit gating, and the ``--check-certificates`` CLI flag."""

from __future__ import annotations

import json

from repro.cli import main
from repro.harness.cache import ResultCache
from repro.harness.job import Job, JobResult, JobStatus
from repro.harness.manifest import (
    build_manifest,
    check_result_certificates,
    manifest_exit_code,
    render_manifest,
)
from repro.harness.runner import RunnerConfig, run_jobs


def _job(name: str, fn: str, **kwargs) -> Job:
    kwargs.setdefault("claim", f"claim {name}")
    kwargs.setdefault("expected", "evaluated")
    return Job(name=name, fn=fn, **kwargs)


def _run(jobs, **kwargs):
    return run_jobs(
        jobs, config=RunnerConfig(workers=2, default_timeout=60.0), **kwargs
    )


def test_certificate_crosses_the_worker_pipe():
    results = _run([
        _job("cert", "tests.harness.sample_jobs:certified_job"),
    ])
    result = results["cert"]
    assert result.status is JobStatus.OK
    assert result.certificate is not None
    assert result.certificate["claims"][0]["type"] == "query_output"


def test_certificate_survives_the_cache(tmp_path):
    job = _job("cert", "tests.harness.sample_jobs:certified_job")
    cache = ResultCache(tmp_path / "cache", fingerprint="fp")
    _run([job], cache=cache)
    hit = cache.load(job)
    assert hit is not None and hit.cached
    assert hit.certificate is not None
    assert hit.certificate["claims"][0]["type"] == "query_output"


def test_job_result_certificate_round_trips():
    result = JobResult(
        "a", JobStatus.OK, "fine", verdict="fine",
        certificate={"schema": 1, "claims": [{"type": "x"}]},
    )
    again = JobResult.from_dict(
        json.loads(json.dumps(result.as_dict()))
    )
    assert again.certificate == result.certificate


def test_check_result_certificates_statuses():
    results = _run([
        _job("good", "tests.harness.sample_jobs:certified_job"),
        _job("forged", "tests.harness.sample_jobs:forged_certificate_job"),
        _job("bare", "tests.harness.sample_jobs:ok_job",
             expected="fine"),
        _job("crash", "tests.harness.sample_jobs:crash_job",
             retries=0),
    ])
    checks = check_result_certificates(results)
    assert checks["good"]["status"] == "valid"
    assert checks["good"]["claims"] == 1
    assert checks["forged"]["status"] == "invalid"
    assert checks["forged"]["failures"]
    assert checks["bare"]["status"] == "absent"
    assert "no certificate" in checks["bare"]["failures"][0]
    assert checks["crash"]["status"] == "absent"
    assert "no result payload" in checks["crash"]["failures"][0]


def test_manifest_gates_on_invalid_certificate():
    jobs = [_job("a", "m:f", expected="fine")]
    ok_result = JobResult("a", JobStatus.OK, "fine", verdict="fine")

    green = build_manifest(
        jobs, {"a": ok_result},
        wall_seconds=0.1, workers=1, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False,
        certificate_checks={
            "a": {"status": "valid", "claims": 2, "failures": []},
        },
    )
    assert green["summary"]["certified"] == 1
    assert green["jobs"]["a"]["certificate_check"]["status"] == "valid"
    assert manifest_exit_code(green) == 0
    assert "certificates: 1/1" in render_manifest(green)

    red = build_manifest(
        jobs, {"a": ok_result},
        wall_seconds=0.1, workers=1, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False,
        certificate_checks={
            "a": {"status": "invalid", "claims": 2,
                  "failures": ["claim #1 (query_output): outputs differ"]},
        },
    )
    # every verdict matched, but the certificate check is red
    assert red["summary"]["ok"] == red["summary"]["total"]
    assert manifest_exit_code(red) == 1
    assert "outputs differ" in render_manifest(red)


def test_manifest_without_checks_has_no_certified_count():
    jobs = [_job("a", "m:f", expected="fine")]
    manifest = build_manifest(
        jobs, {"a": JobResult("a", JobStatus.OK, "fine", verdict="fine")},
        wall_seconds=0.1, workers=1, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False,
    )
    assert "certified" not in manifest["summary"]
    assert "certificate_check" not in manifest["jobs"]["a"]


def test_cli_check_certificates_on_a_real_job(tmp_path, capsys):
    out_dir = tmp_path / "out"
    code = main([
        "evidence", "run",
        "--filter", "fig3-chain-and-image",
        "--jobs", "1",
        "--no-cache",
        "--out-dir", str(out_dir),
        "--check-certificates",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "cert valid" in out
    manifest = json.loads((out_dir / "manifest.json").read_text())
    assert manifest["summary"]["certified"] == manifest["summary"]["total"]
    check = manifest["jobs"]["fig3-chain-and-image"]["certificate_check"]
    assert check["status"] == "valid"
    assert check["claims"] >= 2
