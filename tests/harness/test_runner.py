"""The runner's failure paths: hangs, flakes, crashes, caching."""

from __future__ import annotations

import time

import pytest

from repro.harness.cache import ResultCache
from repro.harness.job import Job, JobStatus
from repro.harness.runner import RunnerConfig, run_jobs

SAMPLES = "tests.harness.sample_jobs"


def _job(name: str, fn: str, **kwargs) -> Job:
    kwargs.setdefault("claim", f"test claim for {name}")
    kwargs.setdefault("expected", "fine")
    return Job(name=name, fn=f"{SAMPLES}:{fn}", **kwargs)


def _config(**kwargs) -> RunnerConfig:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("default_timeout", 20.0)
    kwargs.setdefault("retry_backoff", 0.01)
    return RunnerConfig(**kwargs)


def test_ok_job_matches_expected():
    results = run_jobs([_job("a", "ok_job")], config=_config())
    assert results["a"].status is JobStatus.OK
    assert results["a"].verdict == "fine"
    assert results["a"].matched
    assert results["a"].attempts == 1


def test_verdict_mismatch_is_not_a_failure():
    job = _job("a", "ok_job", expected="something-else")
    results = run_jobs([job], config=_config())
    assert results["a"].status is JobStatus.MISMATCH
    assert results["a"].verdict == "fine"
    assert results["a"].error is None


def test_hanging_job_is_killed_at_timeout_without_hurting_others():
    events = []
    started = time.monotonic()
    results = run_jobs(
        [
            _job("hang", "hang_job", inputs={"seconds": 60.0},
                 timeout=0.4, retries=0),
            _job("fine", "ok_job"),
        ],
        config=_config(),
        events=events.append,
    )
    wall = time.monotonic() - started
    assert results["hang"].status is JobStatus.TIMEOUT
    assert results["hang"].attempts == 1  # timeouts are not retried
    assert results["fine"].status is JobStatus.OK
    assert wall < 15.0, "the 60s sleep must not run to completion"
    assert any(e["event"] == "job_timeout" for e in events)


def test_flaky_job_succeeds_on_retry(tmp_path):
    sentinel = tmp_path / "flaky-sentinel"
    events = []
    job = _job(
        "flaky", "flaky_job",
        inputs={"sentinel": str(sentinel)},
        expected="recovered", retries=2,
    )
    results = run_jobs([job], config=_config(), events=events.append)
    assert results["flaky"].status is JobStatus.OK
    assert results["flaky"].attempts == 2
    assert sentinel.exists()
    assert any(e["event"] == "job_retry" for e in events)


def test_crash_poisons_only_its_dependents():
    jobs = [
        _job("bad", "crash_job", retries=1),
        _job("child", "ok_job", deps=("bad",)),
        _job("grandchild", "ok_job", deps=("child",)),
        _job("unrelated", "ok_job"),
    ]
    events = []
    results = run_jobs(jobs, config=_config(), events=events.append)
    assert results["bad"].status is JobStatus.FAILED
    assert results["bad"].attempts == 2  # retried once, then failed
    assert "RuntimeError: boom" in results["bad"].error
    assert results["child"].status is JobStatus.SKIPPED
    assert results["grandchild"].status is JobStatus.SKIPPED
    assert results["unrelated"].status is JobStatus.OK
    skipped = {e["job"] for e in events if e["event"] == "job_skipped"}
    assert skipped == {"child", "grandchild"}


def test_cached_rerun_executes_nothing(tmp_path):
    cache = ResultCache(tmp_path / "cache", fingerprint="test-fp")
    jobs = [
        _job("a", "ok_job"),
        _job("b", "ok_job", deps=("a",)),
    ]
    first_events: list[dict] = []
    first = run_jobs(
        jobs, config=_config(), cache=cache, events=first_events.append
    )
    assert all(r.status is JobStatus.OK for r in first.values())
    assert not any(r.cached for r in first.values())

    second_events: list[dict] = []
    second = run_jobs(
        jobs, config=_config(), cache=cache, events=second_events.append
    )
    assert all(r.status is JobStatus.OK for r in second.values())
    assert all(r.cached for r in second.values())
    assert not any(e["event"] == "job_start" for e in second_events)
    assert sum(
        1 for e in second_events if e["event"] == "job_cached"
    ) == len(jobs)


def test_cache_miss_after_input_change(tmp_path):
    cache = ResultCache(tmp_path / "cache", fingerprint="test-fp")
    run_jobs([_job("a", "ok_job")], config=_config(), cache=cache)
    changed = _job("a", "ok_job", inputs={"verdict": "fine"})
    results = run_jobs([changed], config=_config(), cache=cache)
    assert not results["a"].cached


def test_engine_stats_round_trip_from_worker():
    job = _job("engine", "engine_job", expected="evaluated")
    results = run_jobs([job], config=_config())
    result = results["engine"]
    assert result.status is JobStatus.OK
    assert result.metrics == {"rows": 2}
    assert result.engine["hom_calls"] >= 1
    assert result.engine["rows_scanned"] >= 1


def test_non_dict_return_is_a_failure():
    job = _job("bad", "bad_return_job", retries=0)
    results = run_jobs([job], config=_config())
    assert results["bad"].status is JobStatus.FAILED
    assert "verdict" in results["bad"].error


def test_unknown_dependency_rejected():
    with pytest.raises(ValueError, match="unknown job"):
        run_jobs([_job("a", "ok_job", deps=("ghost",))], config=_config())


def test_dependency_cycle_rejected():
    jobs = [
        _job("a", "ok_job", deps=("b",)),
        _job("b", "ok_job", deps=("a",)),
    ]
    with pytest.raises(ValueError, match="cycle"):
        run_jobs(jobs, config=_config())


def test_duplicate_job_name_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        run_jobs(
            [_job("a", "ok_job"), _job("a", "ok_job")], config=_config()
        )


def test_worker_honors_optimize_config():
    job = _job("probe", "optimize_probe_job", expected="optimized")
    plain = run_jobs([job], config=_config())
    assert plain["probe"].verdict == "plain"
    tuned = run_jobs([job], config=_config(optimize=True))
    assert tuned["probe"].verdict == "optimized"
    assert tuned["probe"].status is JobStatus.OK


def test_worker_honors_backend_config():
    job = _job("probe", "backend_probe_job", expected="columnar")
    plain = run_jobs([job], config=_config())
    assert plain["probe"].verdict == "interpreted"
    tuned = run_jobs([job], config=_config(backend="columnar"))
    assert tuned["probe"].verdict == "columnar"
    assert tuned["probe"].status is JobStatus.OK


def test_check_cost_ships_the_guard_summary_back():
    job = _job("fx", "datalog_fixpoint_job", expected="computed")
    results = run_jobs([job], config=_config(check_cost=True))
    result = results["fx"]
    assert result.status is JobStatus.OK
    assert result.cost is not None
    assert result.cost["checks"] >= 1
    assert result.cost["predicates"] >= 1
    assert result.cost["violations"] == []


def test_cost_payload_absent_without_check_cost():
    job = _job("fx", "datalog_fixpoint_job", expected="computed")
    results = run_jobs([job], config=_config())
    assert results["fx"].cost is None


def test_auto_backend_resolutions_travel_in_the_result():
    job = _job("fx", "datalog_fixpoint_job", expected="computed")
    results = run_jobs([job], config=_config(backend="auto"))
    resolutions = results["fx"].backend_resolution
    assert resolutions  # at least the one fixpoint the job runs
    for entry in resolutions:
        assert entry["backend"] in ("interpreted", "columnar")
        assert entry["volume"] >= 0
        assert entry["threshold"] > 0


def test_backend_resolution_absent_off_auto():
    job = _job("fx", "datalog_fixpoint_job", expected="computed")
    results = run_jobs([job], config=_config(backend="columnar"))
    assert results["fx"].backend_resolution is None


def test_check_cost_composes_with_the_auto_backend():
    job = _job("fx", "datalog_fixpoint_job", expected="computed")
    results = run_jobs(
        [job], config=_config(check_cost=True, backend="auto")
    )
    result = results["fx"]
    assert result.status is JobStatus.OK
    assert result.cost["violations"] == []
    assert result.backend_resolution
