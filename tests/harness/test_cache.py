"""Content-addressed cache: keys, round-trips, invalidation."""

from __future__ import annotations

from repro.harness.cache import ResultCache, code_fingerprint
from repro.harness.job import Job, JobResult, JobStatus


def _job(**kwargs) -> Job:
    kwargs.setdefault("name", "a")
    kwargs.setdefault("fn", "tests.harness.sample_jobs:ok_job")
    kwargs.setdefault("claim", "c")
    kwargs.setdefault("expected", "fine")
    return Job(**kwargs)


def _result(**kwargs) -> JobResult:
    kwargs.setdefault("name", "a")
    kwargs.setdefault("status", JobStatus.OK)
    kwargs.setdefault("expected", "fine")
    kwargs.setdefault("verdict", "fine")
    return JobResult(**kwargs)


def test_key_is_deterministic_and_input_sensitive(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="fp")
    job = _job()
    assert cache.key(job) == cache.key(job)
    assert cache.key(job) == ResultCache(tmp_path, fingerprint="fp").key(job)
    assert cache.key(job) != cache.key(_job(inputs={"verdict": "x"}))
    assert cache.key(job) != ResultCache(
        tmp_path, fingerprint="other"
    ).key(job)


def test_store_load_round_trip(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="fp")
    job = _job()
    assert cache.load(job) is None
    stored = _result(
        measured="done", metrics={"n": 3}, engine={"hom_calls": 7},
        duration=1.5, attempts=2,
    )
    cache.store(job, stored)
    loaded = cache.load(job)
    assert loaded is not None
    assert loaded.cached is True
    assert loaded.verdict == "fine"
    assert loaded.measured == "done"
    assert loaded.metrics == {"n": 3}
    assert loaded.engine == {"hom_calls": 7}
    assert loaded.attempts == 2


def test_load_rediffs_against_current_expectation(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="fp")
    cache.store(_job(), _result())
    # same inputs/code, but the registry now predicts something else
    loaded = cache.load(_job(expected="revised"))
    assert loaded is not None
    assert loaded.expected == "revised"
    assert not loaded.matched


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="fp")
    job = _job()
    cache.store(job, _result())
    path = tmp_path / f"{cache.key(job)}.json"
    path.write_text("{ not json")
    assert cache.load(job) is None


def test_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="fp")
    cache.store(_job(name="a"), _result(name="a"))
    cache.store(_job(name="b"), _result(name="b"))
    assert cache.clear() == 2
    assert cache.load(_job(name="a")) is None


def test_code_fingerprint_tracks_source_changes(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text("x = 1\n")
    before = code_fingerprint(pkg)
    assert before == code_fingerprint(pkg)  # deterministic
    (pkg / "mod.py").write_text("x = 2\n")
    assert code_fingerprint(pkg) != before


def test_unresolvable_fn_module_still_keys(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="fp")
    job = _job(fn="no.such.module:fn")
    assert isinstance(cache.key(job), str)


def test_run_mode_partitions_the_key_space(tmp_path):
    """Same job + code in different run modes must never share keys."""
    job = _job()
    modes = [
        None,
        {"optimize": False, "backend": "interpreted"},
        {"optimize": True, "backend": "interpreted"},
        {"optimize": False, "backend": "columnar"},
        {"optimize": True, "backend": "columnar"},
    ]
    keys = [
        ResultCache(tmp_path, fingerprint="fp", run_mode=mode).key(job)
        for mode in modes
    ]
    assert len(set(keys)) == len(keys)


def test_run_mode_key_is_order_insensitive_and_deterministic(tmp_path):
    job = _job()
    a = ResultCache(
        tmp_path, fingerprint="fp",
        run_mode={"optimize": True, "backend": "columnar"},
    )
    b = ResultCache(
        tmp_path, fingerprint="fp",
        run_mode={"backend": "columnar", "optimize": True},
    )
    assert a.key(job) == b.key(job)


def test_result_stored_under_one_mode_misses_in_another(tmp_path):
    """A cached verdict from an interpreted run must not answer a
    columnar run (and vice versa)."""
    job = _job()
    interpreted = ResultCache(
        tmp_path, fingerprint="fp",
        run_mode={"optimize": False, "backend": "interpreted"},
    )
    columnar = ResultCache(
        tmp_path, fingerprint="fp",
        run_mode={"optimize": False, "backend": "columnar"},
    )
    interpreted.store(job, _result())
    assert columnar.load(job) is None
    assert interpreted.load(job) is not None
    columnar.store(job, _result(measured="columnar run"))
    assert interpreted.load(job).measured != "columnar run"
