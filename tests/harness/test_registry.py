"""The default evidence registry covers the paper and stays well-formed."""

from __future__ import annotations

import pytest

from repro.harness.job import Job
from repro.harness.registry import JobRegistry, default_registry


def test_every_table_and_figure_is_registered():
    registry = default_registry()
    names = {job.name for job in registry}
    by_tag: dict[str, int] = {}
    for job in registry:
        for tag in job.tags:
            by_tag[tag] = by_tag.get(tag, 0) + 1
    assert by_tag.get("table1", 0) >= 7    # Table 1 cells
    assert by_tag.get("table2", 0) >= 7    # Table 2 cell families
    for fig in ("fig1", "fig2", "fig3", "fig4", "fig5"):
        assert by_tag.get(fig, 0) >= 1, f"figure {fig} unrepresented"
    assert len(names) == len(list(registry))


def test_all_job_functions_resolve_and_run_signatures():
    for job in default_registry():
        fn = job.resolve()
        assert callable(fn)
        assert job.expected, job.name
        assert job.claim, job.name


def test_dependencies_are_registered_and_acyclic():
    registry = default_registry()
    names = {job.name for job in registry}
    for job in registry:
        for dep in job.deps:
            assert dep in names
    # registration order already forbids forward/cyclic deps; double-check
    seen: set[str] = set()
    for job in registry:
        assert set(job.deps) <= seen
        seen.add(job.name)


def test_select_pulls_in_transitive_dependencies():
    registry = default_registry()
    selected = {job.name for job in registry.select("table1")}
    assert "t1-mdl-cq-not-mdl" in selected
    # its dependency is a figures job, pulled in for DAG consistency
    assert "fig3-unravelled-counterexample" in selected


def test_select_comma_is_any_of():
    registry = default_registry()
    both = {job.name for job in registry.select("fig1,fig5")}
    assert "fig1-adjacency-gadgets" in both
    assert "fig5-lemma3-treewidth" in both
    assert "t2-cq-cq" not in both


def test_select_without_pattern_returns_everything():
    registry = default_registry()
    assert len(registry.select(None)) == len(registry)
    assert len(registry.select("")) == len(registry)


def test_registry_rejects_duplicates_and_unknown_deps():
    registry = JobRegistry()
    registry.add(Job(name="a", fn="m:f", claim="c", expected="e"))
    with pytest.raises(ValueError, match="duplicate"):
        registry.add(Job(name="a", fn="m:f", claim="c", expected="e"))
    with pytest.raises(ValueError, match="not .*registered"):
        registry.add(Job(
            name="b", fn="m:f", claim="c", expected="e", deps=("ghost",)
        ))


def test_job_matches_filters_on_name_and_tags():
    job = Job(
        name="t1-cq-rewriting", fn="m:f", claim="c", expected="e",
        tags=("table1", "rewriting"),
    )
    assert job.matches("t1-cq")
    assert job.matches("table1")
    assert job.matches("nope,rewriting")
    assert not job.matches("table2")
    assert job.matches("")  # empty filter matches everything


def test_job_resolve_rejects_malformed_ref():
    with pytest.raises(ValueError, match="module:qualname"):
        Job(name="x", fn="just_a_module", claim="c", expected="e").resolve()
