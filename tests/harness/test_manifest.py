"""Manifest assembly: verdict diffing, stats merging, exit gating."""

from __future__ import annotations

from repro.harness.events import EventLog, read_events
from repro.harness.job import Job, JobResult, JobStatus
from repro.harness.manifest import (
    build_manifest,
    load_manifest,
    manifest_exit_code,
    render_manifest,
    write_manifest,
)


def _job(name: str, **kwargs) -> Job:
    kwargs.setdefault("fn", "m:f")
    kwargs.setdefault("claim", f"claim {name}")
    kwargs.setdefault("expected", "fine")
    return Job(name=name, **kwargs)


def _build(jobs, results):
    return build_manifest(
        jobs, results,
        wall_seconds=1.25, workers=2, default_timeout=30.0,
        code_fingerprint="fp", cache_used=True,
    )


def test_manifest_counts_and_mismatch_diff():
    jobs = [_job("a"), _job("b"), _job("c"), _job("d")]
    results = {
        "a": JobResult("a", JobStatus.OK, "fine", verdict="fine"),
        "b": JobResult("b", JobStatus.MISMATCH, "fine", verdict="off"),
        "c": JobResult("c", JobStatus.TIMEOUT, "fine"),
        "d": JobResult("d", JobStatus.SKIPPED, "fine"),
    }
    manifest = _build(jobs, results)
    summary = manifest["summary"]
    assert summary["total"] == 4
    assert summary["ok"] == 1
    assert summary["mismatch"] == 1
    assert summary["timeout"] == 1
    assert summary["skipped"] == 1
    assert manifest["mismatches"] == [{
        "job": "b", "expected": "fine", "measured_verdict": "off",
    }]
    assert manifest_exit_code(manifest) == 1


def test_manifest_green_run_exits_zero():
    jobs = [_job("a")]
    results = {"a": JobResult("a", JobStatus.OK, "fine", verdict="fine")}
    manifest = _build(jobs, results)
    assert manifest_exit_code(manifest) == 0


def test_manifest_merges_engine_stats_across_jobs():
    jobs = [_job("a"), _job("b")]
    results = {
        "a": JobResult(
            "a", JobStatus.OK, "fine", verdict="fine",
            engine={"hom_calls": 3, "phase_seconds": {"x": 0.5}},
        ),
        "b": JobResult(
            "b", JobStatus.OK, "fine", verdict="fine",
            engine={"hom_calls": 4, "phase_seconds": {"x": 0.25}},
        ),
    }
    manifest = _build(jobs, results)
    totals = manifest["engine_totals"]
    assert totals["hom_calls"] == 7
    assert totals["phase_seconds"] == {"x": 0.75}


def test_manifest_carries_claim_tags_deps():
    jobs = [_job("a", tags=("table1",), deps=())]
    results = {"a": JobResult("a", JobStatus.OK, "fine", verdict="fine")}
    manifest = _build(jobs, results)
    entry = manifest["jobs"]["a"]
    assert entry["claim"] == "claim a"
    assert entry["tags"] == ["table1"]


def test_missing_result_is_defensively_skipped():
    manifest = _build([_job("a")], {})
    assert manifest["jobs"]["a"]["status"] == "skipped"
    assert manifest_exit_code(manifest) == 1


def test_render_mentions_statuses_and_summary():
    jobs = [_job("good"), _job("bad")]
    results = {
        "good": JobResult("good", JobStatus.OK, "fine", verdict="fine"),
        "bad": JobResult("bad", JobStatus.MISMATCH, "fine", verdict="off"),
    }
    text = render_manifest(_build(jobs, results))
    assert "OK" in text and "MISMATCH" in text
    assert "expected 'fine', measured 'off'" in text
    assert "1/2 ok" in text


def test_manifest_records_optimize_flag():
    jobs = [_job("a")]
    results = {
        "a": JobResult(
            "a", JobStatus.OK, "fine", verdict="fine",
            engine={"hom_calls": 2},
        ),
    }
    assert _build(jobs, results)["optimize"] is False
    manifest = build_manifest(
        jobs, results,
        wall_seconds=1.0, workers=1, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False, optimize=True,
    )
    assert manifest["optimize"] is True
    assert "optimized" in render_manifest(manifest)


def test_manifest_baseline_engine_delta():
    jobs = [_job("a")]

    def result(hom):
        return {
            "a": JobResult(
                "a", JobStatus.OK, "fine", verdict="fine",
                engine={"hom_calls": hom, "search_steps": 5},
            ),
        }

    base = build_manifest(
        jobs, result(100),
        wall_seconds=1.0, workers=1, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False,
    )
    tuned = build_manifest(
        jobs, result(40),
        wall_seconds=1.0, workers=1, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False,
        optimize=True, baseline=base,
    )
    block = tuned["baseline"]
    assert block["engine_delta"]["hom_calls"] == -60
    assert block["engine_delta"]["search_steps"] == 0
    assert block["optimize"] is False
    text = render_manifest(tuned)
    assert "vs baseline" in text
    assert "hom_calls -60" in text


def test_manifest_json_round_trip(tmp_path):
    jobs = [_job("a")]
    results = {"a": JobResult("a", JobStatus.OK, "fine", verdict="fine")}
    manifest = _build(jobs, results)
    path = tmp_path / "out" / "manifest.json"
    write_manifest(manifest, path)
    assert load_manifest(path) == manifest


def test_event_log_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log({"event": "run_start", "jobs": 2})
        log({"event": "job_end", "job": "a", "status": "ok"})
    events = read_events(path)
    assert [e["event"] for e in events] == ["run_start", "job_end"]
    assert all("ts" in e for e in events)
    # bad lines are skipped, not fatal
    path.write_text(path.read_text() + "not json\n")
    assert len(read_events(path)) == 2


def test_manifest_schema_is_eight():
    from repro.harness.manifest import MANIFEST_SCHEMA

    jobs = [_job("a")]
    results = {"a": JobResult("a", JobStatus.OK, "fine", verdict="fine")}
    assert MANIFEST_SCHEMA == 8
    assert _build(jobs, results)["schema"] == 8


def _cost_result(name, violations):
    return JobResult(
        name, JobStatus.OK, "fine", verdict="fine",
        cost={"checks": 2, "predicates": 3, "violations": violations},
    )


def test_manifest_cost_summary_green():
    jobs = [_job("a"), _job("b")]
    results = {
        "a": _cost_result("a", []),
        "b": _cost_result("b", []),
    }
    manifest = build_manifest(
        jobs, results,
        wall_seconds=1.0, workers=2, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False, check_cost=True,
    )
    assert manifest["check_cost"] is True
    assert manifest["summary"]["cost_checked"] == 2
    assert manifest["summary"]["cost_ok"] == 2
    assert manifest["cost_violations"] == []
    assert manifest_exit_code(manifest) == 0
    rendered = render_manifest(manifest)
    assert "cost bounds: 2/2" in rendered


def test_manifest_cost_violation_gates_the_exit_code():
    violation = {
        "pred": "T", "measured": 9, "bound": 4,
        "basis": "recursive", "recursive": True,
    }
    jobs = [_job("a")]
    results = {"a": _cost_result("a", [violation])}
    manifest = build_manifest(
        jobs, results,
        wall_seconds=1.0, workers=2, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False, check_cost=True,
    )
    assert manifest["summary"]["cost_checked"] == 1
    assert manifest["summary"]["cost_ok"] == 0
    assert manifest["cost_violations"] == [
        {"job": "a", "violations": [violation]}
    ]
    assert manifest_exit_code(manifest) == 1
    rendered = render_manifest(manifest)
    assert "VIOLATED" in rendered


def test_manifest_without_check_cost_has_no_cost_summary():
    jobs = [_job("a")]
    results = {"a": JobResult("a", JobStatus.OK, "fine", verdict="fine")}
    manifest = _build(jobs, results)
    assert "cost_checked" not in manifest["summary"]
    assert manifest_exit_code(manifest) == 0


def test_job_result_cost_fields_round_trip():
    result = JobResult(
        "a", JobStatus.OK, "fine", verdict="fine",
        cost={"checks": 1, "predicates": 2, "violations": []},
        backend_resolution=[
            {"backend": "columnar", "volume": 9000, "threshold": 4096}
        ],
    )
    thawed = JobResult.from_dict(result.as_dict())
    assert thawed.cost == result.cost
    assert thawed.backend_resolution == result.backend_resolution


def _ivm_result(name, rounds):
    return JobResult(
        name, JobStatus.OK, "fine", verdict="fine",
        ivm={"rounds": rounds, "inserted": 5, "deleted": 2,
             "rederived": 1, "speedup": 3.4},
    )


def test_job_result_ivm_block_round_trips():
    result = _ivm_result("a", rounds=7)
    thawed = JobResult.from_dict(result.as_dict())
    assert thawed.ivm == result.ivm
    # schema-5 payloads (no ivm key) thaw to None, not a crash
    legacy = result.as_dict()
    del legacy["ivm"]
    assert JobResult.from_dict(legacy).ivm is None


def test_manifest_ivm_summary_and_render():
    jobs = [_job("a"), _job("b"), _job("c")]
    results = {
        "a": _ivm_result("a", rounds=7),
        "b": _ivm_result("b", rounds=3),
        "c": JobResult("c", JobStatus.OK, "fine", verdict="fine"),
    }
    manifest = _build(jobs, results)
    assert manifest["summary"]["ivm_jobs"] == 2
    assert manifest["summary"]["ivm_rounds"] == 10
    rendered = render_manifest(manifest)
    assert "ivm 7 rounds" in rendered
    assert "2 job(s) maintained materializations across 10" in rendered


def test_manifest_without_ivm_jobs_has_no_ivm_summary():
    jobs = [_job("a")]
    results = {"a": JobResult("a", JobStatus.OK, "fine", verdict="fine")}
    manifest = _build(jobs, results)
    assert "ivm_jobs" not in manifest["summary"]
    assert "ivm" not in render_manifest(manifest)


def test_manifest_baseline_delta_covers_ivm_counters():
    jobs = [_job("a")]

    def result(rounds):
        return {
            "a": JobResult(
                "a", JobStatus.OK, "fine", verdict="fine",
                engine={"ivm_rounds": rounds, "ivm_inserted": 4 * rounds},
            ),
        }

    base = build_manifest(
        jobs, result(2),
        wall_seconds=1.0, workers=1, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False,
    )
    incremental = build_manifest(
        jobs, result(10),
        wall_seconds=1.0, workers=1, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False, baseline=base,
    )
    delta = incremental["baseline"]["engine_delta"]
    assert delta["ivm_rounds"] == 8
    assert delta["ivm_inserted"] == 32


def _maintain_result(name, violations):
    return JobResult(
        name, JobStatus.OK, "fine", verdict="fine",
        maintain={
            "checks": 4, "predicates": 8,
            "strategies": {"counting": 2, "dred": 2},
            "violations": violations,
        },
    )


def test_manifest_maintain_summary_green():
    jobs = [_job("a"), _job("b")]
    results = {
        "a": _maintain_result("a", []),
        "b": _maintain_result("b", []),
    }
    manifest = build_manifest(
        jobs, results,
        wall_seconds=1.0, workers=2, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False, check_maintenance=True,
    )
    assert manifest["check_maintenance"] is True
    assert manifest["summary"]["maintain_checked"] == 2
    assert manifest["summary"]["maintain_ok"] == 2
    assert manifest["maintain_violations"] == []
    assert manifest_exit_code(manifest) == 0
    rendered = render_manifest(manifest)
    assert "maintenance: 2/2" in rendered
    assert "maintain ok (4 rounds)" in rendered


def test_manifest_maintain_delta_violation_gates_the_exit_code():
    violation = {
        "kind": "delta", "pred": "Reach", "measured": 40,
        "bound": 12, "update_size": 1, "basis": "dred churn",
    }
    jobs = [_job("a")]
    results = {"a": _maintain_result("a", [violation])}
    manifest = build_manifest(
        jobs, results,
        wall_seconds=1.0, workers=2, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False, check_maintenance=True,
    )
    assert manifest["summary"]["maintain_ok"] == 0
    assert manifest["maintain_violations"] == [
        {"job": "a", "violations": [violation]}
    ]
    assert manifest_exit_code(manifest) == 1
    rendered = render_manifest(manifest)
    assert "maintain delta VIOLATED" in rendered


def test_manifest_maintain_strategy_violation_renders():
    violation = {
        "kind": "strategy", "pred": "Reach",
        "planned": "dred", "actual": "counting",
    }
    jobs = [_job("a")]
    results = {"a": _maintain_result("a", [violation])}
    manifest = build_manifest(
        jobs, results,
        wall_seconds=1.0, workers=2, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False, check_maintenance=True,
    )
    assert manifest_exit_code(manifest) == 1
    rendered = render_manifest(manifest)
    assert "maintain strategy VIOLATED" in rendered


def test_manifest_without_check_maintenance_has_no_maintain_summary():
    jobs = [_job("a")]
    results = {"a": JobResult("a", JobStatus.OK, "fine", verdict="fine")}
    manifest = _build(jobs, results)
    assert "maintain_checked" not in manifest["summary"]
    assert manifest_exit_code(manifest) == 0


def test_maintain_block_round_trips_through_job_result():
    result = _maintain_result("a", [])
    clone = JobResult.from_dict(result.as_dict())
    assert clone.maintain == result.maintain


def _shard_result(name, violations):
    return JobResult(
        name, JobStatus.OK, "fine", verdict="fine",
        shard={
            "checks": 3, "strata": 2, "facts": 400,
            "violations": violations,
        },
    )


def test_manifest_shard_summary_green():
    jobs = [_job("a"), _job("b")]
    results = {
        "a": _shard_result("a", []),
        "b": _shard_result("b", []),
    }
    manifest = build_manifest(
        jobs, results,
        wall_seconds=1.0, workers=2, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False,
        shards=4, check_sharding=True,
    )
    assert manifest["shards"] == 4
    assert manifest["check_sharding"] is True
    assert manifest["summary"]["shard_checked"] == 2
    assert manifest["summary"]["shard_ok"] == 2
    assert manifest["shard_violations"] == []
    assert manifest_exit_code(manifest) == 0
    text = render_manifest(manifest)
    assert "shard ok (2 strata)" in text
    assert "sharding: 2/2 job(s) conformant" in text


def test_manifest_shard_violation_gates_the_exit_code():
    violation = {
        "kind": "boundary", "stratum": 0, "pred": "Reach",
        "fact": "(7, 0, 1)", "worker": 1, "owner": 0,
    }
    jobs = [_job("a")]
    results = {"a": _shard_result("a", [violation])}
    manifest = build_manifest(
        jobs, results,
        wall_seconds=1.0, workers=2, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False,
        shards=2, check_sharding=True,
    )
    assert manifest["summary"]["shard_ok"] == 0
    assert manifest["shard_violations"] == [
        {"job": "a", "violations": [violation]}
    ]
    assert manifest_exit_code(manifest) == 1
    text = render_manifest(manifest)
    assert "shard VIOLATED" in text
    assert "shard boundary VIOLATED" in text
    assert "hashes to 0" in text


def test_manifest_without_check_sharding_has_no_shard_summary():
    jobs = [_job("a")]
    results = {"a": JobResult("a", JobStatus.OK, "fine", verdict="fine")}
    manifest = _build(jobs, results)
    assert manifest["shards"] == 0
    assert manifest["check_sharding"] is False
    assert "shard_checked" not in manifest["summary"]
    assert manifest_exit_code(manifest) == 0


def test_shard_block_round_trips_through_job_result():
    result = _shard_result("a", [])
    clone = JobResult.from_dict(result.as_dict())
    assert clone.shard == result.shard


def test_manifest_baseline_delta_covers_shard_counters():
    jobs = [_job("a")]

    def result(exchanged):
        return {
            "a": JobResult(
                "a", JobStatus.OK, "fine", verdict="fine",
                engine={
                    "shard_workers": 2,
                    "shard_exchanged_rows": exchanged,
                    "shard_local_rounds": exchanged // 10,
                },
            ),
        }

    base = build_manifest(
        jobs, result(100),
        wall_seconds=1.0, workers=1, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False,
    )
    sharded = build_manifest(
        jobs, result(40),
        wall_seconds=1.0, workers=1, default_timeout=30.0,
        code_fingerprint="fp", cache_used=False, baseline=base,
    )
    delta = sharded["baseline"]["engine_delta"]
    assert delta["shard_exchanged_rows"] == -60
    assert delta["shard_local_rounds"] == -6
