"""Deliberately misbehaving job functions for runner tests.

These run inside worker *processes*, so they must be importable by
dotted reference (``tests.harness.sample_jobs:<name>``) — cross-process
state (the flaky sentinel) goes through the filesystem.
"""

from __future__ import annotations

import os
import time


def ok_job(verdict: str = "fine", measured: str = "all good") -> dict:
    return {"verdict": verdict, "measured": measured}


def hang_job(seconds: float = 60.0) -> dict:
    time.sleep(seconds)
    return {"verdict": "woke-up"}


def crash_job(message: str = "boom") -> dict:
    raise RuntimeError(message)


def flaky_job(sentinel: str) -> dict:
    """Crashes on the first attempt, succeeds once ``sentinel`` exists."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("first attempt\n")
        raise RuntimeError("flaky: failing the first attempt")
    return {"verdict": "recovered", "measured": "succeeded on retry"}


def engine_job() -> dict:
    """Does real engine work so EngineStats flow back across the pipe."""
    from repro.core.parser import parse_cq, parse_instance

    q = parse_cq("Q(x) <- R(x,y)")
    inst = parse_instance("R('a','b'). R('b','c').")
    rows = q.evaluate(inst)
    return {
        "verdict": "evaluated",
        "measured": f"{len(rows)} rows",
        "metrics": {"rows": len(rows)},
    }


def bad_return_job():
    return ["not", "a", "dict"]


def certified_job() -> dict:
    """Emits a small, genuinely valid certificate."""
    from repro.certify.emit import certificate, claim_query_output
    from repro.core.parser import parse_cq, parse_instance
    from repro.harness.evidence_common import finish

    q = parse_cq("Q(x) <- R(x,y)")
    inst = parse_instance("R('a','b'). R('b','c').")
    return finish(
        "evaluated", [("ran", True)], "with certificate",
        certificate=certificate([claim_query_output(q, inst)]),
    )


def forged_certificate_job() -> dict:
    """Emits a certificate whose recorded output is a lie."""
    from repro.certify.emit import certificate, claim_query_output
    from repro.core.parser import parse_cq, parse_instance
    from repro.harness.evidence_common import finish

    q = parse_cq("Q(x) <- R(x,y)")
    inst = parse_instance("R('a','b').")
    return finish(
        "evaluated", [("ran", True)], "with forged certificate",
        certificate=certificate(
            [claim_query_output(q, inst, output={("a",), ("zzz",)})]
        ),
    )


def optimize_probe_job() -> dict:
    """Reports the worker's ambient engine-optimization default."""
    from repro.core.evaluation import default_optimize

    return {
        "verdict": "optimized" if default_optimize() else "plain",
        "measured": f"default_optimize={default_optimize()}",
    }


def backend_probe_job() -> dict:
    """Reports the worker's ambient evaluation backend."""
    from repro.core.backend import default_backend

    return {
        "verdict": default_backend(),
        "measured": f"default_backend={default_backend()}",
    }


def wide_join_job() -> dict:
    """Carries a wide-join program literal: the scheduler must predict
    a large cost for it (four chained binary atoms under assumed
    parameters blow well past the heavy threshold)."""
    from repro.core.parser import parse_program

    program = parse_program(
        "P(a) <- R(a,b), R(b,c), R(c,d), R(d,e)."
    )
    return {"verdict": "parsed", "measured": f"{len(program.rules)} rule"}


def reach_literal_job() -> dict:
    """A modest recursive program literal for mid-cost scheduling."""
    from repro.core.parser import parse_program

    program = parse_program(
        "Reach(x,y) <- E(x,y). Reach(x,y) <- E(x,z), Reach(z,y)."
    )
    return {"verdict": "parsed", "measured": f"{len(program.rules)} rules"}


def datalog_fixpoint_job() -> dict:
    """Runs a real recursive fixpoint so --check-cost / --backend auto
    have something to audit in worker processes."""
    from repro.core.evaluation import fixpoint
    from repro.core.parser import parse_instance, parse_program

    program = parse_program(
        "T(x,y) <- R(x,y). T(x,y) <- R(x,z), T(z,y)."
    )
    inst = parse_instance("R(1,2). R(2,3). R(3,4).")
    result = fixpoint(program, inst)
    return {"verdict": "computed", "measured": f"{result.size('T')} facts"}
