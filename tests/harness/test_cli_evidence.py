"""``python -m repro evidence {list,run,report}`` end to end.

The ``run`` tests execute one real (fast) evidence job through the
whole stack — registry → worker process → cache → manifest — twice, so
the cached path is covered at the CLI level too.
"""

from __future__ import annotations

import json

from repro.cli import main


def test_evidence_list_text(capsys):
    code = main(["evidence", "list"])
    out = capsys.readouterr().out
    assert code == 0
    assert "t1-cq-rewriting" in out
    assert "t2-undecidable-reduction" in out
    assert "fig5-lemma3-treewidth" in out
    assert "job(s)" in out


def test_evidence_list_json_filtered(capsys):
    code = main(["evidence", "list", "--filter", "fig4", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    names = {job["name"] for job in payload["jobs"]}
    # fig4 plus its dependency, pulled in for DAG consistency
    assert names == {"fig4-long-row", "fig3-unravelled-counterexample"}
    by_name = {job["name"]: job for job in payload["jobs"]}
    assert by_name["fig4-long-row"]["expected"] == "no-embedding"


def test_evidence_run_and_report_round_trip(tmp_path, capsys):
    out_dir = tmp_path / "out"
    cache_dir = tmp_path / "cache"
    args = [
        "evidence", "run",
        "--filter", "t1-cq-rewriting",
        "--jobs", "1",
        "--timeout", "120",
        "--cache-dir", str(cache_dir),
        "--out-dir", str(out_dir),
    ]
    code = main(args)
    out = capsys.readouterr().out
    assert code == 0
    assert "OK" in out and "t1-cq-rewriting" in out

    manifest = json.loads((out_dir / "manifest.json").read_text())
    assert manifest["summary"]["ok"] == manifest["summary"]["total"] == 1
    assert manifest["jobs"]["t1-cq-rewriting"]["verdict"] == "cq-rewriting"
    assert manifest["jobs"]["t1-cq-rewriting"]["matched"] is True
    assert manifest["mismatches"] == []
    assert (out_dir / "events.jsonl").exists()

    # second run: the cache answers, nothing re-executes
    code = main(args)
    out = capsys.readouterr().out
    assert code == 0
    assert "cached" in out
    manifest = json.loads((out_dir / "manifest.json").read_text())
    assert manifest["summary"]["cached"] == 1

    # report re-renders and re-gates the stored manifest
    code = main(["evidence", "report", str(out_dir)])
    out = capsys.readouterr().out
    assert code == 0
    assert "t1-cq-rewriting" in out and "summary:" in out


def test_evidence_run_json_format(tmp_path, capsys):
    code = main([
        "evidence", "run",
        "--filter", "fig3-chain-and-image",
        "--jobs", "2",
        "--no-cache",
        "--out-dir", str(tmp_path / "out"),
        "--format", "json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["jobs"]["fig3-chain-and-image"]["status"] == "ok"
    assert payload["cache_used"] is False


def test_evidence_run_unknown_filter_is_usage_error(tmp_path, capsys):
    code = main([
        "evidence", "run",
        "--filter", "no-such-job",
        "--out-dir", str(tmp_path / "out"),
    ])
    assert code == 2
    assert "no jobs match" in capsys.readouterr().err


def test_evidence_report_missing_manifest(tmp_path, capsys):
    code = main(["evidence", "report", str(tmp_path / "nowhere")])
    assert code == 2
    assert "cannot read" in capsys.readouterr().err
