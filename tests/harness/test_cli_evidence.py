"""``python -m repro evidence {list,run,report}`` end to end.

The ``run`` tests execute one real (fast) evidence job through the
whole stack — registry → worker process → cache → manifest — twice, so
the cached path is covered at the CLI level too.
"""

from __future__ import annotations

import json

from repro.cli import main


def test_evidence_list_text(capsys):
    code = main(["evidence", "list"])
    out = capsys.readouterr().out
    assert code == 0
    assert "t1-cq-rewriting" in out
    assert "t2-undecidable-reduction" in out
    assert "fig5-lemma3-treewidth" in out
    assert "job(s)" in out


def test_evidence_list_json_filtered(capsys):
    code = main(["evidence", "list", "--filter", "fig4", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    names = {job["name"] for job in payload["jobs"]}
    # fig4 plus its dependency, pulled in for DAG consistency
    assert names == {"fig4-long-row", "fig3-unravelled-counterexample"}
    by_name = {job["name"]: job for job in payload["jobs"]}
    assert by_name["fig4-long-row"]["expected"] == "no-embedding"


def test_evidence_run_and_report_round_trip(tmp_path, capsys):
    out_dir = tmp_path / "out"
    cache_dir = tmp_path / "cache"
    args = [
        "evidence", "run",
        "--filter", "t1-cq-rewriting",
        "--jobs", "1",
        "--timeout", "120",
        "--cache-dir", str(cache_dir),
        "--out-dir", str(out_dir),
    ]
    code = main(args)
    out = capsys.readouterr().out
    assert code == 0
    assert "OK" in out and "t1-cq-rewriting" in out

    manifest = json.loads((out_dir / "manifest.json").read_text())
    assert manifest["summary"]["ok"] == manifest["summary"]["total"] == 1
    assert manifest["jobs"]["t1-cq-rewriting"]["verdict"] == "cq-rewriting"
    assert manifest["jobs"]["t1-cq-rewriting"]["matched"] is True
    assert manifest["mismatches"] == []
    assert (out_dir / "events.jsonl").exists()

    # second run: the cache answers, nothing re-executes
    code = main(args)
    out = capsys.readouterr().out
    assert code == 0
    assert "cached" in out
    manifest = json.loads((out_dir / "manifest.json").read_text())
    assert manifest["summary"]["cached"] == 1

    # report re-renders and re-gates the stored manifest
    code = main(["evidence", "report", str(out_dir)])
    out = capsys.readouterr().out
    assert code == 0
    assert "t1-cq-rewriting" in out and "summary:" in out


def test_evidence_run_json_format(tmp_path, capsys):
    code = main([
        "evidence", "run",
        "--filter", "fig3-chain-and-image",
        "--jobs", "2",
        "--no-cache",
        "--out-dir", str(tmp_path / "out"),
        "--format", "json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["jobs"]["fig3-chain-and-image"]["status"] == "ok"
    assert payload["cache_used"] is False


def test_evidence_run_unknown_filter_is_usage_error(tmp_path, capsys):
    code = main([
        "evidence", "run",
        "--filter", "no-such-job",
        "--out-dir", str(tmp_path / "out"),
    ])
    assert code == 2
    assert "no jobs match" in capsys.readouterr().err


def test_evidence_report_missing_manifest(tmp_path, capsys):
    code = main(["evidence", "report", str(tmp_path / "nowhere")])
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


def test_evidence_run_optimize_with_baseline(tmp_path, capsys):
    base_dir = tmp_path / "base"
    opt_dir = tmp_path / "opt"
    common = [
        "evidence", "run",
        "--filter", "t1-cq-rewriting",
        "--jobs", "1",
        "--timeout", "120",
        "--no-cache",
    ]
    assert main(common + ["--out-dir", str(base_dir)]) == 0
    capsys.readouterr()
    code = main(common + [
        "--out-dir", str(opt_dir),
        "--optimize",
        "--baseline", str(base_dir),
    ])
    out = capsys.readouterr().out
    assert code == 0
    manifest = json.loads((opt_dir / "manifest.json").read_text())
    assert manifest["optimize"] is True
    baseline = manifest["baseline"]
    assert baseline["optimize"] is False
    assert set(baseline["engine_delta"]) == {
        "hom_calls", "search_steps", "rows_scanned",
        "fixpoint_rounds", "facts_derived",
        "join_build_rows", "join_probe_rows", "join_output_rows",
        "cost_bounds_checked", "cost_violations",
        "ivm_rounds", "ivm_inserted", "ivm_deleted", "ivm_rederived",
        "maintain_counting_strata", "maintain_dred_strata",
        "maintain_skipped_rederive",
        "shard_workers", "shard_exchanged_rows", "shard_local_rounds",
    }
    assert baseline["backend"] == "interpreted"
    assert manifest["backend"] == "interpreted"
    assert "vs baseline" in out


def test_evidence_run_optimize_salts_the_cache(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    common = [
        "evidence", "run",
        "--filter", "t1-cq-rewriting",
        "--jobs", "1",
        "--timeout", "120",
        "--cache-dir", str(cache_dir),
    ]
    assert main(common + ["--out-dir", str(tmp_path / "a")]) == 0
    capsys.readouterr()
    # an optimized run must not reuse the plain run's cache entries
    assert main(common + ["--out-dir", str(tmp_path / "b"), "--optimize"]) == 0
    manifest = json.loads((tmp_path / "b" / "manifest.json").read_text())
    assert manifest["summary"]["cached"] == 0
    capsys.readouterr()
    # but a second optimized run does hit the (salted) cache
    assert main(common + ["--out-dir", str(tmp_path / "c"), "--optimize"]) == 0
    manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
    assert manifest["summary"]["cached"] == 1


def test_evidence_run_backend_keys_the_cache(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    common = [
        "evidence", "run",
        "--filter", "t1-cq-rewriting",
        "--jobs", "1",
        "--timeout", "120",
        "--cache-dir", str(cache_dir),
    ]
    assert main(common + ["--out-dir", str(tmp_path / "a")]) == 0
    capsys.readouterr()
    # a columnar run must not reuse the interpreted run's entries
    assert main(common + [
        "--out-dir", str(tmp_path / "b"), "--backend", "columnar",
    ]) == 0
    manifest = json.loads((tmp_path / "b" / "manifest.json").read_text())
    assert manifest["summary"]["cached"] == 0
    assert manifest["backend"] == "columnar"
    capsys.readouterr()
    # but a second columnar run hits the columnar-mode entries
    assert main(common + [
        "--out-dir", str(tmp_path / "c"), "--backend", "columnar",
    ]) == 0
    manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
    assert manifest["summary"]["cached"] == 1
    capsys.readouterr()
    # and the interpreted entries are still intact, not clobbered
    assert main(common + ["--out-dir", str(tmp_path / "d")]) == 0
    manifest = json.loads((tmp_path / "d" / "manifest.json").read_text())
    assert manifest["summary"]["cached"] == 1
    assert manifest["backend"] == "interpreted"


def test_evidence_run_columnar_with_certificates(tmp_path, capsys):
    """The columnar backend's verdicts survive the independent checker,
    and its join counters reach the manifest's engine totals."""
    code = main([
        "evidence", "run",
        "--filter", "t1-cq-rewriting",
        "--jobs", "1",
        "--timeout", "120",
        "--no-cache",
        "--out-dir", str(tmp_path / "out"),
        "--backend", "columnar",
        "--check-certificates",
    ])
    assert code == 0
    capsys.readouterr()
    manifest = json.loads((tmp_path / "out" / "manifest.json").read_text())
    assert manifest["backend"] == "columnar"
    assert manifest["summary"]["certified"] == manifest["summary"]["total"]


def test_evidence_run_unreadable_baseline_is_usage_error(tmp_path, capsys):
    code = main([
        "evidence", "run",
        "--filter", "t1-cq-rewriting",
        "--out-dir", str(tmp_path / "out"),
        "--baseline", str(tmp_path / "nowhere"),
    ])
    assert code == 2
    assert "baseline" in capsys.readouterr().err


def test_evidence_run_check_cost_end_to_end(tmp_path, capsys):
    out_dir = tmp_path / "out"
    code = main([
        "evidence", "run",
        "--filter", "t1-cq-rewriting",
        "--jobs", "1",
        "--timeout", "120",
        "--no-cache",
        "--check-cost",
        "--out-dir", str(out_dir),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "cost bounds:" in out
    manifest = json.loads((out_dir / "manifest.json").read_text())
    assert manifest["check_cost"] is True
    summary = manifest["summary"]
    assert summary["cost_checked"] == summary["cost_ok"] > 0
    assert manifest["cost_violations"] == []
    for job in manifest["jobs"].values():
        if job["status"] == "ok":
            assert job["cost"]["violations"] == []


def test_evidence_run_check_cost_keys_the_cache(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    common = [
        "evidence", "run",
        "--filter", "t1-cq-rewriting",
        "--jobs", "1",
        "--timeout", "120",
        "--cache-dir", str(cache_dir),
    ]
    assert main(common + ["--out-dir", str(tmp_path / "a")]) == 0
    capsys.readouterr()
    # a cost-audited run must re-execute (cached results carry no audit)
    assert main(common + [
        "--out-dir", str(tmp_path / "b"), "--check-cost",
    ]) == 0
    manifest = json.loads((tmp_path / "b" / "manifest.json").read_text())
    assert manifest["summary"]["cached"] == 0
    assert manifest["summary"]["cost_checked"] > 0


def test_evidence_run_verbose_prints_the_schedule(tmp_path, capsys):
    code = main([
        "evidence", "run",
        "--filter", "t1-cq-rewriting",
        "--jobs", "1",
        "--timeout", "120",
        "--no-cache",
        "--verbose",
        "--out-dir", str(tmp_path / "out"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "cost <=" in out


def test_evidence_run_no_schedule_keeps_registration_order(tmp_path, capsys):
    code = main([
        "evidence", "run",
        "--filter", "t1-cq-rewriting",
        "--jobs", "1",
        "--timeout", "120",
        "--no-cache",
        "--no-schedule",
        "--out-dir", str(tmp_path / "out"),
    ])
    assert code == 0
    assert "OK" in capsys.readouterr().out


def test_evidence_run_auto_backend_records_resolutions(tmp_path, capsys):
    out_dir = tmp_path / "out"
    code = main([
        "evidence", "run",
        "--filter", "fig3-chain",
        "--jobs", "1",
        "--timeout", "120",
        "--no-cache",
        "--backend", "auto",
        "--out-dir", str(out_dir),
    ])
    assert code == 0
    manifest = json.loads((out_dir / "manifest.json").read_text())
    assert manifest["backend"] == "auto"
    resolved = [
        job for job in manifest["jobs"].values()
        if job["status"] == "ok" and job.get("backend_resolution")
    ]
    assert resolved
    for job in resolved:
        for entry in job["backend_resolution"]:
            assert entry["backend"] in ("interpreted", "columnar")
            assert entry["threshold"] == 4096
