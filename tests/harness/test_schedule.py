"""Cost-model-driven job scheduling: prediction, ordering, hints."""

from repro.harness.job import Job
from repro.harness.registry import default_registry
from repro.harness.schedule import (
    BASE_COST,
    HEAVY_COST,
    HEAVY_FACTOR,
    predict_job_cost,
    render_schedule,
    schedule_jobs,
)


def job(name, fn="tests.harness.sample_jobs:ok_job", **kw) -> Job:
    return Job(name=name, fn=fn, claim="c", expected="fine", **kw)


# ---------------------------------------------------------------------------
# cost prediction
# ---------------------------------------------------------------------------
def test_predict_falls_back_to_base_cost_without_a_program():
    assert predict_job_cost(job("plain")) == BASE_COST


def test_predict_falls_back_on_unresolvable_functions():
    broken = job("ghost", fn="tests.no_such_module:missing")
    assert predict_job_cost(broken) == BASE_COST


def test_predict_extracts_program_literals_from_source():
    probe = job("engine", fn="tests.harness.sample_jobs:engine_job")
    cost = predict_job_cost(probe)
    # Q(x) <- R(x,y): one scan of an assumed 16-row EDB, far from the
    # orchestration fallback
    assert 0 < cost < BASE_COST


def test_predict_scales_heavy_jobs():
    fn = "tests.harness.sample_jobs:reach_literal_job"
    light = predict_job_cost(job("light", fn=fn))
    heavy = predict_job_cost(job("heavy", fn=fn, heavy=True))
    assert heavy == light * HEAVY_FACTOR


def test_wide_join_predicts_past_the_heavy_threshold():
    wide = job("wide", fn="tests.harness.sample_jobs:wide_join_job")
    assert predict_job_cost(wide) >= HEAVY_COST


# ---------------------------------------------------------------------------
# ordering
# ---------------------------------------------------------------------------
def test_schedule_puts_the_heaviest_ready_job_first():
    cheap = job("cheap")
    wide = job("wide", fn="tests.harness.sample_jobs:wide_join_job")
    ordered, costs = schedule_jobs([cheap, wide])
    assert [j.name for j in ordered] == ["wide", "cheap"]
    assert costs["wide"] > costs["cheap"]


def test_schedule_never_reorders_across_dependencies():
    cheap = job("cheap")
    wide = job(
        "wide",
        fn="tests.harness.sample_jobs:wide_join_job",
        deps=("cheap",),
    )
    ordered, _ = schedule_jobs([cheap, wide])
    assert [j.name for j in ordered] == ["cheap", "wide"]


def test_schedule_breaks_cost_ties_by_name():
    ordered, _ = schedule_jobs([job("b"), job("a"), job("c")])
    assert [j.name for j in ordered] == ["c", "b", "a"]


def test_schedule_ignores_dependencies_on_unknown_jobs():
    orphan = job("orphan", deps=("not-in-this-run",))
    ordered, _ = schedule_jobs([orphan])
    assert [j.name for j in ordered] == ["orphan"]


def test_schedule_leaves_cycles_for_the_runner_to_report():
    a = job("a", deps=("b",))
    b = job("b", deps=("a",))
    ordered, _ = schedule_jobs([a, b])
    assert {j.name for j in ordered} == {"a", "b"}


def test_schedule_leaves_duplicate_names_untouched():
    twins = [job("twin"), job("twin")]
    ordered, _ = schedule_jobs(twins)
    assert ordered == twins


def test_full_registry_schedule_is_a_topological_order():
    jobs = list(default_registry())
    ordered, costs = schedule_jobs(jobs)
    assert sorted(j.name for j in ordered) == sorted(j.name for j in jobs)
    placed: set[str] = set()
    names = {j.name for j in jobs}
    for j in ordered:
        for dep in j.deps:
            if dep in names:
                assert dep in placed, f"{j.name} scheduled before {dep}"
        placed.add(j.name)
    assert all(cost > 0 for cost in costs.values())


# ---------------------------------------------------------------------------
# hints
# ---------------------------------------------------------------------------
def test_heavy_hint_flags_the_job_and_doubles_the_default_timeout():
    wide = job("wide", fn="tests.harness.sample_jobs:wide_join_job")
    assert not wide.heavy and wide.timeout is None
    (hinted,), _ = schedule_jobs([wide], default_timeout=30.0)
    assert hinted.heavy
    assert hinted.timeout == 60.0


def test_heavy_hint_respects_an_explicit_timeout():
    wide = job(
        "wide",
        fn="tests.harness.sample_jobs:wide_join_job",
        timeout=7.0,
    )
    (hinted,), _ = schedule_jobs([wide], default_timeout=30.0)
    assert hinted.heavy
    assert hinted.timeout == 7.0


def test_cheap_jobs_earn_no_hints():
    (scheduled,), _ = schedule_jobs([job("cheap")], default_timeout=30.0)
    assert not scheduled.heavy
    assert scheduled.timeout is None


def test_hints_do_not_change_the_cache_identity():
    wide = job("wide", fn="tests.harness.sample_jobs:wide_join_job")
    (hinted,), _ = schedule_jobs([wide], default_timeout=30.0)
    before, after = wide.as_dict(), hinted.as_dict()
    before.pop("timeout"), after.pop("timeout")
    assert before == after  # heavy/timeout are not part of as_dict identity


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def test_render_schedule_shows_position_cost_and_flags():
    wide = job("wide", fn="tests.harness.sample_jobs:wide_join_job")
    ordered, costs = schedule_jobs([job("cheap"), wide],
                                   default_timeout=30.0)
    text = render_schedule(ordered, costs)
    lines = text.splitlines()
    assert lines[0].strip().startswith("1. wide")
    assert "cost <=" in lines[0]
    assert "heavy" in lines[0]
    assert "timeout 60s" in lines[0]
    assert "cheap" in lines[1]
