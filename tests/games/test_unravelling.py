"""Unravellings (§7, Fact 4)."""

import pytest

from repro.core.homomorphism import instance_maps_into
from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.games.unravelling import (
    bags_are_partial_isomorphisms,
    projection_is_homomorphism,
    unravel,
)


def _triangle() -> Instance:
    inst = Instance()
    for i in range(3):
        inst.add_tuple("E", (i, (i + 1) % 3))
    return inst


def test_projection_is_homomorphism():
    u = unravel(_triangle(), 2, 3)
    assert projection_is_homomorphism(u, _triangle())
    assert instance_maps_into(u.instance, _triangle())


def test_bags_are_partial_isomorphisms():
    u = unravel(_triangle(), 2, 3)
    assert bags_are_partial_isomorphisms(u, _triangle())


def test_unravelling_is_acyclic_at_k2():
    """A depth-truncated 2-unravelling of a triangle has no triangle."""
    u = unravel(_triangle(), 2, 4)
    assert not instance_maps_into(_triangle(), u.instance)


def test_frontier_one_bags_share_at_most_one():
    inst = parse_instance("R(1,2). R(2,3).")
    u = unravel(inst, 2, 3, frontier_one=True)
    seen = set()
    for bag in u.bags:
        for other in seen:
            assert len(set(bag) & set(other)) <= 1
        seen.add(tuple(bag))


def test_fact_supported_scenes_cover_facts():
    inst = parse_instance("S('a','b','c'). R('c','d').")
    u = unravel(inst, 3, 2, scenes="fact-supported")
    # every original fact appears among copies
    preds = {f.pred for f in u.instance.facts()}
    assert preds == {"S", "R"}


def test_fact_supported_skips_cross_fact_scenes():
    """Scenes mixing elements of different facts are not generated."""
    inst = parse_instance("U('a'). U('b').")
    u = unravel(inst, 2, 2, scenes="fact-supported")
    for bag in u.bags:
        assert len(bag) == 1  # only the singleton scenes exist


def test_max_nodes_guard():
    inst = parse_instance("R(1,2). R(2,3). R(3,4). R(4,5).")
    with pytest.raises(RuntimeError):
        unravel(inst, 2, 6, max_nodes=50)


def test_unknown_scene_mode():
    with pytest.raises(ValueError):
        unravel(_triangle(), 2, 2, scenes="bogus")


def test_copy_count_grows_with_depth():
    shallow = unravel(_triangle(), 2, 1)
    deep = unravel(_triangle(), 2, 2)
    assert deep.copy_count() > shallow.copy_count()
