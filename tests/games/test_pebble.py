"""Existential k-pebble games (Facts 1, 2, 5)."""

import pytest

from repro.core.homomorphism import instance_maps_into
from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.games.pebble import (
    duplicator_wins,
    kconsistency_closure,
    separates_in_datalog,
)


def _clique(n: int) -> Instance:
    inst = Instance()
    for i in range(n):
        for j in range(n):
            if i != j:
                inst.add_tuple("E", (i, j))
    return inst


def _cycle(n: int) -> Instance:
    inst = Instance()
    for i in range(n):
        inst.add_tuple("E", (i, (i + 1) % n))
        inst.add_tuple("E", ((i + 1) % n, i))
    return inst


def test_clique_cases():
    assert duplicator_wins(_clique(3), _clique(2), 2)
    assert not duplicator_wins(_clique(3), _clique(2), 3)
    assert not duplicator_wins(_clique(4), _clique(3), 4)


def test_homomorphism_implies_duplicator_win():
    """I → I' implies I →k I' for every k."""
    source = _cycle(6)  # bipartite, maps into an edge
    target = _clique(2)
    assert instance_maps_into(source, target)
    for k in (2, 3):
        assert duplicator_wins(source, target, k)


def test_odd_cycle_vs_edge():
    """C5 has no hom to K2 but Duplicator survives at k=2."""
    assert not instance_maps_into(_cycle(5), _clique(2))
    assert duplicator_wins(_cycle(5), _clique(2), 2)


def test_monotone_in_k():
    """Winning at k implies winning at every smaller k."""
    pairs = [(_clique(3), _clique(2)), (_cycle(5), _clique(2))]
    for source, target in pairs:
        for k in (3, 2):
            if duplicator_wins(source, target, k):
                assert duplicator_wins(source, target, k - 1)


def test_empty_target_loses():
    source = parse_instance("U('a').")
    assert not duplicator_wins(source, Instance(), 2)


def test_empty_source_wins():
    assert duplicator_wins(Instance(), _clique(2), 2)


def test_fact1_direction():
    """If I'' → I and I →k I' with tw(I'') <= k-1, then I'' → I'.

    (Fact 1, used through Claim 1 of Thm 8.)  Here: a path (treewidth 1,
    k=2) mapping into C5; since C5 →2 K2, the path maps into K2.
    """
    path = parse_instance("E(1,2). E(2,1). E(2,3). E(3,2).")
    assert instance_maps_into(path, _cycle(5))
    assert duplicator_wins(_cycle(5), _clique(2), 2)
    assert instance_maps_into(path, _clique(2))


def test_closure_structure():
    family = kconsistency_closure(_cycle(5), _clique(2), 2)
    assert frozenset() in family[frozenset()]
    # every surviving pair-map extends every singleton (Fact 5 condition)
    for key, maps in family.items():
        for f in maps:
            for pair in f:
                assert (f - {pair}) in family[key - {pair[0]}]


def test_separates_in_datalog_helper():
    verdict = separates_in_datalog(_clique(3), _clique(2), 2)
    assert verdict is False  # K3 →2 K2: no bodies-of-size-2 separation
    verdict2 = separates_in_datalog(_clique(3), _clique(2), 3)
    assert verdict2 is None


def test_invalid_k():
    with pytest.raises(ValueError):
        duplicator_wins(_clique(2), _clique(2), 0)
