"""The Thm 7 diamond construction (Figures 3, 4)."""

import pytest

from repro.constructions.diamonds import (
    diamond_chain,
    diamond_query,
    diamond_views,
    long_row_cq,
    unravelled_counterexample,
)
from repro.core.homomorphism import instance_maps_into
from repro.rewriting.datalog_rewriting import datalog_rewriting
from repro.rewriting.verification import check_rewriting


def test_query_is_mdl():
    assert diamond_query().program.is_monadic()


def test_views_are_cq():
    assert diamond_views().fragments() == {"CQ"}


@pytest.mark.parametrize("k", [1, 2, 3])
def test_query_holds_on_chains(k):
    assert diamond_query().boolean(diamond_chain(k))


def test_query_fails_without_sink():
    chain = diamond_chain(2)
    chain.discard(next(f for f in chain.facts() if f.pred == "U"))
    assert not diamond_query().boolean(chain)


def test_view_image_shape():
    image = diamond_views().image(diamond_chain(3))
    assert len(image.tuples("S")) == 1
    assert len(image.tuples("R")) == 2
    assert len(image.tuples("T")) == 1


def test_datalog_rewriting_exists():
    """The positive half of Thm 7: Q is Datalog-rewritable."""
    q = diamond_query()
    views = diamond_views()
    rewriting = datalog_rewriting(q, views)
    assert check_rewriting(q, views, rewriting, trials=30) is None


@pytest.fixture(scope="module")
def counterexample():
    return unravelled_counterexample(2, depth=2)


def test_unravelled_instance_fails_query(counterexample):
    _image, chased, _unr = counterexample
    assert len(chased)
    assert not diamond_query().boolean(chased)


def test_unravelling_below_view_image(counterexample):
    """J'_k ⊆ V(I'_k): the chase regenerates every unravelled view fact."""
    _image, chased, unr = counterexample
    assert unr.instance <= diamond_views().image(chased)


def test_long_row_does_not_map(counterexample):
    """Figure 4: no row of 2 R-rectangles embeds into the
    (1,k)-unravelling (bags cannot share two elements)."""
    _image, _chased, unr = counterexample
    row = long_row_cq(2)
    assert not instance_maps_into(row.canonical_database(), unr.instance)


def test_single_rectangle_does_map(counterexample):
    _image, _chased, unr = counterexample
    row = long_row_cq(1)
    assert instance_maps_into(row.canonical_database(), unr.instance)


def test_long_row_cq_shape():
    row = long_row_cq(3)
    assert row.size() == 3
    assert len(row.variables()) == 8  # 2k + 2
