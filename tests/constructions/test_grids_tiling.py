"""Grid structures and tiling problems (§6, §7)."""

import pytest

from repro.constructions.grids import cross, grid_graph, grid_instance
from repro.constructions.tiling import (
    TilingProblem,
    solvable_example,
    unsolvable_example,
)


def test_grid_instance_shape():
    grid = grid_instance(3, 2)
    assert len(grid.tuples("H")) == 4  # 2 per row x 2 rows
    assert len(grid.tuples("V")) == 3  # 1 per column x 3 columns
    assert grid.has_tuple("I", ((1, 1),))
    assert grid.has_tuple("F", ((3, 2),))


def test_grid_instance_rejects_bad_dims():
    with pytest.raises(ValueError):
        grid_instance(0, 3)


def test_grid_graph_matches_instance():
    graph = grid_graph(3, 3)
    assert graph.number_of_nodes() == 9
    assert graph.number_of_edges() == 12


def test_cross():
    c = cross(3, 3, 2, 2)
    assert len(c) == 5
    assert (2, 1) in c and (1, 2) in c and (2, 2) in c


def test_solvable_example():
    tp = solvable_example()
    solution = tp.solve(3)
    assert solution is not None
    n, m, tiling = solution
    assert tiling[(1, 1)] in tp.initial
    assert tiling[(n, m)] in tp.final


def test_unsolvable_example():
    assert unsolvable_example().solve(4) is None


def test_tiling_as_homomorphism():
    tp = solvable_example()
    grid = grid_instance(2, 2)
    tiling = tp.tile_instance(grid)
    assert tiling is not None
    # compatibility along H edges
    for left, right in grid.tuples("H"):
        assert (tiling[left], tiling[right]) in tp.horizontal


def test_can_tile_non_grid_instance():
    """Tiling applies to arbitrary δ-instances, not only grids."""
    from repro.core.instance import Instance

    tp = solvable_example()
    inst = Instance()
    inst.add_tuple("H", ("p", "q"))
    assert tp.can_tile(inst)
    inst.add_tuple("H", ("p", "p"))  # needs a self-compatible tile
    assert not tp.can_tile(inst)


def test_as_instance_round_trip():
    tp = solvable_example()
    structure = tp.as_instance()
    assert structure.tuples("H") == tp.horizontal
    assert {t for (t,) in structure.tuples("I")} == set(tp.initial)


def test_solve_finds_smallest_total():
    tp = solvable_example()
    n, m, _ = tp.solve(3)
    assert n == m == 1  # 'a' is both initial and final
