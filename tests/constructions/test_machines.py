"""The Turing machine substrate (Thm 9)."""

import pytest

from repro.constructions.machines import (
    MARK_INP_BEGIN,
    MARK_RUN_END,
    MARK_SEP,
    TuringMachine,
    counter_machine,
    counter_run,
    encode_run,
    machine_tables,
    run_string,
)


def test_counter_machine_accepts_and_runtime_doubles():
    steps = []
    for bits in (2, 3, 4, 5):
        machine, word, trace = counter_run(bits)
        assert trace[-1].state == machine.accept
        steps.append(len(trace))
    # exponential growth: each extra bit at least doubles the run
    for a, b in zip(steps, steps[1:]):
        assert b >= 2 * a


def test_determinism_and_step():
    machine, word, trace = counter_run(2)
    # re-stepping reproduces the trace
    config = trace[0]
    for expected in trace[1:]:
        config = machine.step(config)
        assert config == expected


def test_run_stops_at_halt():
    machine, word, trace = counter_run(2)
    assert machine.halted(trace[-1])
    assert not machine.halted(trace[0])


def test_max_steps_guard():
    machine = counter_machine(8)
    word = ("#",) + tuple("0" for _ in range(8))
    with pytest.raises(RuntimeError):
        machine.run(word, tape_length=10, max_steps=10)


def test_head_cannot_leave_tape():
    machine = TuringMachine(
        states=("s", "acc", "rej"),
        input_alphabet=("a",),
        tape_alphabet=("a", "_"),
        blank="_",
        start="s",
        accept="acc",
        reject="rej",
        transitions={("s", "a"): ("s", "a", -1)},
    )
    with pytest.raises(ValueError):
        machine.run(("a",), tape_length=2)


def test_run_string_format():
    machine, word, trace = counter_run(2)
    letters = run_string(word, trace)
    assert letters[0] == MARK_INP_BEGIN
    assert letters[-1] == MARK_RUN_END
    assert letters.count(MARK_SEP) == len(trace) - 1


def test_configuration_letters_mark_head():
    machine, word, trace = counter_run(2)
    head_letters = [
        letter
        for letter in trace[0].letters()
        if isinstance(letter, tuple)
    ]
    assert head_letters == [("q", "s", "#")]


def test_encode_run_segments():
    machine, word, trace = counter_run(2)
    inst = encode_run(word, trace)
    # Succ edges live strictly before σInpEnd; Succ' after
    succ = inst.tuples("Succ")
    succp = inst.tuples("Succ·p")
    assert succ and succp
    max_succ = max(b for _a, b in succ)
    min_succp = min(a for a, _b in succp)
    assert max_succ == min_succp  # they meet at σInpEnd


def test_machine_tables_are_functional():
    machine = counter_machine(2)
    tables = machine_tables(machine)
    seen = {}
    for a, b, c, d in tables.tuples("Step·T"):
        assert seen.setdefault((a, b, c), d) == d
    assert tables.tuples("Init·T")
    assert all(a != b for a, b in tables.tuples("Diff·T"))
