"""The Thm 6 reduction and Prop. 10."""

import pytest

from repro.constructions.reduction_thm6 import (
    axes_instance,
    grid_test_instance,
    ha_cq,
    thm6_query,
    thm6_views,
    va_cq,
)
from repro.constructions.tiling import solvable_example, unsolvable_example
from repro.core.containment import Verdict
from repro.determinacy.checker import check_tests


@pytest.fixture(scope="module")
def solvable():
    tp = solvable_example()
    return tp, thm6_query(tp), thm6_views(tp)


@pytest.fixture(scope="module")
def unsolvable():
    tp = unsolvable_example()
    return tp, thm6_query(tp), thm6_views(tp)


def test_query_is_mdl(solvable):
    _tp, query, _views = solvable
    assert query.program.is_monadic()


def test_views_are_cq_or_ucq(solvable):
    _tp, _query, views = solvable
    assert views.fragments() <= {"CQ", "UCQ"}


def test_adjacency_cqs_on_grid_test(solvable):
    """HA/VA detect exactly the grid adjacencies (Figure 1(b))."""
    tp, _query, _views = solvable
    inst = grid_test_instance(tp, 3, 2)
    ha_pairs = {
        (row[0], row[1]) for row in ha_cq().evaluate(inst)
    }
    assert (("z", 1, 1), ("z", 2, 1)) in ha_pairs
    assert (("z", 1, 1), ("z", 1, 2)) not in ha_pairs
    va_pairs = {
        (row[0], row[1]) for row in va_cq().evaluate(inst)
    }
    assert (("z", 1, 1), ("z", 1, 2)) in va_pairs
    assert (("z", 1, 1), ("z", 2, 1)) not in va_pairs


def test_qstart_on_marked_axes(solvable):
    _tp, query, _views = solvable
    assert query.boolean(axes_instance(3))
    # without the C/D marks Qstart cannot fire
    assert not query.boolean(axes_instance(3, marked=False))


def test_query_false_on_valid_tiling(solvable):
    tp, query, _views = solvable
    tiling = tp.tile_grid(2, 2)
    assert not query.boolean(grid_test_instance(tp, 2, 2, tiling))


def test_query_true_on_broken_tiling(solvable):
    tp, query, _views = solvable
    tiling = dict(tp.tile_grid(2, 2))
    tiling[(1, 1)] = "b"  # breaks the initial-tile condition
    assert query.boolean(grid_test_instance(tp, 2, 2, tiling))


def test_view_image_of_axes_has_product_s(solvable):
    """Figure 2: S on the image of I_ℓ is the C×D product."""
    _tp, _query, views = solvable
    image = views.image(axes_instance(2))
    assert len(image.tuples("S")) == 4
    assert len(image.tuples("VXSucc")) == 2  # o->x1->x2


def test_prop10_solvable_means_not_determined(solvable):
    _tp, query, views = solvable
    result = check_tests(query, views, approx_depth=4, view_depth=1)
    assert result.verdict is Verdict.NO


def test_prop10_unsolvable_all_tests_pass(unsolvable):
    _tp, query, views = unsolvable
    result = check_tests(
        query, views, approx_depth=3, view_depth=1, max_tests=150
    )
    assert result.verdict is Verdict.UNKNOWN  # no failing test found


def test_counterexample_is_a_grid_like_test(solvable):
    _tp, query, views = solvable
    result = check_tests(query, views, approx_depth=4, view_depth=1)
    d_prime = result.counterexample.test_instance
    assert d_prime.tuples("XProj") and d_prime.tuples("YProj")
    assert not d_prime.tuples("C") and not d_prime.tuples("D")
