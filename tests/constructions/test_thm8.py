"""The Theorem 8 pipeline."""

import pytest

from repro.constructions.thm8 import build_witness, grid_untilable_up_to
from repro.constructions.tp_star import tp_star


@pytest.fixture(scope="module")
def witness():
    return build_witness(4, depth=2)


def test_tp_star_grids_untilable():
    assert grid_untilable_up_to(tp_star(), 3)


def test_query_true_on_source(witness):
    assert witness.query.boolean(witness.source)


def test_image_is_nonempty_with_product_s(witness):
    ell = witness.ell
    assert len(witness.image.tuples("S")) == ell * ell


def test_w_instance_shape(witness):
    """W_ℓ's facts follow the unravelled successor relations."""
    w = witness.w_instance
    assert len(w)
    for (u1, v1), (u2, v2) in w.tuples("H"):
        assert v1 == v2
        assert witness.unravelling.instance.has_tuple("VXSucc", (u1, u2))
    for (u1, v1), (u2, v2) in w.tuples("V"):
        assert u1 == u2
        assert witness.unravelling.instance.has_tuple("VYSucc", (v1, v2))


def test_w_instance_is_tilable(witness):
    """Claim 1: the unravelled grid CAN be tiled with TP*."""
    assert witness.tiling is not None
    tp_structure = witness.tp.as_instance()
    # the tiling is a genuine homomorphism
    for _point, tile in witness.tiling.items():
        assert tile in set(witness.tp.tiles)
    for left, right in witness.w_instance.tuples("H"):
        if left in witness.tiling and right in witness.tiling:
            assert (
                witness.tiling[left], witness.tiling[right]
            ) in witness.tp.horizontal


def test_query_false_on_counterexample(witness):
    """Q_TP*(I'_ℓ) = False: the separating pair of Thm 8."""
    assert witness.counterexample is not None
    assert not witness.query.boolean(witness.counterexample)


def test_unravelling_maps_into_counterexample_image(witness):
    """U_ℓ → V(I'_ℓ) (so Fact 4(2) gives V(I_ℓ) →k V(I'_ℓ))."""
    image = witness.views.image(witness.counterexample)
    assert witness.unravelling.instance <= image


def test_counterexample_has_no_cd_marks(witness):
    assert not witness.counterexample.tuples("C")
    assert not witness.counterexample.tuples("D")


def test_monotonic_determinacy_holds_boundedly():
    """Since no grid is TP*-tilable, every canonical test succeeds —
    checked up to a small depth (the full claim is Thm 8)."""
    from repro.core.containment import Verdict
    from repro.determinacy.checker import check_tests

    w = build_witness(2, depth=1)
    result = check_tests(
        w.query, w.views, approx_depth=3, view_depth=1, max_tests=60
    )
    assert result.verdict is Verdict.UNKNOWN  # no failing test
