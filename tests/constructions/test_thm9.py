"""The Theorem 9 construction."""

import pytest

from repro.constructions.machines import counter_run, encode_run
from repro.constructions.thm9 import (
    TuringSeparator,
    thm9_query,
    thm9_views,
)
from repro.core.atoms import Atom


@pytest.fixture(scope="module")
def setting():
    machine, word, trace = counter_run(2)
    honest = encode_run(word, trace, machine)
    return machine, word, trace, honest


def test_query_accepts_honest_accepting_run(setting):
    machine, _word, _trace, honest = setting
    assert thm9_query(machine).boolean(honest)


def test_badly_shaped_view_quiet_on_honest_run(setting):
    machine, _word, _trace, honest = setting
    image = thm9_views(machine).image(honest)
    assert not image.tuples("Vbad")
    assert len(image.tuples("Vprerun")) == 1


def test_corrupted_letter_detected(setting):
    machine, _word, _trace, honest = setting
    corrupted = honest.copy()
    pos, letter = next(
        (p, a) for p, a in sorted(honest.tuples("Letter·p"))
        if a == "0" and p > 12
    )
    corrupted.discard(Atom("Letter·p", (pos, letter)))
    corrupted.add_tuple("Letter·p", (pos, "1"))
    assert thm9_query(machine).boolean(corrupted)
    image = thm9_views(machine).image(corrupted)
    assert image.tuples("Vbad")


def test_corrupted_initial_config_detected(setting):
    machine, word, trace, _honest = setting
    # swap a bit of the first configuration
    honest = encode_run(word, trace, machine)
    first_cells = sorted(
        (p, a) for p, a in honest.tuples("Letter·p")
        if isinstance(a, str) and a in ("0", "1")
    )
    pos, letter = first_cells[0]
    bad = honest.copy()
    bad.discard(Atom("Letter·p", (pos, letter)))
    bad.add_tuple("Letter·p", (pos, "1" if letter == "0" else "0"))
    image = thm9_views(machine).image(bad)
    assert image.tuples("Vbad")


def test_double_separator_detected(setting):
    machine, _word, _trace, honest = setting
    bad = honest.copy()
    seps = sorted(p for (p,) in honest.tuples("MSep"))
    # make position after a separator also a separator
    bad.add_tuple("MSep", (seps[0] + 1,))
    image = thm9_views(machine).image(bad)
    assert image.tuples("Vbad")


def test_truncated_run_neither_accepting_nor_bad(setting):
    """Cutting the run before the accept state: no pre-run, no accept."""
    machine, word, trace, _honest = setting
    truncated = encode_run(word, trace[:-1], machine)
    assert not thm9_query(machine).boolean(truncated)
    image = thm9_views(machine).image(truncated)
    assert not image.tuples("Vbad")
    assert not image.tuples("Vprerun")


def test_separator_simulates_machine(setting):
    machine, word, trace, honest = setting
    image = thm9_views(machine).image(honest)
    separator = TuringSeparator(machine, tape_length=len(word) + 1)
    assert separator.boolean(image)
    assert separator.simulated_steps == len(trace)


def test_separator_shortcut_on_bad_view(setting):
    machine, word, _trace, _honest = setting
    from repro.core.instance import Instance

    j = Instance()
    j.add_tuple("Vbad", ())
    separator = TuringSeparator(machine, tape_length=len(word) + 1)
    assert separator.boolean(j)
    assert separator.simulated_steps == 0  # no simulation needed


def test_separator_cost_grows_with_machine_time():
    """The Thm 9 phenomenon: separator cost tracks machine time."""
    costs = []
    for bits in (2, 3, 4):
        machine, word, trace = counter_run(bits)
        honest = encode_run(word, trace, machine)
        image = thm9_views(machine).image(honest)
        separator = TuringSeparator(machine, tape_length=len(word) + 1)
        separator.boolean(image)
        costs.append(separator.simulated_steps)
    assert costs[2] > 2 * costs[1] > 4 * costs[0]
