"""The parity tiling problem TP* (Lemma 6)."""

import pytest

from repro.constructions.grids import grid_instance
from repro.constructions.tp_star import (
    abstract_tiles,
    incident_directions,
    psi,
    tp_star,
    walk_tile_assignment,
)
from repro.games.pebble import duplicator_wins


def test_tile_count():
    """2 odd-parity tiles at the corner (deg 2); the rest even-parity:
    corners 2 each, edges 4 each, center 8."""
    tiles = abstract_tiles()
    assert len(tiles) == 4 * 2 + 4 * 4 + 8
    corner_tiles = [t for t in tiles if t[0] == (1, 1)]
    assert all(sum(t[1:]) % 2 == 1 for t in corner_tiles)
    other = [t for t in tiles if t[0] != (1, 1)]
    assert all(sum(t[1:]) % 2 == 0 for t in other)


def test_incident_directions():
    assert incident_directions((1, 1), 3, 3) == ("up", "right")
    assert incident_directions((2, 2), 3, 3) == (
        "up", "right", "down", "left",
    )
    assert incident_directions((3, 2), 3, 3) == ("up", "down", "left")


def test_initial_final_tiles():
    tp = tp_star()
    assert all(t[0] == (1, 1) for t in tp.initial)
    assert all(t[0] == (3, 3) for t in tp.final)


@pytest.mark.parametrize("n,m", [(1, 1), (2, 2), (3, 3), (4, 3), (3, 4)])
def test_claim2_no_grid_tilable(n, m):
    assert not tp_star().can_tile(grid_instance(n, m))


def test_claim3_duplicator_wins_at_k2():
    """Igrid(3,3) →2 I_TP* although no homomorphism exists."""
    tp = tp_star()
    assert duplicator_wins(grid_instance(3, 3), tp.as_instance(), 2)


def test_psi_abstraction():
    mapping = psi(5, 4)
    assert mapping[(1, 1)] == (1, 1)
    assert mapping[(5, 4)] == (3, 3)
    assert mapping[(3, 2)] == (2, 2)
    assert mapping[(1, 2)] == (1, 2)
    assert mapping[(4, 1)] == (2, 1)


def test_walk_assignment_is_partial_tiling():
    """Claim 3: the assignment from a corner walk satisfies every
    constraint among assigned vertices."""
    n = m = 4
    tp = tp_star()
    walk = [(1, 1), (2, 1), (2, 2), (3, 2), (3, 3)]
    assignment = walk_tile_assignment(walk, n, m)
    assert (4, 4) in assignment and walk[-1] not in assignment
    tiles = set(tp.tiles)
    for vertex, tile in assignment.items():
        assert tile in tiles, f"{vertex} got invalid tile {tile}"
    grid = grid_instance(n, m)
    for left, right in grid.tuples("H"):
        if left in assignment and right in assignment:
            assert (assignment[left], assignment[right]) in tp.horizontal
    for below, above in grid.tuples("V"):
        if below in assignment and above in assignment:
            assert (assignment[below], assignment[above]) in tp.vertical
    assert assignment[(1, 1)] in tp.initial


def test_walk_must_start_at_corner():
    with pytest.raises(ValueError):
        walk_tile_assignment([(2, 2)], 3, 3)


def test_longer_walks_stay_valid():
    """Parity bookkeeping survives edge re-use."""
    tp = tp_star()
    walk = [(1, 1), (2, 1), (1, 1), (2, 1), (2, 2)]
    assignment = walk_tile_assignment(walk, 4, 4)
    tiles = set(tp.tiles)
    assert all(t in tiles for t in assignment.values())
