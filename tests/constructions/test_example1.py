"""Example 1, including the V3/V4 erratum."""

import pytest

from repro.constructions.example1 import (
    chain_instance,
    example1_query,
    paper_rewriting_v0_v2,
    paper_rewriting_v3_v4,
    views_v0_v2,
    views_v3_v4,
)
from repro.core.instance import Instance
from repro.rewriting.verification import check_rewriting, random_instances
from repro.core.schema import Schema


def test_query_shape():
    q = example1_query()
    assert q.program.is_monadic()
    assert q.is_boolean()


@pytest.mark.parametrize("links", [1, 2, 3])
def test_chain_instances(links):
    q = example1_query()
    assert q.boolean(chain_instance(links))
    assert not q.boolean(chain_instance(links, closed=False))


def test_v0_v2_rewriting_verified():
    q = example1_query()
    views = views_v0_v2()
    assert check_rewriting(
        q, views, paper_rewriting_v0_v2(), trials=40
    ) is None


def test_v3_v4_rewriting_on_chains():
    """The paper's CQ rewriting is correct on chain instances."""
    q = example1_query()
    views = views_v3_v4()
    rewriting = paper_rewriting_v3_v4()
    for links in (1, 2, 3):
        for closed in (True, False):
            inst = chain_instance(links, closed)
            assert rewriting.boolean(views.image(inst)) == q.boolean(inst)


def test_v3_v4_erratum_degenerate_case():
    """Erratum (recorded in EXPERIMENTS.md): on the zero-iteration
    instance {U1(a), U2(a)} the view image is empty, so Q is NOT
    monotonically determined over V3/V4 and the claimed CQ rewriting
    fails."""
    q = example1_query()
    views = views_v3_v4()
    degenerate = Instance()
    degenerate.add_tuple("U1", ("a",))
    degenerate.add_tuple("U2", ("a",))
    assert q.boolean(degenerate)
    assert len(views.image(degenerate)) == 0
    assert not paper_rewriting_v3_v4().boolean(views.image(degenerate))
    # the pair (degenerate, ∅) violates monotonic determinacy:
    empty = Instance()
    assert views.image(degenerate) == views.image(empty)
    assert q.boolean(degenerate) and not q.boolean(empty)


def test_v3_v4_rewriting_correct_on_nondegenerate_instances():
    """Restricted to instances where every U1∩U2 point would need a
    T-step anyway, the claimed rewriting agrees with Q."""
    q = example1_query()
    views = views_v3_v4()
    rewriting = paper_rewriting_v3_v4()
    schema = Schema({"T": 3, "B": 2, "U1": 1, "U2": 1})
    agreements = disagreements = 0
    for inst in random_instances(schema, 40, seed=3):
        shared = {
            u for (u,) in inst.tuples("U1")
        } & {u for (u,) in inst.tuples("U2")}
        got = rewriting.boolean(views.image(inst))
        expected = q.boolean(inst)
        if shared:
            continue  # potentially degenerate; not covered by the claim
        if got == expected:
            agreements += 1
        else:
            disagreements += 1
    assert disagreements == 0 and agreements > 0
