"""Deliberately corrupted certificates must be rejected.

Every mutation here starts from a certificate that *does* check, breaks
one thing, and asserts the checker pinpoints it — the acceptance
criterion for the subsystem's independence.
"""

import json

from repro.certify import (
    certificate,
    check_certificate,
    claim_membership,
    claim_monotone_rewriting,
    claim_not_determined,
    claim_query_output,
)
from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.instance import Instance
from repro.core.terms import Variable
from repro.core.ucq import UCQ
from repro.views.view import View, ViewSet

X, Y = Variable("x"), Variable("y")


def _query() -> ConjunctiveQuery:
    return ConjunctiveQuery((X,), (Atom("R", (X, Y)), Atom("R", (Y, X))))


def _instance() -> Instance:
    instance = Instance()
    instance.add_tuple("R", (1, 2))
    instance.add_tuple("R", (2, 1))
    return instance


def _good() -> dict:
    return json.loads(json.dumps(
        certificate([claim_membership(_query(), _instance(), (1,))])
    ))


def test_baseline_is_valid():
    assert check_certificate(_good()).valid


def test_wrong_schema_version_rejected():
    cert = _good()
    cert["schema"] = 999
    result = check_certificate(cert)
    assert not result.valid
    assert "schema" in result.failures[0]


def test_empty_claims_rejected():
    assert not check_certificate({"schema": 1, "claims": []}).valid
    assert not check_certificate({"schema": 1}).valid
    assert not check_certificate("not even a dict").valid


def test_unknown_claim_type_rejected():
    cert = _good()
    cert["claims"][0]["type"] = "trust_me"
    result = check_certificate(cert)
    assert not result.valid
    assert "unknown type" in result.failures[0]


def test_tampered_answer_rejected():
    cert = json.loads(json.dumps(
        certificate([claim_query_output(_query(), _instance())])
    ))
    cert["claims"][0]["output"].append([["int", 42]])
    result = check_certificate(cert)
    assert not result.valid
    assert "mismatch" in result.failures[0]


def test_tampered_instance_rejected():
    cert = _good()
    # drop a fact the membership witness depends on
    cert["claims"][0]["instance"] = cert["claims"][0]["instance"][:1]
    assert not check_certificate(cert).valid


def test_forged_witness_rejected():
    cert = json.loads(json.dumps(certificate([
        claim_membership(
            _query(), _instance(), (1,), witness={X: 1, Y: 9}
        )
    ])))
    result = check_certificate(cert)
    assert not result.valid
    assert "witness" in result.failures[0]


def test_malformed_payload_reported_not_raised():
    cert = _good()
    del cert["claims"][0]["instance"]
    result = check_certificate(cert)
    assert not result.valid
    assert "malformed payload" in result.failures[0]


def test_unsound_rewriting_rejected():
    # Rewriting drops a join atom: strictly more answers than Q.
    query = _query()
    views = ViewSet([
        View("V1", ConjunctiveQuery((X, Y), (Atom("R", (X, Y)),)))
    ])
    unsound = UCQ((
        ConjunctiveQuery((X,), (Atom("V1", (X, Y)),)),
    ))
    cert = json.loads(json.dumps(certificate([
        claim_monotone_rewriting(query, views, unsound)
    ])))
    result = check_certificate(cert)
    assert not result.valid
    assert "unsound" in result.failures[0]


def test_fake_counterexample_rejected():
    # The identity view clearly determines Q; a forged negative
    # certificate must fail the V(I1) ⊆ V(I2) leg or the membership legs.
    query = ConjunctiveQuery((X,), (Atom("R", (X, Y)),))
    views = ViewSet([
        View("V1", ConjunctiveQuery((X, Y), (Atom("R", (X, Y)),)))
    ])
    instance1, instance2 = Instance(), Instance()
    instance1.add_tuple("R", (1, 2))
    instance2.add_tuple("R", (3, 2))
    cert = json.loads(json.dumps(certificate([
        claim_not_determined(query, views, instance1, instance2, (1,))
    ])))
    result = check_certificate(cert)
    assert not result.valid
    assert "⊆" in result.failures[0] or "missing" in result.failures[0]


def test_failure_reports_carry_claim_index():
    good = claim_membership(_query(), _instance(), (1,))
    bad = claim_membership(_query(), _instance(), (5,))
    cert = json.loads(json.dumps(certificate([good, bad])))
    result = check_certificate(cert)
    assert not result.valid
    assert result.claims == 2
    (failure,) = result.failures
    assert failure.startswith("claim #1")
