"""Emit → JSON round trip → independent check, for every claim type."""

import json

from repro.analysis.semantics import boundedness_report
from repro.certify import (
    certificate,
    check_certificate,
    claim_bounded_unfolding,
    claim_hom_witness,
    claim_instance_subset,
    claim_membership,
    claim_monotone_rewriting,
    claim_no_hom,
    claim_not_determined,
    claim_query_output,
    claim_rewriting_sample,
    claim_tree_decomposition,
    claim_ucq_containment,
    claim_view_image,
)
from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.instance import Instance
from repro.core.parser import parse_program
from repro.core.terms import Variable
from repro.core.ucq import UCQ
from repro.views.view import View, ViewSet

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def roundtrip(cert: dict) -> dict:
    """Certificates must survive JSON serialization unchanged."""
    return json.loads(json.dumps(cert))


def check(cert: dict):
    result = check_certificate(roundtrip(cert))
    assert result.valid, result.failures
    return result


def _cycle_query() -> ConjunctiveQuery:
    return ConjunctiveQuery((X,), (Atom("R", (X, Y)), Atom("R", (Y, X))))


def _cycle_instance() -> Instance:
    instance = Instance()
    instance.add_tuple("R", (1, 2))
    instance.add_tuple("R", (2, 1))
    return instance


def test_membership_positive_negative_and_witness():
    query, instance = _cycle_query(), _cycle_instance()
    check(certificate([
        claim_membership(query, instance, (1,)),
        claim_membership(query, instance, (7,), member=False),
        claim_membership(
            query, instance, (1,), witness={X: 1, Y: 2}
        ),
    ]))


def test_query_output_engine_computed():
    query, instance = _cycle_query(), _cycle_instance()
    cert = certificate([claim_query_output(query, instance)])
    result = check(cert)
    assert result.claims == 1


def test_hom_witness_and_no_hom():
    instance = _cycle_instance()
    atoms = (Atom("R", (X, Y)), Atom("R", (Y, X)))
    check(certificate([
        claim_hom_witness(atoms, instance, {X: 1, Y: 2}),
        claim_no_hom((Atom("R", (X, X)),), instance),
        claim_no_hom(atoms, instance, fixed={X: 9}),
    ]))


def test_instance_subset_and_view_image():
    small, big = Instance(), _cycle_instance()
    small.add_tuple("R", (1, 2))
    views = ViewSet([
        View("V1", ConjunctiveQuery((X, Y), (Atom("R", (X, Y)),)))
    ])
    check(certificate([
        claim_instance_subset(small, big),
        claim_view_image(views, big),
    ]))


def test_ucq_containment_searched_and_witnessed():
    tight = ConjunctiveQuery((X,), (Atom("R", (X, X)),))
    loose = ConjunctiveQuery((X,), (Atom("R", (X, Y)),))
    check(certificate([claim_ucq_containment(tight, UCQ((loose,)))]))
    from repro.core.cq import CanonConst

    witness = (0, {X: CanonConst("x"), Y: CanonConst("x")})
    check(certificate([
        claim_ucq_containment(tight, UCQ((loose,)), witnesses=[witness])
    ]))


def test_tree_decomposition():
    facts = Instance()
    facts.add_tuple("R", (1, 2))
    facts.add_tuple("R", (2, 3))
    check(certificate([
        claim_tree_decomposition(
            facts, bags=[[1, 2], [2, 3]], edges=[(0, 1)], width=1
        )
    ]))


def test_not_determined_counterexample():
    # Q(x) :- R(x,y): the projection view V(x) :- R(x,y) determines it,
    # but the *other* projection W(y) :- R(x,y) does not.
    query = ConjunctiveQuery((X,), (Atom("R", (X, Y)),))
    views = ViewSet([
        View("W", ConjunctiveQuery((Y,), (Atom("R", (X, Y)),)))
    ])
    instance1, instance2 = Instance(), Instance()
    instance1.add_tuple("R", (1, 2))
    instance2.add_tuple("R", (3, 2))
    check(certificate([
        claim_not_determined(query, views, instance1, instance2, (1,))
    ]))


def test_monotone_rewriting_and_sample():
    query = _cycle_query()
    views = ViewSet([
        View("V1", ConjunctiveQuery((X, Y), (Atom("R", (X, Y)),)))
    ])
    rewriting = UCQ((
        ConjunctiveQuery((X,), (Atom("V1", (X, Y)), Atom("V1", (Y, X)))),
    ))
    check(certificate([
        claim_monotone_rewriting(query, views, rewriting),
        claim_rewriting_sample(query, views, rewriting, trials=10),
    ]))


def test_rewriting_sample_datalog_query():
    program = parse_program(
        """
        T(x, y) <- E(x, y).
        T(x, y) <- E(x, z), T(z, y).
        """
    )
    query = DatalogQuery(program, "T")
    views = ViewSet([
        View("VE", ConjunctiveQuery((X, Y), (Atom("E", (X, Y)),)))
    ])
    rewriting = DatalogQuery(
        parse_program(
            """
            T(x, y) <- VE(x, y).
            T(x, y) <- VE(x, z), T(z, y).
            """
        ),
        "T",
    )
    check(certificate([
        claim_rewriting_sample(query, views, rewriting, trials=8)
    ]))


def test_bounded_unfolding_from_semantics():
    program = parse_program(
        """
        P(x) <- U(x).
        P(x) <- U(x), P(x).
        Goal(x) <- P(x), R(x, y).
        """
    )
    report = boundedness_report(program, "Goal")
    assert report.bounded and report.ucq is not None
    check(certificate([
        claim_bounded_unfolding(
            program, "Goal", report.vacuous_rules, report.ucq
        )
    ]))


def test_certificate_meta_preserved():
    query, instance = _cycle_query(), _cycle_instance()
    cert = certificate(
        [claim_membership(query, instance, (1,))],
        meta={"job": "demo", "note": "smoke"},
    )
    assert roundtrip(cert)["meta"]["job"] == "demo"
    check(cert)
