"""The naive replay primitives agree with the engine."""

from repro.certify import replay
from repro.certify.serialize import relations_from_instance
from repro.core.atoms import Atom
from repro.core.cq import CanonConst, ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.instance import Instance
from repro.core.parser import parse_program
from repro.core.terms import Variable
from repro.core.ucq import UCQ

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def _chain(n: int) -> Instance:
    instance = Instance()
    for i in range(n):
        instance.add_tuple("R", (i, i + 1))
    return instance


def test_match_finds_all_homomorphisms():
    relations = relations_from_instance(_chain(3))
    atoms = [Atom("R", (X, Y)), Atom("R", (Y, Z))]
    found = {
        (b[X], b[Y], b[Z]) for b in replay.match(atoms, relations)
    }
    assert found == {(0, 1, 2), (1, 2, 3)}


def test_match_respects_fixed_binding_and_constants():
    relations = relations_from_instance(_chain(3))
    atoms = [Atom("R", (X, Y))]
    assert not replay.has_match(atoms, relations, {X: 7})
    assert replay.has_match([Atom("R", (0, Y))], relations)
    assert not replay.has_match([Atom("R", (3, Y))], relations)


def test_check_mapping_reports_problems():
    relations = relations_from_instance(_chain(2))
    atoms = [Atom("R", (X, Y))]
    assert replay.check_mapping(atoms, {X: 0, Y: 1}, relations) is None
    assert "unmapped" in replay.check_mapping(atoms, {X: 0}, relations)
    assert "not a fact" in replay.check_mapping(
        atoms, {X: 0, Y: 2}, relations
    )


def test_naive_fixpoint_matches_engine():
    program = parse_program(
        """
        T(x, y) <- R(x, y).
        T(x, y) <- R(x, z), T(z, y).
        """
    )
    instance = _chain(4)
    query = DatalogQuery(program, "T")
    state = replay.naive_fixpoint(
        program.rules, relations_from_instance(instance)
    )
    assert state["T"] == query.evaluate(instance)


def test_eval_query_all_shapes():
    instance = _chain(3)
    relations = relations_from_instance(instance)
    cq = ConjunctiveQuery((X, Z), (Atom("R", (X, Y)), Atom("R", (Y, Z))))
    assert replay.eval_cq(cq, relations) == cq.evaluate(instance)
    ucq = UCQ((cq, ConjunctiveQuery((X, Y), (Atom("R", (X, Y)),))))
    assert replay.eval_query(ucq, relations) == ucq.evaluate(instance)


def test_holds_repeated_head_variable():
    cq = ConjunctiveQuery((X, X), (Atom("R", (X, Y)),))
    relations = relations_from_instance(_chain(2))
    assert replay.holds(cq, relations, (0, 0))
    assert not replay.holds(cq, relations, (0, 1))
    assert not replay.holds(cq, relations, (0,))


def test_canonical_relations_freeze_variables():
    cq = ConjunctiveQuery((X,), (Atom("R", (X, Y)), Atom("S", (Y, 3))))
    canon = replay.canonical_relations(cq)
    assert canon["R"] == {(CanonConst("x"), CanonConst("y"))}
    assert canon["S"] == {(CanonConst("y"), 3)}
    assert replay.frozen_head(cq) == (CanonConst("x"),)


def test_relations_subset_reports_missing_fact():
    left = {"R": {(1, 2), (3, 4)}}
    right = {"R": {(1, 2)}}
    assert replay.relations_subset(left, {"R": {(1, 2), (3, 4)}}) is None
    problem = replay.relations_subset(left, right)
    assert problem is not None and "R" in problem


def test_closure_violation():
    program = parse_program("T(x, y) <- R(x, y).")
    closed = {"R": {(1, 2)}, "T": {(1, 2)}}
    open_ = {"R": {(1, 2)}, "T": set()}
    assert replay.closure_violation(program.rules, closed) is None
    assert "missing" in replay.closure_violation(program.rules, open_)
