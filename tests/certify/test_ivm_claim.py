"""Schema-3 ``ivm_state`` claims: emission, replay, corruption."""

import json

from repro.certify import (
    certificate,
    check_certificate,
    claim_ivm_state,
)
from repro.core import parse_instance, parse_program
from repro.core.atoms import Fact
from repro.ivm import MaterializedView

PROGRAM = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    Goal(y) <- S(x), Reach(x,y).
    """
)

BASE = parse_instance(
    """
    E('a','b'). E('b','c'). S('a').
    """
)


def _maintained_view():
    view = MaterializedView(PROGRAM, BASE)
    view.apply(inserts=[Fact("E", ("c", "d"))])
    view.apply(retracts=[Fact("E", ("a", "b"))])
    return view


def test_certificate_validates_after_maintenance():
    view = _maintained_view()
    cert = json.loads(json.dumps(view.certificate()))
    result = check_certificate(cert)
    assert result.valid, result.failures
    assert cert["meta"]["subsystem"] == "ivm"
    assert cert["meta"]["rounds"] == 2


def test_claim_shape_is_replayable_standalone():
    view = _maintained_view()
    claim = claim_ivm_state(view.source_program, view.base, view.state)
    assert claim["type"] == "ivm_state"
    result = check_certificate(certificate([claim]))
    assert result.valid, result.failures


def test_stale_fact_in_state_is_rejected():
    view = _maintained_view()
    corrupt = view.state.copy()
    corrupt.add(Fact("Reach", ("z", "z")))  # never derivable
    claim = claim_ivm_state(view.source_program, view.base, corrupt)
    result = check_certificate(certificate([claim]))
    assert not result.valid
    assert "stale" in result.failures[0]


def test_missing_fact_in_state_is_rejected():
    view = _maintained_view()
    corrupt = view.state.copy()
    corrupt.discard(Fact("Reach", ("b", "c")))
    claim = claim_ivm_state(view.source_program, view.base, corrupt)
    result = check_certificate(certificate([claim]))
    assert not result.valid
    assert "missing" in result.failures[0]


def test_tampered_base_is_rejected():
    # shrinking the base changes the fixpoint, so the claim must fail
    view = _maintained_view()
    smaller = view.base.copy()
    smaller.discard(Fact("E", ("b", "c")))
    claim = claim_ivm_state(view.source_program, smaller, view.state)
    result = check_certificate(certificate([claim]))
    assert not result.valid
