"""Schema-2 ``program_equivalence`` claims: emission, replay, corruption."""

from repro.certify import (
    CERT_SCHEMA,
    SUPPORTED_SCHEMAS,
    certificate,
    check_certificate,
    claim_program_equivalence,
)
from repro.core import parse_instance, parse_program

ORIGINAL = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    Goal(y) <- S(x), Reach(x,y).
    """
)


def _claim(optimized=None, **kwargs):
    return claim_program_equivalence(
        ORIGINAL, optimized if optimized is not None else ORIGINAL,
        "Goal", **kwargs
    )


def test_emitted_certificates_use_current_schema():
    cert = certificate([_claim()])
    assert cert["schema"] == CERT_SCHEMA == 3
    result = check_certificate(cert)
    assert result.valid, result.failures
    assert result.claims == 1


def test_older_schema_certificates_still_accepted():
    assert SUPPORTED_SCHEMAS == frozenset({1, 2, 3})
    for older in (1, 2):
        cert = certificate([_claim()])
        cert["schema"] = older
        assert check_certificate(cert).valid


def test_future_schema_rejected_with_supported_list():
    cert = certificate([_claim()])
    cert["schema"] = CERT_SCHEMA + 1
    result = check_certificate(cert)
    assert not result.valid
    assert "(supported: 1, 2, 3)" in result.failures[0]


def test_claim_schema_covers_read_edbs_only():
    claim = _claim()
    assert set(claim["schema"]) == {"E", "S"}
    assert claim["schema"]["E"] == 2


def test_witnesses_are_replayed():
    instance = parse_instance("E(1,2). E(2,3). S(1).")
    from repro.certify.serialize import relations_from_instance

    claim = _claim(witnesses=[relations_from_instance(instance)])
    assert check_certificate(certificate([claim])).valid


def test_inequivalent_program_detected_by_sampling():
    broken = parse_program(
        """
        Reach(x,y) <- E(x,y).
        Goal(y) <- S(x), Reach(x,y).
        """
    )  # lost transitivity
    result = check_certificate(certificate([_claim(broken)]))
    assert not result.valid
    assert "goal relations differ" in result.failures[0]


def test_schema_naming_idb_rejected():
    claim = _claim()
    claim["schema"]["Reach"] = 2
    result = check_certificate(certificate([claim]))
    assert not result.valid
    assert "intensional" in result.failures[0]


def test_schema_omitting_read_edb_rejected():
    claim = _claim()
    del claim["schema"]["S"]
    result = check_certificate(certificate([claim]))
    assert not result.valid
    assert "omits or mis-declares" in result.failures[0]


def test_witness_with_stray_predicate_rejected():
    claim = _claim()
    claim["witnesses"] = [[["Mystery", [["int", 1]]]]]
    result = check_certificate(certificate([claim]))
    assert not result.valid
    assert "non-schema predicate" in result.failures[0]


def test_goal_without_rules_rejected():
    claim = _claim()
    claim["goal"] = "Nope"
    result = check_certificate(certificate([claim]))
    assert not result.valid
    assert "no rules" in result.failures[0]


def test_pass_name_is_optional_metadata():
    claim = _claim(pass_name="magic_sets")
    assert claim["pass"] == "magic_sets"
    assert check_certificate(certificate([claim])).valid
