"""Analysis-driven maintenance strategy selection.

The static plan from :mod:`repro.analysis.maintain` decides, per
stratum, whether :class:`MaterializedView` maintains by counting or by
DRed; insert-only rounds into DRed strata must skip the overdelete
machinery entirely.  These tests pin the strategy override, the new
``maintain_*`` stats counters, the insert-only fast path (including
the already-derived-fact regression) and the certificate's
maintainability claims.
"""

from __future__ import annotations

from repro.core import parse_instance, parse_program
from repro.core.stats import EngineStats
from repro.ivm import MaterializedView

REACH = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    """
)

MIXED = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    Direct(x,y) <- E(x,y).
    Direct(x,y) <- E(x,y), Direct(x,y).
    """
)


def _chain(*pairs):
    return parse_instance(" ".join(f"E('{a}','{b}')." for a, b in pairs))


# ---------------------------------------------------------------------------
# strategy selection
# ---------------------------------------------------------------------------
def test_counting_safe_recursive_stratum_switches_to_counting():
    view = MaterializedView(MIXED, _chain(("a", "b"), ("b", "c")))
    strategies = view.maintenance_strategies()
    assert strategies == {"Direct": "counting", "Reach": "dred"}
    plan = view.maintenance_plan()
    assert plan is not None
    assert plan.plan_of("Direct").counting_safe


def test_counting_maintained_stratum_survives_retractions():
    """Counting on the vacuous-recursive stratum must seed and maintain
    with the same effective rule set — retraction is the case that
    would go negative if the two disagreed."""
    view = MaterializedView(
        MIXED, _chain(("a", "b"), ("b", "c"), ("a", "c"))
    )
    stats = EngineStats()
    view.apply(retracts=[("E", ("a", "c"))], stats=stats)
    assert view.state == view.recompute()
    assert view.query("Direct") == frozenset({("a", "b"), ("b", "c")})
    assert stats.maintain_counting_strata >= 1
    view.apply(inserts=[("E", ("a", "c"))], stats=stats)
    assert view.state == view.recompute()


def test_strategy_counters_accumulate_per_round():
    view = MaterializedView(MIXED, _chain(("a", "b")))
    stats = EngineStats()
    view.apply(inserts=[("E", ("b", "c"))], stats=stats)
    view.apply(retracts=[("E", ("b", "c"))], stats=stats)
    assert stats.maintain_counting_strata >= 2   # Direct, both rounds
    assert stats.maintain_dred_strata >= 2       # Reach, both rounds
    rendered = stats.render()
    assert "maintain: counting strata" in rendered


# ---------------------------------------------------------------------------
# insert-only fast path (the DRed skip)
# ---------------------------------------------------------------------------
def test_insert_only_round_skips_rederivation_machinery():
    view = MaterializedView(REACH, _chain(("a", "b"), ("b", "c")))
    stats = EngineStats()
    report = view.apply(inserts=[("E", ("c", "d"))], stats=stats)
    assert view.state == view.recompute()
    assert report.deleted == 0
    assert report.rederived == 0
    assert stats.ivm_deleted == 0
    assert stats.ivm_rederived == 0
    assert stats.maintain_skipped_rederive == 1


def test_mixed_round_still_runs_the_deletion_phase():
    view = MaterializedView(REACH, _chain(("a", "b"), ("b", "c")))
    stats = EngineStats()
    view.apply(
        inserts=[("E", ("c", "d"))],
        retracts=[("E", ("a", "b"))],
        stats=stats,
    )
    assert view.state == view.recompute()
    assert stats.maintain_skipped_rederive == 0
    assert stats.maintain_dred_strata == 1


def test_reinserting_an_already_derived_fact_is_cheap_and_correct():
    """Regression: adding a base fact that is already derived must not
    cascade through the insert frontier — the state is closed under
    the rules, so its consequences are all present."""
    view = MaterializedView(REACH, _chain(("a", "b"), ("b", "c")))
    # Reach('a','c') is derived; assert it into the base
    stats = EngineStats()
    report = view.apply(inserts=[("Reach", ("a", "c"))], stats=stats)
    assert view.state == view.recompute()
    assert report.inserted == 0 and report.deleted == 0
    assert stats.ivm_rederived == 0
    # and retracting the base assertion keeps the derivation alive
    view.apply(retracts=[("Reach", ("a", "c"))])
    assert view.state == view.recompute()
    assert view.query("Reach") == frozenset(
        {("a", "b"), ("b", "c"), ("a", "c")}
    )


# ---------------------------------------------------------------------------
# prediction + certificate surfaces
# ---------------------------------------------------------------------------
def test_predict_delta_bounds_a_real_round():
    view = MaterializedView(REACH, _chain(("a", "b"), ("b", "c")))
    predicted = view.predict_delta(1)
    assert isinstance(predicted, int) and predicted > 0
    round_ = view.insert([("E", ("c", "d"))])
    measured = sum(len(rows) for rows in round_.plus.values())
    measured += sum(len(rows) for rows in round_.minus.values())
    assert measured <= predicted


def test_certificate_carries_maintainability_claims():
    from repro.certify import check_certificate

    view = MaterializedView(MIXED, _chain(("a", "b")))
    view.insert([("E", ("b", "c"))])
    cert = view.certificate()
    claim = cert["claims"][0]
    assert claim["maintain"]["strategies"] == {
        "Direct": "counting", "Reach": "dred",
    }
    assert claim["maintain"]["counting_safe"] == ["Direct"]
    outcome = check_certificate(cert)
    assert outcome.valid, outcome.failures


def test_tampered_maintainability_claim_fails_the_checker():
    from repro.certify import check_certificate

    view = MaterializedView(MIXED, _chain(("a", "b")))
    cert = view.certificate()
    cert["claims"][0]["maintain"]["strategies"]["Reach"] = "counting"
    outcome = check_certificate(cert)
    assert not outcome.valid
    assert any("maintain" in f for f in outcome.failures)
