"""Unit behaviour of :class:`repro.ivm.MaterializedView`.

The equivalence property (any interleaving ≡ from-scratch fixpoint)
lives in ``test_ivm_equivalence.py``; these tests pin the *mechanism*:
counting on non-recursive strata, DRed overdelete/rederive on
recursive SCCs, base-asserted facts, net-delta cancellation, the
stats counters and the round reports.
"""

from __future__ import annotations

import pytest

from repro.core import parse_instance, parse_program
from repro.core.atoms import Fact
from repro.core.stats import EngineStats
from repro.ivm import MaintenanceRound, MaterializedView

TC = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    Goal(y) <- S(x), Reach(x,y).
    """
)


def _chain(*edges):
    return parse_instance(
        " ".join(f"E('{a}','{b}')." for a, b in edges) + " S('a')."
    )


def test_initial_state_is_the_fixpoint():
    view = MaterializedView(TC, _chain(("a", "b"), ("b", "c")))
    assert view.query("Reach") == frozenset(
        {("a", "b"), ("b", "c"), ("a", "c")}
    )
    assert view.query("Goal") == frozenset({("b",), ("c",)})
    assert view.rounds == 0


def test_insert_extends_closure_without_refixpoint():
    view = MaterializedView(TC, _chain(("a", "b")))
    report = view.insert([Fact("E", ("b", "c"))])
    assert isinstance(report, MaintenanceRound)
    assert report.index == 1
    assert view.query("Reach") == frozenset(
        {("a", "b"), ("b", "c"), ("a", "c")}
    )
    assert view.state == view.recompute()
    # inserted counts base + derived facts, nothing deleted
    assert report.inserted >= 3 and report.deleted == 0


def test_retract_overdeletes_then_rederives():
    # two paths a->c; cutting one must keep Reach(a,c) via rederivation
    view = MaterializedView(
        TC, _chain(("a", "b"), ("b", "c"), ("a", "c"))
    )
    report = view.retract([Fact("E", ("a", "c"))])
    assert ("a", "c") in view.query("Reach")  # still via b
    assert view.state == view.recompute()
    assert report.rederived >= 1


def test_retracting_derived_only_fact_is_a_noop():
    view = MaterializedView(TC, _chain(("a", "b"), ("b", "c")))
    before = view.state.copy()
    report = view.retract([Fact("Reach", ("a", "c"))])  # derived, not base
    assert view.state == before
    assert report.deleted == 0


def test_base_asserted_idb_fact_survives_losing_its_derivation():
    base = _chain(("a", "b"))
    base.add(Fact("Reach", ("q", "r")))  # asserted, never derivable
    view = MaterializedView(TC, base)
    view.retract([Fact("E", ("a", "b"))])
    assert ("q", "r") in view.query("Reach")
    assert view.state == view.recompute()


def test_same_round_retract_and_reinsert_cancels():
    view = MaterializedView(TC, _chain(("a", "b"), ("b", "c")))
    before = view.state.copy()
    report = view.apply(
        inserts=[Fact("E", ("a", "b"))], retracts=[Fact("E", ("a", "b"))]
    )
    # retracts apply before inserts: the edge nets out present
    assert view.state == before
    assert view.state == view.recompute()
    assert report.index == 1


def test_counting_keeps_multiply_derived_goal_alive():
    # Goal(c) holds via S(a) and via S(b); dropping S(a) must keep it
    base = parse_instance(
        "E('a','c'). E('b','c'). S('a'). S('b')."
    )
    view = MaterializedView(TC, base)
    view.retract([Fact("S", ("a",))])
    assert ("c",) in view.query("Goal")
    view.retract([Fact("S", ("b",))])
    assert ("c",) not in view.query("Goal")
    assert view.state == view.recompute()


def test_stats_counters_accumulate():
    stats = EngineStats()
    view = MaterializedView(TC, _chain(("a", "b")))
    view.apply(inserts=[Fact("E", ("b", "c"))], stats=stats)
    view.apply(retracts=[Fact("E", ("a", "b"))], stats=stats)
    assert stats.ivm_rounds == 2
    assert stats.ivm_inserted > 0
    assert stats.ivm_deleted > 0


def test_round_report_as_dict_shape():
    view = MaterializedView(TC, _chain(("a", "b")))
    report = view.insert([Fact("E", ("b", "c"))])
    payload = report.as_dict()
    assert set(payload) == {
        "round", "backend", "inserted", "deleted", "rederived"
    }
    assert payload["round"] == 1


def test_facts_accepted_as_pairs_and_atoms():
    view = MaterializedView(TC, _chain(("a", "b")))
    view.insert([("E", ("b", "c")), Fact("E", ("c", "d"))])
    assert ("a", "d") in view.query("Reach")
    assert view.state == view.recompute()


def test_non_ground_fact_rejected():
    from repro.core import parse_rule

    view = MaterializedView(TC, _chain(("a", "b")))
    open_atom = parse_rule("Goal(y) <- E(x,y).").body[0]
    with pytest.raises(ValueError):
        view.insert([open_atom])


@pytest.mark.parametrize("backend", ["interpreted", "columnar", "auto"])
def test_backends_agree_on_a_mixed_schedule(backend):
    view = MaterializedView(
        TC, _chain(("a", "b"), ("b", "c")), backend=backend
    )
    view.insert([Fact("E", ("c", "d")), Fact("E", ("d", "a"))])
    view.retract([Fact("E", ("b", "c"))])
    view.insert([Fact("E", ("b", "c"))])
    assert view.state == view.recompute()


def test_optimized_view_still_certifies_source_program():
    view = MaterializedView(
        TC, _chain(("a", "b"), ("b", "c")), optimize=True
    )
    view.insert([Fact("E", ("c", "d"))])
    cert = view.certificate()
    from repro.certify import check_certificate

    result = check_certificate(cert)
    assert result.valid, result.failures
    assert cert["meta"]["rounds"] == 1
