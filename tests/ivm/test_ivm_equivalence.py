"""The IVM correctness property, fuzzed.

For random update interleavings (inserts, retracts, mixed rounds,
churn) over random small edge sets, the maintained state must equal
the from-scratch fixpoint after *every* round — across the
interpreted, columnar and auto backends, with and without the
certified optimizer.  This is the Hypothesis twin of the per-round
``ivm_state`` certificate the service emits.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parse_program
from repro.core.atoms import Fact
from repro.core.instance import Instance
from repro.ivm import MaterializedView

PROGRAMS = [
    # linear transitive closure + a counted stratum on top
    parse_program(
        """
        Reach(x,y) <- E(x,y).
        Reach(x,y) <- E(x,z), Reach(z,y).
        Goal(y) <- S(x), Reach(x,y).
        """
    ),
    # nonlinear closure (delta rules fire on both recursive atoms)
    parse_program(
        """
        T(x,y) <- E(x,y).
        T(x,y) <- T(x,z), T(z,y).
        """
    ),
    # two stacked SCCs: the upper one consumes the lower one's deltas
    parse_program(
        """
        A(x,y) <- E(x,y).
        A(x,y) <- E(x,z), A(z,y).
        B(x,y) <- A(x,y), S(x).
        B(x,y) <- B(x,z), A(z,y).
        """
    ),
]

_NODES = list("abcde")

_edge = st.tuples(st.sampled_from(_NODES), st.sampled_from(_NODES))
_fact = st.one_of(
    _edge.map(lambda e: Fact("E", e)),
    st.sampled_from(_NODES).map(lambda n: Fact("S", (n,))),
)

# a round is (inserts, retracts), either possibly empty but not both
_round = st.tuples(
    st.lists(_fact, max_size=3), st.lists(_fact, max_size=3)
).filter(lambda r: r[0] or r[1])

_schedule = st.lists(_round, min_size=1, max_size=6)

_base = st.lists(_edge, max_size=6).map(
    lambda edges: Instance.from_tuples(
        {"E": edges, "S": [(_NODES[0],)]}
    )
)


@pytest.mark.parametrize(
    "backend,optimize",
    [
        ("interpreted", False),
        ("interpreted", True),
        ("columnar", False),
        ("auto", True),
    ],
)
@given(program_index=st.integers(0, len(PROGRAMS) - 1),
       base=_base, schedule=_schedule)
@settings(max_examples=25, deadline=None)
def test_every_interleaving_matches_recompute(
    backend, optimize, program_index, base, schedule
):
    view = MaterializedView(
        PROGRAMS[program_index], base,
        optimize=optimize, backend=backend,
    )
    assert view.state == view.recompute()
    for inserts, retracts in schedule:
        view.apply(inserts=inserts, retracts=retracts)
        oracle = view.recompute()
        assert view.state == oracle, (
            f"divergence after apply(+{inserts}, -{retracts}) on "
            f"program {program_index} [{backend}, optimize={optimize}]:\n"
            f"maintained:\n{view.state.pretty()}\n"
            f"oracle:\n{oracle.pretty()}"
        )


@given(base=_base, schedule=_schedule)
@settings(max_examples=25, deadline=None)
def test_counting_counts_are_consistent_after_any_schedule(base, schedule):
    """White-box: counted facts are present iff count>0 or base-asserted."""
    view = MaterializedView(PROGRAMS[0], base)
    for inserts, retracts in schedule:
        view.apply(inserts=inserts, retracts=retracts)
    for (pred, row), count in view._counts.items():
        assert count >= 0
        present = view.state.has_tuple(pred, row)
        derivable = count > 0 or view.base.has_tuple(pred, row)
        assert present == derivable, (pred, row, count)
