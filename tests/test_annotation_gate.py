"""Annotation gate for the strictly-typed packages.

CI runs ``mypy --strict`` over ``repro.analysis``, ``repro.harness``
and ``repro.certify`` (see pyproject / ci.yml); this test enforces the
load-bearing slice of that contract — every function fully annotated,
no bare built-in generics in signatures — with no mypy dependency, so
a regression is caught locally before it reddens CI.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
STRICT_PACKAGES = ("analysis", "harness", "certify")
BARE_GENERICS = {"dict", "list", "set", "frozenset", "tuple"}


def _strict_files():
    for package in STRICT_PACKAGES:
        yield from sorted((SRC / package).glob("*.py"))


def _unannotated(fn: ast.FunctionDef) -> list[str]:
    args = fn.args
    names = args.posonlyargs + args.args + args.kwonlyargs
    gaps = [
        a.arg
        for a in names
        if a.annotation is None and a.arg not in ("self", "cls")
    ]
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            gaps.append(star.arg)
    return gaps


@pytest.mark.parametrize(
    "path", _strict_files(), ids=lambda p: f"{p.parent.name}/{p.name}"
)
def test_every_function_is_fully_annotated(path):
    tree = ast.parse(path.read_text())
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.returns is None:
            problems.append(f"{node.name}:{node.lineno} missing return type")
        gaps = _unannotated(node)
        if gaps:
            problems.append(
                f"{node.name}:{node.lineno} unannotated args {gaps}"
            )
    assert not problems, f"{path}: {problems}"


@pytest.mark.parametrize(
    "path", _strict_files(), ids=lambda p: f"{p.parent.name}/{p.name}"
)
def test_no_bare_generics_in_signatures(path):
    """``dict`` in a signature must say ``dict[K, V]`` (strict mypy's
    disallow_any_generics); bodies and docstrings are not checked."""
    tree = ast.parse(path.read_text())
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        annotations = [a.annotation for a in node.args.args]
        annotations.append(node.returns)
        for annotation in annotations:
            if annotation is None:
                continue
            for sub in ast.walk(annotation):
                if isinstance(sub, ast.Name) and sub.id in BARE_GENERICS:
                    # a Name directly inside a Subscript value is
                    # parameterized (dict[...]); standalone is bare
                    parent_subscripted = any(
                        isinstance(p, ast.Subscript)
                        and p.value is sub
                        for p in ast.walk(annotation)
                    )
                    if not parent_subscripted:
                        problems.append(
                            f"{node.name}:{node.lineno} bare {sub.id!r}"
                        )
    assert not problems, f"{path}: {problems}"
