"""Tree codes: encode / decode round trips (§3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.atoms import Atom
from repro.core.homomorphism import (
    homomorphically_equivalent,
    instance_maps_into,
)
from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.td.codes import code_of_instance, decode, encode
from repro.td.heuristics import decompose


def test_round_trip_isomorphic():
    inst = parse_instance(
        "R('a','b'). R('b','c'). S('a','c','d'). U('d')."
    )
    code = code_of_instance(inst)
    decoded, _roots = decode(code)
    assert len(decoded) == len(inst)
    assert instance_maps_into(decoded, inst)
    assert instance_maps_into(inst, decoded)


def test_rooted_decode_exposes_tuple():
    inst = parse_instance("R('a','b'). R('b','c').")
    td = decompose(inst, rooted_tuple=("a", "b"))
    code = encode(td, inst)
    decoded, roots = decode(code)
    # the first two root positions decode the rooted pair: they must be
    # connected by an R-fact in the decoding
    assert decoded.has_tuple("R", (roots[0], roots[1]))


def test_width_padding():
    inst = parse_instance("R('a','b').")
    code = code_of_instance(inst, width=5)
    assert code.width == 5
    decoded, roots = decode(code)
    assert len(roots) == 5
    assert len(decoded) == 1


def test_width_too_small_rejected():
    inst = parse_instance("S('a','b','c').")
    td = decompose(inst)
    with pytest.raises(ValueError):
        encode(td, inst, width=2)


def test_repeated_elements_in_atom():
    inst = Instance([Atom("R", ("a", "a"))])
    decoded, _ = decode(code_of_instance(inst))
    (row,) = decoded.tuples("R")
    assert row[0] == row[1]


def test_nullary_facts_survive():
    inst = Instance([Atom("Flag", ()), Atom("U", ("a",))])
    decoded, _ = decode(code_of_instance(inst))
    assert decoded.has_tuple("Flag", ())


def test_code_size_and_outdegree():
    inst = parse_instance("R('a','b'). R('b','c'). R('c','d').")
    code = code_of_instance(inst)
    assert code.size() >= 1
    assert code.max_outdegree() <= code.size()


@given(
    st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10)
)
@settings(max_examples=30, deadline=None)
def test_round_trip_hom_equivalent_random(rows):
    inst = Instance(Atom("R", row) for row in rows)
    if not len(inst):
        return
    decoded, _ = decode(code_of_instance(inst))
    assert homomorphically_equivalent(decoded, inst)
    assert len(decoded) == len(inst)
