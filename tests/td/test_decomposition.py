"""Tree decompositions."""

import pytest

from repro.core.parser import parse_instance
from repro.td.decomposition import (
    DecompositionNode,
    TreeDecomposition,
    decomposition_from_bags,
    single_bag_decomposition,
)


@pytest.fixture
def path_td():
    """A path decomposition of R(a,b), R(b,c), R(c,d)."""
    return decomposition_from_bags(
        {0: [1], 1: [2]},
        0,
        {0: ("a", "b"), 1: ("b", "c"), 2: ("c", "d")},
    )


def test_width_and_treespan(path_td):
    assert path_td.width() == 2
    assert path_td.treespan() == 2  # b and c each in two bags


def test_validity(path_td):
    inst = parse_instance("R('a','b'). R('b','c'). R('c','d').")
    assert path_td.is_valid_for(inst)
    # missing coverage: an atom spanning a and d
    bad = parse_instance("R('a','d').")
    assert not path_td.is_valid_for(bad)


def test_rooted_validity(path_td):
    inst = parse_instance("R('a','b').")
    assert path_td.is_valid_for(inst, rooted_tuple=("a",))
    assert path_td.is_valid_for(inst, rooted_tuple=("a", "b"))
    assert not path_td.is_valid_for(inst, rooted_tuple=("b",))


def test_connectedness_violation():
    # element 'a' appears in two non-adjacent bags
    td = decomposition_from_bags(
        {0: [1], 1: [2]},
        0,
        {0: ("a",), 1: ("b",), 2: ("a",)},
    )
    assert not td.is_valid_for(parse_instance("U('a'). U('b')."))


def test_duplicate_bag_elements_rejected():
    with pytest.raises(ValueError):
        DecompositionNode(("a", "a"))


def test_binarize():
    wide = decomposition_from_bags(
        {0: [1, 2, 3, 4]},
        0,
        {0: ("a",), 1: ("a",), 2: ("a",), 3: ("a",), 4: ("a",)},
    )
    binary = wide.binarized()
    assert all(len(n.children) <= 2 for n in binary.nodes())
    assert binary.width() == wide.width()
    inst = parse_instance("U('a').")
    assert binary.is_valid_for(inst)


def test_frontier_one():
    td = decomposition_from_bags(
        {0: [1]}, 0, {0: ("a", "b"), 1: ("b", "c")}
    )
    assert td.is_frontier_one()
    td2 = decomposition_from_bags(
        {0: [1]}, 0, {0: ("a", "b"), 1: ("a", "b")}
    )
    assert not td2.is_frontier_one()


def test_single_bag():
    td = single_bag_decomposition(("a", "b"))
    assert td.width() == 2 and td.size() == 1
    assert td.is_valid_for(parse_instance("R('a','b')."))
