"""Decomposition construction + the paper's treewidth lemmas."""

import math

from repro.core.approximation import approximation_trees, tree_to_cq
from repro.core.normalization import normalize
from repro.core.parser import parse_cq, parse_instance, parse_program
from repro.determinacy.automata_checker import lemma3_bound
from repro.td.heuristics import (
    decompose,
    decomposition_of_expansion,
    treewidth_exact,
)
from repro.views.view import View, ViewSet


def test_decompose_valid_on_examples():
    for text in (
        "R('a','b'). R('b','c').",
        "E(1,2). E(2,3). E(3,1).",
        "S('a','b','c'). R('c','d'). U('d').",
    ):
        inst = parse_instance(text)
        td = decompose(inst)
        assert td.is_valid_for(inst)


def test_treewidth_exact_known_values():
    path = parse_instance("R(1,2). R(2,3). R(3,4).")
    assert treewidth_exact(path) == 2
    triangle = parse_instance("E(1,2). E(2,3). E(3,1).")
    assert treewidth_exact(triangle) == 3
    assert treewidth_exact(parse_instance("U(1).")) == 1


def test_treewidth_exact_gives_up_on_large():
    inst = parse_instance(
        ". ".join(f"R({i},{i+1})" for i in range(12)) + "."
    )
    assert treewidth_exact(inst, limit=8) is None


def test_heuristic_width_at_least_exact():
    inst = parse_instance("E(1,2). E(2,3). E(3,1). E(3,4).")
    td = decompose(inst)
    assert td.is_valid_for(inst)
    assert td.width() >= treewidth_exact(inst)


def test_expansion_decomposition_properties(reach_query):
    """Lemma 1: normalized MDL expansions have width O(|Q|), l(TD) <= 2."""
    normalized = normalize(reach_query)
    max_rule_vars = normalized.program.max_rule_variables()
    for tree in approximation_trees(normalized, 5):
        td = decomposition_of_expansion(tree)
        cq = tree_to_cq(tree)
        assert td.is_valid_for(cq.canonical_database())
        assert td.width() <= max_rule_vars
        assert td.treespan() <= 2


def test_lemma2_fgdl_preserves_treewidth():
    """FPEval of an FGDL program does not increase treewidth (Lemma 2)."""
    from repro.core.evaluation import fixpoint

    program = parse_program(
        """
        T(x,y) <- R(x,y).
        T(x,y) <- R(x,y), T(y,z).
        """
    )
    inst = parse_instance("R(1,2). R(2,3). R(3,4).")
    before = treewidth_exact(inst)
    after = treewidth_exact(fixpoint(program, inst))
    assert after <= before


def test_lemma3_bound_formula():
    assert lemma3_bound(2, 1) == 2 * (2 ** 2 - 1) / 1
    assert math.isinf(lemma3_bound(3, math.inf))


def test_lemma3_view_image_treewidth():
    """Connected CQ views keep view-image treewidth under the bound."""
    views = ViewSet([
        View("V", parse_cq("V(x,z) <- R(x,y), R(y,z)")),
    ])
    r = views.max_definition_radius()
    inst = parse_instance("R(1,2). R(2,3). R(3,4). R(4,5).")
    k = treewidth_exact(inst)
    image = views.image(inst)
    image_width = treewidth_exact(image)
    assert image_width is not None
    assert image_width <= lemma3_bound(k, r)
