"""The command-line interface."""

import pytest

from repro.cli import load_query, load_views, main


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "q_cq.txt").write_text("Q(x) <- R(x,y), S(y).\n")
    (tmp_path / "q_dl.txt").write_text(
        "# goal: Goal\n"
        "P(x) <- U(x).\n"
        "P(x) <- R(x,y), P(y).\n"
        "Goal(x) <- P(x).\n"
    )
    (tmp_path / "views.txt").write_text(
        "# view: VR\nV(x,y) <- R(x,y).\n"
        "# view: VS\nV(y) <- S(y).\n"
    )
    (tmp_path / "views_lossy.txt").write_text(
        "# view: VR\nV(x) <- R(x,y).\n"
        "# view: VS\nV(y) <- S(y).\n"
    )
    (tmp_path / "views_dl.txt").write_text(
        "# view: VR\nV(x,y) <- R(x,y).\n"
        "# view: VU\nV(x) <- U(x).\n"
    )
    (tmp_path / "db.txt").write_text("R('a','b'). S('b').\n")
    (tmp_path / "view_db.txt").write_text("VR('a','b'). VU('b').\n")
    return tmp_path


def test_load_query_cq_and_datalog(workspace):
    cq = load_query(str(workspace / "q_cq.txt"))
    assert cq.arity == 1
    dl = load_query(str(workspace / "q_dl.txt"))
    assert dl.goal == "Goal"


def test_load_views(workspace):
    views = load_views(str(workspace / "views.txt"))
    assert views.names() == ["VR", "VS"]


def test_decide_yes(workspace, capsys):
    code = main([
        "decide", str(workspace / "q_cq.txt"), str(workspace / "views.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "verdict : yes" in out


def test_decide_no_prints_counterexample(workspace, capsys):
    code = main([
        "decide",
        str(workspace / "q_cq.txt"),
        str(workspace / "views_lossy.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "verdict : no" in out


def test_rewrite_cq(workspace, capsys):
    code = main([
        "rewrite", str(workspace / "q_cq.txt"), str(workspace / "views.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "VR" in out and "VS" in out


def test_rewrite_datalog(workspace, capsys):
    code = main([
        "rewrite",
        str(workspace / "q_dl.txt"),
        str(workspace / "views_dl.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith("# goal:")


def test_rewrite_refuses_lossy(workspace, capsys):
    code = main([
        "rewrite",
        str(workspace / "q_cq.txt"),
        str(workspace / "views_lossy.txt"),
    ])
    assert code == 1
    assert "not rewritable" in capsys.readouterr().err


def test_certain_answers(workspace, capsys):
    code = main([
        "certain",
        str(workspace / "q_dl.txt"),
        str(workspace / "views_dl.txt"),
        str(workspace / "view_db.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "('a',)" in out and "('b',)" in out


def test_eval(workspace, capsys):
    code = main([
        "eval", str(workspace / "q_cq.txt"), str(workspace / "db.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "('a',)" in out


def test_eval_with_stats(workspace, capsys):
    code = main([
        "--stats",
        "eval", str(workspace / "q_dl.txt"), str(workspace / "db.txt"),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "engine stats:" in captured.err
    assert "homomorphism calls" in captured.err
    assert "fixpoint rounds" in captured.err


def test_views_file_without_blocks(workspace, tmp_path):
    empty = tmp_path / "bad.txt"
    empty.write_text("V(x) <- R(x,y).\n")
    with pytest.raises(SystemExit):
        load_views(str(empty))
