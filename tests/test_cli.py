"""The command-line interface."""

import pytest

from repro.cli import load_query, load_views, main


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "q_cq.txt").write_text("Q(x) <- R(x,y), S(y).\n")
    (tmp_path / "q_dl.txt").write_text(
        "# goal: Goal\n"
        "P(x) <- U(x).\n"
        "P(x) <- R(x,y), P(y).\n"
        "Goal(x) <- P(x).\n"
    )
    (tmp_path / "views.txt").write_text(
        "# view: VR\nV(x,y) <- R(x,y).\n"
        "# view: VS\nV(y) <- S(y).\n"
    )
    (tmp_path / "views_lossy.txt").write_text(
        "# view: VR\nV(x) <- R(x,y).\n"
        "# view: VS\nV(y) <- S(y).\n"
    )
    (tmp_path / "views_dl.txt").write_text(
        "# view: VR\nV(x,y) <- R(x,y).\n"
        "# view: VU\nV(x) <- U(x).\n"
    )
    (tmp_path / "db.txt").write_text("R('a','b'). S('b').\n")
    (tmp_path / "view_db.txt").write_text("VR('a','b'). VU('b').\n")
    return tmp_path


def test_load_query_cq_and_datalog(workspace):
    cq = load_query(str(workspace / "q_cq.txt"))
    assert cq.arity == 1
    dl = load_query(str(workspace / "q_dl.txt"))
    assert dl.goal == "Goal"


def test_load_views(workspace):
    views = load_views(str(workspace / "views.txt"))
    assert views.names() == ["VR", "VS"]


def test_decide_yes(workspace, capsys):
    code = main([
        "decide", str(workspace / "q_cq.txt"), str(workspace / "views.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "verdict : yes" in out


def test_decide_no_prints_counterexample(workspace, capsys):
    code = main([
        "decide",
        str(workspace / "q_cq.txt"),
        str(workspace / "views_lossy.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "verdict : no" in out


def test_rewrite_cq(workspace, capsys):
    code = main([
        "rewrite", str(workspace / "q_cq.txt"), str(workspace / "views.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "VR" in out and "VS" in out


def test_rewrite_datalog(workspace, capsys):
    code = main([
        "rewrite",
        str(workspace / "q_dl.txt"),
        str(workspace / "views_dl.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith("# goal:")


def test_rewrite_refuses_lossy(workspace, capsys):
    code = main([
        "rewrite",
        str(workspace / "q_cq.txt"),
        str(workspace / "views_lossy.txt"),
    ])
    assert code == 1
    assert "not rewritable" in capsys.readouterr().err


def test_certain_answers(workspace, capsys):
    code = main([
        "certain",
        str(workspace / "q_dl.txt"),
        str(workspace / "views_dl.txt"),
        str(workspace / "view_db.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "('a',)" in out and "('b',)" in out


def test_eval(workspace, capsys):
    code = main([
        "eval", str(workspace / "q_cq.txt"), str(workspace / "db.txt"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "('a',)" in out


def test_eval_with_stats(workspace, capsys):
    code = main([
        "--stats",
        "eval", str(workspace / "q_dl.txt"), str(workspace / "db.txt"),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "engine stats:" in captured.err
    assert "homomorphism calls" in captured.err
    assert "fixpoint rounds" in captured.err


def test_views_file_without_blocks(workspace, tmp_path):
    empty = tmp_path / "bad.txt"
    empty.write_text("V(x) <- R(x,y).\n")
    with pytest.raises(SystemExit):
        load_views(str(empty))


# ---------------------------------------------------------------------------
# span-aware input errors (decide/rewrite/eval/certain, exit 2)
# ---------------------------------------------------------------------------
def test_decide_syntax_error_reports_position(workspace, tmp_path, capsys):
    bad = tmp_path / "bad_query.txt"
    bad.write_text("Q(x) <- R(x,y).\nS(y) <- T(y,?).\n")
    code = main(["decide", str(bad), str(workspace / "views.txt")])
    err = capsys.readouterr().err
    assert code == 2
    assert "E004" in err
    assert f"{bad}:2:13:" in err  # file coordinates of the bad character
    assert "^" in err             # caret excerpt


def test_eval_broken_instance_reports_position(workspace, tmp_path, capsys):
    bad = tmp_path / "bad_db.txt"
    bad.write_text("R('a','b').\nR('b',.\n")
    code = main(["eval", str(workspace / "q_cq.txt"), str(bad)])
    err = capsys.readouterr().err
    assert code == 2
    assert "E004" in err and f"{bad}:2:" in err


def test_views_error_reports_whole_file_position(workspace, tmp_path, capsys):
    views = tmp_path / "views_bad.txt"
    views.write_text(
        "# view: VR\n"
        "V(x,y) <- R(x,y).\n"
        "# view: VS\n"
        "V(y) <- S(y,\n"
    )
    code = main(["decide", str(workspace / "q_cq.txt"), str(views)])
    err = capsys.readouterr().err
    assert code == 2
    # position is in file coordinates, not block-local: line 4
    assert f"{views}:4:" in err
    assert "^" in err


def test_unsafe_rule_reports_position(workspace, tmp_path, capsys):
    bad = tmp_path / "unsafe.txt"
    bad.write_text("# goal: Q\nQ(x, w) <- R(x, y).\n")
    code = main(["decide", str(bad), str(workspace / "views.txt")])
    err = capsys.readouterr().err
    assert code == 2
    assert "unsafe" in err and f"{bad}:2:" in err


def test_query_without_goal_must_be_single_cq(workspace, tmp_path, capsys):
    bad = tmp_path / "two_rules.txt"
    bad.write_text("Q(x) <- R(x,y).\nP(x) <- R(x,x).\n")
    code = main(["eval", str(bad), str(workspace / "db.txt")])
    err = capsys.readouterr().err
    assert code == 2
    assert "# goal:" in err and f"{bad}:2:" in err


def test_missing_input_file_is_input_error(workspace, capsys):
    code = main([
        "decide", str(workspace / "q_cq.txt"), str(workspace / "ghost.txt"),
    ])
    err = capsys.readouterr().err
    assert code == 2
    assert "cannot read" in err and "ghost.txt" in err


def test_undefined_goal_predicate_rejected(workspace, tmp_path, capsys):
    bad = tmp_path / "bad_goal.txt"
    bad.write_text("# goal: Nope\nQ(x) <- R(x,y).\n")
    code = main(["eval", str(bad), str(workspace / "db.txt")])
    err = capsys.readouterr().err
    assert code == 2
    assert "Nope" in err


# ---------------------------------------------------------------------------
# repro lint
# ---------------------------------------------------------------------------
def test_lint_clean_program_exits_zero(workspace, capsys):
    code = main(["lint", str(workspace / "q_dl.txt")])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 error(s), 0 warning(s)" in out
    assert "fragment MDL" in out


def test_lint_broken_example_exits_one(capsys):
    code = main(["lint", "examples/inputs/broken_lint.txt"])
    out = capsys.readouterr().out
    assert code == 1
    # at least two distinct error codes, each with a line:col position
    assert "E001" in out and "E002" in out
    assert ":7:" in out and ":8:" in out


def test_lint_clean_example_file(capsys):
    code = main(["lint", "examples/inputs/reach_query.txt"])
    capsys.readouterr()
    assert code == 0


def test_lint_warning_exit_code_and_strict(tmp_path, capsys):
    query = tmp_path / "warn.txt"
    query.write_text("# goal: Q\nQ(x) <- E(x, y).\nDead(x) <- E(x, x).\n")
    assert main(["lint", str(query)]) == 2
    capsys.readouterr()
    assert main(["lint", str(query), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "W105" in out or "W106" in out


def test_lint_json_is_machine_parseable(capsys):
    import json

    code = main([
        "lint", "examples/inputs/broken_lint.txt", "--format", "json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["summary"]["errors"] >= 2
    codes = {d["code"] for d in payload["diagnostics"]}
    assert {"E001", "E002"} <= codes
    spanned = [d for d in payload["diagnostics"] if "span" in d]
    assert all(d["span"]["line"] >= 1 for d in spanned)


def test_lint_syntax_error_reports_position(tmp_path, capsys):
    bad = tmp_path / "bad.txt"
    bad.write_text("Q(x <- E(x).\n")
    code = main(["lint", str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "E004" in out and ":1:5:" in out


def test_lint_with_views_checks_schema(workspace, tmp_path, capsys):
    views = tmp_path / "views.txt"
    views.write_text("# view: VR\nV(x) <- R(x).\n")  # R/1 vs query's R/2
    code = main([
        "lint", str(workspace / "q_dl.txt"), "--views", str(views),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "E001" in out


def test_lint_smoke_over_example_inputs(capsys):
    """Every query-shaped example file lints without crashing."""
    from pathlib import Path

    for path in sorted(Path("examples/inputs").glob("*.txt")):
        if "instance" in path.name:
            continue
        code = main(["lint", str(path)])
        capsys.readouterr()
        assert code in (0, 1, 2)
