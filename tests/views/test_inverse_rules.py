"""The inverse-rules algorithm [14]."""

import pytest

from repro.core.datalog import DatalogQuery
from repro.core.instance import Instance
from repro.core.parser import parse_cq, parse_instance, parse_program
from repro.views.inverse_rules import (
    SkolemTerm,
    certain_answers,
    chase_with_inverse_rules,
    inverse_rules,
    inverse_rules_rewriting,
)
from repro.views.view import View, ViewSet

from tests.conftest import random_instance


@pytest.fixture
def split_views():
    """The running example from the appendix: one view with a skolem."""
    return ViewSet([
        View("V", parse_cq("V(x,y,z) <- S(x,y,u), S(u,y,z)")),
    ])


def test_inverse_rules_shape(split_views):
    rules = inverse_rules(split_views)
    assert len(rules) == 2
    specs = {r.head_spec for r in rules}
    # u is skolemized in both atoms, with the same function
    skolems = {
        payload
        for spec in specs
        for kind, payload in spec
        if kind == "skolem"
    }
    assert len(skolems) == 1


def test_chase_produces_skolems(split_views):
    image = Instance()
    image.add_tuple("V", ("a", "b", "c"))
    chased = chase_with_inverse_rules(split_views, image)
    assert len(chased.tuples("S")) == 2
    nulls = {
        v for row in chased.tuples("S") for v in row
        if isinstance(v, SkolemTerm)
    }
    assert len(nulls) == 1  # same witness in both atoms


def test_non_cq_views_rejected():
    dl = DatalogQuery(parse_program(
        "T(x,y) <- R(x,y). T(x,y) <- R(x,z), T(z,y)."
    ), "T", "VT")
    views = ViewSet([View("VT", dl)])
    with pytest.raises(ValueError):
        inverse_rules(views)


def test_certain_answers_are_certain(split_views):
    """Certain answers hold in every preimage: check vs the definition
    on instances whose image we compute."""
    q = DatalogQuery(parse_program("G(x,z) <- S(x,y,u), S(u,y,z)."), "G")
    inst = parse_instance("S('a','b','m'). S('m','b','c').")
    image = split_views.image(inst)
    answers = certain_answers(q, split_views, image)
    assert ("a", "c") in answers
    # and certain answers are sound: they hold in the actual instance
    assert answers <= q.evaluate(inst)


def test_certain_answers_filter_skolems():
    views = ViewSet([View("VP", parse_cq("V(x) <- R(x,y)"))])
    q = DatalogQuery(parse_program("G(x,y) <- R(x,y)."), "G")
    image = Instance()
    image.add_tuple("VP", ("a",))
    assert certain_answers(q, views, image) == set()  # y is a null


@pytest.fixture
def ex1():
    query = DatalogQuery(parse_program(
        """
        GoalQ() <- U1(x), W1(x).
        W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
        W1(x) <- U2(x).
        """
    ), "GoalQ")
    views = ViewSet([
        View("V0", parse_cq("V(x,w) <- T(x,y,z), B(z,w), B(y,w)")),
        View("V1", parse_cq("V(x) <- U1(x)")),
        View("V2", parse_cq("V(x) <- U2(x)")),
    ])
    return query, views


def test_rewriting_matches_chase_semantics(ex1):
    """The de-functionalized program == the skolem chase, on random
    view instances (not just view images)."""
    query, views = ex1
    rewriting = inverse_rules_rewriting(query, views)
    for seed in range(10):
        j = random_instance(seed, {"V0": 2, "V1": 1, "V2": 1})
        expected = certain_answers(query, views, j)
        got = rewriting.evaluate(j)
        assert got == expected


def test_rewriting_is_exact_on_images(ex1):
    query, views = ex1
    rewriting = inverse_rules_rewriting(query, views)
    for seed in range(10):
        inst = random_instance(seed, {"T": 3, "B": 2, "U1": 1, "U2": 1})
        assert rewriting.evaluate(views.image(inst)) == query.evaluate(inst)


def test_frontier_guarded_output():
    """Guard completion makes the program FGDL for an FGDL query."""
    query = DatalogQuery(parse_program(
        """
        T2(x,y) <- R(x,y).
        T2(x,y) <- R(x,y), T2(y,z).
        Goal() <- T2(x,y), U(x).
        """
    ), "Goal")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(x) <- U(x)")),
    ])
    plain = inverse_rules_rewriting(query, views, frontier_guard=False)
    guarded = inverse_rules_rewriting(query, views, frontier_guard=True)
    assert guarded.program.is_frontier_guarded()
    for seed in range(8):
        j = random_instance(seed, {"VR": 2, "VU": 1})
        assert plain.evaluate(j) == guarded.evaluate(j)


def test_empty_rewriting_when_answer_invisible():
    """A query whose answers can never be skolem-free."""
    query = DatalogQuery(parse_program("G(y) <- R(x,y)."), "G")
    views = ViewSet([View("VP", parse_cq("V(x) <- R(x,y)"))])
    rewriting = inverse_rules_rewriting(query, views)
    j = Instance()
    j.add_tuple("VP", ("a",))
    assert rewriting.evaluate(j) == set()
