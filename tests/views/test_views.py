"""Views and view images."""

import pytest

from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_instance, parse_program, parse_ucq
from repro.views.view import View, ViewSet, atomic_views


@pytest.fixture
def mixed_views():
    recursive = DatalogQuery(parse_program(
        """
        T(x,y) <- R(x,y).
        T(x,y) <- R(x,y), T(y,z).
        """
    ), "T", "VT")
    return ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_ucq("V(x) <- U(x). V(x) <- W(x).")),
        View("VT", recursive),
    ])


def test_view_arity_and_fragment(mixed_views):
    assert mixed_views["VR"].arity == 2
    assert mixed_views["VR"].fragment() == "CQ"
    assert mixed_views["VU"].fragment() == "UCQ"
    assert mixed_views["VT"].fragment() == "FGDL"


def test_duplicate_names_rejected():
    v = View("V", parse_cq("V(x) <- U(x)"))
    with pytest.raises(ValueError):
        ViewSet([v, v])


def test_view_schema_and_base(mixed_views):
    schema = mixed_views.view_schema()
    assert schema.arity("VR") == 2 and schema.arity("VU") == 1
    assert mixed_views.base_predicates() == {"R", "U", "W"}


def test_image(mixed_views):
    inst = parse_instance("R('a','b'). R('b','c'). U('a'). W('z').")
    image = mixed_views.image(inst)
    assert image.tuples("VR") == frozenset({("a", "b"), ("b", "c")})
    assert image.tuples("VU") == frozenset({("a",), ("z",)})
    assert ("a", "b") in image.tuples("VT")


def test_image_of_empty_is_empty(mixed_views):
    from repro.core.instance import Instance

    assert len(mixed_views.image(Instance())) == 0


def test_fragment_ranking(mixed_views):
    assert mixed_views.fragment() == "FGDL"
    cq_only = ViewSet([View("V", parse_cq("V(x) <- U(x)"))])
    assert cq_only.fragment() == "CQ"


def test_combined_program_cq_and_ucq(mixed_views):
    program, _ = mixed_views.combined_program()
    # view predicates appear as heads
    assert {"VR", "VU", "VT"} <= program.idb_predicates()
    # evaluating the combined program reproduces the image
    inst = parse_instance("R('a','b'). U('a').")
    from repro.core.evaluation import fixpoint

    full = fixpoint(program, inst)
    image = mixed_views.image(inst)
    for name in mixed_views.names():
        assert full.tuples(name) == image.tuples(name)


def test_combined_program_recursive_goal():
    """A view whose goal predicate feeds its own recursion."""
    recursive = DatalogQuery(parse_program(
        """
        G(x,y) <- R(x,y).
        G(x,y) <- R(x,z), G(z,y).
        """
    ), "G", "VG")
    views = ViewSet([View("VG", recursive)])
    program, _ = views.combined_program()
    inst = parse_instance("R(1,2). R(2,3).")
    from repro.core.evaluation import fixpoint

    assert fixpoint(program, inst).tuples("VG") == views.image(
        inst
    ).tuples("VG")


def test_atomic_views():
    views = atomic_views({"R": 2, "U": 1})
    names = {v.name for v in views}
    assert names == {"VR", "VU"}
    inst = parse_instance("R('a','b'). U('c').")
    image = ViewSet(views).image(inst)
    assert image.tuples("VR") == frozenset({("a", "b")})
    assert image.tuples("VU") == frozenset({("c",)})


def test_max_definition_radius():
    views = ViewSet([
        View("V1", parse_cq("V(x) <- R(x,y), R(y,z)")),
        View("V2", parse_cq("V(x) <- U(x)")),
    ])
    assert views.max_definition_radius() == 1
