"""Disconnected-view splitting (proof of Thm 2)."""

import pytest

from repro.core.parser import parse_cq, parse_instance
from repro.views.split import reconstruct_image, split_disconnected_views
from repro.views.view import View, ViewSet

from tests.conftest import random_instance


@pytest.fixture
def disconnected():
    return ViewSet([
        View("V", parse_cq("V(x,y) <- Q1(x,u), Q2(y,w)")),
        View("VC", parse_cq("V(x) <- Q1(x,u)")),  # already connected
    ])


def test_split_produces_free_variable_connected_views(disconnected):
    """Each part is 'free-variable-connected' (the paper's term): its
    head variables live in a single connected component of the body,
    the rest being ∃-closed guards."""
    import networkx as nx

    from repro.core.gaifman import gaifman_graph
    from repro.core.cq import CanonConst

    new_views, plan = split_disconnected_views(disconnected)
    assert len(new_views) == 3  # V·0, V·1, VC
    for view in new_views:
        cq = view.definition
        if not cq.head_vars:
            continue
        graph = gaifman_graph(cq.canonical_database())
        components = list(nx.connected_components(graph))
        frozen_heads = {CanonConst(v.name) for v in cq.head_vars}
        assert any(frozen_heads <= comp for comp in components)
    assert [name for name, _ in plan["V"]] == ["V·0", "V·1"]
    assert plan["VC"] == [("VC", (0,))]


def test_parts_are_projections_of_original(disconnected):
    """Each part's rows are a projection of the original view's rows."""
    new_views, plan = split_disconnected_views(disconnected)
    for seed in range(8):
        inst = random_instance(seed, {"Q1": 2, "Q2": 2})
        original_rows = disconnected.image(inst).tuples("V")
        split_image = new_views.image(inst)
        for part_name, positions in plan["V"]:
            expected = {
                tuple(row[p] for p in positions)
                for row in original_rows
            }
            assert split_image.tuples(part_name) == frozenset(expected)


def test_reconstruct_image_round_trip(disconnected):
    new_views, plan = split_disconnected_views(disconnected)
    for seed in range(10):
        inst = random_instance(seed, {"Q1": 2, "Q2": 2})
        original_image = disconnected.image(inst)
        rebuilt = reconstruct_image(
            new_views.image(inst), plan, disconnected
        )
        assert rebuilt == original_image


def test_boolean_component_becomes_guard():
    views = ViewSet([
        View("V", parse_cq("V(x) <- Q1(x,u), Flag(f)")),
    ])
    new_views, plan = split_disconnected_views(views)
    # two components, but only one carries the head variable; the
    # other (Flag) has no head vars and appears as a guard part
    part_names = [name for name, _ in plan["V"]]
    assert len(part_names) == 2
    inst = parse_instance("Q1('a','b'). Flag('z').")
    rebuilt = reconstruct_image(new_views.image(inst), plan, views)
    assert rebuilt == views.image(inst)
    # without the flag, the view (and all parts) are empty
    inst2 = parse_instance("Q1('a','b').")
    assert len(new_views.image(inst2)) == 0
    assert len(views.image(inst2)) == 0


def test_non_cq_views_pass_through():
    from repro.core.datalog import DatalogQuery
    from repro.core.parser import parse_program

    recursive = DatalogQuery(parse_program(
        "T(x,y) <- R(x,y). T(x,y) <- R(x,z), T(z,y)."
    ), "T", "VT")
    views = ViewSet([View("VT", recursive)])
    new_views, plan = split_disconnected_views(views)
    assert new_views.names() == ["VT"]
    assert plan["VT"] == [("VT", (0, 1))]
