"""End-to-end integration: the README story through the public API."""

import pytest

import repro
from repro import (
    DatalogQuery,
    NotRewritableError,
    Verdict,
    View,
    ViewSet,
    certain_answers,
    check_rewriting,
    datalog_rewriting,
    decide_monotonic_determinacy,
    parse_cq,
    parse_instance,
    parse_program,
    rewrite_forward_backward,
)


def test_version_and_all_exports():
    assert repro.__version__
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_story():
    query = parse_cq("Q(e) <- Emp(e, d), Mgr(d, b)")
    views = ViewSet([
        View("VEmp", parse_cq("V(e,d) <- Emp(e,d)")),
        View("VMgr", parse_cq("V(d,b) <- Mgr(d,b)")),
    ])
    result = decide_monotonic_determinacy(query, views)
    assert result.verdict is Verdict.YES
    rewriting = rewrite_forward_backward(query, views)
    db = parse_instance(
        "Emp('ada','eng'). Emp('bob','ops'). Mgr('eng','carol')."
    )
    assert rewriting.evaluate(views.image(db)) == {("ada",)}

    lossy = ViewSet([
        View("VEmp", parse_cq("V(e) <- Emp(e,d)")),
        View("VMgr", parse_cq("V(b) <- Mgr(d,b)")),
    ])
    assert decide_monotonic_determinacy(query, lossy).verdict is Verdict.NO
    with pytest.raises(NotRewritableError):
        rewrite_forward_backward(query, lossy)


def test_recursive_story():
    query = DatalogQuery(parse_program(
        """
        Reach(x) <- Hub(x).
        Reach(y) <- Reach(x), Flight(x,y).
        GoalReach(x) <- Reach(x).
        """
    ), "GoalReach")
    views = ViewSet([
        View("VHub", parse_cq("V(x) <- Hub(x)")),
        View("VLeg", parse_cq("V(x,y) <- Flight(x,y)")),
    ])
    result = decide_monotonic_determinacy(query, views, approx_depth=4)
    assert result.verdict is not Verdict.NO
    rewriting = datalog_rewriting(query, views)
    assert check_rewriting(query, views, rewriting, trials=25) is None

    db = parse_instance(
        "Hub('FRA'). Flight('FRA','VIE'). Flight('VIE','WAW')."
    )
    image = views.image(db)
    answers = certain_answers(query, views, image)
    assert answers == {("FRA",), ("VIE",), ("WAW",)}


def test_counterexample_story():
    """NO answers come with minimizable counterexamples."""
    from repro.determinacy import minimize_failing_test
    from repro.determinacy.tests import test_succeeds as succeeds

    query = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    lossy = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VS", parse_cq("V(x) <- S(x)")),
        # VU missing: U is invisible
    ])
    result = decide_monotonic_determinacy(query, lossy, approx_depth=3)
    assert result.verdict is Verdict.NO
    minimized = minimize_failing_test(result.counterexample, query, lossy)
    assert not succeeds(minimized, query)
    assert len(minimized.test_instance) <= len(
        result.counterexample.test_instance
    )


def test_automata_story():
    """Forward/backward mappings compose with the rewriting harness."""
    from repro import approximations_automaton, backward_query
    from repro.core.schema import Schema

    query = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- P(x), S(x).
        """
    ), "Goal")
    nta = approximations_automaton(query)
    assert nta.witness() is not None
    identity = ViewSet([
        View("R", parse_cq("V(x,y) <- R(x,y)")),
        View("U", parse_cq("V(x) <- U(x)")),
        View("S", parse_cq("V(x) <- S(x)")),
    ])
    rewriting = backward_query(nta, Schema({"R": 2, "U": 1, "S": 1}))
    assert check_rewriting(query, identity, rewriting, trials=20) is None


def test_rpq_story():
    from repro.rpq import rpq_query, rpq_views
    from repro.rpq.query import graph_instance
    from repro.determinacy import check_tests

    query = rpq_query("a b", "Q")
    graph = graph_instance([(1, "a", 2), (2, "b", 3)])
    assert query.evaluate(graph) == {(1, 3)}
    views = rpq_views({"Va": "a", "Vb": "b"})
    result = check_tests(query.to_datalog(), views, approx_depth=3)
    assert result.verdict is not Verdict.NO
