"""The forward mapping (Prop. 3)."""

import pytest

from repro.automata.forward import (
    approximations_automaton,
    fold_repeated_idb_args,
    required_width,
    standard_code_of_expansion,
)
from repro.core.approximation import approximation_trees, approximations
from repro.core.cq import cq_from_instance
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_program
from repro.td.codes import decode

from tests.conftest import random_instance


def test_standard_codes_accepted(reach_query):
    nta = approximations_automaton(reach_query)
    for tree in approximation_trees(reach_query, 5):
        code = standard_code_of_expansion(tree, nta.width)
        assert nta.accepts(code)


def test_witness_decodes_to_approximation(reach_query):
    nta = approximations_automaton(reach_query)
    witness = nta.witness()
    decoded, _ = decode(witness)
    witness_cq = cq_from_instance(decoded)
    certificates = {
        # compare as Boolean patterns (decoded heads are not marked)
        cq_from_instance(a.canonical_database()).certificate()
        for a in approximations(reach_query, 6)
    }
    assert witness_cq.certificate() in certificates


def test_accepted_trees_match_approximations(reach_query):
    """Every accepted tree up to size 4 decodes to some approximation."""
    nta = approximations_automaton(reach_query)
    certificates = {
        cq_from_instance(a.canonical_database()).certificate()
        for a in approximations(reach_query, 8)
    }
    count = 0
    for code in nta.accepted_trees(4):
        decoded, _ = decode(code)
        assert cq_from_instance(decoded).certificate() in certificates
        count += 1
    assert count > 0


def test_width_parameter(reach_query):
    k = required_width(reach_query)
    bigger = approximations_automaton(reach_query, width=k + 1)
    assert bigger.width == k + 1
    assert bigger.witness() is not None
    with pytest.raises(ValueError):
        approximations_automaton(reach_query, width=k - 1)


def test_constants_rejected():
    q = DatalogQuery(parse_program("P(x) <- R(x,'a')."), "P")
    with pytest.raises(ValueError):
        approximations_automaton(q)


def test_fold_repeated_idb_args_semantics():
    """Folding preserves evaluation."""
    q = DatalogQuery(parse_program(
        """
        T(x,y) <- R(x,y).
        T(x,y) <- R(x,z), T(z,y).
        Goal() <- T(x,x), U(x).
        """
    ), "Goal")
    folded = fold_repeated_idb_args(q)
    # the folded program has no repeated-variable IDB atoms
    idb = folded.program.idb_predicates()
    for rule in folded.program.rules:
        for atom in rule.body:
            if atom.pred in idb:
                assert len(set(atom.args)) == len(atom.args)
    for seed in range(10):
        inst = random_instance(seed, {"R": 2, "U": 1})
        assert folded.evaluate(inst) == q.evaluate(inst)


def test_automaton_with_folding_finds_diagonal_expansions():
    """Expansions through T(x,x) are captured after folding."""
    q = DatalogQuery(parse_program(
        """
        T(x,y) <- R(x,y).
        Goal() <- T(x,x), U(x).
        """
    ), "Goal")
    nta = approximations_automaton(q)
    witness = nta.witness()
    assert witness is not None
    decoded, _ = decode(witness)
    # decoded contains a self-loop R(e, e) and U(e)
    (row,) = decoded.tuples("R")
    assert row[0] == row[1]
    assert decoded.has_tuple("U", (row[0],))


def test_binary_goal_states(reach_query):
    nta = approximations_automaton(reach_query)
    assert all(state[0] in {"Goal", "P"} for state in nta.states())
