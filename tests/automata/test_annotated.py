"""Jointly-annotated terms (Prop. 12)."""

import pytest

from repro.automata.annotated import (
    find_jointly_annotated_term,
    is_jointly_annotated_term,
)
from repro.automata.backward import backward_query
from repro.automata.forward import approximations_automaton
from repro.core.datalog import DatalogQuery
from repro.core.instance import Instance
from repro.core.parser import parse_instance, parse_program
from repro.core.schema import Schema

from tests.conftest import random_instance


@pytest.fixture(scope="module")
def setting():
    q = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    nta = approximations_automaton(q)
    back = backward_query(nta, Schema({"R": 2, "S": 1, "U": 1}))
    return q, nta, back


def test_term_exists_on_positive_instance(setting):
    _q, nta, _back = setting
    inst = parse_instance("R('a','b'). U('b'). S('a').")
    term = find_jointly_annotated_term(nta, inst)
    assert term is not None
    code, assignment = term
    assert is_jointly_annotated_term(code, assignment, nta, inst)


def test_no_term_on_negative_instance(setting):
    _q, nta, _back = setting
    inst = parse_instance("R('a','b'). U('b').")  # no S
    assert find_jointly_annotated_term(nta, inst) is None


@pytest.mark.parametrize("seed", range(8))
def test_prop12_equivalence(setting, seed):
    """Term exists ⟺ the backward query holds (Prop. 12)."""
    _q, nta, back = setting
    inst = random_instance(
        seed, {"R": 2, "S": 1, "U": 1}, max_elements=3, max_facts=4
    )
    term = find_jointly_annotated_term(nta, inst)
    assert (term is not None) == back.boolean(inst)


def test_checker_rejects_bad_assignment(setting):
    _q, nta, _back = setting
    inst = parse_instance("R('a','b'). U('b'). S('a').")
    code, assignment = find_jointly_annotated_term(nta, inst)
    # corrupt one node's tuple
    some_node = next(iter(code.root.nodes()))
    bad = dict(assignment)
    bad[id(some_node)] = tuple("zz" for _ in bad[id(some_node)])
    assert not is_jointly_annotated_term(code, bad, nta, inst)


def test_empty_instance(setting):
    _q, nta, _back = setting
    assert find_jointly_annotated_term(nta, Instance()) is None
