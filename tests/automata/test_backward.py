"""The backward mapping (Prop. 7): NTA → Datalog."""

import pytest

from repro.automata.backward import backward_query
from repro.automata.forward import approximations_automaton
from repro.automata.nta import NTA
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_program
from repro.core.schema import Schema

from tests.conftest import random_instance


def _round_trip_query(text: str, goal: str, schema: dict) -> tuple:
    q = DatalogQuery(parse_program(text), goal)
    nta = approximations_automaton(q)
    back = backward_query(nta, Schema(schema))
    return q, back


@pytest.mark.parametrize("seed", range(15))
def test_backward_of_forward_reachability(seed):
    """With identity views, backward(forward(Q)) ≡ Q (Prop. 7 sanity)."""
    q, back = _round_trip_query(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """,
        "Goal",
        {"R": 2, "S": 1, "U": 1},
    )
    inst = random_instance(seed, {"R": 2, "S": 1, "U": 1})
    assert back.boolean(inst) == q.boolean(inst)


@pytest.mark.parametrize("seed", range(10))
def test_backward_of_forward_branching(seed):
    q, back = _round_trip_query(
        """
        B(x) <- L(x).
        B(x) <- E(x,y), E(x,z), B(y), B(z).
        Goal() <- M(x), B(x).
        """,
        "Goal",
        {"E": 2, "L": 1, "M": 1},
    )
    inst = random_instance(seed, {"E": 2, "L": 1, "M": 1}, max_elements=4)
    assert back.boolean(inst) == q.boolean(inst)


def test_backward_of_empty_automaton():
    nta = NTA([], set(), width=2)
    back = backward_query(nta, Schema({"R": 2}))
    inst = random_instance(0, {"R": 2})
    assert not back.boolean(inst)


def test_backward_program_is_safe_datalog():
    q, back = _round_trip_query(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- P(x).
        """,
        "Goal",
        {"R": 2, "U": 1},
    )
    # every rule is safe (constructor would have raised otherwise) and
    # the Adom predicate is populated from all schema positions
    adom_rules = [
        r for r in back.program.rules if r.head.pred.startswith("Adom")
    ]
    assert len(adom_rules) == 3  # R has 2 positions, U has 1


def test_backward_mdl_round_trip():
    """Thm 1's MDL refinement: an MDL forward automaton backward-maps
    to an MDL rewriting."""
    from repro.automata.backward import backward_query_mdl
    from repro.core.parser import parse_cq
    from repro.rewriting.verification import check_rewriting
    from repro.views.view import View, ViewSet

    q = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    nta = approximations_automaton(q)
    rewriting = backward_query_mdl(nta, Schema({"R": 2, "S": 1, "U": 1}))
    assert rewriting.program.is_monadic()
    identity = ViewSet([
        View("R", parse_cq("V(x,y) <- R(x,y)")),
        View("U", parse_cq("V(x) <- U(x)")),
        View("S", parse_cq("V(x) <- S(x)")),
    ])
    assert check_rewriting(q, identity, rewriting, trials=25) is None


def test_backward_mdl_rejects_wide_frontiers():
    from repro.automata.backward import backward_query_mdl

    q = DatalogQuery(parse_program(
        "T(x,y) <- R(x,y). T(x,y) <- R(x,z), T(z,y). Goal() <- T(x,x)."
    ), "Goal")
    nta = approximations_automaton(q)
    with pytest.raises(ValueError):
        backward_query_mdl(nta, Schema({"R": 2}))


def test_atomic_view_pipeline():
    """Forward → project-to-views → backward: the exact Thm 1 pipeline
    for atomic views."""
    from repro.automata.forward import view_image_automaton_atomic
    from repro.core.parser import parse_cq
    from repro.rewriting.verification import check_rewriting
    from repro.views.view import View, ViewSet

    q = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(x) <- U(x)")),
        View("VS", parse_cq("V(x) <- S(x)")),
    ])
    nta = view_image_automaton_atomic(approximations_automaton(q), views)
    rewriting = backward_query(nta, Schema({"VR": 2, "VU": 1, "VS": 1}))
    assert check_rewriting(q, views, rewriting, trials=25) is None


def test_atomic_view_pipeline_rejects_non_atomic():
    from repro.automata.forward import view_image_automaton_atomic
    from repro.core.parser import parse_cq
    from repro.views.view import View, ViewSet

    q = DatalogQuery(parse_program("P(x) <- R(x,y)."), "P")
    projection = ViewSet([View("VP", parse_cq("V(x) <- R(x,y)"))])
    with pytest.raises(ValueError):
        view_image_automaton_atomic(
            approximations_automaton(q), projection
        )
