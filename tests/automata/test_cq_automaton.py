"""The CQ-match symbolic automaton vs direct evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.cq_automaton import CQMatchDTA, UCQMatchDTA
from repro.automata.nta import run_symbolic
from repro.core.atoms import Atom
from repro.core.instance import Instance
from repro.core.parser import parse_cq, parse_instance, parse_ucq
from repro.td.codes import code_of_instance

QUERIES = [
    parse_cq("Q() <- R(x,y)"),
    parse_cq("Q() <- R(x,x)"),
    parse_cq("Q() <- R(x,y), R(y,z)"),
    parse_cq("Q() <- R(x,y), R(y,x)"),
    parse_cq("Q() <- R(x,y), R(x,z), U(y), U(z)"),
    parse_cq("Q() <- R(x,y), U(x), U(y)"),
]


def _agree(cq, inst: Instance, width=None) -> bool:
    code = code_of_instance(inst, width)
    dta = CQMatchDTA(cq, code.width)
    return dta.is_final(run_symbolic(dta, code)) == cq.boolean(inst)


def test_simple_cases():
    inst = parse_instance("R('a','b'). R('b','c'). U('b').")
    for cq in QUERIES:
        assert _agree(cq, inst)


def test_match_spanning_bags():
    """A long path needs assignments surviving across bags."""
    inst = parse_instance(
        "R(1,2). R(2,3). R(3,4). R(4,5). U(1). U(5)."
    )
    long_path = parse_cq("Q() <- R(a,b), R(b,c), R(c,d), R(d,e)")
    assert _agree(long_path, inst)
    too_long = parse_cq(
        "Q() <- R(a,b), R(b,c), R(c,d), R(d,e), R(e,f)"
    )
    assert _agree(too_long, inst)


def test_requires_boolean():
    with pytest.raises(ValueError):
        CQMatchDTA(parse_cq("Q(x) <- R(x,y)"), 2)


def test_requires_constant_free():
    with pytest.raises(ValueError):
        CQMatchDTA(parse_cq("Q() <- R(x,'a')"), 2)


def test_ucq_automaton():
    ucq = parse_ucq(
        """
        Q() <- R(x,x).
        Q() <- U(x), R(x,y).
        """
    )
    inst1 = parse_instance("R('a','a').")
    inst2 = parse_instance("U('a'). R('a','b').")
    inst3 = parse_instance("R('a','b').")
    for inst, expected in ((inst1, True), (inst2, True), (inst3, False)):
        code = code_of_instance(inst)
        dta = UCQMatchDTA(ucq, code.width)
        assert dta.is_final(run_symbolic(dta, code)) == expected


@given(
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8),
    st.lists(st.integers(0, 3), max_size=3),
)
@settings(max_examples=50, deadline=None)
def test_agreement_on_random_instances(edges, marks):
    inst = Instance(Atom("R", row) for row in edges)
    for m in marks:
        inst.add_tuple("U", (m,))
    if not len(inst):
        return
    for cq in QUERIES:
        assert _agree(cq, inst)


@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_agreement_with_padded_width(edges):
    """Extra (dummy) width never changes the verdict."""
    inst = Instance(Atom("R", row) for row in edges)
    cq = parse_cq("Q() <- R(x,y), R(y,z)")
    assert _agree(cq, inst)
    assert _agree(cq, inst, width=5)
