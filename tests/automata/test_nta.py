"""Tree automata core operations."""

from repro.automata.nta import NTA, Transition
from repro.td.codes import CodeNode, TreeCode

# A toy alphabet: leaf symbol A, internal symbol B with one child
LEAF_A = (frozenset({("A", ())}), ())
LEAF_C = (frozenset({("C", ())}), ())
EMAP = frozenset({(0, 0)})
UNARY_B = (frozenset({("B", ())}), (EMAP,))


def _chain_nta(accept_parity: int) -> NTA:
    """Accepts B-chains over an A-leaf whose length has given parity."""
    transitions = [
        Transition((), LEAF_A, ("p", 0)),
        Transition((("p", 0),), UNARY_B, ("p", 1)),
        Transition((("p", 1),), UNARY_B, ("p", 0)),
    ]
    return NTA(transitions, {("p", accept_parity)}, width=1)


def _chain_code(length: int) -> TreeCode:
    node = CodeNode(LEAF_A[0], ())
    for _ in range(length):
        node = CodeNode(UNARY_B[0], ((EMAP, node),))
    return TreeCode(node, 1)


def test_membership():
    even = _chain_nta(0)
    assert even.accepts(_chain_code(0))
    assert not even.accepts(_chain_code(1))
    assert even.accepts(_chain_code(4))


def test_width_mismatch_rejects():
    even = _chain_nta(0)
    assert not even.accepts(TreeCode(CodeNode(LEAF_A[0], ()), 2))


def test_witness_and_emptiness():
    odd = _chain_nta(1)
    witness = odd.witness()
    assert witness is not None
    assert odd.accepts(witness)
    empty = NTA([Transition((), LEAF_A, "q")], {"unreachable"}, width=1)
    assert empty.is_empty()


def test_product_intersects():
    even = _chain_nta(0)
    odd = _chain_nta(1)
    both = even.product(odd)
    assert both.is_empty()
    same = even.product(even)
    assert same.accepts(_chain_code(2))
    assert not same.accepts(_chain_code(3))


def test_union():
    even = _chain_nta(0)
    odd = _chain_nta(1)
    union = even.union(odd)
    assert union.accepts(_chain_code(2))
    assert union.accepts(_chain_code(3))


def test_project_erases_marks():
    even = _chain_nta(0)
    projected = even.project({"B"})  # erase A marks
    bare_leaf = CodeNode(frozenset(), ())
    code = TreeCode(
        CodeNode(UNARY_B[0], ((EMAP, CodeNode(UNARY_B[0], ((EMAP, bare_leaf),))),)) ,
        1,
    )
    assert projected.accepts(code)


def test_trim_removes_useless():
    transitions = [
        Transition((), LEAF_A, "good"),
        Transition((), LEAF_C, "dead-end"),  # never co-reachable
        Transition(("missing",), UNARY_B, "good"),  # never inhabited
    ]
    nta = NTA(transitions, {"good"}, width=1)
    trimmed = nta.trim()
    assert trimmed.size() == 1
    assert trimmed.accepts(_chain_code(0))


def test_accepted_trees_enumeration():
    even = _chain_nta(0)
    trees = list(even.accepted_trees(5))
    # sizes 1, 3, 5 => chains of length 0, 2, 4
    assert len(trees) == 3
    assert all(even.accepts(t) for t in trees)


def test_states_and_symbols():
    even = _chain_nta(0)
    assert ("p", 0) in even.states()
    assert LEAF_A in even.symbols()
