"""The diagnostic vocabulary: codes, severities, rendering."""

from repro.analysis.diagnostics import CODES, Diagnostic, Severity, make
from repro.core.parser import Span


def test_registry_codes_are_wellformed():
    for code, (severity, _title) in CODES.items():
        assert code[0] in "EWI"
        assert code[1:].isdigit()
        assert isinstance(severity, Severity)
        if code.startswith("E"):
            assert severity is Severity.ERROR
        elif code.startswith("W"):
            assert severity is Severity.WARNING
        else:
            assert severity is Severity.INFO


def test_severity_ordering():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO


def test_make_uses_registry_severity():
    diagnostic = make("E001", "boom", Span(3, 7))
    assert diagnostic.severity is Severity.ERROR
    assert diagnostic.span == Span(3, 7)


def test_render_with_and_without_span():
    with_span = make("W104", "cross product", Span(2, 5))
    assert with_span.render("query.txt") == (
        "query.txt:2:5: W104 [warning] cross product"
    )
    without = make("E005", "no rules")
    assert without.render() == "<input>: E005 [error] no rules"


def test_as_dict_roundtrips_span():
    diagnostic = make("E001", "boom", Span(1, 2, 1, 9), rule_index=4)
    payload = diagnostic.as_dict()
    assert payload["code"] == "E001"
    assert payload["severity"] == "error"
    assert payload["span"] == {
        "line": 1, "col": 2, "end_line": 1, "end_col": 9,
    }
    assert payload["rule"] == 4


def test_render_derived_from_for_synthesized_rules():
    diagnostic = make(
        "W104", "cross product", derived_from=Span(9, 2)
    )
    rendered = diagnostic.render("q.txt")
    assert "derived from rule at" in rendered
    assert "9:2" in rendered
    # a direct span wins: derived_from is supporting info only
    direct = make(
        "W104", "cross product", span=Span(1, 1), derived_from=Span(9, 2)
    )
    assert "derived from" not in direct.render("q.txt")


def test_as_dict_includes_derived_from():
    diagnostic = make("I207", "magic", derived_from=Span(4, 1, 4, 30))
    payload = diagnostic.as_dict()
    assert payload["derived_from"] == {
        "line": 4, "col": 1, "end_line": 4, "end_col": 30,
    }
    assert "derived_from" not in make("I207", "magic").as_dict()


def test_sort_key_orders_by_position_then_severity():
    early = make("W104", "later severity first?", Span(1, 1))
    late = make("E001", "error further down", Span(5, 1))
    spanless = make("I201", "fragment info")
    ordered = sorted([spanless, late, early], key=Diagnostic.sort_key)
    assert ordered[0] is early
    assert ordered[1] is late
    assert ordered[2] is spanless
