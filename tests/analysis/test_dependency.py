"""Dependency graph, SCC condensation, pruning, fragment reports."""

import pytest

from repro.analysis.dependency import (
    DependencyGraph,
    evaluation_strata,
    fragment_report,
    prune_unreachable,
    rule_body_components,
)
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_program, parse_rule

TC = parse_program(
    """
    T(x, y) <- R(x, y).
    T(x, y) <- R(x, z), T(z, y).
    Goal(x) <- T(x, x).
    Dead(x) <- U(x).
    """
)


def test_idb_edb_split():
    graph = DependencyGraph(TC)
    assert graph.idb == {"T", "Goal", "Dead"}
    assert graph.edb == {"R", "U"}


def test_sccs_in_dependency_order():
    strata = evaluation_strata(TC)
    order = [sorted(s.predicates) for s in strata]
    # T must come before Goal; singletons for everything else
    assert order.index(["T"]) < order.index(["Goal"])
    by_pred = {next(iter(s.predicates)): s for s in strata}
    assert by_pred["T"].recursive and by_pred["T"].linear
    assert not by_pred["Goal"].recursive
    assert not by_pred["Dead"].recursive


def test_nonlinear_scc_detected():
    program = parse_program(
        "T(x, y) <- R(x, y). T(x, y) <- T(x, z), T(z, y)."
    )
    (scc,) = [s for s in evaluation_strata(program) if s.recursive]
    assert not scc.linear


def test_mutual_recursion_is_one_scc():
    program = parse_program(
        """
        Even(x) <- Zero(x).
        Even(x) <- S(y, x), Odd(y).
        Odd(x) <- S(y, x), Even(y).
        """
    )
    graph = DependencyGraph(program)
    scc = graph.scc_of("Even")
    assert scc.predicates == {"Even", "Odd"}
    assert scc.recursive
    assert graph.recursive_predicates() == {"Even", "Odd"}


def test_reachable_and_unreachable():
    graph = DependencyGraph(TC)
    assert graph.reachable_from("Goal") == {"Goal", "T"}
    assert graph.unreachable_rule_indices("Goal") == [3]
    assert graph.unused_predicates("Goal") == {"Dead"}


def test_prune_unreachable_drops_dead_rules():
    query = DatalogQuery(TC, "Goal")
    pruned = prune_unreachable(query)
    assert len(pruned.program.rules) == 3
    assert "Dead" not in pruned.program.idb_predicates()
    # already-minimal queries come back unchanged (same object)
    assert prune_unreachable(pruned) is pruned


def test_prune_keeps_goal_rules_for_unreachable_goalless_idb():
    query = DatalogQuery(TC, "Dead")
    pruned = prune_unreachable(query)
    assert {r.head.pred for r in pruned.program.rules} == {"Dead"}


def test_rule_body_components():
    connected = parse_rule("P(x) <- R(x, y), S(y, z).")
    assert len(rule_body_components(connected)) == 1
    cartesian = parse_rule("P(x) <- R(x, y), S(z, w).")
    assert len(rule_body_components(cartesian)) == 2


def test_fragment_report_mdl():
    program = parse_program(
        "P(x) <- U(x). P(x) <- R(x, y), P(y). Goal(x) <- P(x)."
    )
    report = fragment_report(program)
    assert report.label == "MDL"
    assert report.monadic and report.frontier_guarded and report.recursive
    assert report.explanations() == []


def test_fragment_report_explains_violations():
    report = fragment_report(TC)
    assert report.label == "Datalog"
    assert not report.monadic
    reasons = report.explanations()
    assert any("MDL IDBs must be unary" in r for r in reasons)
    assert any("frontier-guarded" in r for r in reasons)
    payload = report.as_dict()
    assert payload["label"] == "Datalog"
    assert payload["explanations"] == reasons


def test_fragment_report_nonrecursive():
    program = parse_program("Goal(x) <- R(x, y), U(y).")
    report = fragment_report(program)
    assert report.label == "nonrecursive"
    assert not report.recursive


def test_scc_of_unknown_predicate():
    with pytest.raises(KeyError):
        DependencyGraph(TC).scc_of("Nope")


def test_prune_never_drops_view_only_goal():
    # Regression: a goal defined only via views is not an IDB head of
    # the analyzed program.  Pruning used to treat it as depending on
    # nothing and silently dropped every rule; it must keep the whole
    # program instead.
    graph = DependencyGraph(TC)
    pruned = graph.prune_unreachable("ViewOnlyGoal")
    assert pruned is TC
    assert len(pruned.rules) == len(TC.rules)


def test_goal_directed_program_keeps_view_only_goal():
    from repro.core.evaluation import fixpoint, goal_directed_program
    from repro.core.instance import Instance

    kept = goal_directed_program(TC, "ViewOnlyGoal")
    assert kept is TC

    # End to end: evaluating under the un-prunable goal still computes
    # the program's fixpoint rather than returning the input unchanged.
    instance = Instance()
    instance.add_tuple("R", (1, 2))
    instance.add_tuple("R", (2, 3))
    state = fixpoint(kept, instance)
    assert (1, 3) in state.tuples("T")


def test_prune_unreachable_still_prunes_dead_rules():
    query = DatalogQuery(TC, "Goal")
    pruned = prune_unreachable(query)
    heads = {rule.head.pred for rule in pruned.program.rules}
    assert heads == {"T", "Goal"}
