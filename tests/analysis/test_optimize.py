"""The certified optimizer: pass-by-pass units and the full pipeline."""

import pytest

from repro.analysis.optimize import (
    DEFAULT_PIPELINE,
    OPTIMIZE_RULE_LIMIT,
    PASSES,
    _atom_cost,
    dead_body_atoms,
    equivalence_witnesses,
    inline_candidates,
    join_cost_model,
    magic_opportunities,
    optimize_program,
    optimized_query_program,
    reorder_joins,
    set_join_cost_model,
    syntactic_fixpoint_program,
)
from repro.core.atoms import Atom
from repro.core.terms import Variable
from repro.certify import check_certificate
from repro.core import parse_instance, parse_program
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.evaluation import fixpoint, goal_directed_program
from repro.core.stats import EngineStats

REACH = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    Goal(y) <- S(x), Reach(x,y).
    Dead(x) <- Z(x).
    """
)


def chain(n: int, source: int) -> "str":
    facts = [f"E({i},{i + 1})." for i in range(n)]
    facts.append(f"S({source}).")
    return " ".join(facts)


# ---------------------------------------------------------------------------
# detectors
# ---------------------------------------------------------------------------
def test_magic_opportunities_found_on_bound_recursion():
    found = magic_opportunities(REACH, "Goal")
    assert "Reach" in found
    assert "bf" in found["Reach"]


def test_magic_opportunities_empty_without_binding():
    program = parse_program(
        """
        Reach(x,y) <- E(x,y).
        Reach(x,y) <- E(x,z), Reach(z,y).
        Goal(x,y) <- Reach(x,y).
        """
    )
    assert magic_opportunities(program, "Goal") == {}


def test_inline_candidates_single_use_nonrecursive():
    program = parse_program(
        """
        Helper(x) <- T(x).
        Goal(x) <- Helper(x), U(x).
        """
    )
    assert inline_candidates(program, "Goal") == ("Helper",)


def test_inline_candidates_excludes_recursive_and_multi_use():
    program = parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Twice(x) <- U(x).
        Goal(x) <- P(x), Twice(x).
        Goal(x) <- Twice(x), U(x).
        """
    )
    assert inline_candidates(program, "Goal") == ()


def test_dead_body_atoms_flags_duplicate_atom():
    program = parse_program("Goal(x) <- T(x), T(x).")
    found = dead_body_atoms(program)
    assert len(found) == 2  # each copy is individually droppable
    assert all(atom.pred == "T" for _, _, atom in found)
    assert dead_body_atoms(parse_program("Goal(x) <- T(x), U(x).")) == ()


# ---------------------------------------------------------------------------
# individual passes (through the public pipeline)
# ---------------------------------------------------------------------------
def test_dead_code_drops_unreachable_rule():
    result = optimize_program(REACH, "Goal", ("dead_code",))
    assert result.changed
    preds = {rule.head.pred for rule in result.optimized.rules}
    assert "Dead" not in preds
    assert any(r.action == "drop-rule" for r in result.records)


def test_dead_code_drops_redundant_atom():
    program = parse_program("Goal(x) <- T(x), T(x).")
    result = optimize_program(program, "Goal", ("dead_code",))
    (rule,) = result.optimized.rules
    assert len(rule.body) == 1


def test_specialize_propagates_fact_predicates():
    program = parse_program(
        """
        Color('red').
        Color('blue').
        Goal(x) <- Node(x, c), Color(c).
        """
    )
    result = optimize_program(program, "Goal", ("specialize",))
    assert result.changed
    goal_rules = [
        r for r in result.optimized.rules if r.head.pred == "Goal"
    ]
    assert len(goal_rules) == 2  # one per color
    assert all(
        all(atom.pred != "Color" for atom in rule.body)
        for rule in goal_rules
    )


def test_inline_substitutes_single_use_definition():
    program = parse_program(
        """
        Helper(x) <- T(x), U(x).
        Goal(x) <- Helper(x), W(x).
        """
    )
    result = optimize_program(program, "Goal", ("inline",))
    assert result.changed
    (rule,) = result.optimized.rules
    assert rule.head.pred == "Goal"
    assert {atom.pred for atom in rule.body} == {"T", "U", "W"}


def test_magic_sets_structure_and_equivalence():
    result = optimize_program(REACH, "Goal", ("dead_code", "magic_sets"))
    preds = {rule.head.pred for rule in result.optimized.rules}
    assert "Goal" in preds  # goal keeps its name
    assert any(p.startswith("magic_") for p in preds)
    instance = parse_instance(chain(20, 17))
    before = DatalogQuery(REACH, "Goal").evaluate(instance)
    after = set(
        fixpoint(result.optimized, instance).tuples("Goal")
    )
    assert before == after == {(18,), (19,), (20,)}


def test_magic_sets_reduces_hom_calls_on_bound_goal():
    instance = parse_instance(chain(40, 37))
    optimized = optimized_query_program(REACH, "Goal")
    base_stats, opt_stats = EngineStats(), EngineStats()
    fixpoint(
        goal_directed_program(REACH, "Goal"), instance, stats=base_stats
    )
    fixpoint(optimized, instance, stats=opt_stats)
    assert opt_stats.hom_calls < base_stats.hom_calls


def test_magic_sets_noop_without_opportunity():
    program = parse_program(
        """
        Reach(x,y) <- E(x,y).
        Reach(x,y) <- E(x,z), Reach(z,y).
        Goal(x,y) <- Reach(x,y).
        """
    )
    result = optimize_program(program, "Goal", ("magic_sets",))
    assert not result.changed


def test_join_order_moves_selective_atom_first():
    program = parse_program("Goal(y) <- E(x,y), S(x).")
    instance = parse_instance(chain(30, 2))
    result = optimize_program(
        program, "Goal", ("join_order",), instance=instance
    )
    (rule,) = result.optimized.rules
    assert rule.body[0].pred == "S"  # 1 row beats 30 rows
    assert set(fixpoint(result.optimized, instance).tuples("Goal")) == {
        (3,)
    }


def test_reorder_joins_preserves_every_relation():
    instance = parse_instance(chain(15, 3))
    plain = fixpoint(REACH, instance)
    reordered = fixpoint(reorder_joins(REACH, instance), instance)
    assert plain == reordered


def test_syntactic_fixpoint_program_drops_subsumed():
    program = parse_program(
        """
        P(x) <- U(x).
        P(x) <- U(x), R(x,y).
        """
    )
    assert len(syntactic_fixpoint_program(program).rules) == 1


# ---------------------------------------------------------------------------
# pipeline plumbing
# ---------------------------------------------------------------------------
def test_default_pipeline_matches_registry():
    assert DEFAULT_PIPELINE == tuple(PASSES)
    assert set(DEFAULT_PIPELINE) == {
        "dead_code", "specialize", "inline", "magic_sets", "join_order"
    }


def test_unknown_pass_name_rejected():
    with pytest.raises(ValueError, match="unknown pass"):
        optimize_program(REACH, "Goal", ("nope",))


def test_non_idb_goal_rejected():
    with pytest.raises(ValueError, match="goal"):
        optimize_program(REACH, "E")


def test_result_diff_and_as_dict():
    result = optimize_program(REACH, "Goal")
    removed, added = result.diff()
    assert removed and added
    payload = result.as_dict()
    assert payload["goal"] == "Goal"
    assert payload["changed"] is True
    assert payload["rules_before"] == len(REACH.rules)
    assert [stage["name"] for stage in payload["passes"]] == list(
        DEFAULT_PIPELINE
    )
    assert all("action" in r for s in payload["passes"] for r in s["records"])


def test_provenance_tracks_synthesized_rules():
    from repro.core.parser import Span

    spans = [Span(i + 1, 1) for i in range(len(REACH.rules))]
    result = optimize_program(REACH, "Goal", spans=spans)
    assert len(result.provenance) == len(result.optimized.rules)
    # magic rules are synthesized: no direct span, but derived_from set
    synthesized = [
        prov for prov in result.provenance if prov.span is None
    ]
    assert synthesized
    assert all(p.derived_from is not None for p in synthesized)


def test_transform_records_render_mentions_pass():
    result = optimize_program(REACH, "Goal", ("dead_code",))
    assert all(
        record.render().startswith("[dead_code]")
        for record in result.records
    )


def test_optimized_query_program_is_cached():
    first = optimized_query_program(REACH, "Goal")
    second = optimized_query_program(REACH, "Goal")
    assert first is second


def test_equivalence_witnesses_cover_edbs_only():
    witnesses = equivalence_witnesses(REACH)
    assert witnesses
    idb = REACH.idb_predicates()
    for witness in witnesses:
        assert not (set(witness) & idb)


def test_rule_limit_is_sane():
    assert OPTIMIZE_RULE_LIMIT >= 50


# ---------------------------------------------------------------------------
# certification
# ---------------------------------------------------------------------------
def test_certified_pipeline_emits_valid_certificate():
    result = optimize_program(REACH, "Goal", certify=True)
    assert result.certificate is not None
    outcome = check_certificate(result.certificate)
    assert outcome.valid, outcome.failures
    claims = result.certificate["claims"]
    assert all(c["type"] == "program_equivalence" for c in claims)
    # one claim per pass that changed the program
    changed = [s for s in result.stages if s.changed]
    assert len(claims) == len(changed)


def test_uncertified_pipeline_has_no_certificate():
    assert optimize_program(REACH, "Goal").certificate is None


def test_certificate_catches_wrong_optimized_program():
    from repro.certify import certificate, claim_program_equivalence

    broken = DatalogProgram([
        Rule(rule.head, rule.body)
        for rule in REACH.rules
        if rule.head.pred != "Goal"
    ] + [parse_program("Goal(y) <- S(y).").rules[0]])
    claim = claim_program_equivalence(REACH, broken, "Goal")
    outcome = check_certificate(certificate([claim]))
    assert not outcome.valid


# ---------------------------------------------------------------------------
# join-cost models (the certified model vs the legacy heuristic)
# ---------------------------------------------------------------------------
def test_join_cost_model_defaults_to_certified_model():
    assert join_cost_model() == "model"


def test_set_join_cost_model_round_trips_and_rejects_unknown():
    previous = set_join_cost_model("heuristic")
    try:
        assert previous == "model"
        assert join_cost_model() == "heuristic"
        with pytest.raises(ValueError, match="unknown join cost model"):
            set_join_cost_model("vibes")
        assert join_cost_model() == "heuristic"  # unchanged on error
    finally:
        set_join_cost_model("model")


def test_atom_cost_counts_repeated_variables_as_selective():
    """Regression: ``R(z,z)`` filters — it must not cost like a full
    scan of a binary relation (the pre-fix estimator charged every
    unbound *occurrence*, not every distinct unbound variable)."""
    z, w = Variable("z"), Variable("w")
    sizes = {"R": 10}
    self_join = _atom_cost(Atom("R", (z, z)), set(), sizes, 16)
    full_scan = _atom_cost(Atom("R", (z, w)), set(), sizes, 16)
    assert self_join < full_scan
    # one free slot + one selective slot: 10 * 4 / 4
    assert self_join == pytest.approx(10.0)


def test_atom_cost_counts_constants_as_selective():
    z = Variable("z")
    sizes = {"R": 10}
    constant = _atom_cost(Atom("R", (z, 7)), set(), sizes, 16)
    free = _atom_cost(Atom("R", (z, Variable("w"))), set(), sizes, 16)
    assert constant < free
    assert constant == pytest.approx(10.0)


def test_heuristic_reorder_prefers_self_join_over_wider_scan():
    """End-to-end regression for the fix: with equal cardinalities the
    heuristic must now start from the filtering ``R(z,z)`` atom."""
    program = parse_program("Goal(x) <- S(x,y), R(z,z).")
    instance = parse_instance(
        " ".join(f"S({i},{i}). R({i},{i})." for i in range(5))
    )
    previous = set_join_cost_model("heuristic")
    try:
        (rule,) = reorder_joins(program, instance).rules
    finally:
        set_join_cost_model(previous)
    assert rule.body[0].pred == "R"
    assert rule.body[0].args[0] == rule.body[0].args[1]


def test_both_cost_models_reorder_to_the_same_fixpoint():
    instance = parse_instance(chain(12, 4))
    expected = fixpoint(REACH, instance)
    for model in ("heuristic", "model"):
        previous = set_join_cost_model(model)
        try:
            reordered = reorder_joins(REACH, instance)
        finally:
            set_join_cost_model(previous)
        assert fixpoint(reordered, instance) == expected
