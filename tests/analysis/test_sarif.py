"""SARIF 2.1.0 rendering: structure, levels, and provenance links."""

import json

from repro.analysis import analyze_query, sarif_report
from repro.analysis.diagnostics import CODES, Severity, make
from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION, _LEVELS
from repro.core import parse_program
from repro.core.parser import Span


def _single_run(report):
    assert report["$schema"] == SARIF_SCHEMA
    assert report["version"] == SARIF_VERSION
    (run,) = report["runs"]
    return run


def test_report_structure_and_rule_registry():
    report = sarif_report([], path="query.txt")
    run = _single_run(report)
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rules = driver["rules"]
    assert [r["id"] for r in rules] == sorted(CODES)
    for rule in rules:
        severity, title = CODES[rule["id"]]
        assert rule["shortDescription"]["text"] == title
        assert rule["defaultConfiguration"]["level"] == _LEVELS[severity]
    assert run["artifacts"] == [{"location": {"uri": "query.txt"}}]
    assert run["results"] == []


def test_levels_cover_every_severity():
    assert set(_LEVELS) == set(Severity)
    assert _LEVELS[Severity.INFO] == "note"  # SARIF has no "info" level


def test_result_region_is_one_based_span():
    diagnostic = make("W104", "cross product", Span(2, 5, 2, 17))
    report = sarif_report([diagnostic], path="q.txt")
    (result,) = _single_run(report)["results"]
    assert result["ruleId"] == "W104"
    assert result["level"] == "warning"
    assert result["message"]["text"] == "cross product"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region == {
        "startLine": 2, "startColumn": 5, "endLine": 2, "endColumn": 17,
    }
    assert result["ruleIndex"] == sorted(CODES).index("W104")


def test_spanless_result_locates_at_artifact():
    report = sarif_report([make("E005", "no rules")], path="q.txt")
    (result,) = _single_run(report)["results"]
    physical = result["locations"][0]["physicalLocation"]
    assert physical["artifactLocation"]["uri"] == "q.txt"
    assert "region" not in physical


def test_derived_from_becomes_related_location():
    diagnostic = make(
        "W104", "cross product", derived_from=Span(7, 3, 7, 40)
    )
    report = sarif_report([diagnostic], path="q.txt")
    (result,) = _single_run(report)["results"]
    (related,) = result["relatedLocations"]
    assert related["message"]["text"] == "synthesized from the rule here"
    region = related["physicalLocation"]["region"]
    assert region["startLine"] == 7


def test_rule_index_in_program_goes_to_properties():
    diagnostic = make("W101", "unused", Span(1, 1), rule_index=3)
    report = sarif_report([diagnostic])
    (result,) = _single_run(report)["results"]
    assert result["properties"] == {"ruleIndexInProgram": 3}


def test_report_from_real_analysis_is_json_serializable():
    program = parse_program(
        """
        Reach(x,y) <- E(x,y).
        Reach(x,y) <- E(x,z), Reach(z,y).
        Orphan(x) <- T(x).
        """
    )
    diagnostics = analyze_query(program, goal="Reach").diagnostics
    report = sarif_report(diagnostics, path="reach.txt")
    text = json.dumps(report, sort_keys=True)
    parsed = json.loads(text)
    run = _single_run(parsed)
    assert {r["ruleId"] for r in run["results"]} >= {"W105", "W106"}
    levels = {r["level"] for r in run["results"]}
    assert levels <= {"error", "warning", "note"}
