"""The analyzer pipeline: passes, reports, source spans, waivers."""

import pytest

from repro.analysis import (
    ProgramAnalysisError,
    ProgramAnalyzer,
    Severity,
    analyze_query,
    make,
)
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_program, parse_program_source
from repro.views.view import View, ViewSet


def _codes(report):
    return sorted(report.codes())


def test_clean_program_reports_only_infos():
    program = parse_program(
        "P(x) <- U(x). P(x) <- R(x, y), P(y). Goal(x) <- P(x)."
    )
    report = analyze_query(DatalogQuery(program, "Goal"))
    assert not report.has_errors()
    assert report.warnings() == []
    assert report.max_severity() is Severity.INFO
    assert "I201" in report.codes()


def test_arity_conflict_flagged_with_spans():
    source = parse_program_source(
        "P(x) <- R(x, y).\nQ(x) <- R(x).\n"
    )
    report = analyze_query(source.program(), source=source)
    (error,) = report.errors()
    assert error.code == "E001"
    assert "R" in error.message
    assert error.span.line == 2


def test_undefined_goal_is_e003_not_an_exception():
    program = parse_program("P(x) <- U(x).")
    report = analyze_query(program, goal="Missing")
    assert "E003" in report.codes()


def test_empty_program_is_e005():
    report = analyze_query(parse_program(""))
    assert "E005" in report.codes()


def test_unsafe_source_rule_is_e002_with_position():
    source = parse_program_source("P(x) <- U(x).\nQ(x, w) <- U(x).\n")
    report = analyze_query(source.program(), source=source)
    (error,) = report.errors()
    assert error.code == "E002"
    assert error.span.line == 2


def test_duplicate_rule_w101_suppresses_w102():
    program = parse_program("P(x) <- U(x). P(y) <- U(y).")
    report = analyze_query(program, goal="P")
    assert "W101" in report.codes()
    assert "W102" not in report.codes()


def test_subsumed_rule_w102():
    program = parse_program(
        "P(x) <- U(x). P(x) <- U(x), R(x, y). Goal(x) <- P(x)."
    )
    report = analyze_query(DatalogQuery(program, "Goal"))
    flagged = [d for d in report.diagnostics if d.code == "W102"]
    assert [d.rule_index for d in flagged] == [1]


def test_constant_in_head_w103_skips_facts():
    program = parse_program("P('a'). Q('b') <- U(x).")
    report = analyze_query(program)
    flagged = [d for d in report.diagnostics if d.code == "W103"]
    assert [d.rule_index for d in flagged] == [1]


def test_cartesian_body_w104():
    program = parse_program("P(x) <- R(x, y), S(z, w).")
    report = analyze_query(program, goal="P")
    assert "W104" in report.codes()


def test_unreachable_and_unused_w105_w106():
    program = parse_program(
        "Goal(x) <- R(x, y). Dead(x) <- U(x)."
    )
    report = analyze_query(DatalogQuery(program, "Goal"))
    assert {"W105", "W106"} <= report.codes()


def test_view_arity_conflict_and_shadowing():
    from repro.core.parser import parse_cq

    program = parse_program("Goal(x) <- R(x, y).")
    views = ViewSet(
        [
            View("V", parse_cq("V(x) <- R(x).")),
            View("Goal", parse_cq("W(x) <- R(x, y).")),
        ]
    )
    report = analyze_query(
        DatalogQuery(program, "Goal"), views=views
    )
    assert "E001" in report.codes()  # R used with arity 1 and 2
    assert "W108" in report.codes()  # view named Goal shadows the IDB


def test_report_render_text_and_dict():
    program = parse_program("Goal(x) <- R(x, y). Dead(x) <- U(x).")
    report = analyze_query(DatalogQuery(program, "Goal"))
    text = report.render_text("q.txt")
    assert text.splitlines()[-1].startswith("0 error(s),")
    payload = report.as_dict()
    assert set(payload) == {"diagnostics", "summary", "fragment", "sccs"}
    assert payload["summary"]["warnings"] == len(report.warnings())


def test_custom_pass_registration():
    analyzer = ProgramAnalyzer()
    analyzer.register(lambda ctx: [make("I201", "custom pass ran")])
    report = analyzer.analyze(parse_program("P(x) <- U(x)."))
    assert any(d.message == "custom pass ran" for d in report.diagnostics)


def test_checker_rejects_inconsistent_program():
    from repro.core.parser import parse_cq
    from repro.determinacy.checker import decide_monotonic_determinacy

    program = parse_program("Goal(x) <- R(x, y), R(x).")
    views = ViewSet([View("V", parse_cq("V(x, y) <- R(x, y)."))])
    with pytest.raises(ProgramAnalysisError) as exc:
        decide_monotonic_determinacy(DatalogQuery(program, "Goal"), views)
    assert "E001" in str(exc.value)
    assert exc.value.report.has_errors()
