"""Property safety net: every optimizer pass preserves the goal relation.

Random safe programs meet random instances; the original and the
optimized program must agree on the goal relation under all four
evaluation routes — naive, semi-naive, SCC-stratified, and the
goal-directed :meth:`DatalogQuery.evaluate` path.  This is the dynamic
counterpart of the ``program_equivalence`` certificates: the checker
replays specific witness instances, this replays the generator.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.optimize import PASSES, optimize_program
from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.evaluation import (
    naive_fixpoint,
    seminaive_fixpoint,
    stratified_fixpoint,
)
from repro.core.instance import Instance
from repro.core.terms import Variable

from tests.conftest import random_instance

EDBS = {"R": 2, "U": 1, "S": 1}


def _random_query(rng: random.Random) -> DatalogQuery:
    """A small random safe program with IDBs P/2, Q/1 and goal Q."""
    variables = [Variable(n) for n in "xyzw"]
    preds = [("R", 2), ("U", 1), ("S", 1), ("P", 2), ("Q", 1)]
    rules = []
    for _ in range(rng.randint(2, 5)):
        body = []
        for _ in range(rng.randint(1, 3)):
            pred, arity = rng.choice(preds)
            body.append(
                Atom(pred, tuple(rng.choice(variables) for _ in range(arity)))
            )
        body_vars = sorted(
            {v for a in body for v in a.variables()}, key=lambda v: v.name
        )
        head_pred, head_arity = rng.choice([("P", 2), ("Q", 1)])
        head = Atom(
            head_pred,
            tuple(rng.choice(body_vars) for _ in range(head_arity)),
        )
        rules.append(Rule(head, body))
    # ensure the goal is defined: append a guaranteed Q rule
    x = variables[0]
    rules.append(Rule(Atom("Q", (x,)), (Atom("U", (x,)),)))
    return DatalogQuery(DatalogProgram(rules), "Q")


def _goal_rows(program: DatalogProgram, goal: str, instance: Instance):
    """The goal relation under every fixpoint strategy (must agree)."""
    rows = {
        strategy: set(fn(program, instance).tuples(goal))
        for strategy, fn in (
            ("naive", naive_fixpoint),
            ("seminaive", seminaive_fixpoint),
            ("stratified", stratified_fixpoint),
        )
    }
    assert rows["naive"] == rows["seminaive"] == rows["stratified"]
    return rows["naive"]


@pytest.mark.parametrize("pass_name", sorted(PASSES))
@pytest.mark.parametrize("seed", range(12))
def test_each_pass_preserves_goal_relation(pass_name, seed):
    rng = random.Random(seed * 1009 + 11)
    query = _random_query(rng)
    result = optimize_program(query.program, query.goal, (pass_name,))
    for trial in range(4):
        instance = random_instance(
            seed * 131 + trial, EDBS, max_elements=4, max_facts=7
        )
        expected = _goal_rows(query.program, query.goal, instance)
        measured = _goal_rows(result.optimized, result.goal, instance)
        assert measured == expected, (
            f"pass {pass_name} broke seed {seed} trial {trial}:\n"
            f"original:\n{query.program!r}\n"
            f"optimized:\n{result.optimized!r}"
        )


@pytest.mark.parametrize("seed", range(20))
def test_full_pipeline_preserves_goal_relation(seed):
    rng = random.Random(seed * 7919 + 5)
    query = _random_query(rng)
    result = optimize_program(query.program, query.goal)
    for trial in range(4):
        instance = random_instance(
            seed * 277 + trial, EDBS, max_elements=4, max_facts=7
        )
        expected = _goal_rows(query.program, query.goal, instance)
        measured = _goal_rows(result.optimized, result.goal, instance)
        assert measured == expected
        # the goal-directed evaluate() path with the optimizer enabled
        assert query.evaluate(instance, optimize=True) == expected


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    instance_seed=st.integers(min_value=0, max_value=10_000),
)
def test_pipeline_equivalence_hypothesis(seed, instance_seed):
    query = _random_query(random.Random(seed))
    result = optimize_program(query.program, query.goal)
    instance = random_instance(instance_seed, EDBS, max_elements=4)
    expected = _goal_rows(query.program, query.goal, instance)
    assert _goal_rows(result.optimized, result.goal, instance) == expected
    assert query.evaluate(instance, optimize=True) == expected
