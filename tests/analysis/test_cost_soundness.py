"""Property safety net for the static cardinality bounds.

The whole point of ``--check-cost`` is that the bounds in
:mod:`repro.analysis.cost` are *sound*: no evaluation — any strategy,
any backend, optimizer on or off — may ever derive more facts for a
predicate than the analysis predicted.  Hypothesis hunts for a program
× instance pair that breaks that, over the same adversarial pool the
backend-equivalence suite uses (constants in heads, repeated
variables, ``None`` as data, empty relations).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cost import CostGuard, cost_report
from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, Rule
from repro.core.evaluation import fixpoint
from repro.core.instance import Instance
from repro.core.terms import Variable

_VARS = [Variable(n) for n in "xyzw"]
_CONSTS = [0, 1, 2, "a", None]
_EDB = [("R", 2), ("U", 1), ("Empty", 1)]
_IDB = [("P", 2), ("Q", 1), ("G", 1)]

_STRATEGIES = ("naive", "seminaive", "stratified")
_BACKENDS = ("interpreted", "columnar")


@st.composite
def programs_with_constants(draw) -> DatalogProgram:
    """Safe programs over R/2, U/1, Empty/1 → P/2, Q/1, G/1."""
    rules = []
    for _ in range(draw(st.integers(min_value=2, max_value=5))):
        body = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            pred, arity = draw(st.sampled_from(_EDB + _IDB))
            terms = tuple(
                draw(
                    st.one_of(
                        st.sampled_from(_VARS), st.sampled_from(_CONSTS)
                    )
                )
                for _ in range(arity)
            )
            body.append(Atom(pred, terms))
        body_vars = sorted(
            {v for a in body for v in a.variables()}, key=lambda v: v.name
        )
        head_terms = body_vars if body_vars else _CONSTS
        pred, arity = draw(st.sampled_from(_IDB))
        head = Atom(
            pred,
            tuple(
                draw(st.sampled_from(head_terms)) for _ in range(arity)
            ),
        )
        rules.append(Rule(head, body))
    return DatalogProgram(rules)


@st.composite
def edb_instances(draw) -> Instance:
    """Small instances over R/2 and U/1; the element pool deliberately
    exceeds the programs' constant pool so the measured active domain
    must account for instance-only values (3, "b")."""
    inst = Instance()
    for pred, arity in (("R", 2), ("U", 1)):
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            inst.add_tuple(
                pred,
                tuple(
                    draw(st.sampled_from(_CONSTS + [3, "b"]))
                    for _ in range(arity)
                ),
            )
    return inst


def assert_bounds_hold(program, instance, result, context=""):
    report = cost_report(program, instance=instance)
    for pred, pb in report.bounds.items():
        measured = result.size(pred)
        assert measured <= pb.bound, (
            f"UNSOUND bound for {pred}: measured {measured} > "
            f"predicted {pb.bound} ({pb.basis}){context}\n"
            f"program:\n{program!r}\n"
            f"instance:\n{instance.pretty()}"
        )


@given(program=programs_with_constants(), instance=edb_instances())
@settings(max_examples=60, deadline=None)
def test_bounds_sound_across_strategies_and_backends(program, instance):
    for strategy in _STRATEGIES:
        for backend in _BACKENDS:
            result = fixpoint(
                program, instance, strategy=strategy, backend=backend
            )
            assert_bounds_hold(
                program,
                instance,
                result,
                context=f" [{backend}/{strategy}]",
            )


@given(program=programs_with_constants(), instance=edb_instances())
@settings(max_examples=40, deadline=None)
def test_bounds_sound_with_the_optimizer(program, instance):
    for optimize in (False, True):
        result = fixpoint(program, instance, optimize=optimize)
        assert_bounds_hold(
            program, instance, result, context=f" [optimize={optimize}]"
        )


@given(program=programs_with_constants(), instance=edb_instances())
@settings(max_examples=40, deadline=None)
def test_cost_guard_agrees_with_the_direct_check(program, instance):
    """The post-fixpoint guard is the deployed form of the property:
    it must flag nothing on these runs, and what it checked must match
    the analysis bounds recomputed independently."""
    guard = CostGuard()
    result = fixpoint(program, instance)
    guard(program, instance, result)
    summary = guard.summary()
    assert summary["violations"] == [], (
        f"guard flagged an unsound bound:\n{summary['violations']}\n"
        f"program:\n{program!r}\ninstance:\n{instance.pretty()}"
    )
    assert summary["checks"] == 1
    report = cost_report(program, instance=instance)
    assert summary["predicates"] == len(report.bounds)


@given(program=programs_with_constants(), instance=edb_instances())
@settings(max_examples=30, deadline=None)
def test_goal_scoped_bounds_stay_sound(program, instance):
    """Restricting the report to one goal zeroes unreachable
    predicates — but every *reachable* bound must still hold."""
    result = fixpoint(program, instance)
    for goal in sorted(program.idb_predicates()):
        report = cost_report(program, goal=goal, instance=instance)
        for pred, pb in report.bounds.items():
            if pred in report.unreachable:
                continue
            assert result.size(pred) <= pb.bound, (
                f"goal {goal}: {pred} measured {result.size(pred)} > "
                f"{pb.bound}\nprogram:\n{program!r}"
            )
