"""Unit behaviour of :mod:`repro.analysis.maintain`.

Classification (counting-safe / DRed / insert-monotone), delta bounds,
the guard, the semantic diagnostics (I210–I212, W115–W117) and the
``repro analyze maintain`` CLI, including the span-aware error paths
shared with ``analyze cost``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.analyzer import analyze_query
from repro.analysis.maintain import (
    MaintainReport,
    MaintenanceGuard,
    active_maintenance_guard,
    maintain_report,
    maintenance_checking,
)
from repro.core import parse_instance, parse_program

REACH = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    """
)

VACUOUS_RECURSIVE = parse_program(
    """
    Direct(x,y) <- E(x,y).
    Direct(x,y) <- E(x,y), Direct(x,y).
    """
)

NONRECURSIVE = parse_program("Pair(x,y) <- R(x,y), S(y).")


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------
def test_nonrecursive_stratum_is_counting_safe():
    report = maintain_report(NONRECURSIVE)
    plan = report.plan_of("Pair")
    assert plan is not None
    assert not plan.recursive
    assert plan.counting_safe
    assert plan.strategy == "counting"
    assert report.counting_strata == 1 and report.dred_strata == 0


def test_genuine_recursion_demands_dred():
    report = maintain_report(REACH)
    plan = report.plan_of("Reach")
    assert plan.recursive
    assert not plan.counting_safe
    assert plan.strategy == "dred"
    assert report.dred_strata == 1


def test_vacuous_recursion_is_proved_counting_safe():
    """The recursive rule is subsumed by the base rule, so after
    peeling the stratum has no effective same-SCC dependency."""
    report = maintain_report(VACUOUS_RECURSIVE)
    plan = report.plan_of("Direct")
    assert plan.recursive
    assert plan.counting_safe
    assert plan.strategy == "counting"
    # the vacuous rule is gone from the effective set
    assert list(plan.effective_rule_indices) == [0]


def test_append_only_edb_makes_strata_insert_monotone():
    plain = maintain_report(REACH)
    assert not plain.plan_of("Reach").insert_monotone
    append = maintain_report(REACH, append_only=frozenset({"E"}))
    plan = append.plan_of("Reach")
    assert plan.insert_monotone
    assert plan.self_maintainable
    assert "E" not in append.retraction_sources


def test_strategies_and_classification_are_json_stable():
    report = maintain_report(REACH)
    assert report.strategies() == {"Reach": "dred"}
    claims = report.classification()
    assert claims == json.loads(json.dumps(claims))
    assert claims["strategies"] == {"Reach": "dred"}
    assert claims["counting_safe"] == []


# ---------------------------------------------------------------------------
# delta bounds
# ---------------------------------------------------------------------------
def test_edb_delta_equals_update_size():
    report = maintain_report(REACH, update_size=3)
    assert report.bound_of("E").bound == 3


def test_bounds_grow_with_update_size():
    small = maintain_report(REACH, update_size=1)
    large = maintain_report(REACH, update_size=5)
    assert large.bound_of("Reach").bound >= small.bound_of("Reach").bound
    assert large.total_delta_bound >= small.total_delta_bound


def test_measured_parameters_tighten_the_bounds():
    base = parse_instance("E('a','b'). E('b','c').")
    measured = maintain_report(REACH, instance=base)
    assumed = maintain_report(REACH)
    assert not measured.parameters.assumed
    assert assumed.parameters.assumed
    assert (
        measured.bound_of("Reach").bound <= assumed.bound_of("Reach").bound
    )


def test_counting_bound_carries_per_rule_provenance():
    report = maintain_report(VACUOUS_RECURSIVE)
    db = report.bound_of("Direct")
    assert db.per_rule  # (rule_index, contribution) pairs
    assert all(len(pair) == 2 for pair in db.per_rule)


def test_report_round_trips_and_renders():
    report = maintain_report(REACH, update_size=2)
    payload = report.as_dict()
    assert payload == json.loads(json.dumps(payload))
    assert payload["update_size"] == 2
    assert "Reach" in payload["bounds"]
    text = report.render_text()
    assert "maintainability analysis" in text
    assert "dred" in text


def test_zero_update_on_append_only_means_zero_edb_delta():
    report = maintain_report(
        REACH, update_size=0, append_only=frozenset({"E"})
    )
    assert report.bound_of("E").bound == 0


# ---------------------------------------------------------------------------
# the guard
# ---------------------------------------------------------------------------
def test_guard_sees_clean_rounds_via_the_ambient_hook():
    from repro.ivm import MaterializedView

    base = parse_instance("E('a','b').")
    view = MaterializedView(REACH, base)
    assert active_maintenance_guard() is None
    with maintenance_checking() as guard:
        assert active_maintenance_guard() is guard
        view.insert([("E", ("b", "c"))])
        view.retract([("E", ("b", "c"))])
    assert active_maintenance_guard() is None
    summary = guard.summary()
    assert summary["checks"] == 2
    assert summary["violations"] == []
    assert summary["strategies"]["dred"] >= 1


def test_guard_summary_shape():
    guard = MaintenanceGuard()
    summary = guard.summary()
    assert set(summary) == {
        "checks", "predicates", "strategies", "violations"
    }


# ---------------------------------------------------------------------------
# semantic diagnostics
# ---------------------------------------------------------------------------
def _codes(program, goal=None):
    report = analyze_query(program, goal=goal, semantic=True)
    return {d.code for d in report.diagnostics}


def test_semantic_pass_emits_maintenance_plan_codes():
    codes = _codes(REACH, goal="Reach")
    assert "I210" in codes  # maintenance plan summary
    assert "I212" in codes  # delta bound summary


def test_self_maintainable_stratum_gets_i211():
    codes = _codes(VACUOUS_RECURSIVE, goal="Direct")
    assert "I211" in codes


def test_dred_on_counting_safe_stratum_would_warn_w116():
    codes = _codes(VACUOUS_RECURSIVE, goal="Direct")
    assert "W116" in codes


def test_amplification_risk_warns_w115():
    # recursive DRed stratum whose relation bound (adom^2) exceeds adom
    codes = _codes(REACH, goal="Reach")
    assert "W115" in codes


def test_semantic_report_carries_the_maintain_block():
    report = analyze_query(REACH, goal="Reach", semantic=True)
    assert isinstance(report.maintain, MaintainReport)
    assert "maintain" in report.as_dict()


# ---------------------------------------------------------------------------
# CLI: repro analyze maintain
# ---------------------------------------------------------------------------
def test_cli_analyze_maintain_text(capsys):
    from repro.cli import main

    code = main(["analyze", "maintain", "examples/inputs/reach_query.txt"])
    out = capsys.readouterr().out
    assert code == 0
    assert "maintainability analysis (assumed parameters" in out


def test_cli_analyze_maintain_with_instance(capsys):
    from repro.cli import main

    code = main([
        "analyze", "maintain", "examples/inputs/reach_query.txt",
        "--instance", "examples/inputs/flights_instance.txt",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "measured parameters" in out


def test_cli_analyze_maintain_json_update_size(capsys):
    from repro.cli import main

    code = main([
        "analyze", "maintain", "examples/inputs/reach_query.txt",
        "--format", "json", "--update-size", "4",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["update_size"] == 4
    assert "Reach" in payload["bounds"]


def test_cli_analyze_maintain_append_only(capsys):
    from repro.cli import main

    code = main([
        "analyze", "maintain", "examples/inputs/reach_query.txt",
        "--format", "json", "--append-only", "E",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert "E" not in payload["retraction_sources"]


def test_cli_analyze_maintain_sarif_carries_only_maintain_codes(capsys):
    from repro.cli import main

    code = main([
        "analyze", "maintain", "examples/inputs/reach_query.txt",
        "--format", "sarif",
    ])
    sarif = json.loads(capsys.readouterr().out)
    assert code == 0
    hit = {
        res["ruleId"] for run in sarif["runs"] for res in run["results"]
    }
    assert hit <= {"I210", "I211", "I212", "W115", "W116", "W117"}
    assert "I210" in hit


def test_cli_analyze_maintain_parse_error_exits_2(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.txt"
    bad.write_text("P(x <- R(x).")
    code = main(["analyze", "maintain", str(bad)])
    assert code == 2
    assert "E004" in capsys.readouterr().err


@pytest.mark.parametrize("command", ["cost", "maintain", "shard"])
def test_cli_analyze_binary_query_file_exits_2(command, tmp_path, capsys):
    """A non-UTF-8 query file is an input error with a position, not a
    traceback (the UnicodeDecodeError regression)."""
    from repro.cli import main

    bad = tmp_path / "bad.bin"
    bad.write_bytes(b"\xff\xfe\x00P(x) <- R(x).")
    code = main(["analyze", command, str(bad)])
    err = capsys.readouterr().err
    assert code == 2
    assert "not valid UTF-8" in err
    assert "Traceback" not in err


@pytest.mark.parametrize("command", ["cost", "maintain", "shard"])
def test_cli_analyze_binary_instance_exits_2(command, tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad_instance.bin"
    bad.write_bytes(b"\x93\x00\x01binary")
    code = main([
        "analyze", command, "examples/inputs/reach_query.txt",
        "--instance", str(bad),
    ])
    err = capsys.readouterr().err
    assert code == 2
    assert "not valid UTF-8" in err
    assert "Traceback" not in err


@pytest.mark.parametrize("command", ["cost", "maintain", "shard"])
def test_cli_analyze_missing_instance_exits_2(command, capsys):
    from repro.cli import main

    code = main([
        "analyze", command, "examples/inputs/reach_query.txt",
        "--instance", "examples/inputs/does_not_exist.txt",
    ])
    assert code == 2
    assert capsys.readouterr().err.strip()
