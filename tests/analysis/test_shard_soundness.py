"""Property safety net for the sharded parallel fixpoint.

``--shards N`` is only worth trusting if the partitioned executor is
*equivalent*: no program × instance × strategy × backend combination —
optimizer on or off — may ever produce a different fixpoint than the
single-process engine, and a stratum the analysis proves
communication-free must never place a fact on a shard it does not hash
to.  Hypothesis hunts for a counterexample over the same adversarial
pool the cost-soundness suite uses (constants in heads, repeated
variables, ``None`` as data, empty relations).

The generated instances are far below the production size gate, so the
suite lowers ``repro.core.shard.SHARD_MIN_FACTS`` for each run to force
the partitioned path.
"""

from __future__ import annotations

import contextlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.shard import sharding_checking
from repro.core import shard as shard_module
from repro.core.evaluation import fixpoint, set_default_optimize
from repro.core.shard import sharded_fixpoint

from tests.analysis.test_cost_soundness import (
    edb_instances,
    programs_with_constants,
)

_STRATEGIES = ("naive", "seminaive", "stratified")
_BACKENDS = ("interpreted", "columnar")


@contextlib.contextmanager
def _forced_sharding():
    """Drop the size gate so tiny generated instances still shard."""
    previous = shard_module.SHARD_MIN_FACTS
    shard_module.SHARD_MIN_FACTS = 0
    try:
        yield
    finally:
        shard_module.SHARD_MIN_FACTS = previous


def _context(program, base, config):
    return (
        f"\nconfig: {config!r}\nprogram:\n{program!r}\n"
        f"base:\n{base.pretty()}"
    )


@given(
    program=programs_with_constants(),
    base=edb_instances(),
    shards=st.integers(min_value=2, max_value=3),
    strategy=st.sampled_from(_STRATEGIES),
    backend=st.sampled_from(_BACKENDS),
    optimize=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_sharded_fixpoint_equals_single_process(
    program, base, shards, strategy, backend, optimize
):
    config = {
        "shards": shards, "strategy": strategy,
        "backend": backend, "optimize": optimize,
    }
    previous = set_default_optimize(optimize)
    try:
        single = fixpoint(
            program, base.copy(), strategy=strategy, backend=backend
        )
        with _forced_sharding():
            sharded = sharded_fixpoint(
                program, base.copy(), shards,
                strategy=strategy, backend=backend,
            )
    finally:
        set_default_optimize(previous)
    assert sharded == single, (
        "sharded fixpoint diverged from single-process"
        + _context(program, base, config)
    )


@given(
    program=programs_with_constants(),
    base=edb_instances(),
    shards=st.integers(min_value=2, max_value=3),
)
@settings(max_examples=15, deadline=None)
def test_communication_free_strata_never_cross_shards(
    program, base, shards
):
    """The deployed form of the conformance property: the ambient
    guard audits every communication-free stratum of the sharded run
    and must flag nothing."""
    with _forced_sharding(), sharding_checking() as guard:
        sharded = sharded_fixpoint(program, base.copy(), shards)
    single = fixpoint(program, base.copy())
    assert sharded == single, (
        "sharded fixpoint diverged from single-process"
        + _context(program, base, {"shards": shards})
    )
    summary = guard.summary()
    assert summary["violations"] == [], (
        f"UNSOUND communication-free verdict:\n{summary['violations']}"
        + _context(program, base, {"shards": shards})
    )
