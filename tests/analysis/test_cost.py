"""The static cost & cardinality analysis: bounds, guard, diagnostics."""

from repro.analysis.analyzer import analyze_query
from repro.analysis.cost import (
    BOUND_CAP,
    COST_RULE_LIMIT,
    CostParameters,
    atom_match_bound,
    cost_checking,
    cost_report,
    predicate_bounds,
    predicted_join_volume,
)
from repro.core.atoms import Atom
from repro.core.evaluation import fixpoint
from repro.core.parser import parse_instance, parse_program
from repro.core.stats import EngineStats, collecting
from repro.core.terms import Variable

REACH = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    Goal(y) <- S(x), Reach(x,y).
    """
)

x, y = Variable("x"), Variable("y")


def chain_instance(n: int, source: int):
    text = " ".join(f"E({i},{i + 1})." for i in range(n))
    return parse_instance(text + f" S({source}).")


# ---------------------------------------------------------------------------
# atom match bounds
# ---------------------------------------------------------------------------
def test_atom_match_bound_caps_at_relation_size():
    atom = Atom("R", (x, y))
    assert atom_match_bound(atom, frozenset(), {"R": 7}, 100, 0) == 7


def test_atom_match_bound_caps_at_adom_power():
    atom = Atom("R", (x, y))
    assert atom_match_bound(atom, frozenset(), {"R": 10**6}, 5, 0) == 25


def test_atom_match_bound_bound_vars_shrink_the_power():
    atom = Atom("R", (x, y))
    assert atom_match_bound(atom, frozenset({x}), {"R": 10**6}, 5, 0) == 5
    assert (
        atom_match_bound(atom, frozenset({x, y}), {"R": 10**6}, 5, 0) == 1
    )


def test_atom_match_bound_repeated_vars_count_once():
    # R(x,x) has one distinct variable: adom^1, not adom^2
    atom = Atom("R", (x, x))
    assert atom_match_bound(atom, frozenset(), {"R": 10**6}, 5, 0) == 5


def test_atom_match_bound_constants_are_free():
    atom = Atom("R", (x, "c"))
    assert atom_match_bound(atom, frozenset(), {"R": 10**6}, 5, 0) == 5


def test_atom_match_bound_unknown_pred_uses_default():
    atom = Atom("Mystery", (x,))
    assert atom_match_bound(atom, frozenset(), {}, 100, 3) == 3


# ---------------------------------------------------------------------------
# parameters
# ---------------------------------------------------------------------------
def test_measured_parameters_read_the_instance():
    instance = chain_instance(4, 0)
    params = CostParameters.from_instance(REACH, instance)
    assert not params.assumed
    assert params.edb_sizes == {"E": 4, "S": 1}
    # 0..4 from the chain (0 doubles as the S seed)
    assert params.adom == 5
    assert params.default_edb_size == 0


def test_measured_parameters_split_idb_seeds():
    instance = parse_instance("E(1,2). Reach(7,8).")
    params = CostParameters.from_instance(REACH, instance)
    assert params.edb_sizes == {"E": 1}
    assert params.idb_seeds == {"Reach": 1}


def test_assumed_parameters_give_every_edb_sixteen_rows():
    params = CostParameters.assumed_for(REACH)
    assert params.assumed
    assert params.edb_sizes == {"E": 16, "S": 16}
    # no constants: adom = 16*2 (E) + 16*1 (S)
    assert params.adom == 48


# ---------------------------------------------------------------------------
# predicate bounds
# ---------------------------------------------------------------------------
def test_bounds_are_sound_on_the_chain():
    instance = chain_instance(20, 10)
    report = cost_report(REACH, goal="Goal", instance=instance)
    result = fixpoint(REACH, instance)
    for pred in ("Reach", "Goal"):
        pb = report.bound_of(pred)
        assert pb is not None
        assert result.size(pred) <= pb.bound


def test_recursive_bound_caps_at_adom_power_arity():
    instance = chain_instance(20, 10)
    report = cost_report(REACH, instance=instance)
    reach = report.bound_of("Reach")
    assert reach.recursive
    assert reach.bound <= report.parameters.adom ** 2


def test_nonrecursive_bound_sums_rule_bounds():
    program = parse_program("P(x) <- R(x). P(x) <- U(x).")
    instance = parse_instance("R(1). R(2). U(3).")
    report = cost_report(program, instance=instance)
    pb = report.bound_of("P")
    assert not pb.recursive
    assert pb.bound == 3  # |R| + |U| capped at adom


def test_idb_seed_facts_raise_the_bound():
    program = parse_program("P(x) <- R(x).")
    instance = parse_instance("R(1). P(90). P(91).")
    report = cost_report(program, instance=instance)
    result = fixpoint(program, instance)
    assert result.size("P") == 3
    assert report.bound_of("P").bound >= 3


def test_goal_unreachable_predicates_collapse_to_seeds():
    program = parse_program(
        "Goal(x) <- R(x). Orphan(x) <- R(x), U(x)."
    )
    instance = parse_instance("R(1). R(2). U(1).")
    report = cost_report(program, goal="Goal", instance=instance)
    assert "Orphan" in report.unreachable
    assert report.bound_of("Orphan").bound == 0


def test_boundedness_peeling_drops_vacuous_recursion():
    program = parse_program(
        "P(x) <- R(x). P(x) <- R(x), P(x)."
    )
    instance = parse_instance("R(1). R(2).")
    report = cost_report(program, instance=instance)
    assert report.peeled_rules  # the vacuous self-loop was dropped
    pb = report.bound_of("P")
    assert not pb.recursive  # peeled program is non-recursive
    assert fixpoint(program, instance).size("P") <= pb.bound


def test_arithmetic_saturates_instead_of_overflowing():
    # 12 distinct variables in one head over a 100-element domain:
    # adom^12 = 10^24 must clamp at BOUND_CAP
    head = "P(" + ",".join(f"v{i}" for i in range(12)) + ")"
    body = ", ".join(f"R(v{i})" for i in range(12))
    program = parse_program(f"{head} <- {body}.")
    instance = parse_instance(
        " ".join(f"R({i})." for i in range(100))
    )
    report = cost_report(program, instance=instance)
    assert report.bound_of("P").bound == BOUND_CAP
    assert report.total_join_cost <= BOUND_CAP


def test_empty_program_reports_nothing():
    report = cost_report(parse_program(""))
    assert not report.bounds
    assert report.total_bound == 0


def test_oversized_programs_are_skipped_by_volume():
    rules = " ".join(
        f"P{i}(x) <- R(x)." for i in range(COST_RULE_LIMIT + 1)
    )
    assert predicted_join_volume(parse_program(rules)) == 0


def test_predicate_bounds_shortcut_matches_report():
    instance = chain_instance(6, 0)
    report = cost_report(REACH, instance=instance)
    direct = predicate_bounds(REACH, instance=instance)
    assert direct == {p: b.bound for p, b in report.bounds.items()}


# ---------------------------------------------------------------------------
# rule costs
# ---------------------------------------------------------------------------
def test_rule_costs_cover_every_rule_with_atom_provenance():
    instance = chain_instance(6, 0)
    report = cost_report(REACH, instance=instance)
    assert {rc.rule_index for rc in report.rules} == {0, 1, 2}
    for rc in report.rules:
        assert rc.atoms
        assert rc.join_cost >= rc.atoms[0].running
        assert rc.dominant in rc.atoms


def test_cartesian_rule_is_flagged():
    program = parse_program("P(x,y) <- R(x), U(y).")
    instance = parse_instance(
        " ".join(f"R({i}). U({i + 50})." for i in range(20))
    )
    report = cost_report(program, instance=instance)
    (rc,) = report.rules
    assert rc.cartesian


def test_connected_body_is_not_cartesian():
    instance = chain_instance(6, 0)
    report = cost_report(REACH, instance=instance)
    assert not any(rc.cartesian for rc in report.rules)


# ---------------------------------------------------------------------------
# report surface
# ---------------------------------------------------------------------------
def test_render_text_lists_bounds_and_rules():
    instance = chain_instance(4, 0)
    text = cost_report(REACH, instance=instance).render_text()
    assert "measured parameters" in text
    assert "Reach/2 <=" in text
    assert "rule 1" in text


def test_as_dict_is_json_ready():
    import json

    report = cost_report(REACH)
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["assumed"] is True
    assert set(payload["bounds"]) == {"Reach", "Goal"}
    assert len(payload["rules"]) == 3


# ---------------------------------------------------------------------------
# the cost guard
# ---------------------------------------------------------------------------
def test_cost_guard_audits_every_fixpoint():
    instance = chain_instance(10, 5)
    with cost_checking() as guard:
        fixpoint(REACH, instance)
    summary = guard.summary()
    assert summary["checks"] == 1
    assert summary["predicates"] >= 2
    assert summary["violations"] == []


def test_cost_guard_counts_into_engine_stats():
    instance = chain_instance(10, 5)
    stats = EngineStats()
    with cost_checking(), collecting(stats):
        fixpoint(REACH, instance)
    assert stats.cost_checks == 1
    assert stats.cost_bounds_checked >= 2
    assert stats.cost_violations == 0


def test_cost_guard_reports_a_violated_bound():
    # force unsoundness artificially: a guard with the real report but
    # a result that grew past the bound can only come from a broken
    # model, so fabricate one by auditing the wrong program
    from repro.analysis.cost import CostGuard

    program = parse_program("P(x) <- R(x).")
    instance = parse_instance("R(1).")
    bloated = fixpoint(
        parse_program("P(x) <- R(x). P(x) <- U(x)."),
        parse_instance("R(1). U(2). U(3)."),
    )
    guard = CostGuard()
    guard(program, instance, bloated)
    summary = guard.summary()
    assert summary["violations"]
    violation = summary["violations"][0]
    assert violation["pred"] == "P"
    assert violation["measured"] > violation["bound"]


def test_cost_checking_restores_previous_guard():
    from repro.core import evaluation

    before = evaluation._COST_GUARD
    with cost_checking():
        assert evaluation._COST_GUARD is not before
    assert evaluation._COST_GUARD is before


# ---------------------------------------------------------------------------
# diagnostics (I209, W112-W114)
# ---------------------------------------------------------------------------
def lint_codes(text: str, goal=None) -> set[str]:
    report = analyze_query(
        parse_program(text), goal=goal, semantic=True
    )
    return report.codes()


def test_semantic_lint_emits_cost_summary():
    codes = lint_codes(
        "Reach(x,y) <- E(x,y). Reach(x,y) <- E(x,z), Reach(z,y).",
    )
    assert "I209" in codes


def test_cartesian_blowup_warns_w112():
    # a genuinely disconnected product of wide relations blows up past
    # the active domain under assumed parameters
    codes = lint_codes("P(x,y,z) <- R(x,y), U(z), W(x).")
    assert "W112" in codes


def test_superlinear_recursion_warns_w113():
    codes = lint_codes(
        "Reach(x,y) <- E(x,y). Reach(x,y) <- E(x,z), Reach(z,y)."
    )
    assert "W113" in codes  # adom^2 > adom


def test_linear_recursion_stays_quiet():
    codes = lint_codes(
        "R1(x) <- S(x). R1(x) <- E(x,y), R1(y)."
    )
    assert "W113" not in codes  # arity 1: bound = adom, not super-linear


def test_unbindable_atom_warns_w114():
    # U(z) shares no variable with the rest of the body and repeats
    # nothing: no join order can bind it before probing
    codes = lint_codes("P(x) <- R(x,y), U(z).")
    assert "W114" in codes


def test_connected_body_has_no_w114():
    codes = lint_codes("P(x) <- R(x,y), U(y).")
    assert "W114" not in codes


def test_lint_report_carries_the_cost_report():
    report = analyze_query(REACH, goal="Goal", semantic=True)
    assert report.cost is not None
    assert "cost" in report.as_dict()
    assert report.as_dict()["cost"]["assumed"] is True


def test_nonsemantic_lint_skips_cost():
    report = analyze_query(REACH, goal="Goal", semantic=False)
    assert report.cost is None
    assert "cost" not in report.as_dict()


# ---------------------------------------------------------------------------
# CLI: repro analyze cost
# ---------------------------------------------------------------------------
def test_cli_analyze_cost_text(capsys):
    from repro.cli import main

    code = main(["analyze", "cost", "examples/inputs/reach_query.txt"])
    out = capsys.readouterr().out
    assert code == 0
    assert "cost analysis (assumed parameters" in out
    assert "Reach/1 <=" in out


def test_cli_analyze_cost_with_instance(capsys):
    from repro.cli import main

    code = main([
        "analyze", "cost", "examples/inputs/reach_query.txt",
        "--instance", "examples/inputs/flights_instance.txt",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "measured parameters" in out


def test_cli_analyze_cost_json(capsys):
    import json

    from repro.cli import main

    code = main([
        "analyze", "cost", "examples/inputs/bound_reach_query.txt",
        "--format", "json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["assumed"] is True
    assert "Reach" in payload["bounds"]


def test_cli_analyze_cost_sarif_carries_only_cost_codes(capsys):
    import json

    from repro.cli import main

    code = main([
        "analyze", "cost", "examples/inputs/bound_reach_query.txt",
        "--format", "sarif",
    ])
    sarif = json.loads(capsys.readouterr().out)
    assert code == 0
    rules = {
        r["id"]
        for run in sarif["runs"]
        for r in run["tool"]["driver"]["rules"]
    }
    hit = {
        res["ruleId"] for run in sarif["runs"] for res in run["results"]
    }
    assert hit <= {"I209", "W112", "W113", "W114"}
    assert "I209" in hit


def test_cli_analyze_cost_parse_error_exits_2(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.txt"
    bad.write_text("P(x <- R(x).")
    code = main(["analyze", "cost", str(bad)])
    assert code == 2
    assert "E004" in capsys.readouterr().err
