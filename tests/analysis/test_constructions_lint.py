"""Every paper construction must be diagnostic-clean (or waived).

Runs the default analyzer over each Datalog query the constructions
build and asserts no error- or warning-grade findings, except codes
explicitly waived below with a reason.  A new warning in a construction
is either a real defect or a deliberate property of the reduction — in
the second case add it to the waiver table, with a comment saying why.
"""

import pytest

from repro.analysis import Severity, analyze_query
from repro.constructions.diamonds import diamond_query, diamond_views
from repro.constructions.example1 import (
    example1_query,
    paper_rewriting_v0_v2,
    views_v0_v2,
    views_v3_v4,
)
from repro.constructions.machines import counter_machine
from repro.constructions.reduction_thm6 import thm6_query, thm6_views
from repro.constructions.thm9 import thm9_query, thm9_views
from repro.constructions.tiling import solvable_example, unsolvable_example
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_program

#: code -> reason, per construction.  Waivers are deliberate properties
#: of the paper's reductions, not defects.
WAIVERS: dict[str, dict[str, str]] = {
    "thm6": {
        # Qhelper deliberately pairs an existence check on a colour
        # relation (C(u) / D(u)) with the grid-projection join — the
        # product over the one-element colour witness is intentional
        "W104": "Thm 6 helper rules pair a colour witness with the grid",
    },
    "thm9": {
        "W104": "Thm 9 helper rules pair a witness atom with the run",
    },
}


def _assert_clean(label: str, query, views=None) -> None:
    report = analyze_query(query, views=views)
    waived = WAIVERS.get(label, {})
    offending = [
        d
        for d in report.diagnostics
        if d.severity >= Severity.WARNING and d.code not in waived
    ]
    assert not offending, (
        f"{label} has unwaived findings:\n"
        + "\n".join(d.render() for d in offending)
    )


def test_example1_query_is_clean():
    _assert_clean("example1", example1_query(), views_v0_v2())


def test_example1_rewriting_is_clean():
    _assert_clean("example1-rewriting", paper_rewriting_v0_v2())


def test_example1_v3_v4_views_are_clean():
    _assert_clean("example1-v3v4", example1_query(), views_v3_v4())


def test_diamond_query_is_clean():
    _assert_clean("diamonds", diamond_query(), diamond_views())


@pytest.mark.parametrize(
    "tp_name", ["solvable", "unsolvable"]
)
def test_thm6_reduction_lints(tp_name):
    tp = solvable_example() if tp_name == "solvable" else unsolvable_example()
    _assert_clean("thm6", thm6_query(tp), thm6_views(tp))


def test_thm9_reduction_lints():
    machine = counter_machine(2)
    _assert_clean("thm9", thm9_query(machine), thm9_views(machine))


def test_example_input_files_are_clean():
    from pathlib import Path

    text = Path("examples/inputs/reach_query.txt").read_text()
    goal = next(
        line.split(":", 1)[1].strip()
        for line in text.splitlines()
        if line.strip().startswith("# goal:")
    )
    query = DatalogQuery(parse_program(text), goal)
    _assert_clean("examples/reach_query", query)
