"""The shardability analysis: classification, keys, guard, CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis.shard import (
    COMMUNICATION_FREE,
    EXCHANGE_REQUIRED,
    SEQUENTIAL,
    ShardGuard,
    active_shard_guard,
    set_shard_guard,
    shard_of,
    shard_report,
    sharding_checking,
)
from repro.core import parse_program
from repro.core.instance import Instance


def _tenant_program():
    return parse_program(
        """
        Reach(g,x,y) <- E(g,x,y).
        Reach(g,x,y) <- E(g,x,z), Reach(g,z,y).
        """
    )


def _tc_program():
    return parse_program(
        """
        Reach(x,y) <- E(x,y).
        Reach(x,y) <- E(x,z), Reach(z,y).
        """
    )


# ---------------------------------------------------------------------------
# routing function
# ---------------------------------------------------------------------------
def test_shard_of_is_deterministic_and_in_range():
    values = [0, 1, "a", None, (1, 2), ("a", None), 3.5, True]
    for shards in (1, 2, 3, 7):
        for value in values:
            owner = shard_of(value, shards)
            assert 0 <= owner < shards
            # stable across calls (unlike salted hash())
            assert owner == shard_of(value, shards)


def test_shard_of_zero_shards_is_zero():
    assert shard_of("anything", 0) == 0


def test_shard_of_distinguishes_values():
    owners = {shard_of(i, 4) for i in range(64)}
    assert len(owners) == 4  # all shards get traffic


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------
def test_tenant_reachability_is_communication_free():
    report = shard_report(_tenant_program())
    plan = report.plan_of("Reach")
    assert plan is not None
    assert plan.classification == COMMUNICATION_FREE
    assert dict(plan.keys) == {"E": 0, "Reach": 0}
    assert report.communication_free == 1
    assert report.exchange_required == 0


def test_plain_transitive_closure_requires_exchange():
    report = shard_report(_tc_program())
    plan = report.plan_of("Reach")
    assert plan is not None
    assert plan.classification == EXCHANGE_REQUIRED
    assert plan.exchange_bound > 0
    assert report.total_exchange_bound >= plan.exchange_bound


def test_exchange_bound_scales_with_workers():
    two = shard_report(_tc_program(), workers=2).plan_of("Reach")
    five = shard_report(_tc_program(), workers=5).plan_of("Reach")
    assert two is not None and five is not None
    # bound is |Reach| * (workers - 1)
    assert five.exchange_bound == 4 * two.exchange_bound


def test_zero_ary_head_is_sequential():
    report = shard_report(parse_program("Hit() <- E(x,y)."))
    plan = report.plan_of("Hit")
    assert plan is not None
    assert plan.classification == SEQUENTIAL
    assert "variable-free head" in plan.basis


def test_cartesian_body_is_sequential():
    report = shard_report(parse_program("P(x,y) <- U(x), V(y)."))
    plan = report.plan_of("P")
    assert plan is not None
    assert plan.classification == SEQUENTIAL


def test_pivot_must_survive_every_body_atom():
    # g reaches the head but is absent from the second body atom, so
    # no consistent key exists
    report = shard_report(parse_program(
        """
        P(g,y) <- E(g,x), F(x,y).
        """
    ))
    plan = report.plan_of("P")
    assert plan is not None
    assert plan.classification == EXCHANGE_REQUIRED


def test_mixed_strata_classify_independently():
    report = shard_report(parse_program(
        """
        Reach(g,x,y) <- E(g,x,y).
        Reach(g,x,y) <- E(g,x,z), Reach(g,z,y).
        Pairs(x,y) <- U(x), V(y).
        """
    ))
    classes = report.classification()
    assert classes["Reach"] == COMMUNICATION_FREE
    assert classes["Pairs"] == SEQUENTIAL
    assert report.sequential == 1


def test_instance_parameters_drive_the_bounds():
    edges = [(i, i + 1) for i in range(9)]
    inst = Instance.from_tuples({"E": edges})
    measured = shard_report(_tc_program(), instance=inst, workers=2)
    assumed = shard_report(_tc_program(), workers=2)
    assert measured.parameters.assumed is False
    m = measured.plan_of("Reach")
    a = assumed.plan_of("Reach")
    assert m is not None and a is not None
    assert m.exchange_bound != a.exchange_bound


# ---------------------------------------------------------------------------
# report rendering
# ---------------------------------------------------------------------------
def test_render_text_names_every_stratum():
    text = shard_report(_tenant_program(), workers=3).render_text()
    assert "shardability plan for 3 worker(s)" in text
    assert "communication_free" in text
    assert "partition keys: E[0], Reach[0]" in text


def test_as_dict_round_trips_to_json():
    report = shard_report(_tc_program(), workers=2)
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["workers"] == 2
    assert payload["exchange_required"] == 1
    kinds = {s["classification"] for s in payload["strata"]}
    assert kinds == {EXCHANGE_REQUIRED}


# ---------------------------------------------------------------------------
# guard
# ---------------------------------------------------------------------------
def _commfree_plan():
    return shard_report(_tenant_program(), workers=2).plan_of("Reach")


def test_guard_accepts_conformant_partition():
    plan = _commfree_plan()
    assert plan is not None
    per_worker = {
        shard_of(g, 2): [("Reach", (g, 0, 1))] for g in range(8)
    }
    guard = ShardGuard()
    guard.check_stratum(plan, 2, per_worker)
    summary = guard.summary()
    assert summary["checks"] == 1
    assert summary["strata"] == 1
    assert summary["facts"] == len(per_worker)
    assert summary["violations"] == []


def test_guard_flags_a_fact_on_the_wrong_shard():
    plan = _commfree_plan()
    assert plan is not None
    owner = shard_of(7, 2)
    wrong = 1 - owner
    guard = ShardGuard()
    guard.check_stratum(plan, 2, {wrong: [("Reach", (7, 0, 1))]})
    violations = guard.summary()["violations"]
    assert len(violations) == 1
    assert violations[0]["kind"] == "boundary"
    assert violations[0]["pred"] == "Reach"
    assert violations[0]["worker"] == wrong
    assert violations[0]["owner"] == owner


def test_guard_only_audits_communication_free_strata():
    plan = shard_report(_tc_program(), workers=2).plan_of("Reach")
    assert plan is not None and plan.classification == EXCHANGE_REQUIRED
    guard = ShardGuard()
    guard.check_stratum(plan, 2, {0: [("Reach", (0, 1))]})
    summary = guard.summary()
    assert summary["checks"] == 1
    assert summary["strata"] == 0  # nothing to audit
    assert summary["violations"] == []


def test_sharding_checking_installs_and_restores_the_guard():
    assert active_shard_guard() is None
    with sharding_checking() as guard:
        assert active_shard_guard() is guard
    assert active_shard_guard() is None


def test_set_shard_guard_returns_previous():
    first = ShardGuard()
    assert set_shard_guard(first) is None
    second = ShardGuard()
    assert set_shard_guard(second) is first
    assert set_shard_guard(None) is second


# ---------------------------------------------------------------------------
# CLI: repro analyze shard
# ---------------------------------------------------------------------------
def test_cli_analyze_shard_text(capsys):
    from repro.cli import main

    code = main(["analyze", "shard", "examples/inputs/reach_query.txt"])
    out = capsys.readouterr().out
    assert code == 0
    assert "shardability plan for 4 worker(s)" in out
    assert "exchange_required" in out


def test_cli_analyze_shard_workers_and_instance(capsys):
    from repro.cli import main

    code = main([
        "analyze", "shard", "examples/inputs/reach_query.txt",
        "--instance", "examples/inputs/flights_instance.txt",
        "--workers", "8",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "8 worker(s)" in out
    assert "measured parameters" in out


def test_cli_analyze_shard_json(capsys):
    from repro.cli import main

    code = main([
        "analyze", "shard", "examples/inputs/reach_query.txt",
        "--format", "json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["workers"] == 4
    assert {s["classification"] for s in payload["strata"]} == {
        COMMUNICATION_FREE, EXCHANGE_REQUIRED,
    }


def test_cli_analyze_shard_sarif_carries_only_shard_codes(capsys):
    from repro.cli import main

    code = main([
        "analyze", "shard", "examples/inputs/reach_query.txt",
        "--format", "sarif",
    ])
    sarif = json.loads(capsys.readouterr().out)
    assert code == 0
    hit = {
        res["ruleId"] for run in sarif["runs"] for res in run["results"]
    }
    assert hit <= {"I213", "I214", "I215", "W118", "W119"}
    assert "I213" in hit


def test_cli_analyze_shard_parse_error_exits_2(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.txt"
    bad.write_text("P(x <- R(x).")
    code = main(["analyze", "shard", str(bad)])
    assert code == 2
    assert "E004" in capsys.readouterr().err


@pytest.mark.parametrize("command", ["cost", "maintain", "shard"])
def test_cli_analyze_subcommands_share_exit_conventions(
    command, tmp_path, capsys
):
    """The shared `_run_analyze` plumbing must keep the exact exit
    codes for all three subcommands: 0 on success for every format,
    2 on any unreadable input."""
    from repro.cli import main

    for fmt in ("text", "json", "sarif"):
        code = main([
            "analyze", command, "examples/inputs/reach_query.txt",
            "--format", fmt,
        ])
        capsys.readouterr()
        assert code == 0, f"{command} --format {fmt}"
    code = main(["analyze", command, str(tmp_path / "missing.txt")])
    capsys.readouterr()
    assert code == 2
