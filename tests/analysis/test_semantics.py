"""Semantic pipeline: capabilities, adornments, boundedness, sorts."""

from repro.analysis import analyze_query
from repro.analysis.semantics import (
    binding_patterns,
    boundedness_report,
    capability_facts,
    nonrecursive_to_ucq,
    sort_report,
)
from repro.core.instance import Instance
from repro.core.parser import parse_program

TC = parse_program(
    """
    T(x, y) <- R(x, y).
    T(x, y) <- R(x, z), T(z, y).
    Goal(x) <- T(x, x).
    """
)

MDL = parse_program(
    """
    P(x) <- U(x).
    P(x) <- R(x, y), P(y).
    Goal(x) <- P(x).
    """
)


def test_capability_facts_witnesses_and_violations():
    caps = {c.name: c for c in capability_facts(MDL)}
    assert caps["monadic"].holds
    assert len(caps["monadic"].witnesses) == 3
    assert caps["frontier-guarded"].holds
    guard = next(
        w for w in caps["frontier-guarded"].witnesses if w.rule_index == 1
    )
    assert "R(?x, ?y)" in guard.detail
    assert caps["linear"].holds
    assert caps["connected"].holds

    tc_caps = {c.name: c for c in capability_facts(TC)}
    assert not tc_caps["monadic"].holds
    assert tc_caps["monadic"].violations
    assert not tc_caps["frontier-guarded"].holds
    assert any(
        v.rule_index == 1 for v in tc_caps["frontier-guarded"].violations
    )


def test_capability_nonlinear_violation():
    doubled = parse_program(
        """
        T(x, y) <- R(x, y).
        T(x, y) <- T(x, z), T(z, y).
        """
    )
    caps = {c.name: c for c in capability_facts(doubled)}
    assert not caps["linear"].holds
    (violation,) = caps["linear"].violations
    assert violation.rule_index == 1
    assert "2 same-SCC calls" in violation.detail


def test_binding_patterns_from_goal():
    adornments = binding_patterns(TC, "Goal")
    assert adornments["Goal"] == ("f",)
    # Goal(x) <- T(x, x): both positions carry the same free variable.
    assert "ff" in adornments["T"]
    # T(x,y) <- R(x,z), T(z,y): z bound after R, y free.
    assert "bf" in adornments["T"]


def test_binding_patterns_no_goal():
    assert binding_patterns(TC, None) == {}
    assert binding_patterns(TC, "NotDefined") == {}


def test_boundedness_genuine_recursion():
    report = boundedness_report(TC, "Goal")
    assert not report.bounded
    assert "genuine recursion" in report.reason
    assert report.ucq is None


def test_boundedness_vacuous_recursion_unfolds_to_ucq():
    program = parse_program(
        """
        P(x) <- U(x).
        P(x) <- U(x), P(x).
        Goal(x) <- P(x), R(x, y).
        """
    )
    report = boundedness_report(program, "Goal")
    assert report.bounded
    assert report.vacuous_rules == ((1, 0),)
    assert report.ucq is not None
    assert len(report.ucq.disjuncts) == 1

    # The unfolded UCQ and the original query agree on data.
    instance = Instance()
    instance.add_tuple("U", (1,))
    instance.add_tuple("U", (2,))
    instance.add_tuple("R", (1, 5))
    from repro.core.datalog import DatalogQuery

    datalog = DatalogQuery(program, "Goal")
    assert datalog.evaluate(instance) == report.ucq.evaluate(instance)


def test_nonrecursive_to_ucq_matches_fixpoint():
    program = parse_program(
        """
        A(x, y) <- R(x, y).
        A(x, y) <- S(x, y).
        Goal(x) <- A(x, y), A(y, z).
        """
    )
    ucq = nonrecursive_to_ucq(program, "Goal")
    assert ucq is not None
    assert len(ucq.disjuncts) == 4
    from repro.core.datalog import DatalogQuery

    instance = Instance()
    instance.add_tuple("R", (1, 2))
    instance.add_tuple("S", (2, 3))
    instance.add_tuple("R", (3, 1))
    assert DatalogQuery(program, "Goal").evaluate(instance) \
        == ucq.evaluate(instance)


def test_nonrecursive_to_ucq_refuses_recursion_and_unknown_goal():
    assert nonrecursive_to_ucq(TC, "Goal") is None
    flat = parse_program("Goal(x) <- R(x, y).")
    assert nonrecursive_to_ucq(flat, "Nope") is None


def test_sort_report_conflict():
    program = parse_program(
        """
        Goal(x) <- R(x, $a).
        Goal(x) <- R(x, 3).
        """
    )
    report = sort_report(program)
    (conflict,) = report.conflicts()
    assert set(conflict.kinds) == {"int", "str"}
    assert ("R", 1) in conflict.columns


def test_sort_report_links_columns_via_variables():
    report = sort_report(TC)
    # transitive closure: every column collapses into one sort
    assert len(report.classes) == 1
    assert not report.conflicts()


def test_semantic_report_in_analyzer():
    report = analyze_query(MDL, goal="Goal", semantic=True)
    assert report.semantics is not None
    assert report.semantics.capability("monadic").holds
    codes = report.codes()
    assert "I204" in codes and "I206" in codes
    payload = report.as_dict()
    assert "semantics" in payload
    assert payload["semantics"]["boundedness"]["bounded"] is False

    plain = analyze_query(MDL, goal="Goal")
    assert plain.semantics is None
    assert "I204" not in plain.codes()


def test_semantic_diagnostics_w110_i205():
    program = parse_program(
        """
        P(x) <- U(x).
        P(x) <- U(x), P(x).
        Goal(x) <- P(x).
        """
    )
    report = analyze_query(program, goal="Goal", semantic=True)
    codes = report.codes()
    assert "W110" in codes and "I205" in codes
