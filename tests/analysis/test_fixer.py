"""``repro lint --fix``: safe deletions, cascades, idempotence."""

from repro.analysis import FIXABLE_CODES, analyze_query, fix_source
from repro.cli import main
from repro.core.parser import parse_program, parse_program_source

DUPLICATES = """\
# goal: Goal
W(x) <- A(x,y), W(y).
W(x) <- U(x).
W(z) <- U(z).
Goal() <- W(x).
"""

UNUSED = """\
# goal: Goal
W(x) <- A(x,y), W(y).
Dead(x) <- A(x,y).
Orphan(x) <- Dead(x).
Goal() <- W(x).
"""


def test_duplicate_rule_removed_keeps_first():
    result = fix_source(DUPLICATES, goal="Goal")
    assert result.changed
    assert [f.code for f in result.fixes] == ["W101"]
    program = parse_program(result.text)
    assert len(program.rules) == 3
    # the surviving copy is the first occurrence, i.e. spelled with x
    assert "W(x) <- U(x)." in result.text
    assert "W(z)" not in result.text


def test_unused_predicate_cascade():
    result = fix_source(UNUSED, goal="Goal")
    codes = [f.code for f in result.fixes]
    assert codes.count("W106") == 2
    assert result.passes == 2  # Orphan first, then newly-orphaned Dead
    program = parse_program(result.text)
    assert program.idb_predicates() == {"W", "Goal"}


def test_fix_is_idempotent():
    once = fix_source(UNUSED, goal="Goal")
    twice = fix_source(once.text, goal="Goal")
    assert not twice.changed
    assert twice.text == once.text
    assert twice.passes == 0


def test_fixed_program_is_clean_of_fixable_codes():
    result = fix_source(DUPLICATES + UNUSED.replace("# goal: Goal\n", ""),
                        goal="Goal")
    source = parse_program_source(result.text)
    report = analyze_query(source.program(), source=source, goal="Goal")
    assert not (report.codes() & FIXABLE_CODES)


def test_erroneous_program_never_modified():
    bad = "W(x) <- A(x).\nW(x,y) <- A(x), B(y).\n"  # E001 arity clash
    result = fix_source(bad)
    assert result.text == bad
    assert not result.changed


def test_comments_and_layout_survive():
    text = "# goal: Goal\n% keep me\nW(x) <- U(x).\nW(y) <- U(y).\nGoal() <- W(x).\n"
    result = fix_source(text, goal="Goal")
    assert "% keep me" in result.text
    assert result.text.count("W(") == 2  # one head + one use in Goal


def test_spans_valid_after_fix():
    """Diagnostics on the fixed text point at real positions in it."""
    result = fix_source(UNUSED, goal="Goal")
    source = parse_program_source(result.text)
    lines = result.text.splitlines()
    for entry in source.entries:
        span = entry.span
        assert 1 <= span.line <= len(lines)
        assert lines[span.line - 1][span.col - 1] not in (" ", "")


def test_cli_fix_rewrites_file_and_is_idempotent(tmp_path, capsys):
    path = tmp_path / "query.txt"
    path.write_text(UNUSED)
    assert main(["lint", "--fix", str(path)]) == 0
    out_first = capsys.readouterr().out
    assert "fixed W106" in out_first
    fixed = path.read_text()

    assert main(["lint", "--fix", str(path)]) == 0
    out_second = capsys.readouterr().out
    assert "fixed" not in out_second
    assert path.read_text() == fixed


def test_cli_fix_json_reports_fixes(tmp_path, capsys):
    import json

    path = tmp_path / "query.txt"
    path.write_text(DUPLICATES)
    assert main(["lint", "--fix", "--format", "json", str(path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [f["code"] for f in payload["fixes"]] == ["W101"]
    assert payload["summary"]["warnings"] == 0
