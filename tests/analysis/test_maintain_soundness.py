"""Property safety net for the maintainability analysis.

``--check-maintenance`` is only worth its exit code if the predictions
in :mod:`repro.analysis.maintain` are *sound*: no maintenance round —
any update interleaving, any backend, optimizer on or off — may ever
move more facts than the per-predicate delta bounds predicted, and a
stratum the analysis proves counting-safe must maintain correctly
without the DRed machinery.  Hypothesis hunts for a program × base ×
update-schedule triple that breaks either claim, over the same
adversarial pool the cost-soundness suite uses.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.maintain import maintain_report, maintenance_checking
from repro.core.instance import Instance
from repro.ivm import MaterializedView

from tests.analysis.test_cost_soundness import (
    _CONSTS,
    edb_instances,
    programs_with_constants,
)

_BACKENDS = ("interpreted", "columnar")


@st.composite
def update_schedules(draw) -> list[tuple[list, list]]:
    """1–4 rounds, each inserting 0–3 and retracting 0–2 EDB facts
    (retractions of absent facts are legal no-ops, so the pool is
    unconstrained)."""
    pool = _CONSTS + [3, "b"]

    def fact(pred, arity):
        return (
            pred, tuple(draw(st.sampled_from(pool)) for _ in range(arity))
        )

    rounds = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        inserts = [
            fact(*draw(st.sampled_from([("R", 2), ("U", 1)])))
            for _ in range(draw(st.integers(min_value=0, max_value=3)))
        ]
        retracts = [
            fact(*draw(st.sampled_from([("R", 2), ("U", 1)])))
            for _ in range(draw(st.integers(min_value=0, max_value=2)))
        ]
        rounds.append((inserts, retracts))
    return rounds


def _context(program, base, schedule):
    return (
        f"\nprogram:\n{program!r}\nbase:\n{base.pretty()}\n"
        f"schedule: {schedule!r}"
    )


@given(
    program=programs_with_constants(),
    base=edb_instances(),
    schedule=update_schedules(),
)
@settings(max_examples=60, deadline=None)
def test_measured_deltas_stay_within_predicted_bounds(
    program, base, schedule
):
    """The deployed form of the property: the ambient guard audits
    every round against bounds recomputed on the pre-round base and
    must flag nothing."""
    view = MaterializedView(program, base.copy())
    with maintenance_checking() as guard:
        for inserts, retracts in schedule:
            view.apply(inserts=inserts, retracts=retracts)
            assert view.state == view.recompute(), (
                "maintenance diverged from the oracle"
                + _context(program, base, schedule)
            )
    summary = guard.summary()
    assert summary["checks"] == len(schedule)
    assert summary["violations"] == [], (
        f"UNSOUND maintenance prediction:\n{summary['violations']}"
        + _context(program, base, schedule)
    )


@given(
    program=programs_with_constants(),
    base=edb_instances(),
    schedule=update_schedules(),
)
@settings(max_examples=25, deadline=None)
def test_counting_safe_strata_maintain_correctly_everywhere(
    program, base, schedule
):
    """Wherever the analysis proves a stratum counting-safe the view
    maintains it by counting — and the result must still equal the
    from-scratch fixpoint across backends × optimizer settings."""
    report = maintain_report(program)
    safe = {
        pred
        for stratum in report.strata
        if stratum.counting_safe
        for pred in stratum.predicates
    }
    for backend in _BACKENDS:
        for optimize in (False, True):
            view = MaterializedView(
                program, base.copy(), optimize=optimize, backend=backend
            )
            strategies = view.maintenance_strategies()
            for pred in safe:
                assert strategies.get(pred) == "counting", (
                    f"{pred} proved counting-safe but maintained by "
                    f"{strategies.get(pred)} "
                    f"[{backend}/optimize={optimize}]"
                    + _context(program, base, schedule)
                )
            for inserts, retracts in schedule:
                view.apply(inserts=inserts, retracts=retracts)
                assert view.state == view.recompute(), (
                    f"counting maintenance diverged "
                    f"[{backend}/optimize={optimize}]"
                    + _context(program, base, schedule)
                )


@given(
    program=programs_with_constants(),
    base=edb_instances(),
    schedule=update_schedules(),
)
@settings(max_examples=25, deadline=None)
def test_predict_delta_covers_the_measured_round(program, base, schedule):
    """The serve-admission entry point: the bound asked for *before*
    a round must cover the net facts the round actually moves."""
    view = MaterializedView(program, base.copy())
    for inserts, retracts in schedule:
        predicted = view.predict_delta(len(inserts) + len(retracts))
        round_ = view.apply(inserts=inserts, retracts=retracts)
        measured = sum(len(rows) for rows in round_.plus.values())
        measured += sum(len(rows) for rows in round_.minus.values())
        assert predicted is not None and measured <= predicted, (
            f"predict_delta unsound: measured {measured} > "
            f"predicted {predicted}"
            + _context(program, base, schedule)
        )
