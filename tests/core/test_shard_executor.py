"""The sharded parallel fixpoint: equivalence, gating, stats, guard."""

from __future__ import annotations

from repro.analysis.shard import sharding_checking
from repro.core import parse_program
from repro.core.evaluation import fixpoint
from repro.core.instance import Instance
from repro.core.shard import (
    SHARD_MIN_FACTS,
    default_shards,
    set_default_shards,
    sharded_fixpoint,
)
from repro.core.stats import EngineStats


def _tenant_program():
    return parse_program(
        """
        Reach(g,x,y) <- E(g,x,y).
        Reach(g,x,y) <- E(g,x,z), Reach(g,z,y).
        """
    )


def _tenant_instance(tenants: int, nodes: int) -> Instance:
    return Instance.from_tuples({
        "E": [
            (t, i, i + 1)
            for t in range(tenants)
            for i in range(nodes - 1)
        ]
    })


def _tc_program():
    return parse_program(
        """
        Reach(x,y) <- E(x,y).
        Reach(x,y) <- E(x,z), Reach(z,y).
        """
    )


def _chain_instance(nodes: int) -> Instance:
    return Instance.from_tuples({
        "E": [(i, i + 1) for i in range(nodes - 1)]
    })


def test_communication_free_matches_single_process():
    program = _tenant_program()
    base = _tenant_instance(16, 20)
    assert len(base) >= SHARD_MIN_FACTS
    stats = EngineStats()
    sharded = sharded_fixpoint(program, base, 2, stats=stats)
    single = fixpoint(program, base)
    assert sharded == single
    assert stats.shard_workers == 2
    assert stats.shard_exchanged_rows == 0
    assert stats.shard_local_rounds > 0


def test_exchange_required_matches_single_process():
    program = _tc_program()
    base = _chain_instance(280)
    assert len(base) >= SHARD_MIN_FACTS
    stats = EngineStats()
    sharded = sharded_fixpoint(program, base, 2, stats=stats)
    single = fixpoint(program, base)
    assert sharded == single
    assert stats.shard_exchanged_rows > 0


def test_small_instances_run_single_process():
    program = _tenant_program()
    base = _tenant_instance(3, 5)  # well under SHARD_MIN_FACTS
    stats = EngineStats()
    sharded = sharded_fixpoint(program, base, 4, stats=stats)
    assert stats.shard_workers == 0  # no pool was ever spawned
    assert sharded == fixpoint(program, base)


def test_one_shard_is_the_plain_fixpoint():
    program = _tc_program()
    base = _chain_instance(280)
    stats = EngineStats()
    result = sharded_fixpoint(program, base, 1, stats=stats)
    assert stats.shard_workers == 0
    assert result == fixpoint(program, base)


def test_fixpoint_routes_through_the_shards_argument():
    program = _tenant_program()
    base = _tenant_instance(16, 20)
    stats = EngineStats()
    sharded = fixpoint(program, base, stats=stats, shards=2)
    assert stats.shard_workers == 2
    assert sharded == fixpoint(program, base)


def test_default_shards_is_ambient_and_restorable():
    assert default_shards() == 0
    previous = set_default_shards(2)
    try:
        assert previous == 0
        assert default_shards() == 2
        program = _tenant_program()
        base = _tenant_instance(16, 20)
        stats = EngineStats()
        result = fixpoint(program, base, stats=stats)
        assert stats.shard_workers == 2
        assert result == fixpoint(program, base, shards=0)
    finally:
        set_default_shards(previous)
    assert default_shards() == 0


def test_guard_audits_the_sharded_run_clean():
    program = _tenant_program()
    base = _tenant_instance(16, 20)
    with sharding_checking() as guard:
        sharded_fixpoint(program, base, 2)
    summary = guard.summary()
    assert summary["strata"] >= 1
    assert summary["facts"] > 0
    assert summary["violations"] == []


def test_sharded_strategies_and_backends_agree():
    program = _tc_program()
    base = _chain_instance(280)
    single = fixpoint(program, base)
    for strategy in ("seminaive", "stratified"):
        for backend in ("interpreted", "columnar"):
            sharded = sharded_fixpoint(
                program, base, 2, strategy=strategy, backend=backend
            )
            assert sharded == single, (strategy, backend)


def test_mixed_classification_program_is_correct():
    # one comm-free stratum, one sequential (cartesian) stratum
    program = parse_program(
        """
        Reach(g,x,y) <- E(g,x,y).
        Reach(g,x,y) <- E(g,x,z), Reach(g,z,y).
        Pair(g,h) <- Tag(g), Tag(h).
        """
    )
    base = _tenant_instance(16, 20)
    for t in range(16):
        base.add_tuple("Tag", (t,))
    sharded = sharded_fixpoint(program, base, 2)
    assert sharded == fixpoint(program, base)


def test_worker_stats_are_merged_into_the_ambient_collector():
    from repro.core import stats as _stats

    program = _tenant_program()
    base = _tenant_instance(16, 20)
    with _stats.collecting() as collector:
        sharded_fixpoint(program, base, 2)
    assert collector.shard_workers == 2
    assert collector.facts_derived > 0
