"""Terms, atoms and facts."""

import pytest

from repro.core.atoms import Atom, atoms_constants, atoms_variables, make_fact
from repro.core.terms import (
    Variable,
    is_constant,
    is_variable,
    term_constants,
    term_variables,
    variables,
)


def test_variables_helper_splits_names():
    x, y, z = variables("x, y z")
    assert x == Variable("x")
    assert (y.name, z.name) == ("y", "z")


def test_variable_identity_is_by_name():
    assert Variable("x") == Variable("x")
    assert Variable("x") != Variable("y")
    assert len({Variable("x"), Variable("x")}) == 1


def test_is_variable_and_constant():
    assert is_variable(Variable("x"))
    assert not is_variable("x")
    assert is_constant(3)
    assert not is_constant(Variable("v"))


def test_term_partitions():
    x = Variable("x")
    terms = [x, "a", 3, Variable("y")]
    assert term_variables(terms) == {x, Variable("y")}
    assert term_constants(terms) == {"a", 3}


def test_atom_stores_tuple_args():
    atom = Atom("R", [Variable("x"), "a"])
    assert atom.args == (Variable("x"), "a")
    assert atom.arity == 2


def test_atom_variables_and_constants():
    atom = Atom("R", (Variable("x"), "a", Variable("x")))
    assert atom.variables() == {Variable("x")}
    assert atom.constants() == {"a"}


def test_atom_groundness():
    assert Atom("R", (1, 2)).is_ground()
    assert not Atom("R", (Variable("x"), 2)).is_ground()
    assert Atom("Nullary", ()).is_ground()


def test_atom_substitute_partial():
    x, y = variables("x y")
    atom = Atom("R", (x, y, "c"))
    out = atom.substitute({x: 1})
    assert out == Atom("R", (1, y, "c"))


def test_atom_substitute_variable_to_variable():
    x, y, z = variables("x y z")
    assert Atom("R", (x, y)).substitute({x: z}) == Atom("R", (z, y))


def test_make_fact_rejects_variables():
    with pytest.raises(ValueError):
        make_fact("R", Variable("x"))
    assert make_fact("R", 1, 2) == Atom("R", (1, 2))


def test_atoms_variables_union():
    x, y = variables("x y")
    atoms = [Atom("R", (x, "a")), Atom("S", (y,))]
    assert atoms_variables(atoms) == {x, y}
    assert atoms_constants(atoms) == {"a"}


def test_atoms_hashable_in_sets():
    x = Variable("x")
    assert len({Atom("R", (x,)), Atom("R", (x,))}) == 1
