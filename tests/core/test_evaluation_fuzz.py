"""Differential fuzzing of the evaluation engines.

Random safe Datalog programs + random instances: naive and semi-naive
fixpoints must agree, and the bounded approximation semantics (Prop. 1)
must match on small instances.
"""

import random

import pytest
from hypothesis import strategies as st

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.evaluation import naive_fixpoint, seminaive_fixpoint
from repro.core.instance import Instance
from repro.core.terms import Variable


def _random_program(
    rng: random.Random, max_idb_atoms: int = 2
) -> DatalogProgram:
    """A random safe MDL-ish program over EDBs R/2, U/1 with IDBs A, B.

    ``max_idb_atoms=1`` yields linear programs (bounded expansion
    counts, needed by the approximation-based oracle).
    """
    variables = [Variable(n) for n in "xyzw"]
    idbs = ["A", "B"]

    def random_atom(pred_pool):
        pred, arity = rng.choice(pred_pool)
        return Atom(pred, tuple(rng.choice(variables) for _ in range(arity)))

    rules = []
    for idb in idbs:
        n_rules = rng.randint(1, 3)
        for _ in range(n_rules):
            body = [random_atom([("R", 2), ("U", 1)])]
            idb_used = 0
            for _ in range(rng.randint(0, 2)):
                pool = [("R", 2), ("U", 1)]
                if idb_used < max_idb_atoms:
                    pool += [("A", 1), ("B", 1)]
                atom = random_atom(pool)
                if atom.pred in ("A", "B"):
                    idb_used += 1
                body.append(atom)
            body_vars = set()
            for atom in body:
                body_vars |= atom.variables()
            head_var = rng.choice(sorted(body_vars, key=repr))
            rules.append(Rule(Atom(idb, (head_var,)), tuple(body)))
    return DatalogProgram(tuple(rules))


def _random_instance(rng: random.Random) -> Instance:
    n = rng.randint(1, 4)
    inst = Instance()
    for _ in range(rng.randint(0, 8)):
        inst.add_tuple("R", (rng.randrange(n), rng.randrange(n)))
    for _ in range(rng.randint(0, 3)):
        inst.add_tuple("U", (rng.randrange(n),))
    return inst


@pytest.mark.parametrize("seed", range(40))
def test_naive_equals_seminaive_fuzz(seed):
    rng = random.Random(seed)
    program = _random_program(rng)
    instance = _random_instance(rng)
    assert naive_fixpoint(program, instance) == seminaive_fixpoint(
        program, instance
    )


@pytest.mark.parametrize("seed", range(20))
def test_prop1_fuzz(seed):
    """Evaluation == union of approximation matches (small instances)."""
    from repro.core.approximation import approximations

    rng = random.Random(1000 + seed)
    program = _random_program(rng, max_idb_atoms=1)  # linear: bounded
    instance = _random_instance(rng)
    query = DatalogQuery(program, "A")
    expected = query.evaluate(instance)
    got = set()
    try:
        for cq in approximations(query, 4, max_count=200):
            got |= cq.evaluate(instance)
    except ValueError:
        pytest.skip("random program hit an unsupported expansion shape")
    # approximations of bounded depth under-approximate; on instances
    # with <= 4 elements, depth 5 covers every derivation of A except
    # very deep recursions — assert soundness always, completeness when
    # the fixpoint is shallow
    assert got <= expected
    if _fixpoint_depth(program, instance) <= 3:
        assert got == expected


def _fixpoint_depth(program: DatalogProgram, instance: Instance) -> int:
    """Number of semi-naive rounds until the fixpoint stabilizes."""
    from repro.core.evaluation import _rule_derivations

    state = instance.copy()
    rounds = 0
    changed = True
    while changed:
        derived = [
            fact
            for rule in program.rules
            for fact in _rule_derivations(rule, state)
        ]
        changed = False
        for fact in derived:
            if state.add(fact):
                changed = True
        if changed:
            rounds += 1
    return rounds
