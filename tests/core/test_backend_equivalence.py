"""Property safety net: ``interpreted`` ≡ ``columnar`` everywhere.

Random safe programs — with constants in bodies *and* heads, repeated
variables, ``None`` as an ordinary data value, empty relations — must
produce identical fixpoints on both backends across every strategy and
with the optimizer on and off.  The naive interpreted strategy is the
correctness oracle (the same role it plays for the interpreted
engine's own delta machinery, and the one the independent certificate
checker replays with).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.evaluation import fixpoint
from repro.core.instance import Instance
from repro.core.terms import Variable

_VARS = [Variable(n) for n in "xyzw"]
#: None is deliberately in the pool: it is legitimate data, not a
#: wildcard (the ANY sentinel is pattern-only and unstorable), and the
#: columnar engine must hash/join it like any other value.
_CONSTS = [0, 1, 2, "a", None]
_EDB = [("R", 2), ("U", 1), ("Empty", 1)]
_IDB = [("P", 2), ("Q", 1), ("G", 1)]

_STRATEGIES = ("naive", "seminaive", "stratified")


@st.composite
def programs_with_constants(draw) -> DatalogProgram:
    """Safe programs over R/2, U/1, Empty/1 → P/2, Q/1, G/1.

    Body terms are variables or constants; head terms are drawn from
    the body's variables or the constant pool (constant-in-head was a
    PR-1 regression).  ``Empty`` never receives facts, so some bodies
    join against a genuinely empty relation.
    """
    rules = []
    for _ in range(draw(st.integers(min_value=2, max_value=5))):
        body = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            pred, arity = draw(st.sampled_from(_EDB + _IDB))
            terms = tuple(
                draw(
                    st.one_of(
                        st.sampled_from(_VARS), st.sampled_from(_CONSTS)
                    )
                )
                for _ in range(arity)
            )
            body.append(Atom(pred, terms))
        body_vars = sorted(
            {v for a in body for v in a.variables()}, key=lambda v: v.name
        )
        head_terms = body_vars if body_vars else _CONSTS
        pred, arity = draw(st.sampled_from(_IDB))
        head = Atom(
            pred,
            tuple(
                draw(st.sampled_from(head_terms)) for _ in range(arity)
            ),
        )
        rules.append(Rule(head, body))
    return DatalogProgram(rules)


@st.composite
def edb_instances(draw) -> Instance:
    """Small instances over R/2 and U/1; Empty/1 stays empty, and the
    element pool overlaps the programs' constant pool (incl. None)."""
    inst = Instance()
    for pred, arity in (("R", 2), ("U", 1)):
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            inst.add_tuple(
                pred,
                tuple(
                    draw(st.sampled_from(_CONSTS + [3, "b"]))
                    for _ in range(arity)
                ),
            )
    return inst


@given(program=programs_with_constants(), instance=edb_instances())
@settings(max_examples=60, deadline=None)
def test_columnar_matches_interpreted_across_strategies(program, instance):
    oracle = fixpoint(
        program, instance, strategy="naive", backend="interpreted"
    )
    for strategy in _STRATEGIES:
        for backend in ("interpreted", "columnar"):
            result = fixpoint(
                program, instance, strategy=strategy, backend=backend
            )
            assert result == oracle, (
                f"{backend}/{strategy} disagrees with the naive oracle:\n"
                f"program:\n{program!r}\n"
                f"instance:\n{instance.pretty()}\n"
                f"oracle:\n{oracle.pretty()}\n"
                f"got:\n{result.pretty()}"
            )


@given(program=programs_with_constants(), instance=edb_instances())
@settings(max_examples=40, deadline=None)
def test_columnar_matches_interpreted_under_optimize(program, instance):
    for optimize in (False, True):
        expected = fixpoint(
            program, instance, optimize=optimize, backend="interpreted"
        )
        assert (
            fixpoint(
                program, instance, optimize=optimize, backend="columnar"
            )
            == expected
        )


@given(program=programs_with_constants(), instance=edb_instances())
@settings(max_examples=30, deadline=None)
def test_query_evaluate_is_backend_and_optimize_invariant(
    program, instance
):
    """Goal relations agree for every goal × optimize × backend cell
    (the optimized path may route through magic sets, whose derived
    programs must also evaluate identically on both backends)."""
    for goal in sorted(program.idb_predicates()):
        query = DatalogQuery(program, goal)
        expected = query.evaluate(instance, optimize=False)
        for optimize in (False, True):
            for backend in ("interpreted", "columnar"):
                got = query.evaluate(
                    instance, optimize=optimize, backend=backend
                )
                assert got == expected, (
                    f"goal {goal}, optimize={optimize}, "
                    f"backend={backend}:\nprogram:\n{program!r}\n"
                    f"instance:\n{instance.pretty()}"
                )


def test_columnar_on_the_empty_instance():
    program = DatalogProgram([
        Rule(
            Atom("P", (Variable("x"), Variable("y"))),
            [Atom("R", (Variable("x"), Variable("y")))],
        ),
    ])
    empty = Instance()
    for strategy in _STRATEGIES:
        result = fixpoint(
            program, empty, strategy=strategy, backend="columnar"
        )
        assert result == empty


def test_columnar_constant_only_rule_and_zero_arity_goal():
    """Facts-as-rules and 0-ary (boolean) heads, a PR-1 edge case."""
    program = DatalogProgram([
        Rule(Atom("P", (1, 2)), []),
        Rule(
            Atom("G", ()),
            [Atom("P", (Variable("x"), 2))],
        ),
        Rule(
            Atom("Q", (7,)),
            [Atom("G", ())],
        ),
    ])
    for strategy in _STRATEGIES:
        result = fixpoint(
            program, Instance(), strategy=strategy, backend="columnar"
        )
        assert result == fixpoint(program, Instance(), strategy=strategy)
        assert () in result.tuples("G")
        assert (7,) in result.tuples("Q")


def test_columnar_repeated_variables_and_none_data():
    """Self-join positions and None values: equality must be exact —
    None joins None and nothing else."""
    program = DatalogProgram([
        Rule(
            Atom("Q", (Variable("x"),)),
            [Atom("R", (Variable("x"), Variable("x")))],
        ),
        Rule(
            Atom("P", (Variable("x"), Variable("y"))),
            [
                Atom("R", (Variable("x"), None)),
                Atom("R", (None, Variable("y"))),
            ],
        ),
    ])
    inst = Instance.from_tuples({
        "R": [(1, 1), (1, 2), (None, None), (2, None), (None, 3)],
    })
    for strategy in _STRATEGIES:
        a = fixpoint(program, inst, strategy=strategy)
        b = fixpoint(program, inst, strategy=strategy, backend="columnar")
        assert a == b, strategy
    assert b.tuples("Q") == {(1,), (None,)}
    assert (2, 3) in b.tuples("P")


def test_columnar_cartesian_product_body():
    """Disconnected bodies degrade to a cross join, not a crash."""
    program = DatalogProgram([
        Rule(
            Atom("P", (Variable("x"), Variable("y"))),
            [
                Atom("U", (Variable("x"),)),
                Atom("V", (Variable("y"),)),
            ],
        ),
    ])
    inst = Instance.from_tuples({"U": [(1,), (2,)], "V": [("a",), ("b",)]})
    for strategy in _STRATEGIES:
        result = fixpoint(
            program, inst, strategy=strategy, backend="columnar"
        )
        assert result == fixpoint(program, inst, strategy=strategy)
        assert len(result.tuples("P")) == 4
