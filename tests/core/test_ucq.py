"""Unions of conjunctive queries."""

import pytest

from repro.core.parser import parse_cq, parse_instance, parse_ucq
from repro.core.ucq import UCQ, as_ucq


def test_empty_union_rejected():
    with pytest.raises(ValueError):
        UCQ(())


def test_mixed_arities_rejected():
    with pytest.raises(ValueError):
        UCQ((parse_cq("Q(x) <- R(x,y)"), parse_cq("Q() <- R(x,y)")))


def test_evaluate_is_union():
    ucq = parse_ucq(
        """
        Q(x) <- R(x,y).
        Q(x) <- S(x).
        """
    )
    inst = parse_instance("R('a','b'). S('c').")
    assert ucq.evaluate(inst) == {("a",), ("c",)}


def test_boolean():
    ucq = parse_ucq(
        """
        Q() <- R(x,x).
        Q() <- S(x).
        """
    )
    assert ucq.boolean(parse_instance("S('c')."))
    assert not ucq.boolean(parse_instance("R('a','b')."))


def test_sagiv_yannakakis_containment():
    # {R path2, S} ⊑ {R path1, S}
    sub = parse_ucq(
        """
        Q() <- R(x,y), R(y,z).
        Q() <- S(x).
        """
    )
    sup = parse_ucq(
        """
        Q() <- R(x,y).
        Q() <- S(x).
        """
    )
    assert sub.is_contained_in(sup)
    assert not sup.is_contained_in(sub)


def test_containment_needs_per_disjunct_witness():
    # Q1 = R∧S is contained in Q2 = R ∨ S, but not vice versa
    sub = parse_ucq("Q() <- R(x,y), S(z).")
    sup = parse_ucq(
        """
        Q() <- R(x,y).
        Q() <- S(z).
        """
    )
    assert sub.is_contained_in(sup)
    assert not sup.is_contained_in(sub)


def test_simplify_drops_subsumed():
    ucq = parse_ucq(
        """
        Q() <- R(x,y).
        Q() <- R(x,y), R(y,z).
        """
    )
    simplified = ucq.simplify()
    assert len(simplified) == 1
    assert simplified.is_equivalent_to(ucq)


def test_simplify_keeps_equivalent_representative():
    ucq = parse_ucq(
        """
        Q() <- R(x,y).
        Q() <- R(u,v).
        """
    )
    assert len(ucq.simplify()) == 1


def test_as_ucq_coercions():
    cq = parse_cq("Q(x) <- R(x,y)")
    assert len(as_ucq(cq)) == 1
    ucq = as_ucq(cq)
    assert as_ucq(ucq) is ucq
    with pytest.raises(TypeError):
        as_ucq("not a query")


def test_predicates():
    ucq = parse_ucq(
        """
        Q() <- R(x,y).
        Q() <- S(z).
        """
    )
    assert ucq.predicates() == {"R", "S"}
