"""Gaifman graphs, schemas, and small utilities."""

import math

import pytest

from repro.core.atoms import Atom
from repro.core.gaifman import (
    connected_components,
    distance,
    gaifman_graph,
    is_connected,
    radius,
)
from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.schema import Schema
from repro.util.fresh import FreshNames, name_stream


def test_gaifman_graph_edges():
    inst = parse_instance("T('a','b','c'). R('c','d').")
    graph = gaifman_graph(inst)
    assert graph.has_edge("a", "b") and graph.has_edge("b", "c")
    assert graph.has_edge("c", "d")
    assert not graph.has_edge("a", "d")


def test_radius_values():
    path = parse_instance("R('a','b'). R('b','c').")
    assert radius(path) == 1  # center b
    assert radius(parse_instance("U('a').")) == 0
    disconnected = parse_instance("U('a'). U('b').")
    assert math.isinf(radius(disconnected))


def test_connected_components_split():
    inst = parse_instance("R('a','b'). R('x','y'). Flag().")
    parts = connected_components(inst)
    assert len(parts) == 2
    # the nullary fact attaches to both components
    for part in parts:
        assert part.has_tuple("Flag", ())


def test_connected_components_nullary_only():
    inst = parse_instance("Flag().")
    parts = connected_components(inst)
    assert len(parts) == 1 and parts[0].has_tuple("Flag", ())


def test_distance():
    inst = parse_instance("R('a','b'). R('b','c').")
    assert distance(inst, "a", "c") == 2
    assert math.isinf(distance(inst, "a", "zzz"))


def test_is_connected_trivial_cases():
    assert is_connected(Instance())
    assert is_connected(parse_instance("U('a')."))


def test_schema_union_and_restrict():
    left = Schema({"R": 2, "U": 1})
    right = Schema({"S": 3, "U": 1})
    merged = left.union(right)
    assert merged.names() == {"R", "S", "U"}
    assert merged.restrict(["R"]).names() == {"R"}
    with pytest.raises(ValueError):
        left.union(Schema({"R": 3}))


def test_schema_check_and_inference():
    schema = Schema({"R": 2})
    schema.check(Atom("R", (1, 2)))
    with pytest.raises(ValueError):
        schema.check(Atom("R", (1,)))
    with pytest.raises(ValueError):
        schema.check(Atom("S", (1,)))
    inferred = Schema.from_atoms([Atom("R", (1, 2)), Atom("U", (3,))])
    assert inferred.arity("U") == 1
    with pytest.raises(ValueError):
        Schema.from_atoms([Atom("R", (1, 2)), Atom("R", (1,))])


def test_fresh_names():
    fresh = FreshNames("null")
    first, second = fresh(), fresh()
    assert first != second and first.startswith("null_")
    assert len(fresh.take(3)) == 3
    stream = name_stream("p")
    assert next(stream) == "p_0" and next(stream) == "p_1"


def test_instance_pretty_is_stable():
    inst = parse_instance("R('b','a'). R('a','b'). U('z').")
    assert inst.pretty() == inst.copy().pretty()
    assert "U('z')" in inst.pretty()
