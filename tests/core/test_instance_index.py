"""Regression tests for the positional index and pattern-slot semantics.

Covers three latent bugs of the original engine:

* ``None`` acting as a wildcard both in patterns and (via unbound
  variables in ``_pattern``) in homomorphism search, so instances
  containing ``None`` as a *data element* matched incorrectly;
* stale rows lingering in the index after ``discard`` being filtered on
  every ``matching`` call even when no discard ever happened;
* ``count_matching`` scanning all candidates instead of using the
  maintained cardinality counts.
"""

import random

import pytest

from repro.core.atoms import Atom, Fact
from repro.core.homomorphism import homomorphisms
from repro.core.instance import ANY, Instance
from repro.core.parser import parse_cq
from repro.core.terms import Variable


# ---------------------------------------------------------------------------
# None is a data element, ANY is the wildcard
# ---------------------------------------------------------------------------
def test_none_data_element_is_not_a_wildcard():
    inst = Instance.of(Fact("R", (None, 1)), Fact("R", (2, 3)))
    # pattern slot None must match only the value None
    assert set(inst.matching("R", (None, ANY))) == {(None, 1)}
    # the wildcard still matches everything, including None
    assert set(inst.matching("R", (ANY, ANY))) == {(None, 1), (2, 3)}
    assert inst.count_matching("R", (None, ANY)) == 1
    assert inst.count_matching("R", (ANY, ANY)) == 2


def test_variable_bound_to_none_stays_bound_in_homomorphism():
    # Seed bug: after binding x=None the join pattern for S(x,y) became
    # (None, None) == "scan everything" and x was silently *rebound*,
    # yielding the bogus answer {x: 2, y: 3}.
    inst = Instance.of(
        Fact("R", (None,)), Fact("S", (None, 1)), Fact("S", (2, 3))
    )
    q = parse_cq("Q(x,y) <- R(x), S(x,y)")
    homs = list(homomorphisms(q.atoms, inst))
    assert homs == [{Variable("x"): None, Variable("y"): 1}]


def test_constant_none_in_atom_matches_exactly():
    inst = Instance.of(Fact("R", (None, "a")), Fact("R", ("b", "a")))
    atom = Atom("R", (None, Variable("y")))
    homs = list(homomorphisms([atom], inst))
    assert homs == [{Variable("y"): "a"}]


def test_any_sentinel_rejected_as_data():
    inst = Instance()
    with pytest.raises(ValueError):
        inst.add_tuple("R", (ANY, 1))


# ---------------------------------------------------------------------------
# incremental index maintenance
# ---------------------------------------------------------------------------
def test_add_after_index_build_is_visible():
    inst = Instance.of(Fact("R", (1, 2)))
    assert set(inst.matching("R", (1, ANY))) == {(1, 2)}  # builds index
    inst.add_tuple("R", (1, 3))  # must update the live index in place
    assert set(inst.matching("R", (1, ANY))) == {(1, 2), (1, 3)}
    assert inst.count_matching("R", (1, ANY)) == 2


def test_discard_then_reAdd_does_not_duplicate_matches():
    inst = Instance.of(Fact("R", (1, 2)), Fact("R", (1, 3)))
    list(inst.matching("R", (1, ANY)))  # build index
    inst.discard(Atom("R", (1, 2)))
    assert set(inst.matching("R", (1, ANY))) == {(1, 3)}
    assert inst.count_matching("R", (1, ANY)) == 1
    inst.add_tuple("R", (1, 2))  # re-add a tombstoned row
    assert sorted(inst.matching("R", (1, ANY))) == [(1, 2), (1, 3)]
    assert inst.count_matching("R", (1, ANY)) == 2


def test_counts_stay_exact_under_churn():
    rng = random.Random(5)
    inst = Instance()
    shadow: set[tuple] = set()
    for step in range(400):
        row = (rng.randrange(6), rng.randrange(6))
        if rng.random() < 0.65:
            inst.add_tuple("R", row)
            shadow.add(row)
        else:
            inst.discard(Atom("R", row))
            shadow.discard(row)
        if step % 7 == 0:  # exercise the index path mid-churn
            val = rng.randrange(6)
            expected = {r for r in shadow if r[0] == val}
            assert set(inst.matching("R", (val, ANY))) == expected
            assert inst.count_matching("R", (val, ANY)) == len(expected)
            # multi-bound pattern takes the exact slow path
            val2 = rng.randrange(6)
            expected2 = {r for r in shadow if r[0] == val and r[1] == val2}
            assert inst.count_matching("R", (val, val2)) == len(expected2)
    assert set(inst.tuples("R")) == shadow


def test_count_matching_unbound_is_relation_size():
    inst = Instance.of(Fact("R", (1, 2)), Fact("R", (3, 4)))
    assert inst.count_matching("R", (ANY, ANY)) == 2
    assert inst.count_matching("S", (ANY,)) == 0
    assert inst.size("R") == 2
    assert inst.size("S") == 0


# ---------------------------------------------------------------------------
# structural hashing
# ---------------------------------------------------------------------------
def test_equal_instances_hash_equal():
    # Seed bug: identity __hash__ with structural __eq__ meant equal
    # instances landed in different hash buckets, silently duplicating
    # states in any set/dict of instances.
    a = Instance.of(Fact("R", (1, 2)), Fact("S", ("x",)))
    b = Instance()
    b.add_tuple("S", ("x",))
    b.add_tuple("R", (1, 2))
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_frozen_key_is_structural_snapshot():
    a = Instance.of(Fact("R", (1, 2)))
    key = a.frozen_key()
    assert key == frozenset({("R", (1, 2))})
    a.add_tuple("R", (3, 4))
    assert a.frozen_key() != key  # snapshot, not a live view


def test_empty_relations_do_not_affect_hash():
    a = Instance.of(Fact("R", (1,)))
    b = Instance.of(Fact("R", (1,)), Fact("S", (2,)))
    b.discard(Atom("S", (2,)))
    assert a == b and hash(a) == hash(b)


# ---------------------------------------------------------------------------
# tombstone resurrection (the seam IVM retraction leans on)
# ---------------------------------------------------------------------------
def test_readd_after_discard_clears_the_tombstone():
    # Removing a fact and re-adding it in the same round must leave the
    # live index with zero stale entries: the resurrected row's index
    # entries are live again, so matching may skip its staleness filter.
    inst = Instance.of(Fact("R", (1, 2)), Fact("R", (1, 3)))
    assert set(inst.matching("R", (1, ANY))) == {(1, 2), (1, 3)}  # build
    inst.discard(Atom("R", (1, 2)))
    assert inst._dead == 1
    inst.add_tuple("R", (1, 2))
    assert inst._dead == 0
    assert set(inst.matching("R", (1, ANY))) == {(1, 2), (1, 3)}
    assert inst.count_matching("R", (1, ANY)) == 2
    # no duplicated index entry either: the bucket holds each row once
    assert inst._index[("R", 0, 1)].count((1, 2)) == 1


def test_resurrection_mixed_with_other_tombstones():
    inst = Instance.of(Fact("R", (1, 2)), Fact("R", (1, 3)), Fact("R", (2, 3)))
    list(inst.matching("R", (ANY, 3)))  # build the index
    inst.discard(Atom("R", (1, 3)))
    inst.discard(Atom("R", (2, 3)))
    assert inst._dead == 2
    inst.add_tuple("R", (1, 3))  # resurrect one of the two
    assert inst._dead == 1  # the other tombstone still needs filtering
    assert set(inst.matching("R", (ANY, 3))) == {(1, 3)}
    assert inst.count_matching("R", (ANY, 3)) == 1
    inst.add_tuple("R", (2, 3))
    assert inst._dead == 0
    assert set(inst.matching("R", (ANY, 3))) == {(1, 3), (2, 3)}


def test_resurrection_churn_stays_consistent():
    import random

    rng = random.Random(11)
    inst = Instance()
    shadow: set[tuple] = set()
    list(inst.matching("R", (0, ANY)))
    for _ in range(300):
        row = (rng.randrange(4), rng.randrange(4))
        if rng.random() < 0.5:
            inst.add_tuple("R", row)
            shadow.add(row)
        else:
            inst.discard(Atom("R", row))
            shadow.discard(row)
        assert inst._dead >= 0
        val = rng.randrange(4)
        assert set(inst.matching("R", (val, ANY))) == {
            r for r in shadow if r[0] == val
        }
    # every tombstone the counter reports corresponds to a stale row
    stale = sum(
        1
        for key, bucket in inst._index.items()
        if key[1] == 0
        for r in bucket
        if r not in inst._tuples.get("R", set())
    )
    assert inst._dead == stale
