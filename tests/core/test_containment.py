"""Containment procedures (exact and bounded)."""

import pytest

from repro.core.containment import (
    Verdict,
    cq_contained,
    cq_contained_in_datalog,
    datalog_contained_bounded,
    datalog_contained_in_ucq,
    datalog_equivalent_bounded,
    ucq_contained,
)
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_program, parse_ucq


@pytest.fixture
def reach_to_u():
    return DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")


def test_cq_contained_wrappers():
    assert cq_contained(
        parse_cq("Q() <- R(x,y), R(y,z)"), parse_cq("Q() <- R(u,v)")
    )
    assert ucq_contained(
        parse_cq("Q() <- R(x,y), R(y,z)"),
        parse_ucq("Q() <- R(u,v). Q() <- S(u)."),
    )


def test_cq_in_datalog_exact(reach_to_u):
    # S-point with U: contained
    assert cq_contained_in_datalog(
        parse_cq("Q() <- S(x), U(x)"), reach_to_u
    )
    # one R-hop to U: contained
    assert cq_contained_in_datalog(
        parse_cq("Q() <- S(x), R(x,y), U(y)"), reach_to_u
    )
    # S and U disconnected: NOT contained
    assert not cq_contained_in_datalog(
        parse_cq("Q() <- S(x), U(y)"), reach_to_u
    )


def test_ucq_in_datalog(reach_to_u):
    ucq = parse_ucq(
        """
        Q() <- S(x), U(x).
        Q() <- S(x), R(x,y), U(y).
        """
    )
    assert cq_contained_in_datalog(ucq, reach_to_u)


def test_datalog_in_cq_exact_yes(reach_to_u):
    result = datalog_contained_in_ucq(reach_to_u, parse_cq("C() <- U(y)"))
    assert result.verdict is Verdict.YES
    assert bool(result)


def test_datalog_in_cq_exact_no_with_counterexample(reach_to_u):
    result = datalog_contained_in_ucq(
        reach_to_u, parse_cq("C() <- S(x), U(x)")
    )
    assert result.verdict is Verdict.NO
    witness = result.counterexample
    assert witness is not None
    # the witness is a genuine separating expansion:
    assert cq_contained_in_datalog(witness, reach_to_u)
    assert not witness.is_contained_in(parse_cq("C() <- S(x), U(x)"))


def test_datalog_in_ucq_exact(reach_to_u):
    sup = parse_ucq(
        """
        C() <- S(x), U(x).
        C() <- S(x), R(x,y).
        """
    )
    assert datalog_contained_in_ucq(reach_to_u, sup).verdict is Verdict.YES


def test_datalog_in_ucq_bounded_mode(reach_to_u):
    refuted = datalog_contained_in_ucq(
        reach_to_u, parse_cq("C() <- S(x), U(x)"), max_depth=5
    )
    assert refuted.verdict is Verdict.NO
    unknown = datalog_contained_in_ucq(
        reach_to_u, parse_cq("C() <- U(y)"), max_depth=5
    )
    assert unknown.verdict is Verdict.UNKNOWN


def test_datalog_in_ucq_arity_mismatch(reach_to_u):
    result = datalog_contained_in_ucq(
        reach_to_u, parse_cq("C(x) <- S(x)")
    )
    assert result.verdict is Verdict.NO


def test_nonboolean_datalog_in_cq():
    q = DatalogQuery(parse_program(
        """
        T(x,y) <- R(x,y).
        T(x,y) <- R(x,z), T(z,y).
        """
    ), "T")
    # every T-pair starts and ends with an R-edge:
    result = datalog_contained_in_ucq(
        q, parse_cq("C(x,y) <- R(x,w), R(v,y)")
    )
    assert result.verdict is Verdict.YES
    result2 = datalog_contained_in_ucq(q, parse_cq("C(x,y) <- R(x,y)"))
    assert result2.verdict is Verdict.NO


def test_datalog_bounded_containment():
    path = DatalogQuery(parse_program(
        "P(x) <- U(x). P(x) <- R(x,y), P(y)."
    ), "P")
    loopy = DatalogQuery(parse_program("P2(x) <- U(x)."), "P2")
    refuted = datalog_contained_bounded(path, loopy, max_depth=4)
    assert refuted.verdict is Verdict.NO
    assert refuted.counterexample is not None
    unknown = datalog_contained_bounded(loopy, path, max_depth=4)
    assert unknown.verdict is Verdict.UNKNOWN


def test_datalog_equivalence_bounded(reach_query):
    clone = DatalogQuery(reach_query.program, reach_query.goal, "clone")
    res = datalog_equivalent_bounded(reach_query, clone, max_depth=4)
    assert res.verdict is Verdict.UNKNOWN  # "equivalent up to depth"
    other = DatalogQuery(parse_program("G(x) <- U(x)."), "G")
    res2 = datalog_equivalent_bounded(reach_query, other, max_depth=4)
    assert res2.verdict is Verdict.NO
