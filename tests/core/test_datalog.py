"""Datalog programs: classification and evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.evaluation import fixpoint, naive_fixpoint, seminaive_fixpoint
from repro.core.instance import Instance
from repro.core.parser import parse_instance, parse_program
from repro.core.terms import Variable

from tests.conftest import random_instance


def test_rule_safety():
    x, y = Variable("x"), Variable("y")
    with pytest.raises(ValueError):
        Rule(Atom("P", (x,)), (Atom("R", (y,)),))


def test_idb_edb_split():
    program = parse_program(
        """
        P(x) <- R(x,y), Q2(y).
        Q2(x) <- S(x).
        """
    )
    assert program.idb_predicates() == {"P", "Q2"}
    assert program.edb_predicates() == {"R", "S"}


def test_recursion_detection():
    recursive = parse_program("P(x) <- R(x,y), P(y). P(x) <- U(x).")
    assert recursive.is_recursive()
    flat = parse_program("P(x) <- R(x,y). Goal() <- P(x).")
    assert not flat.is_recursive()
    assert flat.fragment() == "nonrecursive"


def test_monadic_classification():
    mdl = parse_program("P(x) <- R(x,y), P(y). P(x) <- U(x).")
    assert mdl.is_monadic()
    assert mdl.fragment() == "MDL"
    binary = parse_program(
        "T(x,y) <- R(x,y). T(x,y) <- R(x,z), T(z,y)."
    )
    assert not binary.is_monadic()


def test_frontier_guarded_classification():
    fg = parse_program(
        """
        T(x,y) <- R(x,y).
        T(x,y) <- R(x,y), T(y,z), T(z,x).
        """
    )
    assert fg.is_frontier_guarded()
    assert fg.fragment() == "FGDL"
    not_fg = parse_program(
        """
        T(x,y) <- R(x,z), S(z,y).
        T(x,y) <- T(x,z), T(z,y).
        """
    )
    assert not not_fg.is_frontier_guarded()
    assert not_fg.fragment() == "Datalog"


def test_mdl_counts_as_frontier_guarded():
    # the paper's convention: I1(x) <- I2(x) is fine in MDL
    mdl = parse_program("I1(x) <- I2(x). I2(x) <- U(x).")
    assert mdl.is_monadic()
    assert mdl.is_frontier_guarded()


def test_transitive_closure_evaluation():
    program = parse_program(
        """
        T(x,y) <- R(x,y).
        T(x,y) <- R(x,z), T(z,y).
        """
    )
    inst = parse_instance("R(1,2). R(2,3). R(3,4).")
    full = fixpoint(program, inst)
    assert full.has_tuple("T", (1, 4))
    assert len(full.tuples("T")) == 6


def test_goal_evaluation(reach_query, path_instance):
    assert reach_query.evaluate(path_instance) == {
        ("a",), ("b",), ("c",), ("d",),
    }
    assert reach_query.holds(path_instance, ("a",))


def test_boolean_query():
    q = DatalogQuery(
        parse_program("Goal() <- R(x,y), R(y,x)."), "Goal"
    )
    assert not q.boolean(parse_instance("R(1,2)."))
    assert q.boolean(parse_instance("R(1,2). R(2,1)."))


def test_goal_must_be_idb():
    program = parse_program("P(x) <- R(x,y).")
    with pytest.raises(ValueError):
        DatalogQuery(program, "R")


def test_unconditional_fact_rules():
    program = DatalogProgram((Rule(Atom("Const", ()), ()),))
    assert fixpoint(program, Instance()).has_tuple("Const", ())


def test_input_idb_facts_used():
    """Prop 4-style instances carrying IDB facts are respected."""
    program = parse_program("P(x) <- R(x,y), P(y).")
    inst = parse_instance("R(1,2). P(2).")
    assert fixpoint(program, inst).has_tuple("P", (1,))


def test_relabel_idbs():
    q = DatalogQuery(
        parse_program("P(x) <- R(x,y), P(y). P(x) <- U(x)."), "P"
    )
    renamed = q.relabel_idbs("_v")
    assert renamed.goal == "P_v"
    assert "R" in renamed.program.edb_predicates()
    inst = parse_instance("R(1,2). U(2).")
    assert renamed.evaluate(inst) == q.evaluate(inst)


@pytest.mark.parametrize("seed", range(12))
def test_naive_equals_seminaive_on_random_instances(seed):
    program = parse_program(
        """
        T(x,y) <- R(x,y).
        T(x,y) <- R(x,z), T(z,y).
        Goal(x) <- T(x,x).
        """
    )
    inst = random_instance(seed, {"R": 2})
    assert naive_fixpoint(program, inst) == seminaive_fixpoint(program, inst)


@pytest.mark.parametrize("seed", range(8))
def test_mutual_recursion(seed):
    program = parse_program(
        """
        Even(x) <- Z(x).
        Even(x) <- S(y,x), Odd(y).
        Odd(x) <- S(y,x), Even(y).
        """
    )
    inst = Instance()
    inst.add_tuple("Z", (0,))
    for i in range(6):
        inst.add_tuple("S", (i, i + 1))
    full = fixpoint(program, inst)
    assert full.tuples("Even") == frozenset({(0,), (2,), (4,), (6,)})
    assert full.tuples("Odd") == frozenset({(1,), (3,), (5,)})
    assert naive_fixpoint(program, inst) == full


@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12))
@settings(max_examples=40, deadline=None)
def test_fixpoint_monotone(rows):
    """More input facts never remove derived facts."""
    program = parse_program(
        "T(x,y) <- R(x,y). T(x,y) <- R(x,z), T(z,y)."
    )
    inst = Instance(Atom("R", row) for row in rows)
    bigger = inst.copy()
    bigger.add_tuple("R", (0, 1))
    assert fixpoint(program, inst).tuples("T") <= fixpoint(
        program, bigger
    ).tuples("T")


def test_fixpoint_unknown_strategy():
    with pytest.raises(ValueError):
        fixpoint(parse_program("P(x) <- R(x,y)."), Instance(), "magic")
