"""The text syntax."""

import pytest

from repro.core.atoms import Atom
from repro.core.parser import (
    ParseError,
    parse_atom,
    parse_cq,
    parse_instance,
    parse_program,
    parse_rule,
    parse_ucq,
)
from repro.core.terms import Variable


def test_parse_atom_terms():
    atom = parse_atom("R(x, 'a', 3, $Const)")
    assert atom == Atom("R", (Variable("x"), "a", 3, "Const"))


def test_parse_atom_nullary():
    assert parse_atom("Goal()") == Atom("Goal", ())


def test_uppercase_bare_names_are_constants_in_args():
    atom = parse_atom("Edge(A, b)")
    assert atom.args == ("A", Variable("b"))


def test_lowercase_predicate_rejected():
    with pytest.raises(ParseError):
        parse_atom("r(x)")


def test_parse_rule_both_arrows():
    for arrow in ("<-", ":-"):
        rule = parse_rule(f"P(x) {arrow} R(x,y), S(y).")
        assert rule.head.pred == "P"
        assert len(rule.body) == 2


def test_parse_rule_fact():
    rule = parse_rule("P('a').")
    assert rule.head.is_ground() and rule.body == ()


def test_parse_program_multiple_rules():
    program = parse_program(
        """
        % a comment
        P(x) <- R(x,y).   # trailing comment
        Q2(x) <- P(x).
        """
    )
    assert len(program) == 2


def test_parse_cq_and_head_vars():
    cq = parse_cq("Q(x, z) <- R(x,y), R(y,z)")
    assert [v.name for v in cq.head_vars] == ["x", "z"]
    with pytest.raises(ParseError):
        parse_cq("Q('a') <- R(x,y)")


def test_parse_ucq():
    ucq = parse_ucq(
        """
        Q(x) <- R(x,y).
        Q(x) <- S(x).
        """
    )
    assert len(ucq) == 2


def test_parse_instance_and_errors():
    inst = parse_instance("R('a','b'). R('b','c'). Nullary().")
    assert len(inst) == 3
    with pytest.raises((ParseError, ValueError)):
        parse_instance("R(x).")  # unsafe fact (rule safety fires first)
    with pytest.raises(ParseError):
        parse_instance("R('a') <- S('b').")


def test_negative_numbers():
    inst = parse_instance("R(-1, 2).")
    assert inst.has_tuple("R", (-1, 2))


def test_unexpected_character():
    with pytest.raises(ParseError):
        parse_program("P(x) <- R(x,y) & S(y).")


# ---------------------------------------------------------------------------
# error paths: every ParseError carries a position and an excerpt
# ---------------------------------------------------------------------------
def test_atom_error_truncated_input():
    with pytest.raises(ParseError) as exc:
        parse_atom("R(x,")
    assert exc.value.span is not None
    assert "expected term" in exc.value.message


def test_unexpected_character_reports_line_and_column():
    with pytest.raises(ParseError) as exc:
        parse_program("P(x) <- R(x).\nQ(y) <- R(y) & S(y).")
    err = exc.value
    assert err.span.line == 2
    assert err.span.col == 14
    assert "^" in (err.excerpt or "")
    assert "2:14" in str(err)


def test_missing_rparen_points_at_arrow():
    with pytest.raises(ParseError) as exc:
        parse_rule("P(x <- R(x).")
    err = exc.value
    assert "expected rpar" in err.message
    assert (err.span.line, err.span.col) == (1, 5)


def test_unsafe_rule_error_names_the_variables():
    with pytest.raises(ParseError) as exc:
        parse_rule("P(x, w) <- R(x, x).")
    err = exc.value
    assert "unsafe" in err.message and "w" in err.message
    assert (err.span.line, err.span.col) == (1, 1)


def test_program_error_excerpt_shows_offending_line():
    with pytest.raises(ParseError) as exc:
        parse_program("Good(x) <- R(x).\nbad(x) <- R(x).")
    err = exc.value
    assert err.span.line == 2
    assert "bad" in (err.excerpt or "")


def test_parse_program_source_tolerates_unsafe_rules():
    from repro.core.parser import parse_program_source

    source = parse_program_source("P(x) <- R(x).\nQ(x, w) <- R(x, x).\n")
    assert len(source.entries) == 2
    good, bad = source.entries
    assert good.rule is not None
    assert bad.rule is None
    assert "w" in (bad.error or "")
    assert bad.span.line == 2
    assert len(source.program().rules) == 1


def test_parse_program_source_spans_cover_rules():
    from repro.core.parser import parse_program_source

    text = "P(x) <- R(x, y).\nGoal(x) <- P(x).\n"
    source = parse_program_source(text)
    first, second = source.entries
    assert (first.span.line, first.head_span.col) == (1, 1)
    assert first.body_spans[0].col == 9
    assert second.span.line == 2
    assert source.span_of(second.rule).line == 2


def test_instance_rejects_rules_with_position():
    with pytest.raises(ParseError) as exc:
        parse_instance("R('a','b').\nP(x) <- R(x, y).")
    err = exc.value
    assert "instances may not contain rules" in err.message
    assert err.span.line == 2


def test_instance_rejects_non_ground_facts():
    # a variable in a fact violates safety (empty body), caught with
    # the fact's position
    with pytest.raises(ParseError) as exc:
        parse_instance("R('a','b').\nR('a', x).")
    err = exc.value
    assert "x" in err.message
    assert err.span.line == 2
    assert "^" in (err.excerpt or "")
