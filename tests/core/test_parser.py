"""The text syntax."""

import pytest

from repro.core.atoms import Atom
from repro.core.parser import (
    ParseError,
    parse_atom,
    parse_cq,
    parse_instance,
    parse_program,
    parse_rule,
    parse_ucq,
)
from repro.core.terms import Variable


def test_parse_atom_terms():
    atom = parse_atom("R(x, 'a', 3, $Const)")
    assert atom == Atom("R", (Variable("x"), "a", 3, "Const"))


def test_parse_atom_nullary():
    assert parse_atom("Goal()") == Atom("Goal", ())


def test_uppercase_bare_names_are_constants_in_args():
    atom = parse_atom("Edge(A, b)")
    assert atom.args == ("A", Variable("b"))


def test_lowercase_predicate_rejected():
    with pytest.raises(ParseError):
        parse_atom("r(x)")


def test_parse_rule_both_arrows():
    for arrow in ("<-", ":-"):
        rule = parse_rule(f"P(x) {arrow} R(x,y), S(y).")
        assert rule.head.pred == "P"
        assert len(rule.body) == 2


def test_parse_rule_fact():
    rule = parse_rule("P('a').")
    assert rule.head.is_ground() and rule.body == ()


def test_parse_program_multiple_rules():
    program = parse_program(
        """
        % a comment
        P(x) <- R(x,y).   # trailing comment
        Q2(x) <- P(x).
        """
    )
    assert len(program) == 2


def test_parse_cq_and_head_vars():
    cq = parse_cq("Q(x, z) <- R(x,y), R(y,z)")
    assert [v.name for v in cq.head_vars] == ["x", "z"]
    with pytest.raises(ParseError):
        parse_cq("Q('a') <- R(x,y)")


def test_parse_ucq():
    ucq = parse_ucq(
        """
        Q(x) <- R(x,y).
        Q(x) <- S(x).
        """
    )
    assert len(ucq) == 2


def test_parse_instance_and_errors():
    inst = parse_instance("R('a','b'). R('b','c'). Nullary().")
    assert len(inst) == 3
    with pytest.raises((ParseError, ValueError)):
        parse_instance("R(x).")  # unsafe fact (rule safety fires first)
    with pytest.raises(ParseError):
        parse_instance("R('a') <- S('b').")


def test_negative_numbers():
    inst = parse_instance("R(-1, 2).")
    assert inst.has_tuple("R", (-1, 2))


def test_unexpected_character():
    with pytest.raises(ParseError):
        parse_program("P(x) <- R(x,y) & S(y).")
