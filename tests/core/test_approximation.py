"""CQ approximations and expansion trees (§2, Prop. 1)."""

import pytest

from repro.core.approximation import (
    approximation_trees,
    approximations,
    expansion_trees,
    tree_to_cq,
)
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_instance, parse_program

from tests.conftest import random_instance


def test_path_approximations_by_depth(reach_query):
    approx = list(approximations(reach_query, 5))
    # depth 2: U(x); depth 3: R,U; depth 4: R,R,U; depth 5: R,R,R,U
    assert len(approx) == 4
    sizes = sorted(a.size() for a in approx)
    assert sizes == [1, 2, 3, 4]


def test_approximations_deduplicate():
    # two rules producing isomorphic bodies yield one approximation
    program = parse_program(
        """
        P(x) <- R(x,y).
        P(x) <- R(x,z).
        Goal(x) <- P(x).
        """
    )
    q = DatalogQuery(program, "Goal")
    assert len(list(approximations(q, 3))) == 1
    assert len(list(approximations(q, 3, dedup=False))) == 2


def test_max_count_cap(reach_query):
    assert len(list(approximations(reach_query, 10, max_count=3))) == 3


def test_prop1_approximation_iff_query_holds(reach_query):
    """Prop. 1 on small instances: Q holds iff some expansion maps in.

    The expansion depth needed is bounded by the instance size here.
    """
    for seed in range(10):
        inst = random_instance(seed, {"R": 2, "U": 1}, max_elements=4)
        expected = reach_query.evaluate(inst)
        got = set()
        for cq in approximations(reach_query, 6):
            got |= cq.evaluate(inst)
        assert got == expected


def test_expansion_tree_structure(reach_query):
    trees = list(approximation_trees(reach_query, 4))
    deepest = max(trees, key=lambda t: t.depth())
    assert deepest.depth() == 4
    # pre-order traversal covers all nodes
    assert len(list(deepest.nodes())) == 4
    # flattening matches the CQ approximations
    cq = tree_to_cq(deepest)
    assert cq.size() == 3  # R, R, U


def test_expansion_head_terms_consistency():
    """Child expansions are rooted at the parent's terms."""
    program = parse_program(
        """
        P(x,y) <- R(x,y).
        P(x,y) <- R(x,z), P(z,y).
        Goal(x,y) <- P(x,y).
        """
    )
    q = DatalogQuery(program, "Goal")
    for tree in approximation_trees(q, 3):
        cq = tree_to_cq(tree)
        # head variables appear in the body atoms
        body_vars = set()
        for atom in cq.atoms:
            body_vars |= atom.variables()
        assert set(cq.head_vars) <= body_vars


def test_nonlinear_rule_expansions():
    program = parse_program(
        """
        B(x) <- L(x).
        B(x) <- E(x,y), E(x,z), B(y), B(z).
        Goal(x) <- B(x).
        """
    )
    q = DatalogQuery(program, "Goal")
    # depth 3 includes the tree with two leaf children
    sizes = {cq.size() for cq in approximations(q, 3)}
    assert 1 in sizes  # L(x)
    assert 4 in sizes  # E, E, L, L
    trees = list(approximation_trees(q, 3))
    assert any(
        len(node.children) == 2
        for tree in trees
        for node in tree.nodes()
    )


def test_repeated_head_variable_rejected():
    program = parse_program(
        """
        P(x,x) <- R(x,x).
        Goal() <- P(u,v).
        """
    )
    q = DatalogQuery(program, "Goal")
    with pytest.raises(ValueError):
        list(approximations(q, 2))


def test_zero_depth_yields_nothing(reach_query):
    assert list(expansion_trees(reach_query.program, "Goal", 0)) == []


def test_approximations_are_sound(reach_query):
    """Every approximation is contained in the query (Prop. 1 direction)."""
    inst = parse_instance("R('a','b'). U('b').")
    answers = reach_query.evaluate(inst)
    for cq in approximations(reach_query, 4):
        assert cq.evaluate(inst) <= answers
