"""Property-style safety net for the join planner and fixpoint engine.

Randomized generated programs/instances must satisfy two invariants
regardless of any planner or indexing change:

* ``naive_fixpoint`` ≡ ``seminaive_fixpoint`` (the naive strategy is the
  correctness oracle for the delta-rule + plan-cache machinery);
* the ``dynamic`` / ``static`` / ``connected`` homomorphism orderings
  enumerate exactly the same homomorphism set.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dependency import prune_unreachable
from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.evaluation import (
    naive_fixpoint,
    seminaive_fixpoint,
    stratified_fixpoint,
)
from repro.core.homomorphism import homomorphisms
from repro.core.instance import Instance
from repro.core.stats import EngineStats
from repro.core.terms import Variable

from tests.conftest import random_instance


def _random_program(rng: random.Random) -> DatalogProgram:
    """A small random positive program over EDBs R/2, U/1, IDBs P/2, Q/1.

    Bodies mix EDB and IDB atoms; safety is ensured by drawing head
    variables from the body's variables.
    """
    variables = [Variable(n) for n in "xyzw"]
    preds = [("R", 2), ("U", 1), ("P", 2), ("Q", 1)]
    rules = []
    for _ in range(rng.randint(2, 5)):
        body = []
        for _ in range(rng.randint(1, 3)):
            pred, arity = rng.choice(preds)
            body.append(
                Atom(pred, tuple(rng.choice(variables) for _ in range(arity)))
            )
        body_vars = sorted(
            {v for a in body for v in a.variables()}, key=lambda v: v.name
        )
        head_pred, head_arity = rng.choice([("P", 2), ("Q", 1)])
        head = Atom(
            head_pred,
            tuple(rng.choice(body_vars) for _ in range(head_arity)),
        )
        rules.append(Rule(head, body))
    return DatalogProgram(rules)


@pytest.mark.parametrize("seed", range(25))
def test_naive_equals_seminaive_on_random_programs(seed):
    rng = random.Random(seed)
    program = _random_program(rng)
    instance = random_instance(
        seed * 31 + 7, {"R": 2, "U": 1}, max_elements=4, max_facts=7
    )
    naive = naive_fixpoint(program, instance)
    seminaive = seminaive_fixpoint(program, instance)
    stratified = stratified_fixpoint(program, instance)
    assert naive == seminaive == stratified, (
        f"strategies disagree on seed {seed}:\n"
        f"program:\n{program!r}\nnaive:\n{naive.pretty()}\n"
        f"seminaive:\n{seminaive.pretty()}\n"
        f"stratified:\n{stratified.pretty()}"
    )


@pytest.mark.parametrize("seed", range(25))
def test_orderings_enumerate_identical_homomorphism_sets(seed):
    rng = random.Random(seed + 1000)
    instance = random_instance(
        seed * 17 + 3, {"R": 2, "U": 1, "S": 2}, max_elements=4, max_facts=8
    )
    variables = [Variable(n) for n in "xyz"]
    atoms = []
    for _ in range(rng.randint(1, 4)):
        pred, arity = rng.choice([("R", 2), ("U", 1), ("S", 2)])
        atoms.append(
            Atom(pred, tuple(rng.choice(variables) for _ in range(arity)))
        )
    results = {}
    for ordering in ("dynamic", "static", "connected"):
        homs = list(homomorphisms(atoms, instance, ordering=ordering))
        results[ordering] = {frozenset(h.items()) for h in homs}
        # each individual assignment appears exactly once
        assert len(homs) == len(results[ordering])
    assert results["dynamic"] == results["static"] == results["connected"]


def test_seminaive_with_stats_matches_and_counts():
    """Transitive closure on a chain: counters populated, result exact."""
    rules = [
        Rule(
            Atom("T", (Variable("x"), Variable("y"))),
            [Atom("R", (Variable("x"), Variable("y")))],
        ),
        Rule(
            Atom("T", (Variable("x"), Variable("y"))),
            [
                Atom("R", (Variable("x"), Variable("z"))),
                Atom("T", (Variable("z"), Variable("y"))),
            ],
        ),
    ]
    program = DatalogProgram(rules)
    inst = Instance()
    n = 12
    for i in range(n):
        inst.add_tuple("R", (i, i + 1))
    stats = EngineStats()
    result = seminaive_fixpoint(program, inst, stats=stats)
    assert len(result.tuples("T")) == n * (n + 1) // 2
    assert result == naive_fixpoint(program, inst)
    assert stats.fixpoint_rounds >= 2
    assert stats.facts_derived == n * (n + 1) // 2
    assert stats.hom_calls > 0
    assert stats.rows_scanned > 0
    # one resolved plan per (rule, delta position), replayed every round
    assert stats.plan_cache_misses == 1
    assert stats.plan_cache_hits >= stats.fixpoint_rounds - 2


# ---------------------------------------------------------------------------
# hypothesis: stratified/pruned evaluation ≡ plain semi-naive
# ---------------------------------------------------------------------------
_H_VARS = [Variable(n) for n in "xyzw"]
_H_EDB = [("R", 2), ("U", 1)]
_H_IDB = [("P", 2), ("Q", 1), ("G", 1)]


@st.composite
def small_programs(draw) -> DatalogProgram:
    """Random safe programs over EDBs R/2, U/1 and IDBs P/2, Q/1, G/1."""
    rules = []
    for _ in range(draw(st.integers(min_value=2, max_value=6))):
        body = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            pred, arity = draw(st.sampled_from(_H_EDB + _H_IDB))
            body.append(
                Atom(
                    pred,
                    tuple(
                        draw(st.sampled_from(_H_VARS)) for _ in range(arity)
                    ),
                )
            )
        body_vars = sorted(
            {v for a in body for v in a.variables()}, key=lambda v: v.name
        )
        pred, arity = draw(st.sampled_from(_H_IDB))
        head = Atom(
            pred,
            tuple(draw(st.sampled_from(body_vars)) for _ in range(arity)),
        )
        rules.append(Rule(head, body))
    return DatalogProgram(rules)


@st.composite
def small_edb_instances(draw) -> Instance:
    n = draw(st.integers(min_value=1, max_value=4))
    inst = Instance()
    for pred, arity in _H_EDB:
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            inst.add_tuple(
                pred,
                tuple(
                    draw(st.integers(min_value=0, max_value=n - 1))
                    for _ in range(arity)
                ),
            )
    return inst


@given(program=small_programs(), instance=small_edb_instances())
@settings(max_examples=60, deadline=None)
def test_stratified_strategy_is_equivalent(program, instance):
    """The SCC-stratified engine computes the exact semi-naive fixpoint."""
    expected = seminaive_fixpoint(program, instance)
    assert stratified_fixpoint(program, instance) == expected
    assert naive_fixpoint(program, instance) == expected


@given(program=small_programs(), instance=small_edb_instances())
@settings(max_examples=60, deadline=None)
def test_pruned_goal_directed_evaluation_is_equivalent(program, instance):
    """prune_unreachable + stratified evaluation preserves every goal
    relation of the plain semi-naive fixpoint, for every possible goal."""
    full = seminaive_fixpoint(program, instance)
    for goal in sorted(program.idb_predicates()):
        query = DatalogQuery(program, goal)
        pruned = prune_unreachable(query)
        expected = set(full.tuples(goal))
        assert (
            set(stratified_fixpoint(pruned.program, instance).tuples(goal))
            == expected
        )
        assert query.evaluate(instance) == expected
