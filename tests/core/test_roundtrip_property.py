"""Property tests: parse ∘ pretty-print is the identity on programs.

Hypothesis generates arbitrary safe programs over the renderable
signature (upper-case predicates, lower-case variables, int and quoted
string constants) and checks that

* ``parse_program(program_to_text(p)) == p`` — structural identity;
* pretty-printing is idempotent (a second round trip reproduces the
  same text byte for byte);
* spans survive the round trip: re-parsing the rendered text with the
  span-aware parser yields one entry per rule whose span, cut back out
  of the text, is exactly that rule's pretty-printed form — so every
  diagnostic the analyzer attaches to a re-parsed rule points at the
  whole rule and nothing else.
"""

from hypothesis import given, settings, strategies as st

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, Rule
from repro.core.parser import parse_program, parse_program_source
from repro.core.serialize import program_to_text, rule_to_text
from repro.core.terms import Variable

_VARS = st.sampled_from([Variable(n) for n in "x y z u v w".split()])
_PREDS = st.sampled_from(["P", "Q", "R", "S", "T0", "Goal"])
_STRINGS = st.text(
    alphabet="abcDEF0 _-", min_size=0, max_size=4
)
_CONSTS = st.integers(min_value=-99, max_value=99) | _STRINGS
_TERMS = _VARS | _CONSTS


@st.composite
def _atoms(draw, terms=_TERMS):
    pred = draw(_PREDS)
    args = draw(st.tuples(*[terms] * draw(st.integers(0, 3))))
    return Atom(pred, args)


@st.composite
def _rules(draw):
    body = tuple(draw(st.lists(_atoms(), min_size=0, max_size=3)))
    body_vars = sorted(
        {v for a in body for v in a.variables()}, key=lambda v: v.name
    )
    # head arguments drawn from body variables (safety) and constants
    head_terms = (
        st.sampled_from(body_vars) | _CONSTS if body_vars else _CONSTS
    )
    head = draw(_atoms(terms=head_terms))
    return Rule(head, body)


_PROGRAMS = st.builds(
    DatalogProgram, st.lists(_rules(), min_size=0, max_size=6)
)


@settings(max_examples=200, deadline=None)
@given(_PROGRAMS)
def test_parse_pretty_print_parse_is_identity(program):
    assert parse_program(program_to_text(program)) == program


@settings(max_examples=200, deadline=None)
@given(_PROGRAMS)
def test_pretty_print_is_idempotent(program):
    text = program_to_text(program)
    assert program_to_text(parse_program(text)) == text


def _cut(text: str, span) -> str:
    """The substring of ``text`` covered by a 1-based inclusive span."""
    lines = text.splitlines()
    if span.line == span.end_line:
        return lines[span.line - 1][span.col - 1 : span.end_col]
    parts = [lines[span.line - 1][span.col - 1 :]]
    parts.extend(lines[line] for line in range(span.line, span.end_line - 1))
    parts.append(lines[span.end_line - 1][: span.end_col])
    return "\n".join(parts)


@settings(max_examples=200, deadline=None)
@given(_PROGRAMS)
def test_spans_survive_round_trip(program):
    text = program_to_text(program)
    source = parse_program_source(text)
    assert len(source.entries) == len(program.rules)
    for entry, rule in zip(source.entries, program.rules):
        assert entry.rule == rule
        assert _cut(text, entry.span) == rule_to_text(rule)
        # the head span alone re-parses to the head atom's text
        head_text = _cut(text, entry.head_span)
        assert head_text.startswith(rule.head.pred + "(")
        assert len(entry.body_spans) == len(rule.body)
