"""The optimizer hooks in the evaluation engine.

``fixpoint(optimize=True)`` and ``DatalogQuery.evaluate(optimize=True)``
must return exactly what the plain paths return — optimization is an
engine detail, never a semantics change — and the ambient default
switch must round-trip.
"""

import pytest

from repro.analysis.optimize import OPTIMIZE_RULE_LIMIT
from repro.core import parse_instance, parse_program
from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.evaluation import (
    default_optimize,
    fixpoint,
    set_default_optimize,
)
from repro.core.stats import EngineStats, collecting, suspended
from repro.core.terms import Variable

REACH = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    Goal(y) <- S(x), Reach(x,y).
    """
)
CHAIN = parse_instance(
    " ".join(f"E({i},{i + 1})." for i in range(12)) + " S(4)."
)


@pytest.fixture(autouse=True)
def _plain_default():
    previous = set_default_optimize(False)
    yield
    set_default_optimize(previous)


@pytest.mark.parametrize("strategy", ["naive", "seminaive", "stratified"])
def test_fixpoint_optimize_parity(strategy):
    plain = fixpoint(REACH, CHAIN, strategy=strategy, optimize=False)
    tuned = fixpoint(REACH, CHAIN, strategy=strategy, optimize=True)
    assert plain == tuned


def test_evaluate_optimize_parity():
    query = DatalogQuery(REACH, "Goal")
    assert query.evaluate(CHAIN, optimize=True) == query.evaluate(
        CHAIN, optimize=False
    )


def test_evaluate_falls_back_when_instance_has_idb_facts():
    query = DatalogQuery(REACH, "Goal")
    seeded = parse_instance("E(1,2). S(7). Reach(7,9).")
    assert query.evaluate(seeded, optimize=True) == query.evaluate(
        seeded, optimize=False
    )
    assert (9,) in query.evaluate(seeded, optimize=True)


def test_rule_limit_skips_optimization_but_still_answers():
    x, y = Variable("x"), Variable("y")
    rules = [
        Rule(Atom(f"P{i}", (x,)), (Atom("U", (x,)),))
        for i in range(OPTIMIZE_RULE_LIMIT + 1)
    ]
    rules.append(Rule(Atom("Goal", (x, y)), (Atom("R", (x, y)),)))
    big = DatalogProgram(rules)
    instance = parse_instance("R(1,2). U(1).")
    query = DatalogQuery(big, "Goal")
    assert query.evaluate(instance, optimize=True) == {(1, 2)}
    assert fixpoint(big, instance, optimize=True) == fixpoint(
        big, instance, optimize=False
    )


def test_set_default_optimize_round_trips():
    assert default_optimize() is False
    assert set_default_optimize(True) is False
    assert default_optimize() is True
    assert set_default_optimize(False) is True
    assert default_optimize() is False


def test_ambient_default_drives_evaluate():
    query = DatalogQuery(REACH, "Goal")
    expected = query.evaluate(CHAIN, optimize=False)
    set_default_optimize(True)
    assert query.evaluate(CHAIN) == expected


def test_suspended_shields_ambient_stats():
    outer = EngineStats()
    with collecting(outer):
        with suspended() as scratch:
            fixpoint(REACH, CHAIN)
            assert scratch.hom_calls > 0
        assert outer.hom_calls == 0
        fixpoint(REACH, CHAIN)
        assert outer.hom_calls > 0


def test_optimized_evaluate_keeps_counters_honest():
    """Analysis-side hom searches stay out of evaluation stats."""
    query = DatalogQuery(REACH, "Goal")
    stats = EngineStats()
    with collecting(stats):
        rows = query.evaluate(CHAIN, optimize=True)
    assert rows == query.evaluate(CHAIN, optimize=False)
    plain = EngineStats()
    with collecting(plain):
        query.evaluate(CHAIN, optimize=False)
    # the goal is bound through S: magic sets must not cost more homs
    assert stats.hom_calls <= plain.hom_calls
