"""MDL normalization (Prop. 2)."""

import pytest

from repro.core.datalog import DatalogQuery
from repro.core.normalization import is_normalized, normalize
from repro.core.parser import parse_program

from tests.conftest import random_instance


def _equivalent_on_random(q1, q2, preds, seeds=None) -> bool:
    seeds = range(12) if seeds is None else seeds
    return all(
        q1.evaluate(random_instance(s, preds)) ==
        q2.evaluate(random_instance(s, preds))
        for s in seeds
    )


def test_is_normalized_detects_head_variable_idbs():
    bad = DatalogQuery(parse_program(
        """
        A(x) <- R(x,y), A(x), B(y).
        A(x) <- U(x).
        B(x) <- U(x).
        """
    ), "A")
    assert not is_normalized(bad)
    good = DatalogQuery(parse_program(
        """
        A(x) <- R(x,y), A(y).
        A(x) <- U(x).
        """
    ), "A")
    assert is_normalized(good)


def test_normalize_rejects_non_monadic():
    q = DatalogQuery(parse_program(
        "T(x,y) <- R(x,y). T(x,y) <- R(x,z), T(z,y)."
    ), "T")
    with pytest.raises(ValueError):
        normalize(q)


def test_normalize_already_normalized(reach_query):
    normalized = normalize(reach_query)
    assert is_normalized(normalized)
    assert _equivalent_on_random(
        reach_query, normalized, {"R": 2, "U": 1}
    )


def test_normalize_chained_unary_idbs():
    """I1(x) <- I2(x) chains are absorbed."""
    q = DatalogQuery(parse_program(
        """
        I1(x) <- I2(x).
        I2(x) <- R(x,y), I1(y).
        I2(x) <- U(x).
        """
    ), "I1")
    normalized = normalize(q)
    assert is_normalized(normalized)
    assert _equivalent_on_random(q, normalized, {"R": 2, "U": 1})


def test_normalize_head_variable_conjunction():
    """A(x) needs B(x) at the same point: absorption via R-sets."""
    q = DatalogQuery(parse_program(
        """
        A(x) <- S(x,y), B(x), C2(y).
        B(x) <- U(x).
        C2(x) <- W(x).
        Goal() <- A(x).
        """
    ), "Goal")
    normalized = normalize(q)
    assert is_normalized(normalized)
    assert _equivalent_on_random(
        q, normalized, {"S": 2, "U": 1, "W": 1}
    )


def test_normalize_circular_support_is_false():
    """I(x) <- I(x) must NOT become derivable (no circular support)."""
    q = DatalogQuery(parse_program(
        """
        I(x) <- I(x), R(x,y).
        Goal() <- I(x).
        """
    ), "Goal")
    normalized = normalize(q)
    assert is_normalized(normalized)
    for seed in range(8):
        inst = random_instance(seed, {"R": 2})
        assert normalized.evaluate(inst) == set()
        assert q.evaluate(inst) == set()


def test_normalize_self_loop_with_base_case():
    q = DatalogQuery(parse_program(
        """
        I(x) <- I(x), R(x,y).
        I(x) <- U(x).
        Goal(x) <- I(x).
        """
    ), "Goal")
    normalized = normalize(q)
    assert is_normalized(normalized)
    assert _equivalent_on_random(q, normalized, {"R": 2, "U": 1})


def test_normalized_mdl_stays_monadic(reach_query):
    assert normalize(reach_query).program.is_monadic()


def test_normalize_recursive_on_head_var():
    """A(x) requiring B(x) where B recursively walks from x."""
    q = DatalogQuery(parse_program(
        """
        A(x) <- B(x), M(x).
        B(x) <- R(x,y), B(y).
        B(x) <- U(x).
        Goal() <- A(x).
        """
    ), "Goal")
    normalized = normalize(q)
    assert is_normalized(normalized)
    assert _equivalent_on_random(
        q, normalized, {"R": 2, "U": 1, "M": 1}
    )
