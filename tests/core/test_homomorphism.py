"""The homomorphism engine."""

from hypothesis import given, settings, strategies as st

from repro.core.atoms import Atom
from repro.core.homomorphism import (
    count_homomorphisms,
    find_homomorphism,
    has_homomorphism,
    homomorphically_equivalent,
    homomorphisms,
    instance_homomorphism,
    instance_maps_into,
    is_partial_homomorphism,
)
from repro.core.instance import Instance
from repro.core.parser import parse_cq, parse_instance
from repro.core.terms import Variable


def _clique(n: int) -> Instance:
    inst = Instance()
    for i in range(n):
        for j in range(n):
            if i != j:
                inst.add_tuple("E", (i, j))
    return inst


def test_simple_match():
    inst = parse_instance("R('a','b').")
    hom = find_homomorphism(parse_cq("Q() <- R(x,y)").atoms, inst)
    assert hom == {Variable("x"): "a", Variable("y"): "b"}


def test_no_match():
    inst = parse_instance("R('a','b').")
    assert not has_homomorphism(parse_cq("Q() <- R(x,x)").atoms, inst)


def test_repeated_variable_within_atom():
    inst = parse_instance("R('a','a'). R('a','b').")
    homs = list(homomorphisms(parse_cq("Q() <- R(x,x)").atoms, inst))
    assert homs == [{Variable("x"): "a"}]


def test_constants_must_match_exactly():
    inst = parse_instance("R('a','b').")
    assert has_homomorphism(parse_cq("Q() <- R('a', y)").atoms, inst)
    assert not has_homomorphism(parse_cq("Q() <- R('z', y)").atoms, inst)


def test_fixed_bindings_respected():
    inst = parse_instance("R('a','b'). R('c','d').")
    x, y = Variable("x"), Variable("y")
    homs = list(
        homomorphisms(parse_cq("Q() <- R(x,y)").atoms, inst, fixed={x: "c"})
    )
    assert homs == [{x: "c", y: "d"}]


def test_count_homomorphisms_triangle():
    # 6 automorphism-like maps of an oriented triangle into K3
    tri = parse_cq("Q() <- E(x,y), E(y,z), E(z,x)")
    assert count_homomorphisms(tri.atoms, _clique(3)) == 6


def test_all_orderings_agree():
    inst = parse_instance(
        "R('a','b'). R('b','c'). R('c','a'). S('a'). S('b')."
    )
    pattern = parse_cq("Q() <- R(x,y), R(y,z), S(x)").atoms
    counts = {
        ordering: sum(
            1 for _ in homomorphisms(pattern, inst, ordering=ordering)
        )
        for ordering in ("dynamic", "static", "connected")
    }
    assert len(set(counts.values())) == 1


def test_nullary_atoms():
    inst = Instance([Atom("Flag", ())])
    assert has_homomorphism([Atom("Flag", ())], inst)
    assert not has_homomorphism([Atom("Other", ())], inst)


def test_instance_homomorphism_clique():
    # K3 -> K4 embeds; K4 -> K3 does not
    assert instance_maps_into(_clique(3), _clique(4))
    assert not instance_maps_into(_clique(4), _clique(3))


def test_instance_homomorphism_returns_element_map():
    path = parse_instance("R('a','b').")
    loop = Instance([Atom("R", ("z", "z"))])
    hom = instance_homomorphism(path, loop)
    assert hom == {"a": "z", "b": "z"}


def test_homomorphic_equivalence():
    loop = Instance([Atom("E", (0, 0))])
    assert homomorphically_equivalent(loop, _clique(1) | loop)
    assert not homomorphically_equivalent(loop, _clique(3))


def test_is_partial_homomorphism():
    source = parse_instance("R('a','b'). R('b','c').")
    target = parse_instance("R('x','y').")
    assert is_partial_homomorphism({"a": "x", "b": "y"}, source, target)
    assert not is_partial_homomorphism({"a": "y", "b": "x"}, source, target)
    # domain not covering any fact: vacuously a partial hom
    assert is_partial_homomorphism({"a": "x", "c": "x"}, source, target)


@given(
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8),
    st.permutations(list(range(4))),
)
@settings(max_examples=40, deadline=None)
def test_isomorphic_images_preserve_homomorphism_count(rows, perm):
    """Renaming target elements by a bijection preserves hom counts."""
    target = Instance(Atom("R", row) for row in rows)
    renamed = target.map_elements(lambda v: perm[v])
    pattern = parse_cq("Q() <- R(x,y), R(y,z)").atoms
    assert count_homomorphisms(pattern, target) == count_homomorphisms(
        pattern, renamed
    )


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8))
@settings(max_examples=40, deadline=None)
def test_hom_into_superset_monotone(rows):
    """If a pattern maps into I it maps into any extension of I."""
    inst = Instance(Atom("R", row) for row in rows)
    bigger = inst.copy()
    bigger.add_tuple("R", (9, 9))
    pattern = parse_cq("Q() <- R(x,y), R(y,x)").atoms
    if has_homomorphism(pattern, inst):
        assert has_homomorphism(pattern, bigger)
