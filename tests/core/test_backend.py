"""Backend registry, selection plumbing, and the optimize fallback.

The columnar engine's *semantic* equivalence is covered by the
property suite in ``test_backend_equivalence.py``; here we pin the
seams: name resolution, ambient defaults, counter routing, and the
``DatalogQuery.evaluate(optimize=True)`` retreat on IDB-fact-carrying
instances (which used to be silent).
"""

from __future__ import annotations

import pytest

from repro.core import stats as _stats
from repro.core.backend import (
    backend_names,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.core.columnar import columnar_fixpoint
from repro.core.datalog import DatalogQuery
from repro.core.evaluation import fixpoint
from repro.core.instance import Instance
from repro.core.parser import parse_instance, parse_program, parse_query
from repro.core.stats import EngineStats


TC = parse_program(
    "T(x,y) :- R(x,y). T(x,y) :- R(x,z), T(z,y)."
)


def _chain(n: int) -> Instance:
    return Instance.from_tuples({"R": [(i, i + 1) for i in range(n)]})


# ---------------------------------------------------------------------------
# registry and defaults
# ---------------------------------------------------------------------------

def test_backend_names_lists_default_first():
    names = backend_names()
    assert names[0] == "interpreted"
    assert "columnar" in names


def test_get_backend_resolves_both_shipped_engines():
    assert get_backend("interpreted").name == "interpreted"
    assert get_backend("columnar").name == "columnar"


def test_get_backend_unknown_name_is_loud():
    with pytest.raises(ValueError, match="vectorized.*known"):
        get_backend("vectorized")


def test_set_default_backend_returns_previous_and_validates():
    assert default_backend() == "interpreted"
    previous = set_default_backend("columnar")
    try:
        assert previous == "interpreted"
        assert default_backend() == "columnar"
        assert resolve_backend(None).name == "columnar"
        # an invalid name is rejected without clobbering the default
        with pytest.raises(ValueError, match="unknown backend"):
            set_default_backend("nope")
        assert default_backend() == "columnar"
    finally:
        set_default_backend(previous)
    assert default_backend() == "interpreted"


def test_register_backend_makes_name_resolvable():
    class Echo:
        name = "echo-test"

        def fixpoint(self, program, instance, *, strategy="stratified",
                     stats=None, ordering="auto"):
            return instance

    register_backend(Echo())
    try:
        assert "echo-test" in backend_names()
        inst = _chain(2)
        assert fixpoint(TC, inst, backend="echo-test") == inst
    finally:
        from repro.core import backend as backend_module

        del backend_module._BACKENDS["echo-test"]


# ---------------------------------------------------------------------------
# fixpoint/evaluate plumbing
# ---------------------------------------------------------------------------

def test_fixpoint_backend_param_selects_columnar():
    inst = _chain(8)
    stats = EngineStats()
    result = fixpoint(TC, inst, backend="columnar", stats=stats)
    assert result == fixpoint(TC, inst)
    # no backtracking search ran at all
    assert stats.hom_calls == 0
    assert stats.search_steps == 0
    assert stats.rows_scanned == 0
    # and the hash-join engine reported its own work
    assert stats.join_probe_rows > 0
    assert stats.join_output_rows > 0
    assert stats.facts_derived == 8 * 9 // 2


def test_fixpoint_unknown_backend_is_loud():
    with pytest.raises(ValueError, match="unknown backend"):
        fixpoint(TC, _chain(2), backend="nope")


def test_columnar_unknown_strategy_is_loud():
    with pytest.raises(ValueError, match="unknown strategy"):
        columnar_fixpoint(TC, _chain(2), strategy="bogus")


def test_fixpoint_uses_ambient_default_backend():
    inst = _chain(6)
    stats = EngineStats()
    previous = set_default_backend("columnar")
    try:
        result = fixpoint(TC, inst, stats=stats)
    finally:
        set_default_backend(previous)
    assert result == fixpoint(TC, inst)
    assert stats.hom_calls == 0
    assert stats.join_probe_rows > 0


def test_query_evaluate_backend_param():
    query = parse_query("T(x,y) :- R(x,y). T(x,y) :- R(x,z), T(z,y).", "T")
    inst = _chain(5)
    expected = query.evaluate(inst)
    for optimize in (False, True):
        assert (
            query.evaluate(inst, optimize=optimize, backend="columnar")
            == expected
        )


# ---------------------------------------------------------------------------
# the optimize fallback on IDB-fact-carrying instances (regression)
# ---------------------------------------------------------------------------

def test_evaluate_optimize_falls_back_on_idb_facts_and_says_so():
    """An instance carrying IDB facts makes magic sets unsound, so the
    optimized path retreats — and now records that it did."""
    query = parse_query("T(x,y) :- R(x,y). T(x,y) :- R(x,z), T(z,y).", "T")
    inst = _chain(4)
    inst.add_tuple("T", (99, 100))  # a fact for the *intensional* T
    stats = EngineStats()
    with _stats.collecting(stats):
        rows = query.evaluate(inst, optimize=True)
    assert stats.optimize_fallbacks == 1
    # the fallback still computes the right answer, IDB facts included
    assert (99, 100) in rows
    assert rows == query.evaluate(inst, optimize=False)
    # and the counter round-trips like every other counter
    assert EngineStats.from_dict(stats.to_dict()) == stats


def test_evaluate_optimize_no_fallback_on_edb_only_instances():
    query = parse_query("T(x,y) :- R(x,y). T(x,y) :- R(x,z), T(z,y).", "T")
    stats = EngineStats()
    with _stats.collecting(stats):
        query.evaluate(_chain(4), optimize=True)
    assert stats.optimize_fallbacks == 0


def test_evaluate_fallback_counts_on_every_backend():
    query = parse_query("T(x,y) :- R(x,y). T(x,y) :- R(x,z), T(z,y).", "T")
    inst = _chain(3)
    inst.add_tuple("T", (7, 8))
    for backend in ("interpreted", "columnar"):
        stats = EngineStats()
        with _stats.collecting(stats):
            rows = query.evaluate(inst, optimize=True, backend=backend)
        assert stats.optimize_fallbacks == 1, backend
        assert (7, 8) in rows


def test_columnar_handles_idb_facts_in_input():
    """Input facts for intensional predicates seed the fixpoint."""
    inst = _chain(3)
    inst.add_tuple("T", (50, 60))
    for strategy in ("naive", "seminaive", "stratified"):
        a = fixpoint(TC, inst, strategy=strategy)
        b = fixpoint(TC, inst, strategy=strategy, backend="columnar")
        assert a == b, strategy
        assert (50, 60) in b.tuples("T")


def test_columnar_mixed_arity_relation_names_do_not_crash():
    """Instances may hold rows of different arities under one name;
    atoms simply never match rows of the wrong arity (both backends)."""
    inst = Instance.from_tuples({"R": [(1, 2), (2, 3)]})
    inst.add_tuple("R", (1, 2, 3))
    a = fixpoint(TC, inst)
    b = fixpoint(TC, inst, backend="columnar")
    assert a == b
    assert (1, 3) in b.tuples("T")


def test_columnar_counters_round_trip_through_manifest_merge():
    stats = EngineStats()
    fixpoint(TC, _chain(6), backend="columnar", stats=stats)
    totals = EngineStats()
    totals.merge(EngineStats.from_dict(stats.to_dict()))
    assert totals.join_probe_rows == stats.join_probe_rows
    assert totals.columnar_batches == stats.columnar_batches


def test_cli_eval_backend_flag(tmp_path, capsys):
    from repro.cli import main

    query_file = tmp_path / "q.dl"
    query_file.write_text(
        "# goal: T\nT(x,y) :- R(x,y).\nT(x,y) :- R(x,z), T(z,y).\n"
    )
    inst_file = tmp_path / "i.dl"
    inst_file.write_text("R(1,2). R(2,3).\n")
    assert main(["eval", str(query_file), str(inst_file)]) == 0
    plain = capsys.readouterr().out
    assert main([
        "eval", str(query_file), str(inst_file), "--backend", "columnar",
    ]) == 0
    columnar = capsys.readouterr().out
    assert plain == columnar
    assert "(1, 3)" in columnar
    # the ambient default is restored after the command
    assert default_backend() == "interpreted"


def test_cli_decide_accepts_backend_flag(tmp_path, capsys):
    from repro.cli import main

    query_file = tmp_path / "q.dl"
    query_file.write_text("Q(x) :- R(x,y).\n")
    views_file = tmp_path / "v.dl"
    views_file.write_text("# view: V\nV(x,y) :- R(x,y).\n")
    code = main([
        "decide", str(query_file), str(views_file), "--backend", "columnar",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "verdict" in out
    assert default_backend() == "interpreted"


# ---------------------------------------------------------------------------
# the auto backend (cost-model-driven choice)
# ---------------------------------------------------------------------------

def test_auto_backend_is_registered():
    from repro.core.backend import AutoBackend

    assert "auto" in backend_names()
    assert isinstance(get_backend("auto"), AutoBackend)


def test_auto_backend_small_volume_stays_interpreted():
    from repro.core.backend import auto_resolutions, reset_auto_resolutions

    reset_auto_resolutions()
    small = _chain(5)
    assert fixpoint(TC, small, backend="auto") == fixpoint(TC, small)
    (resolution,) = auto_resolutions()
    assert resolution["backend"] == "interpreted"
    assert 0 < resolution["volume"] < resolution["threshold"]


def test_auto_backend_large_volume_goes_columnar():
    from repro.core.backend import auto_resolutions, reset_auto_resolutions

    reset_auto_resolutions()
    big = _chain(120)
    assert fixpoint(TC, big, backend="auto") == fixpoint(TC, big)
    (resolution,) = auto_resolutions()
    assert resolution["backend"] == "columnar"
    assert resolution["volume"] >= resolution["threshold"]


def test_auto_backend_threshold_is_tunable():
    from repro.core.backend import (
        AutoBackend,
        auto_resolutions,
        reset_auto_resolutions,
    )

    reset_auto_resolutions()
    eager = AutoBackend(threshold=1)
    eager.fixpoint(TC, _chain(4))
    (resolution,) = auto_resolutions()
    assert resolution["backend"] == "columnar"
    assert resolution["threshold"] == 1


def test_auto_backend_counts_choices_into_engine_stats():
    from repro.core.backend import reset_auto_resolutions

    reset_auto_resolutions()
    stats = EngineStats()
    fixpoint(TC, _chain(5), backend="auto", stats=stats)
    fixpoint(TC, _chain(120), backend="auto", stats=stats)
    assert stats.auto_backend_interpreted == 1
    assert stats.auto_backend_columnar == 1


def test_auto_resolutions_reset_and_accumulate():
    from repro.core.backend import auto_resolutions, reset_auto_resolutions

    reset_auto_resolutions()
    fixpoint(TC, _chain(3), backend="auto")
    fixpoint(TC, _chain(3), backend="auto")
    assert len(auto_resolutions()) == 2
    reset_auto_resolutions()
    assert auto_resolutions() == []


def test_cli_eval_accepts_auto_backend(tmp_path, capsys):
    from repro.cli import main

    qf = tmp_path / "q.txt"
    qf.write_text("# goal: T\nT(x,y) <- R(x,y). T(x,y) <- R(x,z), T(z,y).")
    inf = tmp_path / "i.txt"
    inf.write_text("R(1,2). R(2,3).")
    assert main(["eval", str(qf), str(inf), "--backend", "auto"]) == 0
    assert "(1, 3)" in capsys.readouterr().out
