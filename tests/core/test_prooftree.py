"""Proof terms (appendix)."""

from repro.core.atoms import Atom
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_instance, parse_program
from repro.core.prooftree import ProofNode, prove, verify_proof


def test_proof_for_reachability(reach_query, path_instance):
    proof = prove(reach_query, path_instance, ("a",))
    assert proof is not None
    assert proof.fact == Atom("Goal", ("a",))
    assert verify_proof(proof, reach_query.program, path_instance)
    # Goal, P(a..d), and the U leaf: six levels
    assert proof.depth() == 6


def test_proof_leaves_are_instance_facts(reach_query, path_instance):
    proof = prove(reach_query, path_instance, ("a",))
    for fact in proof.leaf_facts():
        assert fact in path_instance


def test_no_proof_when_query_fails(reach_query):
    inst = parse_instance("R('a','b').")  # no U
    assert prove(reach_query, inst, ("a",)) is None


def test_proof_well_founded_through_mutual_recursion():
    q = DatalogQuery(parse_program(
        """
        Even(x) <- Z(x).
        Even(x) <- S(y,x), Odd(y).
        Odd(x) <- S(y,x), Even(y).
        Goal(x) <- Even(x).
        """
    ), "Goal")
    inst = parse_instance("Z(0). S(0,1). S(1,2). S(2,3). S(3,4).")
    proof = prove(q, inst, (4,))
    assert proof is not None
    assert verify_proof(proof, q.program, inst)
    # alternating Even/Odd facts down to the base
    preds = [n.fact.pred for n in proof.nodes() if not n.is_leaf()]
    assert preds.count("Even") == 3 and preds.count("Odd") == 2


def test_verify_rejects_forged_proofs(reach_query, path_instance):
    proof = prove(reach_query, path_instance, ("a",))
    forged = ProofNode(
        Atom("Goal", ("zzz",)), proof.rule, proof.children
    )
    assert not verify_proof(forged, reach_query.program, path_instance)
    # a leaf claiming a non-fact
    fake_leaf = ProofNode(Atom("R", ("no", "pe")), None, ())
    assert not verify_proof(
        fake_leaf, reach_query.program, path_instance
    )


def test_pretty_renders(reach_query, path_instance):
    proof = prove(reach_query, path_instance, ("b",))
    text = proof.pretty()
    assert "Goal" in text and "[by" in text


def test_unconditional_facts():
    q = DatalogQuery(parse_program("Const(). Goal() <- Const()."), "Goal")
    from repro.core.instance import Instance

    proof = prove(q, Instance())
    assert proof is not None
    assert verify_proof(proof, q.program, Instance())
