"""EngineStats: dict round-trips and loud-failure merge coverage.

The evidence runner ships stats from worker processes back to the
parent as plain dicts, so ``to_dict``/``from_dict``/``merge`` must stay
lossless — and ``merge`` must *refuse* to run when a field it does not
know how to combine appears.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import pytest

from repro.core.stats import _SUMMED_FIELDS, EngineStats


def _populated() -> EngineStats:
    stats = EngineStats(
        hom_calls=1,
        search_steps=2,
        rows_scanned=3,
        index_rebuilds=4,
        index_incremental=5,
        fixpoint_rounds=6,
        facts_derived=7,
        plan_cache_hits=8,
        plan_cache_misses=9,
    )
    stats.phase_seconds["total"] = 1.5
    return stats


def test_to_dict_covers_every_field():
    data = _populated().to_dict()
    assert set(data) == {f.name for f in fields(EngineStats)}


def test_round_trip_is_lossless():
    original = _populated()
    rebuilt = EngineStats.from_dict(original.to_dict())
    assert rebuilt == original
    # the rebuilt dict is a copy, not shared state
    rebuilt.phase_seconds["total"] = 99.0
    assert original.phase_seconds["total"] == 1.5


def test_from_dict_is_strict_by_default():
    """A counter from a newer schema must fail loudly, naming itself."""
    with pytest.raises(ValueError, match="mystery"):
        EngineStats.from_dict({"hom_calls": 5, "mystery": 123})


def test_from_dict_allow_unknown_ignores_extras_and_defaults_missing():
    stats = EngineStats.from_dict(
        {"hom_calls": 5, "mystery": 123}, allow_unknown=True
    )
    assert stats.hom_calls == 5
    assert stats.rows_scanned == 0
    assert not hasattr(stats, "mystery")


def test_from_dict_strict_accepts_the_backend_counters():
    data = {
        "join_build_rows": 1,
        "join_probe_rows": 2,
        "join_output_rows": 3,
        "columnar_batches": 4,
        "optimize_fallbacks": 5,
    }
    stats = EngineStats.from_dict(data)
    assert stats.join_build_rows == 1
    assert stats.join_probe_rows == 2
    assert stats.join_output_rows == 3
    assert stats.columnar_batches == 4
    assert stats.optimize_fallbacks == 5


def test_merge_covers_every_counter_field():
    a, b = _populated(), _populated()
    a.merge(b)
    for name in _SUMMED_FIELDS:
        assert getattr(a, name) == 2 * getattr(b, name), name
    assert a.phase_seconds == {"total": 3.0}


def test_merge_matches_declared_fields():
    """Every dataclass field is summed or explicitly special-cased."""
    declared = {f.name for f in fields(EngineStats)}
    assert declared == _SUMMED_FIELDS | {"phase_seconds"}


def test_merge_fails_loudly_on_unknown_field():
    """Adding a counter without wiring its merge strategy must raise,
    not silently drop cross-process data."""

    @dataclass
    class Extended(EngineStats):
        new_counter: int = 0

    with pytest.raises(TypeError, match="new_counter"):
        Extended().merge(Extended())


def test_merge_allow_unknown_skips_unhandled_fields():
    """Report tooling can fold in newer-schema stats best-effort."""

    @dataclass
    class Extended(EngineStats):
        new_counter: int = 0

    a = Extended(hom_calls=1, new_counter=7)
    a.merge(Extended(hom_calls=2, new_counter=9), allow_unknown=True)
    assert a.hom_calls == 3
    assert a.new_counter == 7  # unhandled: left alone, not summed


def test_as_dict_alias_kept_for_benchmark_consumers():
    stats = _populated()
    assert stats.as_dict() == stats.to_dict()


def test_from_dict_strict_accepts_the_shard_counters():
    """Shard counters are part of the current schema: strict loaders
    (worker round-trips, cached results) must take them as-is."""
    data = {
        "shard_workers": 4,
        "shard_exchanged_rows": 120,
        "shard_local_rounds": 9,
    }
    stats = EngineStats.from_dict(data)
    assert stats.shard_workers == 4
    assert stats.shard_exchanged_rows == 120
    assert stats.shard_local_rounds == 9
    merged = EngineStats()
    merged.merge(stats)
    assert merged.shard_exchanged_rows == 120
