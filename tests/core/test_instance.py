"""Instances: storage, indexes, and transformations."""

import pytest
from hypothesis import given, strategies as st

from repro.core.atoms import Atom
from repro.core.instance import ANY, Instance
from repro.core.parser import parse_instance


def test_add_and_contains():
    inst = Instance()
    assert inst.add_tuple("R", (1, 2))
    assert not inst.add_tuple("R", (1, 2))  # duplicate
    assert Atom("R", (1, 2)) in inst
    assert inst.has_tuple("R", (1, 2))
    assert not inst.has_tuple("R", (2, 1))


def test_add_rejects_non_ground():
    from repro.core.terms import Variable

    inst = Instance()
    with pytest.raises(ValueError):
        inst.add(Atom("R", (Variable("x"),)))


def test_len_and_bool():
    inst = Instance()
    assert not inst and len(inst) == 0
    inst.add_tuple("R", (1,))
    assert inst and len(inst) == 1


def test_active_domain():
    inst = parse_instance("R('a','b'). S('c').")
    assert inst.active_domain() == {"a", "b", "c"}


def test_discard_updates_matching():
    inst = Instance()
    inst.add_tuple("R", (1, 2))
    inst.add_tuple("R", (1, 3))
    assert set(inst.matching("R", (1, ANY))) == {(1, 2), (1, 3)}
    inst.discard(Atom("R", (1, 2)))
    assert set(inst.matching("R", (1, ANY))) == {(1, 3)}


def test_matching_with_repeated_pattern_values():
    inst = Instance()
    inst.add_tuple("R", (1, 1))
    inst.add_tuple("R", (1, 2))
    assert set(inst.matching("R", (1, 1))) == {(1, 1)}


def test_matching_unbound_pattern_scans_all():
    inst = Instance()
    inst.add_tuple("R", (1, 2))
    inst.add_tuple("R", (3, 4))
    assert set(inst.matching("R", (ANY, ANY))) == {(1, 2), (3, 4)}


def test_matching_missing_predicate_is_empty():
    assert list(Instance().matching("R", (ANY,))) == []


def test_restrict_and_drop():
    inst = parse_instance("R('a','b'). S('c'). T('d').")
    assert inst.restrict(["R"]).predicates() == {"R"}
    assert inst.drop(["R"]).predicates() == {"S", "T"}


def test_map_elements_with_dict_and_callable():
    inst = parse_instance("R('a','b').")
    mapped = inst.map_elements({"a": "z"})
    assert mapped.has_tuple("R", ("z", "b"))
    doubled = Instance([Atom("R", (1, 2))]).map_elements(lambda v: v * 10)
    assert doubled.has_tuple("R", (10, 20))


def test_map_elements_can_merge():
    inst = Instance()
    inst.add_tuple("R", (1, 2))
    inst.add_tuple("R", (3, 2))
    merged = inst.map_elements({3: 1})
    assert len(merged) == 1


def test_relabel_predicates():
    inst = parse_instance("R('a','b').")
    out = inst.relabel_predicates({"R": "E"})
    assert out.has_tuple("E", ("a", "b"))
    assert not out.tuples("R")


def test_union_and_subinstance():
    left = parse_instance("R('a','b').")
    right = parse_instance("R('b','c'). S('a').")
    union = left | right
    assert len(union) == 3
    assert left <= union and right <= union
    assert not union <= left


def test_difference():
    left = parse_instance("R('a','b'). R('b','c').")
    right = parse_instance("R('a','b').")
    assert set(left.difference(right).tuples("R")) == {("b", "c")}


def test_equality_ignores_order():
    a = parse_instance("R('a','b'). S('c').")
    b = parse_instance("S('c'). R('a','b').")
    assert a == b


def test_copy_is_independent():
    inst = parse_instance("R('a','b').")
    clone = inst.copy()
    clone.add_tuple("R", ("x", "y"))
    assert len(inst) == 1 and len(clone) == 2


def test_schema_inference():
    inst = parse_instance("R('a','b'). S('c').")
    schema = inst.schema()
    assert schema.arity("R") == 2 and schema.arity("S") == 1


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12
    ),
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12
    ),
)
def test_union_is_upper_bound(left_rows, right_rows):
    left = Instance(Atom("R", row) for row in left_rows)
    right = Instance(Atom("R", row) for row in right_rows)
    union = left | right
    assert left <= union and right <= union
    assert set(union.tuples("R")) == set(left_rows) | set(right_rows)


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=10))
def test_map_identity_preserves(rows):
    inst = Instance(Atom("R", row) for row in rows)
    assert inst.map_elements(lambda v: v) == inst
