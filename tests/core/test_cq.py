"""Conjunctive queries: evaluation, containment, structure."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.atoms import Atom
from repro.core.cq import CanonConst, ConjunctiveQuery, cq_from_instance
from repro.core.instance import Instance
from repro.core.parser import parse_cq, parse_instance
from repro.core.terms import Variable


def test_unsafe_head_rejected():
    with pytest.raises(ValueError):
        ConjunctiveQuery((Variable("x"),), (Atom("R", (Variable("y"),)),))


def test_evaluate_path():
    cq = parse_cq("Q(x,z) <- R(x,y), R(y,z)")
    inst = parse_instance("R('a','b'). R('b','c').")
    assert cq.evaluate(inst) == {("a", "c")}


def test_boolean_and_holds():
    cq = parse_cq("Q() <- R(x,y), R(y,x)")
    assert not cq.boolean(parse_instance("R('a','b')."))
    assert cq.boolean(parse_instance("R('a','b'). R('b','a')."))
    unary = parse_cq("Q(x) <- R(x,y)")
    assert unary.holds(parse_instance("R('a','b')."), ("a",))
    assert not unary.holds(parse_instance("R('a','b')."), ("b",))


def test_holds_arity_check():
    cq = parse_cq("Q(x) <- R(x,y)")
    with pytest.raises(ValueError):
        cq.holds(Instance(), ())


def test_canonical_database_freezes_variables():
    cq = parse_cq("Q(x) <- R(x,y)")
    canon = cq.canonical_database()
    assert canon.has_tuple("R", (CanonConst("x"), CanonConst("y")))
    assert cq.frozen_head() == (CanonConst("x"),)


def test_evaluation_on_canonical_database_yields_head():
    """The Chandra–Merlin identity: Q holds of its own frozen head."""
    cq = parse_cq("Q(x,y) <- R(x,z), S(z,y), U(z)")
    assert cq.holds(cq.canonical_database(), cq.frozen_head())


def test_containment_classic():
    # more atoms = more constrained = contained
    path2 = parse_cq("Q(x) <- R(x,y), R(y,z)")
    path1 = parse_cq("Q(x) <- R(x,y)")
    assert path2.is_contained_in(path1)
    assert not path1.is_contained_in(path2)


def test_containment_with_fork_equivalence():
    fork = parse_cq("Q(x) <- R(x,y), R(x,z)")
    single = parse_cq("Q(x) <- R(x,y)")
    assert fork.is_equivalent_to(single)


def test_containment_arity_mismatch():
    assert not parse_cq("Q(x) <- R(x,y)").is_contained_in(
        parse_cq("Q(x,y) <- R(x,y)")
    )


def test_core_folds_redundant_atoms():
    fork = parse_cq("Q(x) <- R(x,y), R(x,z)")
    core = fork.core()
    assert core.size() == 1
    assert core.is_equivalent_to(fork)


def test_core_keeps_non_redundant():
    tri = parse_cq("Q() <- E(x,y), E(y,z), E(z,x)")
    assert tri.core().size() == 3


def test_radius_and_connectivity():
    path = parse_cq("Q() <- R(x,y), R(y,z)")
    assert path.radius() == 1
    assert path.is_connected()
    disconnected = parse_cq("Q() <- R(x,y), S(u,v)")
    assert not disconnected.is_connected()
    assert math.isinf(disconnected.radius())


def test_rename_apart_preserves_semantics():
    cq = parse_cq("Q(x) <- R(x,y), U(y)")
    renamed = cq.rename_apart()
    assert renamed.is_equivalent_to(cq)
    assert not (cq.variables() & renamed.variables())


def test_certificate_invariant_under_renaming():
    cq = parse_cq("Q(x) <- R(x,y), R(y,z), U(z)")
    renamed = cq.substitute(
        {Variable("y"): Variable("w"), Variable("z"): Variable("v")}
    )
    assert cq.certificate() == renamed.certificate()


def test_certificate_distinguishes_head_order():
    a = parse_cq("Q(x,y) <- R(x,y)")
    b = parse_cq("Q(y,x) <- R(x,y)")
    assert a.certificate() != b.certificate()


def test_cq_from_instance_round_trip():
    inst = parse_instance("R('a','b'). U('b').")
    cq = cq_from_instance(inst, answer=("a",))
    assert cq.arity == 1
    # the derived query holds on the original instance at 'a'
    assert cq.holds(inst, ("a",))


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8))
@settings(max_examples=40, deadline=None)
def test_evaluation_monotone(rows):
    """CQ answers only grow when facts are added."""
    cq = parse_cq("Q(x) <- R(x,y), R(y,x)")
    inst = Instance(Atom("R", row) for row in rows)
    bigger = inst.copy()
    bigger.add_tuple("R", (0, 0))
    assert cq.evaluate(inst) <= cq.evaluate(bigger)


@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=6))
@settings(max_examples=30, deadline=None)
def test_containment_soundness_on_random_instances(rows):
    """If Q1 ⊑ Q2 syntactically then answers are included semantically."""
    q1 = parse_cq("Q(x) <- R(x,y), R(y,z)")
    q2 = parse_cq("Q(x) <- R(x,y)")
    assert q1.is_contained_in(q2)
    inst = Instance(Atom("R", row) for row in rows)
    assert q1.evaluate(inst) <= q2.evaluate(inst)
