"""Serialization round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.atoms import Atom
from repro.core.instance import Instance
from repro.core.parser import (
    parse_cq,
    parse_instance,
    parse_program,
    parse_ucq,
)
from repro.core.serialize import (
    UnserializableError,
    cq_to_text,
    instance_to_text,
    program_to_text,
    query_to_text,
    ucq_to_text,
)


def test_program_round_trip():
    program = parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal(x) <- P(x).
        Const().
        """
    )
    again = parse_program(program_to_text(program))
    assert again == program


def test_cq_round_trip():
    cq = parse_cq("Q(x, z) <- R(x,y), R(y,z), U('mark')")
    again = parse_cq(cq_to_text(cq))
    assert again.is_equivalent_to(cq)
    assert again.head_vars == cq.head_vars


def test_ucq_round_trip():
    ucq = parse_ucq(
        """
        Q(x) <- R(x,y).
        Q(x) <- S(x).
        """
    )
    again = parse_ucq(ucq_to_text(ucq))
    assert again.is_equivalent_to(ucq)


def test_instance_round_trip():
    inst = parse_instance("R('a','b'). R(1, 2). U('c'). Flag().")
    assert parse_instance(instance_to_text(inst)) == inst


def test_query_to_text_has_goal_directive():
    from repro.core.datalog import DatalogQuery

    q = DatalogQuery(parse_program("P(x) <- R(x,y)."), "P")
    text = query_to_text(q)
    assert text.startswith("# goal: P")
    from repro.cli import _parse_query_text

    again = _parse_query_text(text)
    assert again.goal == "P"


def test_decorated_predicates_rejected():
    inst = Instance([Atom("P⟨p⟩", (1,))])
    with pytest.raises(UnserializableError):
        instance_to_text(inst)


def test_non_text_elements_rejected():
    inst = Instance([Atom("R", ((1, 2),))])  # tuple element
    with pytest.raises(UnserializableError):
        instance_to_text(inst)


def test_quoted_strings_rejected():
    inst = Instance([Atom("R", ("it's",))])
    with pytest.raises(UnserializableError):
        instance_to_text(inst)


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        max_size=10,
    )
)
@settings(max_examples=30, deadline=None)
def test_instance_round_trip_property(rows):
    inst = Instance(Atom("R", row) for row in rows)
    assert parse_instance(instance_to_text(inst)) == inst
