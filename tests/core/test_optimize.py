"""Datalog program optimization."""

from repro.core.datalog import DatalogQuery
from repro.core.optimize import (
    drop_subsumed_rules,
    minimize_rule_bodies,
    optimize_query,
    reachable_rules,
    rule_subsumes,
)
from repro.core.parser import parse_program, parse_rule

from tests.conftest import random_instance


def _equivalent_on_random(q1, q2, preds, seeds=None) -> bool:
    seeds = range(10) if seeds is None else seeds
    return all(
        q1.evaluate(random_instance(s, preds))
        == q2.evaluate(random_instance(s, preds))
        for s in seeds
    )


def test_rule_subsumption_basics():
    general = parse_rule("P(x) <- R(x,y).")
    specific = parse_rule("P(x) <- R(x,y), R(y,z).")
    assert rule_subsumes(general, specific)
    assert not rule_subsumes(specific, general)
    other_head = parse_rule("Q2(x) <- R(x,y).")
    assert not rule_subsumes(general, other_head)


def test_rule_subsumption_respects_head_binding():
    general = parse_rule("P(x) <- R(x,y).")
    flipped = parse_rule("P(y) <- R(x,y).")
    assert not rule_subsumes(general, flipped)
    assert not rule_subsumes(flipped, general)


def test_minimize_rule_bodies():
    program = parse_program("P(x) <- R(x,y), R(x,z).")
    minimized = minimize_rule_bodies(program)
    (rule,) = minimized.rules
    assert len(rule.body) == 1
    q1 = DatalogQuery(program, "P")
    q2 = DatalogQuery(minimized, "P")
    assert _equivalent_on_random(q1, q2, {"R": 2})


def test_minimize_keeps_needed_atoms():
    program = parse_program("P(x) <- R(x,y), U(y).")
    minimized = minimize_rule_bodies(program)
    (rule,) = minimized.rules
    assert len(rule.body) == 2


def test_drop_subsumed_rules():
    program = parse_program(
        """
        P(x) <- R(x,y).
        P(x) <- R(x,y), R(y,z).
        P(x) <- R(x,y), U(y).
        """
    )
    slim = drop_subsumed_rules(program)
    assert len(slim) == 1
    assert _equivalent_on_random(
        DatalogQuery(program, "P"), DatalogQuery(slim, "P"),
        {"R": 2, "U": 1},
    )


def test_drop_subsumed_keeps_one_of_equivalent_pair():
    program = parse_program(
        """
        P(x) <- R(x,y).
        P(x) <- R(x,z).
        """
    )
    assert len(drop_subsumed_rules(program)) == 1


def test_reachable_rules():
    q = DatalogQuery(parse_program(
        """
        Goal(x) <- P(x).
        P(x) <- R(x,y).
        Dead(x) <- U(x).
        Dead(x) <- Dead(x), R(x,y).
        """
    ), "Goal")
    pruned = reachable_rules(q)
    assert pruned.program.idb_predicates() == {"Goal", "P"}


def test_optimize_query_end_to_end():
    q = DatalogQuery(parse_program(
        """
        Goal(x) <- P(x).
        P(x) <- R(x,y), R(x,z).
        P(x) <- R(x,y), R(y,w), R(x,u).
        Junk(x) <- W(x).
        """
    ), "Goal")
    optimized = optimize_query(q)
    assert len(optimized.program) < len(q.program)
    assert _equivalent_on_random(q, optimized, {"R": 2, "W": 1})


def test_optimize_inverse_rules_output():
    """The optimizer shrinks a real generated program and preserves it."""
    from repro.core.parser import parse_cq
    from repro.views.inverse_rules import inverse_rules_rewriting
    from repro.views.view import View, ViewSet

    q = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal(x) <- P(x).
        """
    ), "Goal")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(x) <- U(x)")),
    ])
    rewriting = inverse_rules_rewriting(q, views)
    optimized = optimize_query(rewriting)
    assert len(optimized.program) <= len(rewriting.program)
    assert _equivalent_on_random(
        rewriting, optimized, {"VR": 2, "VU": 1}
    )
