"""Canonical forms of atom sets."""

from hypothesis import given, settings, strategies as st

from repro.core.atoms import Atom
from repro.core.parser import parse_cq
from repro.core.terms import Variable
from repro.util.canonical import canonical_form


def test_invariant_under_renaming():
    a = parse_cq("Q() <- R(x,y), R(y,z), U(z)")
    b = parse_cq("Q() <- R(u,v), R(v,w), U(w)")
    assert canonical_form(a.atoms) == canonical_form(b.atoms)


def test_distinguishes_structure():
    path = parse_cq("Q() <- R(x,y), R(y,z)")
    fork = parse_cq("Q() <- R(x,y), R(x,z)")
    assert canonical_form(path.atoms) != canonical_form(fork.atoms)


def test_free_variables_pin_identity():
    a = parse_cq("Q(x) <- R(x,y)")
    b = parse_cq("Q(y) <- R(x,y)")
    assert canonical_form(a.atoms, a.head_vars) != canonical_form(
        b.atoms, b.head_vars
    )


def test_constants_matter():
    a = parse_cq("Q() <- R(x,'a')")
    b = parse_cq("Q() <- R(x,'b')")
    assert canonical_form(a.atoms) != canonical_form(b.atoms)


def test_symmetric_structure_with_backtracking():
    """Two interchangeable branches force individualize-and-refine."""
    a = parse_cq("Q() <- R(x,y), R(x,z), U(y), U(z)")
    b = parse_cq("Q() <- R(x,b), R(x,a), U(a), U(b)")
    assert canonical_form(a.atoms) == canonical_form(b.atoms)


@given(st.permutations(["x", "y", "z", "w"]))
@settings(max_examples=24, deadline=None)
def test_random_renaming_invariance(names):
    base = parse_cq("Q() <- R(x,y), R(y,z), S(z,w), S(w,x)")
    renaming = {
        Variable(old): Variable(new)
        for old, new in zip(["x", "y", "z", "w"], names)
    }
    renamed = [a.substitute(renaming) for a in base.atoms]
    assert canonical_form(base.atoms) == canonical_form(renamed)


def test_duplicate_atoms_collapse():
    x, y = Variable("x"), Variable("y")
    once = [Atom("R", (x, y))]
    twice = [Atom("R", (x, y)), Atom("R", (x, y))]
    assert canonical_form(once) == canonical_form(twice)


def test_large_pattern_fallback_is_deterministic():
    xs = [Variable(f"v{i}") for i in range(50)]
    atoms = [Atom("R", (xs[i], xs[i + 1])) for i in range(49)]
    assert canonical_form(atoms) == canonical_form(list(reversed(atoms)))
