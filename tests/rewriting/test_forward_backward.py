"""Forward–backward rewritings (Prop. 8)."""

import pytest

from repro.core.parser import parse_cq, parse_ucq
from repro.rewriting.forward_backward import (
    NotRewritableError,
    evaluate_rewriting_over_base,
    rewrite_cq,
    rewrite_forward_backward,
)
from repro.rewriting.verification import check_rewriting
from repro.views.view import View, ViewSet


def _views(*pairs):
    return ViewSet([View(name, parse_cq(text)) for name, text in pairs])


def test_cq_rewriting_verified_on_random_instances():
    q = parse_cq("Q(x) <- R(x,y), S(y)")
    views = _views(("VR", "V(x,y) <- R(x,y)"), ("VS", "V(y) <- S(y)"))
    rewriting = rewrite_cq(q, views)
    assert rewriting.predicates() <= {"VR", "VS"}
    assert check_rewriting(q, views, rewriting, trials=40) is None


def test_rewriting_size_polynomial():
    """Prop. 8: the rewriting has one atom per view fact of V(Q_i)."""
    q = parse_cq("Q() <- R(x,y), R(y,z), S(z)")
    views = _views(("VR", "V(x,y) <- R(x,y)"), ("VS", "V(y) <- S(y)"))
    rewriting = rewrite_cq(q, views)
    assert rewriting.size() <= 4


def test_not_rewritable_raises_with_reason():
    q = parse_cq("Q(x) <- R(x,y), S(y)")
    lossy = _views(("VR", "V(x) <- R(x,y)"), ("VS", "V(y) <- S(y)"))
    with pytest.raises(NotRewritableError):
        rewrite_cq(q, lossy)


def test_uncertified_candidate_is_sound_underapproximation():
    q = parse_cq("Q() <- R(x,y), S(y)")
    lossy = _views(("VR", "V(x) <- R(x,y)"), ("VS", "V(y) <- S(y)"))
    candidate = rewrite_forward_backward(q, lossy, certify=False)
    # candidate(V(I)) may overshoot on non-images but must hold whenever
    # Q holds (the ⇒ direction of Prop. 8 needs no determinacy):
    from tests.conftest import random_instance

    for seed in range(10):
        inst = random_instance(seed, {"R": 2, "S": 1})
        if q.boolean(inst):
            assert candidate.boolean(lossy.image(inst))


def test_ucq_rewriting():
    q = parse_ucq(
        """
        Q() <- U(x).
        Q() <- R(x,y), S(y).
        """
    )
    views = _views(
        ("VU", "V(x) <- U(x)"),
        ("VR", "V(x,y) <- R(x,y)"),
        ("VS", "V(y) <- S(y)"),
    )
    rewriting = rewrite_forward_backward(q, views)
    assert len(rewriting) == 2
    assert check_rewriting(q, views, rewriting, trials=40) is None


def test_evaluate_rewriting_over_base():
    q = parse_cq("Q(x) <- R(x,y), S(y)")
    views = _views(("VR", "V(x,y) <- R(x,y)"), ("VS", "V(y) <- S(y)"))
    rewriting = rewrite_cq(q, views)
    from repro.core.parser import parse_instance

    inst = parse_instance("R('a','b'). S('b'). R('c','d').")
    assert evaluate_rewriting_over_base(rewriting, views, inst) == {("a",)}
