"""Separators (§7)."""

import pytest

from repro.core.datalog import DatalogQuery
from repro.core.instance import Instance
from repro.core.parser import parse_cq, parse_program, parse_ucq
from repro.rewriting.separator import (
    CertainAnswerSeparator,
    SmallImageSeparator,
    agree_on_image,
    separator_from_rewriting,
)
from repro.rewriting.verification import check_separator
from repro.views.view import View, ViewSet

from tests.conftest import random_instance


@pytest.fixture
def reach_setting():
    query = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(x) <- U(x)")),
        View("VS", parse_cq("V(x) <- S(x)")),
    ])
    return query, views


def test_certain_answer_separator(reach_setting):
    query, views = reach_setting
    separator = CertainAnswerSeparator(query, views)
    assert check_separator(query, views, separator, trials=30) is None
    assert separator.calls == 30


def test_separator_from_rewriting():
    q = parse_cq("Q(x) <- R(x,y), S(y)")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VS", parse_cq("V(y) <- S(y)")),
    ])
    rewriting = parse_cq("Q(x) <- VR(x,y), VS(y)")
    separator = separator_from_rewriting(rewriting)
    assert check_separator(q, views, separator, trials=30) is None


def test_small_image_separator_np_mode():
    """UCQ query + UCQ views: the guess-a-preimage separator."""
    q = parse_ucq("Q() <- R(x,y), S(y).")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VS", parse_cq("V(y) <- S(y)")),
    ])
    separator = SmallImageSeparator(q, views, mode="np")
    for seed in range(8):
        inst = random_instance(seed, {"R": 2, "S": 1}, max_facts=3)
        assert agree_on_image(q, views, separator, inst)


def test_small_image_separator_counts_preimages():
    q = parse_ucq("Q() <- R(x,y).")
    views = ViewSet([
        View("VR", parse_ucq("V(x,y) <- R(x,y). V(x,y) <- W(x,y).")),
    ])
    separator = SmallImageSeparator(q, views, mode="np")
    image = Instance()
    image.add_tuple("VR", ("a", "b"))
    image.add_tuple("VR", ("c", "d"))
    separator(image)
    assert separator.stats["preimages"] == 4  # 2 choices per fact


def test_conp_mode_is_lower_bound():
    """co-NP mode intersects over preimages: answers ⊆ NP answers."""
    q = parse_ucq("Q() <- R(x,y).")
    views = ViewSet([
        View("VR", parse_ucq("V(x,y) <- R(x,y). V(x,y) <- W(x,y).")),
    ])
    image = Instance()
    image.add_tuple("VR", ("a", "b"))
    np_sep = SmallImageSeparator(q, views, mode="np")
    conp_sep = SmallImageSeparator(q, views, mode="conp")
    assert conp_sep(image) <= np_sep(image)


def test_small_image_separator_datalog_query_ucq_views():
    """§7 claim (1): Datalog queries + UCQ views have NP/co-NP
    separators (every view image is the image of a small instance)."""
    # the query treats R and W interchangeably, so it is monotonically
    # determined over the merged R∪W view (a separator must exist)
    query = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        P(x) <- W(x,y), P(y).
        Goal() <- P(x), S(x).
        """
    ), "Goal")
    views = ViewSet([
        View("VR", parse_ucq("V(x,y) <- R(x,y). V(x,y) <- W(x,y).")),
        View("VU", parse_cq("V(x) <- U(x)")),
        View("VS", parse_cq("V(x) <- S(x)")),
    ])
    separator = SmallImageSeparator(query, views, mode="np")
    for seed in range(6):
        inst = random_instance(
            seed, {"R": 2, "W": 2, "U": 1, "S": 1}, max_facts=3
        )
        assert agree_on_image(query, views, separator, inst)
