"""The stratified separator for Q_TP (appendix)."""

import pytest

from repro.constructions.reduction_thm6 import (
    axes_instance,
    grid_test_instance,
    thm6_query,
    thm6_views,
)
from repro.constructions.tiling import unsolvable_example
from repro.core.instance import Instance
from repro.rewriting.stratified import StratifiedSeparator, product_test
from repro.rewriting.verification import check_separator


@pytest.fixture
def setting():
    tp = unsolvable_example()
    return tp, thm6_query(tp), thm6_views(tp), StratifiedSeparator(tp)


def test_product_test():
    good = Instance()
    for x in ("a", "b"):
        for y in ("u", "v"):
            good.add_tuple("S", (x, y))
    assert product_test(good)
    good.discard(next(iter(good.facts())))
    assert not product_test(good)
    assert product_test(Instance())  # vacuously a product


def test_on_marked_axes(setting):
    tp, query, views, separator = setting
    source = axes_instance(3)
    assert query.boolean(source)
    assert separator.boolean(views.image(source))


def test_on_grid_test(setting):
    tp, query, views, separator = setting
    # all-'a' tiling violates the final-tile condition -> Qverify fires
    test_inst = grid_test_instance(tp, 2, 2)
    assert query.boolean(test_inst)
    assert separator.boolean(views.image(test_inst))


def test_on_random_instances(setting):
    tp, query, views, separator = setting
    as_set = lambda j: {()} if separator.boolean(j) else set()  # noqa: E731
    assert check_separator(query, views, as_set, trials=25) is None


def test_helper_shortcut(setting):
    """A VhelperC fact alone makes the separator fire."""
    _tp, _query, _views, separator = setting
    j = Instance()
    j.add_tuple("VhelperC", ("u", "x", "y", "z"))
    assert separator.boolean(j)
