"""Structured instance generators."""

from repro.core.parser import parse_cq
from repro.core.schema import Schema
from repro.rewriting.generators import (
    binary_tree,
    chain,
    check_rewriting_structured,
    cycle,
    grid,
    structured_instances,
)
from repro.rewriting.forward_backward import rewrite_cq
from repro.views.view import View, ViewSet


def test_chain_and_cycle_shapes():
    assert len(chain("R", 5)) == 5
    c = cycle("R", 4)
    assert len(c) == 4
    # cycles close
    assert c.has_tuple("R", (3, 0))


def test_tree_and_grid_shapes():
    tree = binary_tree("R", 3)
    assert len(tree) == 2 * (2 ** 3 - 1)
    g = grid("R", 3, 2)
    assert len(g) == 2 * 2 + 3 * 1


def test_structured_instances_cover_all_relations():
    schema = Schema({"R": 2, "S": 2, "U": 1})
    seen_preds = set()
    count = 0
    for inst in structured_instances(schema, seed=1, sizes=(3,)):
        seen_preds |= inst.predicates()
        count += 1
    assert count == 8  # 2 binary relations x 4 families
    assert {"R", "S"} <= seen_preds


def test_structured_instances_empty_without_binary():
    schema = Schema({"U": 1})
    assert list(structured_instances(schema)) == []


def test_check_rewriting_structured_passes_correct_rewriting():
    q = parse_cq("Q(x) <- R(x,y), U(y)")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(y) <- U(y)")),
    ])
    rewriting = rewrite_cq(q, views)
    assert check_rewriting_structured(q, views, rewriting) is None


def test_check_rewriting_structured_catches_wrong_rewriting():
    q = parse_cq("Q(x) <- R(x,y), U(y)")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(y) <- U(y)")),
    ])
    wrong = parse_cq("Q(x) <- VR(x,y)")
    assert check_rewriting_structured(q, views, wrong) is not None
