"""Datalog rewritings (Thm 1 route via [14] and Prop. 7)."""

import pytest

from repro.automata.forward import approximations_automaton
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_program
from repro.core.schema import Schema
from repro.rewriting.datalog_rewriting import (
    backward_rewriting_from_automaton,
    datalog_rewriting,
    verify_rewriting_on_instances,
)
from repro.rewriting.verification import check_rewriting, random_instances
from repro.views.view import View, ViewSet


@pytest.fixture
def ex1():
    query = DatalogQuery(parse_program(
        """
        GoalQ() <- U1(x), W1(x).
        W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
        W1(x) <- U2(x).
        """
    ), "GoalQ")
    views = ViewSet([
        View("V0", parse_cq("V(x,w) <- T(x,y,z), B(z,w), B(y,w)")),
        View("V1", parse_cq("V(x) <- U1(x)")),
        View("V2", parse_cq("V(x) <- U2(x)")),
    ])
    return query, views


def test_example1_inverse_rules_rewriting(ex1):
    query, views = ex1
    rewriting = datalog_rewriting(query, views)
    assert check_rewriting(query, views, rewriting, trials=40) is None


def test_example1_matches_paper_rewriting(ex1):
    """Our inverse-rules rewriting agrees with the paper's hand-written
    one on view images."""
    query, views = ex1
    ours = datalog_rewriting(query, views)
    paper = DatalogQuery(parse_program(
        """
        GoalR() <- V1(x), W1(x).
        W1(x) <- V0(x,w), W1(w).
        W1(x) <- V2(x).
        """
    ), "GoalR")
    schema = Schema({"T": 3, "B": 2, "U1": 1, "U2": 1})
    for inst in random_instances(schema, 30, seed=7):
        image = views.image(inst)
        assert ours.boolean(image) == paper.boolean(image)


def test_frontier_guarded_variant(ex1):
    query, views = ex1
    guarded = datalog_rewriting(query, views, frontier_guard=True)
    assert guarded.program.is_frontier_guarded()
    assert check_rewriting(query, views, guarded, trials=25) is None


def test_backward_rewriting_identity_views():
    """With identity views, the forward automaton itself satisfies
    Prop. 7 and its backward map is a rewriting."""
    query = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    views = ViewSet([
        View("R", parse_cq("V(x,y) <- R(x,y)")),
        View("U", parse_cq("V(x) <- U(x)")),
        View("S", parse_cq("V(x) <- S(x)")),
    ])
    nta = approximations_automaton(query)
    rewriting = backward_rewriting_from_automaton(
        nta, Schema({"R": 2, "U": 1, "S": 1})
    )
    assert check_rewriting(query, views, rewriting, trials=30) is None


def test_verify_rewriting_on_instances_reports_failure(ex1):
    query, views = ex1
    wrong = DatalogQuery(parse_program("G() <- V1(x)."), "G")
    schema = Schema({"T": 3, "B": 2, "U1": 1, "U2": 1})
    bad = verify_rewriting_on_instances(
        query, views, wrong, random_instances(schema, 30, seed=1)
    )
    assert bad is not None
