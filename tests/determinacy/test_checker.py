"""The dispatching checker and the bounded Lemma-5 procedure."""

import pytest

from repro.core.containment import Verdict
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_program
from repro.determinacy.checker import check_tests, decide_monotonic_determinacy
from repro.determinacy.automata_checker import decide_fgdl
from repro.views.view import View, ViewSet


@pytest.fixture
def ex1():
    query = DatalogQuery(parse_program(
        """
        GoalQ() <- U1(x), W1(x).
        W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
        W1(x) <- U2(x).
        """
    ), "GoalQ")
    views = ViewSet([
        View("V0", parse_cq("V(x,w) <- T(x,y,z), B(z,w), B(y,w)")),
        View("V1", parse_cq("V(x) <- U1(x)")),
        View("V2", parse_cq("V(x) <- U2(x)")),
    ])
    return query, views


def test_cq_queries_use_exact_path():
    q = parse_cq("Q(x) <- R(x,y), S(y)")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VS", parse_cq("V(y) <- S(y)")),
    ])
    result = decide_monotonic_determinacy(q, views)
    assert result.verdict is Verdict.YES
    assert "Thm 5" in result.method


def test_recursive_queries_use_bounded_path(ex1):
    query, views = ex1
    result = decide_monotonic_determinacy(query, views, approx_depth=4)
    assert result.verdict is Verdict.UNKNOWN
    assert "Lemma 5" in result.method
    assert result.stats["tests_executed"] > 0


def test_bounded_path_finds_counterexample(ex1):
    query, _ = ex1
    lossy = ViewSet([
        View("V0", parse_cq("V(x,w) <- T(x,y,z), B(z,w), B(y,w)")),
        View("V1", parse_cq("V(x) <- U1(x)")),
    ])
    result = decide_monotonic_determinacy(query, lossy, approx_depth=4)
    assert result.verdict is Verdict.NO
    assert result.counterexample is not None
    # the counterexample is genuine: D' fails the query
    from repro.determinacy.tests import test_succeeds

    assert not test_succeeds(result.counterexample, query)


def test_budget_exhaustion_reports_unknown(ex1):
    query, views = ex1
    result = check_tests(query, views, approx_depth=4, max_tests=1)
    assert result.verdict is Verdict.UNKNOWN
    assert "budget" in result.detail


def test_fgdl_checker_stats(ex1):
    query, views = ex1
    result = decide_fgdl(query, views, approx_depth=4)
    assert result.verdict is Verdict.UNKNOWN
    assert result.stats["k"] >= 1
    assert result.stats["image_treewidth"] >= 1
    assert result.stats["lemma3_bound"] >= result.stats["k"]


def test_fgdl_checker_refutes(ex1):
    query, _ = ex1
    lossy = ViewSet([View("V1", parse_cq("V(x) <- U1(x)"))])
    result = decide_fgdl(query, lossy, approx_depth=3)
    assert result.verdict is Verdict.NO


def test_example1_v3v4_erratum():
    """Our checker finds that Example 1's second claim fails on the
    degenerate zero-iteration instance (see EXPERIMENTS.md)."""
    from repro.constructions.example1 import example1_query, views_v3_v4

    result = decide_monotonic_determinacy(
        example1_query(), views_v3_v4(), approx_depth=3
    )
    assert result.verdict is Verdict.NO
    # the failing approximation is the U1 ∧ U2 base case
    approx = result.counterexample.approximation
    assert approx.predicates() == {"U1", "U2"}


def test_finite_test_space_gives_exact_yes():
    """CQ query + CQ views: exhausting the finite test space decides."""
    q = parse_cq("Q(x) <- R(x,y), S(y)")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VS", parse_cq("V(y) <- S(y)")),
    ])
    result = check_tests(q, views)
    assert result.verdict is Verdict.YES
    assert "finite" in result.method
    # and it agrees with the Thm 5 automata path
    from repro.determinacy.cq_query import decide_cq_ucq

    assert decide_cq_ucq(q, views)[0].verdict is Verdict.YES


def test_finite_test_space_not_claimed_for_datalog_views():
    q = parse_cq("Q() <- R(x,y), U(x)")
    tc = DatalogQuery(parse_program(
        "P(x,y) <- R(x,y). P(x,y) <- R(x,z), P(z,y)."
    ), "P", "VTC")
    views = ViewSet([
        View("VTC", tc),
        View("VU", parse_cq("V(x) <- U(x)")),
    ])
    result = check_tests(q, views, view_depth=3)
    assert result.verdict is Verdict.UNKNOWN


def test_repaired_example1():
    """Erratum E1 repair: adding V5 restores the paper's intent."""
    from repro.constructions.example1 import (
        example1_query,
        repaired_rewriting_v3_v5,
        views_v3_v4_repaired,
    )
    from repro.rewriting.verification import check_rewriting

    q = example1_query()
    views = views_v3_v4_repaired()
    result = decide_monotonic_determinacy(q, views, approx_depth=4)
    assert result.verdict is not Verdict.NO  # bounded: no failing test
    rewriting = repaired_rewriting_v3_v5()
    assert check_rewriting(q, views, rewriting, trials=40) is None
