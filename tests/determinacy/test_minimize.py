"""Counterexample minimization."""

import pytest

from repro.core.containment import Verdict
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_instance, parse_program
from repro.determinacy.checker import check_tests
from repro.determinacy.minimize import (
    minimize_failing_test,
    minimize_violation_pair,
    violation_pair_from_test,
)
from repro.determinacy.tests import test_succeeds as succeeds
from repro.views.view import View, ViewSet


@pytest.fixture
def failing_setting():
    query = DatalogQuery(parse_program(
        """
        GoalQ() <- U1(x), W1(x).
        W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
        W1(x) <- U2(x).
        """
    ), "GoalQ")
    lossy = ViewSet([
        View("V0", parse_cq("V(x,w) <- T(x,y,z), B(z,w), B(y,w)")),
        View("V1", parse_cq("V(x) <- U1(x)")),
    ])
    result = check_tests(query, lossy, approx_depth=4)
    assert result.verdict is Verdict.NO
    return query, lossy, result.counterexample


def test_minimize_failing_test(failing_setting):
    query, views, test = failing_setting
    minimized = minimize_failing_test(test, query, views)
    assert len(minimized.test_instance) <= len(test.test_instance)
    # still failing and still a test
    assert not succeeds(minimized, query)
    assert test.view_image <= views.image(minimized.test_instance)
    # inclusion-minimal: removing any fact breaks testhood
    for fact in minimized.test_instance.facts():
        smaller = minimized.test_instance.copy()
        smaller.discard(fact)
        assert not (test.view_image <= views.image(smaller))


def test_minimize_rejects_succeeding_tests(failing_setting):
    query, views, test = failing_setting
    from repro.determinacy.result import CanonicalTest

    healthy = CanonicalTest(
        test.approximation,
        test.view_image,
        test.approximation.canonical_database(),
    )
    with pytest.raises(ValueError):
        minimize_failing_test(healthy, query, views)


def test_violation_pair_from_test(failing_setting):
    query, views, test = failing_setting
    left, right = violation_pair_from_test(test)
    assert views.image(left) <= views.image(right)
    assert query.boolean(left) and not query.boolean(right)


def test_minimize_violation_pair():
    q = parse_cq("Q() <- R(x,y), S(y)")
    views = ViewSet([
        View("VR", parse_cq("V(x) <- R(x,y)")),
        View("VS", parse_cq("V(y) <- S(y)")),
    ])
    left = parse_instance(
        "R('a','b'). S('b'). R('junk1','junk2'). W('noise')."
    )
    right = parse_instance("R('a','c'). S('b'). R('junk1','junk2').")
    small_left, small_right = minimize_violation_pair(q, views, left, right)
    # the left side shrinks to the bare witness of Q
    assert len(small_left) == 2
    assert views.image(small_left) <= views.image(small_right)
    assert q.boolean(small_left) and not q.boolean(small_right)


def test_minimize_violation_pair_rejects_non_violation():
    q = parse_cq("Q() <- R(x,y)")
    views = ViewSet([View("VR", parse_cq("V(x,y) <- R(x,y)"))])
    inst = parse_instance("R('a','b').")
    with pytest.raises(ValueError):
        minimize_violation_pair(q, views, inst, inst)
