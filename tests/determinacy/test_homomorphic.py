"""Homomorphic determinacy utilities (Lemma 4)."""

from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_instance, parse_program
from repro.determinacy.homomorphic import (
    homomorphic_violation,
    monotonic_violation,
)
from repro.views.view import View, ViewSet


def _lossy_setting():
    q = parse_cq("Q() <- R(x,y), S(y)")
    views = ViewSet([
        View("VR", parse_cq("V(x) <- R(x,y)")),
        View("VS", parse_cq("V(y) <- S(y)")),
    ])
    # Q true here:
    left = parse_instance("R('a','b'). S('b').")
    # view image includes the left image, Q false (no R-S join):
    right = parse_instance("R('a','c'). S('b').")
    return q, views, left, right


def test_monotonic_violation_found():
    q, views, left, right = _lossy_setting()
    assert views.image(left) <= views.image(right)
    assert monotonic_violation(q, views, left, right) == ()


def test_monotonic_violation_requires_image_inclusion():
    q, views, left, _ = _lossy_setting()
    unrelated = parse_instance("W('q').")
    assert monotonic_violation(q, views, left, unrelated) is None


def test_homomorphic_violation_found():
    q, views, left, right = _lossy_setting()
    violation = homomorphic_violation(q, views, left, right)
    assert violation is not None


def test_no_violation_for_determined_views():
    q = parse_cq("Q() <- R(x,y), S(y)")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VS", parse_cq("V(y) <- S(y)")),
    ])
    left = parse_instance("R('a','b'). S('b').")
    right = parse_instance("R('u','v'). S('v'). R('v','u').")
    assert homomorphic_violation(q, views, left, right) is None


def test_lemma4_on_datalog_example():
    """A Datalog query determined over its views admits no
    homomorphic violation on sampled instance pairs (Lemma 4)."""
    q = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(x) <- U(x)")),
        View("VS", parse_cq("V(x) <- S(x)")),
    ])
    from tests.conftest import random_instance

    for seed in range(6):
        left = random_instance(seed, {"R": 2, "U": 1, "S": 1})
        right = random_instance(seed + 100, {"R": 2, "U": 1, "S": 1})
        merged = left | right  # guarantees a hom V(left) -> V(merged)
        assert homomorphic_violation(q, views, left, merged) is None
