"""Canonical tests (Lemma 5)."""

import pytest

from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_program, parse_ucq
from repro.determinacy.tests import canonical_tests
from repro.determinacy.tests import test_succeeds as succeeds
from repro.determinacy.tests import tests_for_approximation as make_tests
from repro.determinacy.tests import view_definition_expansions
from repro.views.view import View, ViewSet


@pytest.fixture
def ex1_query():
    return DatalogQuery(parse_program(
        """
        GoalQ() <- U1(x), W1(x).
        W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
        W1(x) <- U2(x).
        """
    ), "GoalQ")


@pytest.fixture
def ex1_views():
    return ViewSet([
        View("V0", parse_cq("V(x,w) <- T(x,y,z), B(z,w), B(y,w)")),
        View("V1", parse_cq("V(x) <- U1(x)")),
        View("V2", parse_cq("V(x) <- U2(x)")),
    ])


def test_view_definition_expansions_cq():
    view = View("V", parse_cq("V(x) <- R(x,y)"))
    assert len(view_definition_expansions(view, 3)) == 1


def test_view_definition_expansions_ucq():
    view = View("V", parse_ucq("V(x) <- R(x,y). V(x) <- U(x)."))
    assert len(view_definition_expansions(view, 3)) == 2


def test_view_definition_expansions_datalog():
    definition = DatalogQuery(parse_program(
        "P(x) <- U(x). P(x) <- R(x,y), P(y)."
    ), "P", "VP")
    view = View("VP", definition)
    # depths 1..3: U(x); R,U; R,R,U
    assert len(view_definition_expansions(view, 3)) == 3


def test_all_tests_succeed_for_determined_case(ex1_query, ex1_views):
    for test in canonical_tests(ex1_query, ex1_views, approx_depth=4):
        assert succeeds(test, ex1_query)


def test_failing_test_when_view_dropped(ex1_query):
    lossy = ViewSet([
        View("V0", parse_cq("V(x,w) <- T(x,y,z), B(z,w), B(y,w)")),
        View("V1", parse_cq("V(x) <- U1(x)")),
        # V2 (exposing U2) is missing
    ])
    outcomes = [
        succeeds(t, ex1_query)
        for t in canonical_tests(ex1_query, lossy, approx_depth=3)
    ]
    assert False in outcomes


def test_test_instance_view_image_contains_original(ex1_query, ex1_views):
    """D' is a sound-view preimage: V(D') ⊇ V(Q_i)."""
    for test in canonical_tests(ex1_query, ex1_views, approx_depth=3):
        reimaged = ex1_views.image(test.test_instance)
        assert test.view_image <= reimaged


def test_choice_combinatorics():
    """UCQ views multiply test choices per fact."""
    q = parse_cq("Q() <- R(x,y), R(y,z)")
    views = ViewSet([
        View("VR", parse_ucq("V(x,y) <- R(x,y). V(x,y) <- S(x,y).")),
    ])
    tests = list(make_tests(q, views, view_depth=2))
    # image has 2 VR-facts, 2 choices each -> 4 tests
    assert len(tests) == 4


def test_max_tests_cap():
    q = parse_cq("Q() <- R(x,y), R(y,z)")
    views = ViewSet([
        View("VR", parse_ucq("V(x,y) <- R(x,y). V(x,y) <- S(x,y).")),
    ])
    assert len(list(make_tests(q, views, 2, max_tests=2))) == 2


def test_nulls_are_fresh_per_test():
    q = parse_cq("Q() <- R(x,y)")
    views = ViewSet([View("VR", parse_cq("V(x) <- R(x,y)"))])
    (test,) = list(make_tests(q, views))
    (row,) = test.test_instance.tuples("R")
    assert isinstance(row[1], str) and row[1].startswith("∃")


def test_describe_renders(ex1_query, ex1_views):
    test = next(iter(canonical_tests(ex1_query, ex1_views, 3)))
    text = test.describe()
    assert "view image" in text and "D'" in text
