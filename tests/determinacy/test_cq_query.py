"""Exact determinacy decisions for CQ/UCQ queries (Prop. 8 / Thm 5)."""

from repro.core.containment import Verdict
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_program, parse_ucq
from repro.determinacy.cq_query import (
    decide_cq_ucq,
    forward_backward_candidate,
    unfold_candidate,
)
from repro.views.view import View, ViewSet


def _views(*pairs):
    return ViewSet([View(name, parse_cq(text)) for name, text in pairs])


def test_lossless_join_determined():
    q = parse_cq("Q(x) <- R(x,y), S(y)")
    views = _views(("VR", "V(x,y) <- R(x,y)"), ("VS", "V(y) <- S(y)"))
    result, rewriting = decide_cq_ucq(q, views)
    assert result.verdict is Verdict.YES
    assert rewriting is not None and len(rewriting) == 1


def test_lossy_projection_not_determined():
    q = parse_cq("Q(x) <- R(x,y), S(y)")
    views = _views(("VR", "V(x) <- R(x,y)"), ("VS", "V(y) <- S(y)"))
    result, rewriting = decide_cq_ucq(q, views)
    assert result.verdict is Verdict.NO
    assert rewriting is None


def test_answer_invisible_refuted_fast():
    # the views never expose x at all
    q = parse_cq("Q(x) <- R(x,y)")
    views = _views(("VY", "V(y) <- R(x,y)"))
    result, _ = decide_cq_ucq(q, views)
    assert result.verdict is Verdict.NO
    assert "invisible" in result.detail


def test_join_view_determines_its_own_join():
    q = parse_cq("Q() <- R(x,y), S(y,z)")
    views = _views(("VJ", "V(x,z) <- R(x,y), S(y,z)"))
    result, rewriting = decide_cq_ucq(q, views)
    assert result.verdict is Verdict.YES


def test_split_views_lose_the_join():
    q = parse_cq("Q() <- R(x,y), S(y,z)")
    views = _views(("VR", "V(x,y) <- R(x,y)"), ("VS", "V(y,z) <- S(y,z)"))
    # both relations fully visible: the join is recoverable
    result, _ = decide_cq_ucq(q, views)
    assert result.verdict is Verdict.YES
    # ... but with join variables projected away it is not
    views2 = _views(("VR", "V(x) <- R(x,y)"), ("VS", "V(z) <- S(y,z)"))
    result2, _ = decide_cq_ucq(q, views2)
    assert result2.verdict is Verdict.NO


def test_ucq_query_determined():
    q = parse_ucq(
        """
        Q() <- U(x).
        Q() <- W(x).
        """
    )
    views = _views(("VU", "V(x) <- U(x)"), ("VW", "V(x) <- W(x)"))
    result, rewriting = decide_cq_ucq(q, views)
    assert result.verdict is Verdict.YES
    assert len(rewriting) == 2


def test_recursive_view_case():
    """CQ query over a recursive Datalog view (the Thm 5 regime)."""
    tc = DatalogQuery(parse_program(
        """
        P(x,y) <- R(x,y).
        P(x,y) <- R(x,z), P(z,y).
        """
    ), "P", "VTC")
    views = ViewSet([
        View("VTC", tc),
        View("VU", parse_cq("V(x) <- U(x)")),
    ])
    # "an R-edge from a U-point": determined (the first step of any
    # TC-path from a U-point is an R-edge)
    q_yes = parse_cq("Q() <- R(x,y), U(x)")
    result, _ = decide_cq_ucq(q_yes, views)
    assert result.verdict is Verdict.YES
    # "an R-edge between two U-points": NOT determined (TC only says
    # there is a path; its intermediate hops may not connect U-points)
    q_no = parse_cq("Q() <- R(x,y), U(x), U(y)")
    result2, _ = decide_cq_ucq(q_no, views)
    assert result2.verdict is Verdict.NO


def test_counterexample_is_packaged():
    q = parse_cq("Q() <- R(x,y), S(y)")
    views = _views(("VR", "V(x) <- R(x,y)"), ("VS", "V(y) <- S(y)"))
    result, _ = decide_cq_ucq(q, views)
    assert result.counterexample is not None


def test_candidate_construction():
    q = parse_cq("Q(x) <- R(x,y), S(y)")
    views = _views(("VR", "V(x,y) <- R(x,y)"), ("VS", "V(y) <- S(y)"))
    candidate, problem = forward_backward_candidate(q, views)
    assert problem == ""
    (disjunct,) = candidate.disjuncts
    assert disjunct.arity == 1
    assert disjunct.predicates() == {"VR", "VS"}
    unfolded = unfold_candidate(candidate, views)
    assert unfolded.arity == 1
