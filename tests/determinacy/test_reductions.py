"""Prop. 9 reductions: equivalence/containment → monotonic determinacy."""

import pytest

from repro.core.containment import Verdict
from repro.core.parser import parse_cq, parse_ucq
from repro.determinacy.checker import decide_monotonic_determinacy
from repro.determinacy.reductions import (
    containment_to_determinacy,
    equivalence_to_determinacy,
)


def test_lemma7_equivalent_cqs():
    q = parse_cq("Q(x) <- R(x,y)")
    qv = parse_cq("V(x) <- R(x,y), R(x,z)")  # equivalent (fold z=y)
    query, views = equivalence_to_determinacy(q, qv)
    result = decide_monotonic_determinacy(query, views)
    assert result.verdict is Verdict.YES


def test_lemma7_inequivalent_cqs():
    q = parse_cq("Q(x) <- R(x,y)")
    qv = parse_cq("V(x) <- R(x,y), R(y,z)")  # strictly contained
    query, views = equivalence_to_determinacy(q, qv)
    result = decide_monotonic_determinacy(query, views)
    assert result.verdict is Verdict.NO


def test_lemma7_ucq_case():
    q = parse_ucq("Q() <- R(x,y). Q() <- S(x).")
    qv_same = parse_ucq("V() <- S(x). V() <- R(a,b).")
    query, views = equivalence_to_determinacy(q, qv_same)
    assert decide_monotonic_determinacy(query, views).verdict is Verdict.YES
    qv_diff = parse_ucq("V() <- R(x,y).")
    query2, views2 = equivalence_to_determinacy(q, qv_diff)
    assert decide_monotonic_determinacy(query2, views2).verdict is Verdict.NO


@pytest.mark.parametrize(
    "sub, sup, contained",
    [
        ("Q() <- R(x,y), R(y,z)", "Q() <- R(u,v)", True),
        ("Q() <- R(u,v)", "Q() <- R(x,y), R(y,z)", False),
        ("Q() <- R(x,x)", "Q() <- R(x,y)", True),
        ("Q() <- R(x,y)", "Q() <- R(x,x)", False),
    ],
)
def test_lemma8_containment_reduction(sub, sup, contained):
    query, views = containment_to_determinacy(parse_cq(sub), parse_cq(sup))
    # the reduced instance's determinacy status == the containment status;
    # we check via the bounded procedure, whose NO answers are exact and
    # whose "all tests pass up to depth" matches containment here because
    # the queries are nonrecursive (tests are finitely many).
    result = decide_monotonic_determinacy(query, views, approx_depth=3)
    if contained:
        assert result.verdict is not Verdict.NO
    else:
        assert result.verdict is Verdict.NO


def test_lemma8_views_hide_only_marker():
    query, views = containment_to_determinacy(
        parse_cq("Q() <- R(x,y)"), parse_cq("Q() <- R(x,x)")
    )
    assert "V·E·extra" not in views.names()
    assert any(name.startswith("V·R") for name in views.names())
