"""Verdict certificates: every decide path emits claims the independent
checker validates, and the semantic bounded→UCQ dispatch fires."""

import json

from repro.certify import check_certificate
from repro.core.atoms import Atom
from repro.core.containment import Verdict
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_program
from repro.core.terms import Variable
from repro.views.view import View, ViewSet
from repro.determinacy.checker import decide_monotonic_determinacy
from repro.rewriting.datalog_rewriting import (
    datalog_rewriting,
    datalog_rewriting_certificate,
)
from repro.rewriting.forward_backward import rewrite_with_certificate

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

PATH2 = ConjunctiveQuery((X, Z), (Atom("R", (X, Y)), Atom("R", (Y, Z))))
FIRST = ConjunctiveQuery((X,), (Atom("R", (X, Y)),))
EDGE_VIEW = ViewSet([
    View("V1", ConjunctiveQuery((X, Y), (Atom("R", (X, Y)),)))
])
SECOND_VIEW = ViewSet([
    View("W", ConjunctiveQuery((Y,), (Atom("R", (X, Y)),)))
])


def validate(cert):
    assert cert is not None
    result = check_certificate(json.loads(json.dumps(cert)))
    assert result.valid, result.failures
    return result


def test_cq_yes_carries_rewriting_certificate():
    result = decide_monotonic_determinacy(PATH2, EDGE_VIEW)
    assert result.verdict is Verdict.YES
    checked = validate(result.certificate)
    types = [c["type"] for c in result.certificate["claims"]]
    assert "monotone_rewriting" in types
    assert checked.claims == len(types)
    assert result.certificate["meta"]["verdict"] == "yes"


def test_cq_no_carries_counterexample_pair():
    result = decide_monotonic_determinacy(FIRST, SECOND_VIEW)
    assert result.verdict is Verdict.NO
    validate(result.certificate)
    types = [c["type"] for c in result.certificate["claims"]]
    assert types == ["not_monotonically_determined"]


def test_bounded_datalog_reduces_to_ucq_route():
    program = parse_program(
        """
        P(x, y) <- R(x, y).
        P(x, y) <- R(x, y), P(x, y).
        Goal(x) <- P(x, y).
        """
    )
    query = DatalogQuery(program, "Goal")
    result = decide_monotonic_determinacy(query, EDGE_VIEW)
    assert result.verdict is Verdict.YES
    assert "bounded→UCQ reduction" in result.method
    validate(result.certificate)
    types = [c["type"] for c in result.certificate["claims"]]
    assert types[0] == "bounded_unfolding"
    assert "monotone_rewriting" in types

    negative = decide_monotonic_determinacy(query, SECOND_VIEW)
    assert negative.verdict is Verdict.NO
    assert "bounded→UCQ reduction" in negative.method
    validate(negative.certificate)


def test_recursive_no_from_canonical_tests():
    program = parse_program(
        """
        T(x, y) <- R(x, y).
        T(x, y) <- R(x, z), T(z, y).
        """
    )
    query = DatalogQuery(program, "T")
    result = decide_monotonic_determinacy(
        query, SECOND_VIEW, approx_depth=2
    )
    assert result.verdict is Verdict.NO
    assert result.counterexample is not None
    validate(result.certificate)


def test_recursive_unknown_has_no_certificate():
    program = parse_program(
        """
        T(x, y) <- R(x, y).
        T(x, y) <- R(x, z), T(z, y).
        """
    )
    query = DatalogQuery(program, "T")
    result = decide_monotonic_determinacy(
        query, EDGE_VIEW, approx_depth=2
    )
    assert result.verdict is Verdict.UNKNOWN
    assert result.certificate is None


def test_certify_false_skips_emission():
    result = decide_monotonic_determinacy(
        PATH2, EDGE_VIEW, certify=False
    )
    assert result.verdict is Verdict.YES
    assert result.certificate is None


def test_rewrite_with_certificate():
    rewriting, cert = rewrite_with_certificate(PATH2, EDGE_VIEW)
    assert len(rewriting.disjuncts) == 1
    validate(cert)
    assert cert["meta"]["method"] == "forward-backward (Prop. 8)"


def test_datalog_rewriting_certificate_sampled():
    program = parse_program(
        """
        T(x, y) <- E(x, y).
        T(x, y) <- E(x, z), T(z, y).
        """
    )
    query = DatalogQuery(program, "T")
    views = ViewSet([
        View("VE", ConjunctiveQuery((X, Y), (Atom("E", (X, Y)),)))
    ])
    rewriting = datalog_rewriting(query, views)
    cert = datalog_rewriting_certificate(
        query, views, rewriting, trials=8
    )
    validate(cert)
    (claim,) = cert["claims"]
    assert claim["type"] == "rewriting_sample"
    assert "sampled" in cert["meta"]["note"]
