"""Figures 3 and 4 — the diamond chain, its view image, unravellings
and the long R-row, as thin timed wrappers over the ``fig3-*`` /
``fig4-*`` evidence jobs (``repro.harness.evidence_figures``).
"""

import pytest

from benchmarks.conftest import run_evidence_job


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_fig3_chain_and_image(benchmark, k):
    run_evidence_job(benchmark, "fig3-chain-and-image", ks=[k])


def test_fig3_unravelled_counterexample(benchmark):
    run_evidence_job(benchmark, "fig3-unravelled-counterexample")


@pytest.mark.parametrize("length", [1, 2, 3])
def test_fig4_long_row(benchmark, length):
    """Figure 4: rows of length >= 2 cannot embed into the unravelling."""
    run_evidence_job(benchmark, "fig4-long-row", lengths=[length])
