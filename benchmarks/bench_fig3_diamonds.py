"""Figures 3 and 4 — the diamond chain, its view image, unravellings
and the long R-row, across a k sweep.
"""

import pytest

from repro.constructions.diamonds import (
    diamond_chain,
    diamond_query,
    diamond_views,
    long_row_cq,
    unravelled_counterexample,
)
from repro.core.homomorphism import instance_maps_into

from benchmarks.conftest import report


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_fig3_chain_and_image(benchmark, k):
    q = diamond_query()
    views = diamond_views()
    chain = diamond_chain(k + 1)

    def eval_and_image():
        return q.boolean(chain), views.image(chain)

    holds, image = benchmark(eval_and_image)
    assert holds
    assert len(image.tuples("S")) == 1
    assert len(image.tuples("R")) == k
    assert len(image.tuples("T")) == 1
    report(
        f"FIG3 (k={k})",
        "I_k: chain of k+1 diamonds satisfies Q; its image is "
        "S · R^k · T (Figure 3(b))",
        f"Q(I_k)=True; image = 1 S + {k} R + 1 T facts",
    )


def test_fig3_unravelled_counterexample(benchmark):
    image, chased, unravelling = benchmark.pedantic(
        unravelled_counterexample, args=(2,), kwargs={"depth": 2},
        rounds=1, iterations=1,
    )
    q = diamond_query()
    assert not q.boolean(chased)
    assert unravelling.instance <= diamond_views().image(chased)
    report(
        "FIG3 (I'_k)",
        "the inverse chase of the (1,k)-unravelling fails Q while its "
        "view image covers the unravelling",
        f"Q(I'_k)=False on {len(chased)} facts; J'_k ⊆ V(I'_k) with "
        f"{unravelling.copy_count()} copies",
    )


@pytest.mark.parametrize("length", [1, 2, 3])
def test_fig4_long_row(benchmark, length):
    """Figure 4: rows of length >= 2 cannot embed into the unravelling."""
    _image, _chased, unravelling = unravelled_counterexample(2, depth=2)
    row = long_row_cq(length)

    maps = benchmark(
        instance_maps_into, row.canonical_database(), unravelling.instance
    )
    assert maps == (length <= 1)
    report(
        f"FIG4 (row length {length})",
        "a row of ≥2 R-rectangles needs two shared elements between "
        "bags — impossible in a (1,k)-unravelling",
        f"row({length}) embeds: {maps} (expected {length <= 1})",
    )
