"""Figure 2 — a Qstart approximation and its view image.

Thin timed wrappers over the ``fig2-*`` evidence jobs
(``repro.harness.evidence_figures``); the ℓ sweep narrows the
registered job to one axes instance per benchmark row.
"""

import pytest

from benchmarks.conftest import run_evidence_job


@pytest.mark.parametrize("ell", [2, 3, 4])
def test_fig2_view_image_is_product(benchmark, ell):
    run_evidence_job(benchmark, "fig2-view-image", ells=[ell])


def test_fig2_tests_recover_grids(benchmark):
    """Inverting every S-atom with a tile disjunct yields a grid test."""
    run_evidence_job(benchmark, "fig2-tests-recover-grids")
