"""Figure 2 — a Qstart approximation and its view image.

Regenerates the figure as data over an ℓ sweep: the marked axes
instance ``I_ℓ``, its view image ``E_ℓ`` whose ``S`` relation is the
C×D product, and the fact that grid tests are recovered by inverting
the S-atoms with tile disjuncts.
"""

import pytest

from repro.constructions.reduction_thm6 import (
    axes_instance,
    thm6_query,
    thm6_views,
)
from repro.constructions.tiling import solvable_example
from repro.determinacy.tests import tests_for_approximation as make_tests
from repro.core.approximation import approximations

from benchmarks.conftest import report


@pytest.mark.parametrize("ell", [2, 3, 4])
def test_fig2_view_image_is_product(benchmark, ell):
    tp = solvable_example()
    views = thm6_views(tp)
    source = axes_instance(ell)

    image = benchmark(views.image, source)
    assert len(image.tuples("S")) == ell * ell
    assert len(image.tuples("VXSucc")) == ell  # o -> x1 -> ... -> x_ell
    assert len(image.tuples("VYSucc")) == ell
    assert not image.tuples("VHA") and not image.tuples("VI")
    report(
        f"FIG2 (ℓ={ell})",
        "V(I_ℓ): S = C × D (ℓ² facts), axes exposed atomically, "
        "special views empty",
        f"S has {len(image.tuples('S'))} facts; "
        f"{len(image.tuples('VXSucc'))}+{len(image.tuples('VYSucc'))} "
        "successor facts; special views empty",
    )


def test_fig2_tests_recover_grids(benchmark):
    """Inverting every S-atom with a tile disjunct yields a grid test."""
    tp = solvable_example()
    query = thm6_query(tp)
    views = thm6_views(tp)
    # find the ℓ=2 Qstart approximation among the query's approximations
    target = None
    for cq in approximations(query, 4):
        if sum(1 for a in cq.atoms if a.pred == "C") == 2:
            target = cq
            break
    assert target is not None

    def count_grid_tests():
        grid_like = 0
        total = 0
        for test in make_tests(target, views, view_depth=1):
            total += 1
            d_prime = test.test_instance
            if len(d_prime.tuples("XProj")) == 4 and not d_prime.tuples("C"):
                grid_like += 1
        return grid_like, total

    grid_like, total = benchmark(count_grid_tests)
    assert grid_like >= 1
    report(
        "FIG2 (tests)",
        "grid-like tests arise from the view image by replacing each "
        "S-atom with a tile disjunct",
        f"{grid_like} fully-grid tests among {total} inversion choices "
        "of the ℓ=2 approximation",
    )
