"""ABL-HOM — homomorphism search orderings.

Dynamic fewest-candidates-first vs static vs one-shot connected join
ordering, on a selective pattern over a larger instance.
"""

import random

import pytest

from repro.core.homomorphism import homomorphisms
from repro.core.instance import Instance
from repro.core.parser import parse_cq

PATTERN = parse_cq(
    "Q() <- R(x,y), R(y,z), R(z,w), U(x), U(w)"
).atoms


def _instance(seed: int, n: int, edges: int, marks: int) -> Instance:
    rng = random.Random(seed)
    inst = Instance()
    for _ in range(edges):
        inst.add_tuple("R", (rng.randrange(n), rng.randrange(n)))
    for _ in range(marks):
        inst.add_tuple("U", (rng.randrange(n),))
    return inst


@pytest.fixture(scope="module")
def target():
    return _instance(3, 60, 240, 4)


def _count(ordering: str, target: Instance) -> int:
    return sum(1 for _ in homomorphisms(PATTERN, target, ordering=ordering))


@pytest.mark.parametrize("ordering", ["dynamic", "static", "connected"])
def test_ordering(benchmark, engine_stats, ordering, target):
    count = benchmark(_count, ordering, target)
    # all orderings agree on the answer
    assert count == _count("dynamic", target)
