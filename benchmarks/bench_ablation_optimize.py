"""ABL-OPT — program optimization on generated rewritings.

The inverse-rules and backward-mapping constructions produce redundant
programs; this ablation measures the shrink factor and the cost of the
optimizer on real generated programs.
"""

import pytest

from repro.core.datalog import DatalogQuery
from repro.core.optimize import optimize_query
from repro.core.parser import parse_cq, parse_program
from repro.rewriting.verification import check_rewriting
from repro.views.inverse_rules import inverse_rules_rewriting
from repro.views.view import View, ViewSet

from benchmarks.conftest import report


@pytest.fixture(scope="module")
def generated_rewriting():
    # the source query carries redundancy (extra forks, duplicate
    # recursion paths) that the inverse-rules translation inherits
    query = DatalogQuery(parse_program(
        """
        GoalQ() <- U1(x), W1(x), W1(x).
        W1(x) <- T(x,y,z), B(z,w), B(y,w), B(y,w2), W1(w).
        W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
        W1(x) <- U2(x).
        """
    ), "GoalQ")
    views = ViewSet([
        View("V0", parse_cq("V(x,w) <- T(x,y,z), B(z,w), B(y,w)")),
        View("V1", parse_cq("V(x) <- U1(x)")),
        View("V2", parse_cq("V(x) <- U2(x)")),
    ])
    return query, views, inverse_rules_rewriting(query, views)


def test_optimizer_shrinks_generated_program(benchmark, generated_rewriting):
    query, views, rewriting = generated_rewriting
    optimized = benchmark(optimize_query, rewriting)
    assert len(optimized.program) <= len(rewriting.program)
    assert check_rewriting(query, views, optimized, trials=25) is None
    report(
        "ABL-OPT",
        "(design choice) generated rewritings carry redundancy the "
        "subsumption/minimization passes can remove",
        f"{len(rewriting.program)} rules → {len(optimized.program)} "
        "rules, equivalence preserved on 25 random instances",
    )


def test_evaluation_speed_after_optimization(
    benchmark, generated_rewriting
):
    query, views, rewriting = generated_rewriting
    optimized = optimize_query(rewriting)
    from repro.rewriting.verification import random_instances
    from repro.core.schema import Schema

    schema = Schema({"V0": 2, "V1": 1, "V2": 1})
    instances = list(random_instances(schema, 10, seed=5))

    def evaluate_all():
        return [optimized.boolean(inst) for inst in instances]

    results = benchmark(evaluate_all)
    assert results == [rewriting.boolean(inst) for inst in instances]
