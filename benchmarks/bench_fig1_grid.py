"""Figure 1 — grid-like tests and the HA/VA adjacency gadgets.

Regenerates the figure as data: for an (n, m) sweep we build the
grid-like test instance, evaluate the adjacency CQs and check they
return exactly the grid's horizontal/vertical neighbour pairs, and show
the Qverify rules firing exactly on constraint violations.
"""

import pytest

from repro.constructions.reduction_thm6 import (
    grid_test_instance,
    ha_cq,
    thm6_query,
    va_cq,
)
from repro.constructions.tiling import solvable_example

from benchmarks.conftest import report


@pytest.mark.parametrize("n,m", [(2, 2), (3, 3), (4, 3)])
def test_fig1_adjacency_gadgets(benchmark, n, m):
    tp = solvable_example()
    inst = grid_test_instance(tp, n, m)

    def adjacency_pairs():
        ha = {
            (row[0], row[1]) for row in ha_cq().evaluate(inst)
        }
        va = {
            (row[0], row[1]) for row in va_cq().evaluate(inst)
        }
        return ha, va

    ha, va = benchmark(adjacency_pairs)
    expected_ha = {
        (("z", i, j), ("z", i + 1, j))
        for i in range(1, n)
        for j in range(1, m + 1)
    }
    expected_va = {
        (("z", i, j), ("z", i, j + 1))
        for i in range(1, n + 1)
        for j in range(1, m)
    }
    assert ha == expected_ha
    assert va == expected_va
    report(
        f"FIG1 ({n}x{m})",
        "HA/VA detect exactly horizontal/vertical grid adjacency",
        f"HA: {len(ha)} pairs == expected {len(expected_ha)}; "
        f"VA: {len(va)} pairs == expected {len(expected_va)}",
    )


def test_fig1_verify_rules_detect_violations(benchmark):
    tp = solvable_example()
    query = thm6_query(tp)
    good = tp.tile_grid(3, 3)

    def verdicts():
        ok = query.boolean(grid_test_instance(tp, 3, 3, good))
        broken = dict(good)
        broken[(2, 2)] = "a" if good[(2, 2)] == "b" else "b"
        bad = query.boolean(grid_test_instance(tp, 3, 3, broken))
        return ok, bad

    ok, bad = benchmark(verdicts)
    assert ok is False and bad is True
    report(
        "FIG1 (Qverify)",
        "Q_TP is False exactly on grid tests carrying a valid tiling",
        "valid 3x3 tiling → Q false; single flipped tile → Q true",
    )
