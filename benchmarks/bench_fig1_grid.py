"""Figure 1 — grid-like tests and the HA/VA adjacency gadgets.

Thin timed wrappers over the ``fig1-*`` evidence jobs
(``repro.harness.evidence_figures``); the (n, m) sweep narrows the
registered job to one grid per benchmark row.
"""

import pytest

from benchmarks.conftest import run_evidence_job


@pytest.mark.parametrize("n,m", [(2, 2), (3, 3), (4, 3)])
def test_fig1_adjacency_gadgets(benchmark, n, m):
    run_evidence_job(benchmark, "fig1-adjacency-gadgets", sizes=[[n, m]])


def test_fig1_verify_rules_detect_violations(benchmark):
    run_evidence_job(benchmark, "fig1-verify-rules")
