"""ABL-EVAL — naive vs semi-naive fixpoint evaluation.

The design choice DESIGN.md calls out for the evaluation substrate:
semi-naive delta evaluation should dominate naive re-derivation on
recursive workloads, increasingly so with instance size.
"""

import pytest

from repro.core.evaluation import naive_fixpoint, seminaive_fixpoint
from repro.core.instance import Instance
from repro.core.parser import parse_program

TC_PROGRAM = parse_program(
    """
    T(x,y) <- R(x,y).
    T(x,y) <- R(x,z), T(z,y).
    """
)


def _chain(n: int) -> Instance:
    inst = Instance()
    for i in range(n):
        inst.add_tuple("R", (i, i + 1))
    return inst


def _grid(n: int) -> Instance:
    inst = Instance()
    for i in range(n):
        for j in range(n):
            if i + 1 < n:
                inst.add_tuple("R", ((i, j), (i + 1, j)))
            if j + 1 < n:
                inst.add_tuple("R", ((i, j), (i, j + 1)))
    return inst


@pytest.mark.parametrize("n", [10, 20, 30])
def test_seminaive_chain(benchmark, engine_stats, n):
    inst = _chain(n)
    result = benchmark(seminaive_fixpoint, TC_PROGRAM, inst)
    assert len(result.tuples("T")) == n * (n + 1) // 2


@pytest.mark.parametrize("n", [10, 20, 30])
def test_naive_chain(benchmark, engine_stats, n):
    inst = _chain(n)
    result = benchmark(naive_fixpoint, TC_PROGRAM, inst)
    assert len(result.tuples("T")) == n * (n + 1) // 2


@pytest.mark.parametrize("n", [3, 4])
def test_seminaive_grid(benchmark, engine_stats, n):
    inst = _grid(n)
    result = benchmark(seminaive_fixpoint, TC_PROGRAM, inst)
    assert result == naive_fixpoint(TC_PROGRAM, inst)


@pytest.mark.parametrize("n", [3, 4])
def test_naive_grid(benchmark, engine_stats, n):
    inst = _grid(n)
    benchmark(naive_fixpoint, TC_PROGRAM, inst)
