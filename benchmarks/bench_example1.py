"""EX1 — Example 1 of the paper, both view families.

Verifies the paper's claimed rewritings against direct evaluation, and
records the erratum our checker found in the V3/V4 claim.
"""

from repro.constructions.example1 import (
    chain_instance,
    example1_query,
    paper_rewriting_v0_v2,
    paper_rewriting_v3_v4,
    views_v0_v2,
    views_v3_v4,
)
from repro.core.containment import Verdict
from repro.core.instance import Instance
from repro.determinacy.checker import decide_monotonic_determinacy
from repro.rewriting.datalog_rewriting import datalog_rewriting
from repro.rewriting.verification import check_rewriting

from benchmarks.conftest import report


def test_ex1_v0_v2_paper_rewriting(benchmark):
    q = example1_query()
    views = views_v0_v2()
    rewriting = paper_rewriting_v0_v2()
    bad = benchmark(check_rewriting, q, views, rewriting, None, 40)
    assert bad is None
    report(
        "EX1 (V0-V2, paper rewriting)",
        "replacing the recursive body by V0 and U_i by V_i rewrites Q",
        "verified on 40 random instances",
    )


def test_ex1_v0_v2_inverse_rules(benchmark):
    q = example1_query()
    views = views_v0_v2()
    rewriting = benchmark(datalog_rewriting, q, views)
    assert check_rewriting(q, views, rewriting, trials=40) is None
    report(
        "EX1 (V0-V2, inverse rules)",
        "the [14] algorithm reproduces a Datalog rewriting",
        f"program with {len(rewriting.program)} rules verified on 40 "
        "random instances",
    )


def test_ex1_v3_v4_on_chains(benchmark):
    q = example1_query()
    views = views_v3_v4()
    rewriting = paper_rewriting_v3_v4()

    def all_chains():
        return all(
            rewriting.boolean(views.image(chain_instance(n, closed)))
            == q.boolean(chain_instance(n, closed))
            for n in (1, 2, 3)
            for closed in (True, False)
        )

    assert benchmark(all_chains)
    report(
        "EX1 (V3-V4 on chains)",
        "∃y z V3(y,z) ∧ V4(y,z) rewrites Q",
        "agrees with Q on all diamond chains of length 1-3",
    )


def test_ex1_v3_v4_erratum(benchmark):
    q = example1_query()
    views = views_v3_v4()

    result = benchmark(decide_monotonic_determinacy, q, views, 3)
    assert result.verdict is Verdict.NO
    degenerate = Instance()
    degenerate.add_tuple("U1", ("a",))
    degenerate.add_tuple("U2", ("a",))
    assert q.boolean(degenerate)
    assert not paper_rewriting_v3_v4().boolean(views.image(degenerate))
    report(
        "EX1 (V3-V4 erratum)",
        "paper claims Q is mon. determined over V3/V4",
        "REFUTED on the zero-iteration instance {U1(a),U2(a)}: the view "
        "image is empty, so V(I)=V(∅) while Q(I)≠Q(∅); the checker finds "
        f"the failing test automatically ({result.detail})",
    )
