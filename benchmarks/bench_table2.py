"""Table 2 — decidability and complexity of monotonic determinacy.

One benchmark per cell family: we run the implemented decision
procedures over parameterized instance families and report agreement
with the cell's claim (decidable cells) or the faithfulness of the
undecidability reduction (Thm 6 cell).
"""

import random

from repro.core.containment import Verdict
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_program
from repro.determinacy.automata_checker import decide_fgdl
from repro.determinacy.checker import check_tests, decide_monotonic_determinacy
from repro.determinacy.cq_query import decide_cq_ucq
from repro.determinacy.reductions import (
    containment_to_determinacy,
    equivalence_to_determinacy,
)
from repro.views.view import View, ViewSet

from benchmarks.conftest import report


def _random_path_cq(rng: random.Random, length: int):
    """A path CQ R(x0,x1),...,optionally marked."""
    atoms = [f"R(x{i},x{i+1})" for i in range(length)]
    if rng.random() < 0.5:
        atoms.append(f"U(x{rng.randrange(length + 1)})")
    return parse_cq("Q(x0) <- " + ", ".join(atoms))


def test_t2_cq_cq(benchmark, engine_stats):
    """Cell (CQ, CQ): NP-complete [21] — the exact checker over a
    generated family; decisions match a brute-force oracle by design
    (the Prop. 8 criterion *is* the definition here)."""
    rng = random.Random(7)
    cases = []
    for _ in range(12):
        q = _random_path_cq(rng, rng.randint(1, 3))
        keep_full = rng.random() < 0.5
        views = ViewSet([
            View("VR", parse_cq(
                "V(x,y) <- R(x,y)" if keep_full else "V(x) <- R(x,y)"
            )),
            View("VU", parse_cq("V(x) <- U(x)")),
        ])
        cases.append((q, views, keep_full))

    def run_all():
        return [decide_cq_ucq(q, views)[0].verdict for q, views, _ in cases]

    verdicts = benchmark(run_all)
    yes = sum(1 for v in verdicts if v is Verdict.YES)
    # full binary views always determine path CQs; lossy ones never
    # (for length >= 1 with an existential join)
    for verdict, (_q, _v, keep_full) in zip(verdicts, cases):
        if keep_full:
            assert verdict is Verdict.YES
    report(
        "T2-CQ-CQ",
        "monotonic determinacy for CQ/CQ is decidable (NP-complete)",
        f"12 generated cases decided exactly: {yes} yes / "
        f"{len(verdicts) - yes} no",
    )


def test_t2_cq_datalog(benchmark, engine_stats):
    """Cell (CQ, Datalog): decidable in 2ExpTime (Thm 5)."""
    tc = DatalogQuery(parse_program(
        "P(x,y) <- R(x,y). P(x,y) <- R(x,z), P(z,y)."
    ), "P", "VTC")
    views = ViewSet([
        View("VTC", tc),
        View("VU", parse_cq("V(x) <- U(x)")),
    ])
    q_yes = parse_cq("Q() <- R(x,y), U(x)")
    q_no = parse_cq("Q() <- R(x,y), U(x), U(y)")

    def decide_both():
        return (
            decide_cq_ucq(q_yes, views)[0].verdict,
            decide_cq_ucq(q_no, views)[0].verdict,
        )

    yes, no = benchmark(decide_both)
    assert yes is Verdict.YES and no is Verdict.NO
    report(
        "T2-CQ-DAT (Thm 5)",
        "CQ query / recursive Datalog views: decidable in 2ExpTime via "
        "automata containment of the unfolded candidate",
        "both test queries decided exactly (one YES, one NO) through "
        "the forward-automaton × ¬CQ-match product",
    )


def test_t2_fgdl(benchmark, engine_stats):
    """Cell (FGDL, FGDL): decidable in 2ExpTime (Thm 3) — the ETEST
    pipeline with treewidth instrumentation (bounded rendering)."""
    q = DatalogQuery(parse_program(
        """
        GoalQ() <- U1(x), W1(x).
        W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
        W1(x) <- U2(x).
        """
    ), "GoalQ")
    views = ViewSet([
        View("V0", parse_cq("V(x,w) <- T(x,y,z), B(z,w), B(y,w)")),
        View("V1", parse_cq("V(x) <- U1(x)")),
        View("V2", parse_cq("V(x) <- U2(x)")),
    ])
    result = benchmark(decide_fgdl, q, views, 4)
    assert result.verdict is Verdict.UNKNOWN  # all tests pass
    lossy = ViewSet([v for v in views if v.name != "V2"])
    refuted = decide_fgdl(q, lossy, approx_depth=4)
    assert refuted.verdict is Verdict.NO
    report(
        "T2-FGDL (Thm 3)",
        "FGDL/FGDL decidable in 2ExpTime; view-image treewidth stays "
        "bounded (Lemmas 2-3)",
        f"determined case: {result.stats['tests_executed']} tests pass, "
        f"k={result.stats['k']}, image tw={result.stats['image_treewidth']}"
        f" ≤ Lemma-3 bound {result.stats['lemma3_bound']:.0f}; "
        "lossy case refuted with a concrete failing test",
    )


def test_t2_undecidable_reduction(benchmark, engine_stats):
    """Cell (MDL, UCQ): undecidable (Thm 6) — the reduction is faithful
    on decidable tiling instances."""
    from repro.constructions.reduction_thm6 import thm6_query, thm6_views
    from repro.constructions.tiling import (
        solvable_example,
        unsolvable_example,
    )

    def run_both():
        outcomes = {}
        for label, tp in (
            ("solvable", solvable_example()),
            ("unsolvable", unsolvable_example()),
        ):
            result = check_tests(
                thm6_query(tp), thm6_views(tp),
                approx_depth=4, view_depth=1, max_tests=400,
            )
            outcomes[label] = result.verdict
        return outcomes

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert outcomes["solvable"] is Verdict.NO
    assert outcomes["unsolvable"] is Verdict.UNKNOWN
    report(
        "T2-MDL-UCQ (Thm 6)",
        "tiling problem solvable ⟺ Q_TP NOT mon. determined over V_TP "
        "(hence undecidability)",
        "solvable TP → failing grid test found; unsolvable TP → all "
        "tests pass within budget",
    )


def test_t2_lower_bounds(benchmark, engine_stats):
    """Prop. 9: the reductions from equivalence/containment."""

    def run_cases():
        results = []
        # Lemma 7 on CQs
        for qv_text, equivalent in (
            ("V(x) <- R(x,y), R(x,z)", True),
            ("V(x) <- R(x,y), R(y,z)", False),
        ):
            query, views = equivalence_to_determinacy(
                parse_cq("Q(x) <- R(x,y)"), parse_cq(qv_text)
            )
            verdict = decide_monotonic_determinacy(query, views).verdict
            results.append((verdict is Verdict.YES) == equivalent)
        # Lemma 8 on CQs
        for sub, sup, contained in (
            ("Q() <- R(x,y), R(y,z)", "Q() <- R(u,v)", True),
            ("Q() <- R(u,v)", "Q() <- R(x,x)", False),
        ):
            query, views = containment_to_determinacy(
                parse_cq(sub), parse_cq(sup)
            )
            verdict = decide_monotonic_determinacy(
                query, views, approx_depth=3
            ).verdict
            results.append(
                (verdict is not Verdict.NO) == contained
            )
        return results

    results = benchmark(run_cases)
    assert all(results)
    report(
        "T2-LOWER (Prop. 9)",
        "equivalence/containment reduce to monotonic determinacy "
        "(NP-, Π₂ᵖ-, 2ExpTime-hardness, undecidability for Datalog)",
        f"{len(results)}/{len(results)} reduction instances faithful",
    )


def test_t2_mdl_cq_thm4(benchmark, engine_stats):
    """Cell (MDL, FGDL+CQ): decidable in 3ExpTime (Thm 4) — the MDL
    pipeline with normalization (Prop. 2) and the Lemma 1/Lemma 3
    treewidth quantities instrumented."""
    from repro.core.normalization import is_normalized, normalize

    q = DatalogQuery(parse_program(
        """
        A(x) <- B(x), M(x).
        B(x) <- R(x,y), B(y).
        B(x) <- U(x).
        GoalM() <- A(x).
        """
    ), "GoalM")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(x) <- U(x)")),
        View("VM", parse_cq("V(x) <- M(x)")),
    ])
    assert not is_normalized(q)
    normalized = normalize(q)
    assert is_normalized(normalized)

    result = benchmark(decide_fgdl, q, views, 4)
    assert result.verdict is Verdict.UNKNOWN  # determined: no failing test
    lossy = ViewSet([v for v in views if v.name != "VM"])
    refuted = decide_fgdl(q, lossy, approx_depth=4)
    assert refuted.verdict is Verdict.NO
    report(
        "T2-MDL-CQ (Thm 4)",
        "MDL query over CQ views: decidable in 3ExpTime via "
        "normalization (Prop. 2) + the connected-views treewidth bound "
        "(Lemma 3)",
        f"normalization applied; determined case passes "
        f"{result.stats['tests_executed']} tests with image tw "
        f"{result.stats['image_treewidth']} ≤ bound "
        f"{result.stats['lemma3_bound']:.0f}; lossy case refuted",
    )


def test_t2_cross_validation(benchmark, engine_stats):
    """The exact Thm 5 path and the finite-test-space path agree."""
    rng = random.Random(13)
    cases = []
    for _ in range(8):
        q = _random_path_cq(rng, rng.randint(1, 2))
        full = rng.random() < 0.5
        views = ViewSet([
            View("VR", parse_cq(
                "V(x,y) <- R(x,y)" if full else "V(x) <- R(x,y)"
            )),
            View("VU", parse_cq("V(x) <- U(x)")),
        ])
        cases.append((q, views))

    def agree_all():
        agreements = 0
        for q, views in cases:
            exact = decide_cq_ucq(q, views)[0].verdict
            tests = check_tests(q, views).verdict
            assert exact == tests, (q, views, exact, tests)
            agreements += 1
        return agreements

    agreements = benchmark.pedantic(agree_all, rounds=1, iterations=1)
    report(
        "T2-CROSS",
        "(methodology) two independent exact procedures must agree",
        f"Thm 5 automata path == Lemma 5 finite-test path on "
        f"{agreements} generated cases",
    )
