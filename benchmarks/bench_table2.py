"""Table 2 — decidability and complexity of monotonic determinacy.

One benchmark per cell family, as thin timed wrappers over the
registered evidence jobs (``repro.harness.evidence_table2``) —
``python -m repro evidence run --filter table2`` regenerates the same
claims from the same code.
"""

from benchmarks.conftest import run_evidence_job


def test_t2_cq_cq(benchmark, engine_stats):
    """Cell (CQ, CQ): NP-complete [21] — exact checker over a family."""
    run_evidence_job(benchmark, "t2-cq-cq")


def test_t2_cq_datalog(benchmark, engine_stats):
    """Cell (CQ, Datalog): decidable in 2ExpTime (Thm 5)."""
    run_evidence_job(benchmark, "t2-cq-datalog")


def test_t2_fgdl(benchmark, engine_stats):
    """Cell (FGDL, FGDL): decidable in 2ExpTime (Thm 3)."""
    run_evidence_job(benchmark, "t2-fgdl")


def test_t2_undecidable_reduction(benchmark, engine_stats):
    """Cell (MDL, UCQ): undecidable (Thm 6) — faithful reduction."""
    run_evidence_job(benchmark, "t2-undecidable-reduction")


def test_t2_lower_bounds(benchmark, engine_stats):
    """Prop. 9: the reductions from equivalence/containment."""
    run_evidence_job(benchmark, "t2-lower-bounds")


def test_t2_mdl_cq_thm4(benchmark, engine_stats):
    """Cell (MDL, FGDL+CQ): decidable in 3ExpTime (Thm 4)."""
    run_evidence_job(benchmark, "t2-mdl-cq-thm4")


def test_t2_cross_validation(benchmark, engine_stats):
    """The exact Thm 5 path and the finite-test-space path agree."""
    run_evidence_job(benchmark, "t2-cross-validation")
