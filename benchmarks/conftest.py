"""Shared helpers for the benchmark harness.

Every benchmark prints the paper's claim next to what we measure, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the rows of
Table 1, Table 2 and the figure constructions (see DESIGN.md §3 and
EXPERIMENTS.md for the recorded outcomes).

Benchmarks that request the :func:`engine_stats` fixture additionally
record the engine's low-level counters (homomorphism calls, rows
scanned, index rebuilds, fixpoint rounds, join-plan cache traffic,
phase wall times) into the benchmark's ``extra_info``, so a run with
``--benchmark-json=BENCH_tables.json`` emits them under
``benchmarks[*].extra_info.engine``.
"""

from __future__ import annotations

import pytest

from repro.core import stats as _stats
from repro.core.stats import EngineStats


def report(experiment: str, claim: str, measured: str) -> None:
    """Uniform claim-vs-measured console row."""
    print(f"\n[{experiment}]")
    print(f"  paper   : {claim}")
    print(f"  measured: {measured}")


@pytest.fixture
def engine_stats(benchmark):
    """Collect engine counters for the whole test into the bench JSON.

    Counters are cumulative over every benchmark round the test runs
    (pytest-benchmark calibrates with many rounds), so they measure
    *shape* (what the engine did), not per-call cost — the timing
    columns measure cost.
    """
    stats = EngineStats()
    _stats._ACTIVE.append(stats)
    try:
        yield stats
    finally:
        _stats._ACTIVE.remove(stats)
        benchmark.extra_info["engine"] = stats.as_dict()
