"""Shared helpers for the benchmark harness.

Every benchmark prints the paper's claim next to what we measure, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the rows of
Table 1, Table 2 and the figure constructions (see DESIGN.md §3 and
EXPERIMENTS.md for the recorded outcomes).
"""

from __future__ import annotations


def report(experiment: str, claim: str, measured: str) -> None:
    """Uniform claim-vs-measured console row."""
    print(f"\n[{experiment}]")
    print(f"  paper   : {claim}")
    print(f"  measured: {measured}")
