"""Shared helpers for the benchmark harness.

Every benchmark prints the paper's claim next to what we measure, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the rows of
Table 1, Table 2 and the figure constructions (see DESIGN.md §3 and
EXPERIMENTS.md for the recorded outcomes).

Benchmarks that request the :func:`engine_stats` fixture additionally
record the engine's low-level counters (homomorphism calls, rows
scanned, index rebuilds, fixpoint rounds, join-plan cache traffic,
phase wall times) into the benchmark's ``extra_info``, so a run with
``--benchmark-json=BENCH_tables.json`` emits them under
``benchmarks[*].extra_info.engine``.
"""

from __future__ import annotations

import pytest

from repro.core import stats as _stats
from repro.core.stats import EngineStats
from repro.harness.registry import default_registry

#: the evidence-job registry the benchmarks wrap (`repro.harness`)
REGISTRY = default_registry()


def report(experiment: str, claim: str, measured: str) -> None:
    """Uniform claim-vs-measured console row."""
    print(f"\n[{experiment}]")
    print(f"  paper   : {claim}")
    print(f"  measured: {measured}")


def run_evidence_job(benchmark, name: str, **overrides) -> dict:
    """Benchmark a registered evidence job and gate on its verdict.

    The benchmarks are thin timed wrappers over the same functions
    ``python -m repro evidence run`` executes: the job is looked up in
    the registry, its inputs (plus per-test ``overrides``) are applied,
    and the measured verdict must equal the registry's expectation.
    Jobs flagged ``heavy`` run a single pedantic round.
    """
    job = REGISTRY.get(name)
    fn = job.resolve()
    inputs = {**job.inputs, **overrides}

    def invoke():
        return fn(**inputs)

    if job.heavy:
        result = benchmark.pedantic(invoke, rounds=1, iterations=1)
    else:
        result = benchmark(invoke)
    assert result["verdict"] == job.expected, (
        f"{name}: expected verdict {job.expected!r}, measured "
        f"{result['verdict']!r} — {result['measured']}"
    )
    label = name if not overrides else f"{name} {overrides}"
    report(label, job.claim, result["measured"])
    benchmark.extra_info["evidence"] = {
        "job": name,
        "verdict": result["verdict"],
        "metrics": result["metrics"],
    }
    return result


@pytest.fixture
def engine_stats(benchmark):
    """Collect engine counters for the whole test into the bench JSON.

    Counters are cumulative over every benchmark round the test runs
    (pytest-benchmark calibrates with many rounds), so they measure
    *shape* (what the engine did), not per-call cost — the timing
    columns measure cost.
    """
    stats = EngineStats()
    _stats._ACTIVE.append(stats)
    try:
        yield stats
    finally:
        _stats._ACTIVE.remove(stats)
        benchmark.extra_info["engine"] = stats.as_dict()
