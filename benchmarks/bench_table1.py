"""Table 1 — rewritability of monotonically determined queries.

One benchmark per cell of the paper's Table 1.  Each is a thin timed
wrapper over the registered evidence job (see
``repro.harness.evidence_table1``); the job's measured verdict must
match the registry's expected verdict, so these benchmarks and
``python -m repro evidence run --filter table1`` regenerate the same
claims from the same code.
"""

from benchmarks.conftest import run_evidence_job


def test_t1_cq_rewriting(benchmark, engine_stats):
    """Cell (CQ, any views): CQ rewriting, polynomial size (Prop. 8a)."""
    run_evidence_job(benchmark, "t1-cq-rewriting")


def test_t1_ucq_rewriting(benchmark, engine_stats):
    """Cell (UCQ, any views): UCQ rewriting (Prop. 8b)."""
    run_evidence_job(benchmark, "t1-ucq-rewriting")


def test_t1_mdl_cq_fgdl_rewriting(benchmark, engine_stats):
    """Cell (MDL, CQ views): FGDL rewriting exists ([14]/Thm 2)..."""
    run_evidence_job(benchmark, "t1-mdl-cq-fgdl-rewriting")


def test_t1_mdl_cq_not_mdl(benchmark, engine_stats):
    """... but not necessarily an MDL rewriting (Thm 7)."""
    run_evidence_job(benchmark, "t1-mdl-cq-not-mdl")


def test_t1_datalog_fgdl(benchmark, engine_stats):
    """Cell (Datalog, FGDL views): Datalog rewriting (Thm 1)."""
    run_evidence_job(benchmark, "t1-datalog-fgdl")


def test_t1_thm8_no_datalog_rewriting(benchmark, engine_stats):
    """Cell (MDL, UCQ views): NOT necessarily Datalog rewritable (Thm 8)."""
    run_evidence_job(benchmark, "t1-thm8-no-datalog-rewriting")


def test_t1_mdl_rewriting_via_automata(benchmark, engine_stats):
    """Thm 1, last part: MDL queries get MDL rewritings."""
    run_evidence_job(benchmark, "t1-mdl-rewriting-via-automata")
