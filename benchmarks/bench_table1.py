"""Table 1 — rewritability of monotonically determined queries.

One benchmark per cell of the paper's Table 1, regenerating the cell's
claim as executable evidence (constructions + verification), with the
construction cost measured by pytest-benchmark.
"""

import pytest

from repro.core.datalog import DatalogQuery
from repro.core.homomorphism import instance_maps_into
from repro.core.parser import parse_cq, parse_program, parse_ucq
from repro.rewriting.datalog_rewriting import datalog_rewriting
from repro.rewriting.forward_backward import rewrite_forward_backward
from repro.rewriting.verification import check_rewriting
from repro.views.view import View, ViewSet

from benchmarks.conftest import report


def test_t1_cq_rewriting(benchmark, engine_stats):
    """Cell (CQ, any views): CQ rewriting, polynomial size (Prop. 8a)."""
    q = parse_cq("Q(x) <- R(x,y), S(y,z), U(z)")
    tc = DatalogQuery(parse_program(
        "P(x,y) <- R(x,y). P(x,y) <- R(x,z), P(z,y)."
    ), "P", "VTC")
    views = ViewSet([
        View("VTC", tc),
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VS", parse_cq("V(y,z) <- S(y,z)")),
        View("VU", parse_cq("V(z) <- U(z)")),
    ])
    rewriting = benchmark(rewrite_forward_backward, q, views)
    assert len(rewriting) == 1
    assert rewriting.disjuncts[0].size() <= len(q.atoms) + len(views)
    assert check_rewriting(q, views, rewriting, trials=25) is None
    report(
        "T1-CQ",
        "CQ query mon. determined over Datalog views → CQ rewriting "
        "of polynomial size",
        f"rewriting with {rewriting.disjuncts[0].size()} atoms, verified "
        "on 25 random instances",
    )


def test_t1_ucq_rewriting(benchmark, engine_stats):
    """Cell (UCQ, any views): UCQ rewriting (Prop. 8b)."""
    q = parse_ucq(
        """
        Q() <- R(x,y), U(y).
        Q() <- W(x,y), W(y,x).
        """
    )
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(y) <- U(y)")),
        View("VW", parse_cq("V(x,y) <- W(x,y)")),
    ])
    rewriting = benchmark(rewrite_forward_backward, q, views)
    assert len(rewriting) == 2
    assert check_rewriting(q, views, rewriting, trials=25) is None
    report(
        "T1-UCQ",
        "UCQ query mon. determined → UCQ rewriting",
        f"{len(rewriting)}-disjunct rewriting verified on 25 instances",
    )


def test_t1_mdl_cq_fgdl_rewriting(benchmark, engine_stats):
    """Cell (MDL, CQ views): FGDL rewriting exists ([14]/Thm 2)..."""
    from repro.constructions.diamonds import diamond_query, diamond_views

    q = diamond_query()
    views = diamond_views()
    rewriting = benchmark(
        datalog_rewriting, q, views, frontier_guard=True
    )
    assert rewriting.program.is_frontier_guarded()
    assert check_rewriting(q, views, rewriting, trials=20) is None
    report(
        "T1-MDL-CQ (positive half)",
        "MDL query mon. determined over CQ views → FGDL rewriting",
        f"frontier-guarded program with {len(rewriting.program)} rules, "
        "verified on 20 random instances",
    )


def test_t1_mdl_cq_not_mdl(benchmark, engine_stats):
    """... but not necessarily an MDL rewriting (Thm 7)."""
    from repro.constructions.diamonds import (
        diamond_query,
        long_row_cq,
        unravelled_counterexample,
    )

    def build():
        return unravelled_counterexample(2, depth=2)

    image, chased, unravelling = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    q = diamond_query()
    assert q.boolean(chased) is False
    row = long_row_cq(2)
    assert not instance_maps_into(
        row.canonical_database(), unravelling.instance
    )
    report(
        "T1-MDL-CQ (negative half, Thm 7)",
        "the diamond Q separates: Q(I_k)=True, Q(I'_k)=False, and the "
        "Figure-4 row pattern cannot embed into the (1,k)-unravelling",
        f"Q(I'_k)=False on {len(chased)} chased facts; row(2) does not "
        f"map into the {unravelling.copy_count()}-copy unravelling",
    )


def test_t1_datalog_fgdl(benchmark, engine_stats):
    """Cell (Datalog, FGDL views): Datalog rewriting (Thm 1).

    Exercised on Example 1 (CQ views, the [14] route) plus the
    backward-mapping pipeline on identity views (the Prop. 7 route).
    """
    from repro.automata.backward import backward_query
    from repro.automata.forward import approximations_automaton
    from repro.core.schema import Schema

    q = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    identity_views = ViewSet([
        View("R", parse_cq("V(x,y) <- R(x,y)")),
        View("U", parse_cq("V(x) <- U(x)")),
        View("S", parse_cq("V(x) <- S(x)")),
    ])

    def pipeline():
        nta = approximations_automaton(q)
        return backward_query(nta, Schema({"R": 2, "U": 1, "S": 1}))

    rewriting = benchmark(pipeline)
    assert check_rewriting(q, identity_views, rewriting, trials=25) is None
    report(
        "T1-DAT-FGDL",
        "Datalog query mon. determined over FGDL views → Datalog "
        "rewriting (forward → project → backward)",
        f"backward-mapped program with {len(rewriting.program)} rules "
        "verified on 25 random instances",
    )


def test_t1_thm8_no_datalog_rewriting(benchmark, engine_stats):
    """Cell (MDL, UCQ views): NOT necessarily Datalog rewritable (Thm 8)."""
    from repro.constructions.thm8 import build_witness

    witness = benchmark.pedantic(
        build_witness, args=(4,), kwargs={"depth": 2},
        rounds=1, iterations=1,
    )
    assert witness.query.boolean(witness.source) is True
    assert witness.query.boolean(witness.counterexample) is False
    image = witness.views.image(witness.counterexample)
    assert witness.unravelling.instance <= image
    report(
        "T1-MDL-UCQ (Thm 8)",
        "Q_TP* mon. determined over V_TP* but with no Datalog "
        "rewriting: pairs (I_ℓ, I'_ℓ) with equalish →k view images "
        "separate Q from every bounded-body Datalog query",
        f"ℓ=4: Q(I_ℓ)=True, Q(I'_ℓ)=False, U_ℓ ⊆ V(I'_ℓ) "
        f"({witness.unravelling.copy_count()} unravelling copies, "
        f"{len(witness.w_instance)} W_ℓ facts, tiling found)",
    )


def test_t1_mdl_rewriting_via_automata(benchmark, engine_stats):
    """Thm 1, last part: MDL queries get MDL rewritings — the full
    exact pipeline (forward → project onto atomic views → MDL
    backward)."""
    from repro.automata.backward import backward_query_mdl
    from repro.automata.forward import (
        approximations_automaton,
        view_image_automaton_atomic,
    )
    from repro.core.schema import Schema

    q = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(x) <- U(x)")),
        View("VS", parse_cq("V(x) <- S(x)")),
    ])

    def pipeline():
        nta = view_image_automaton_atomic(
            approximations_automaton(q), views
        )
        return backward_query_mdl(
            nta, Schema({"VR": 2, "VU": 1, "VS": 1})
        )

    rewriting = benchmark(pipeline)
    assert rewriting.program.is_monadic()
    assert check_rewriting(q, views, rewriting, trials=25) is None
    report(
        "T1-MDL (Thm 1, MDL refinement)",
        "for MDL queries the Thm 1 rewriting can be taken in MDL "
        "(frontier-one codes + unary backward predicates)",
        f"monadic program with {len(rewriting.program)} rules verified "
        "on 25 random instances",
    )
