"""OPT — the certified optimizer's before/after engine counters.

``pytest benchmarks/bench_optimize.py --benchmark-only -s
--benchmark-json=BENCH_optimize.json`` records, per benchmark, the
engine counters with and without the :mod:`repro.analysis.optimize`
pipeline in ``extra_info.optimize`` — the committed
``BENCH_optimize.json`` is the evidence that the magic-sets pass
reduces ``hom_calls`` on a goal-bound job rather than merely shuffling
rules.
"""

import pytest

from repro.analysis.optimize import optimize_program, optimized_query_program
from repro.core.datalog import DatalogQuery
from repro.core.evaluation import (
    fixpoint,
    goal_directed_program,
    set_default_optimize,
)
from repro.core.parser import parse_instance, parse_program
from repro.core.stats import EngineStats

from benchmarks.conftest import REGISTRY, report

REACH = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    Goal(y) <- S(x), Reach(x,y).
    """
)


def _chain(n: int, source: int):
    facts = " ".join(f"E({i},{i + 1})." for i in range(n))
    return parse_instance(f"{facts} S({source}).")


def _counters(program, instance, goal="Goal"):
    stats = EngineStats()
    rows = set(fixpoint(program, instance, stats=stats).tuples(goal))
    return rows, stats


def test_goal_bound_chain_magic_sets(benchmark):
    """The flagship goal-bound job: demand-driven beats full fixpoint."""
    instance = _chain(120, 110)
    baseline_program = goal_directed_program(REACH, "Goal")
    optimized = optimized_query_program(REACH, "Goal")

    base_rows, base = _counters(baseline_program, instance)
    opt_rows, opt = _counters(optimized, instance)
    assert base_rows == opt_rows
    assert opt.hom_calls < base.hom_calls

    benchmark(lambda: set(fixpoint(optimized, instance).tuples("Goal")))
    benchmark.extra_info["optimize"] = {
        "job": "goal-bound-reach-chain",
        "goal_bound": True,
        "baseline": base.to_dict(),
        "optimized": opt.to_dict(),
        "hom_calls_before": base.hom_calls,
        "hom_calls_after": opt.hom_calls,
    }
    report(
        "OPT-magic-chain",
        "magic sets restrict recursion to goal-reachable demand",
        f"hom_calls {base.hom_calls} → {opt.hom_calls}, "
        f"rows scanned {base.rows_scanned} → {opt.rows_scanned}, "
        f"same {len(opt_rows)} goal tuple(s)",
    )


def test_optimizer_pipeline_cost(benchmark):
    """What the full certified pipeline itself costs on a small query."""

    def run():
        return optimize_program(REACH, "Goal", certify=True)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.changed
    assert result.certificate is not None
    benchmark.extra_info["optimize"] = {
        "passes": [stage.name for stage in result.stages],
        "claims": len(result.certificate["claims"]),
    }
    report(
        "OPT-pipeline-cost",
        "(design) every applied pass ships a replay-validated "
        "program_equivalence claim",
        f"{len(result.certificate['claims'])} claim(s) over "
        f"{len(result.optimized.rules)} rules",
    )


@pytest.mark.parametrize("job_name", ["t1-datalog-fgdl"])
def test_evidence_job_engine_delta(benchmark, job_name):
    """A real registered evidence job, plain vs ambient-optimized."""
    job = REGISTRY.get(job_name)
    fn = job.resolve()

    def run_with(optimize: bool):
        previous = set_default_optimize(optimize)
        stats = EngineStats()
        from repro.core.stats import collecting

        try:
            with collecting(stats):
                out = fn(**job.inputs)
        finally:
            set_default_optimize(previous)
        assert out["verdict"] == job.expected
        return stats

    base = run_with(False)
    opt = run_with(True)
    benchmark.pedantic(lambda: run_with(True), rounds=1, iterations=1)
    benchmark.extra_info["optimize"] = {
        "job": job_name,
        "goal_bound": False,
        "baseline": base.to_dict(),
        "optimized": opt.to_dict(),
    }
    report(
        f"OPT-{job_name}",
        "optimization keeps registered verdicts intact",
        f"hom_calls {base.hom_calls} → {opt.hom_calls} "
        f"(tiny random instances; wins need bound goals)",
    )


def test_query_evaluate_parity_large_chain(benchmark):
    """End-user surface: DatalogQuery.evaluate(optimize=True)."""
    query = DatalogQuery(REACH, "Goal")
    instance = _chain(80, 70)
    expected = query.evaluate(instance, optimize=False)
    rows = benchmark(lambda: query.evaluate(instance, optimize=True))
    assert rows == expected
    report(
        "OPT-evaluate-parity",
        "optimize=True is an engine detail, not a semantics change",
        f"{len(rows)} goal tuple(s), identical with and without",
    )
