"""COL — the columnar hash-join backend vs the interpreted engine.

``pytest benchmarks/bench_columnar.py --benchmark-only -s
--benchmark-json=BENCH_columnar.json`` records, per benchmark, the
engine counters of the interpreted baseline next to the columnar run
in ``extra_info.columnar`` — the committed ``BENCH_columnar.json`` is
the evidence that compiling rule bodies to hash-join plans eliminates
the per-tuple backtracking search (``hom_calls``/``search_steps``/
``rows_scanned`` → 0) and replaces thousands of per-tuple dispatches
with a few hundred column batches, rather than merely relabeling the
same work.
"""

from __future__ import annotations

import time

import pytest

from repro.core.backend import set_default_backend
from repro.core.datalog import DatalogQuery
from repro.core.evaluation import fixpoint, goal_directed_program
from repro.core.parser import parse_instance, parse_program
from repro.core.stats import EngineStats, collecting

from benchmarks.conftest import REGISTRY, report

REACH = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    Goal(y) <- S(x), Reach(x,y).
    """
)

#: the interpreted engine's per-tuple search counters; the columnar
#: backend must drive every one of them to (at least) a 5x reduction
#: on the goal-bound chain workload — in practice to zero
_SEARCH_COUNTERS = ("hom_calls", "search_steps", "rows_scanned")


def _chain(n: int, source: int):
    facts = " ".join(f"E({i},{i + 1})." for i in range(n))
    return parse_instance(f"{facts} S({source}).")


def _counters(program, instance, backend, goal="Goal"):
    stats = EngineStats()
    rows = set(
        fixpoint(program, instance, stats=stats, backend=backend).tuples(goal)
    )
    return rows, stats


def test_goal_bound_chain_columnar(benchmark):
    """The flagship workload of BENCH_optimize, re-run per backend."""
    instance = _chain(120, 110)
    program = goal_directed_program(REACH, "Goal")

    base_rows, base = _counters(program, instance, "interpreted")
    col_rows, col = _counters(program, instance, "columnar")
    assert base_rows == col_rows
    # the hash-join plans never enter the backtracking search at all
    for counter in _SEARCH_COUNTERS:
        assert getattr(col, counter) * 5 <= getattr(base, counter), counter
    assert col.hom_calls == 0 and col.search_steps == 0
    # thousands of per-tuple search steps become a few hundred batches
    assert col.columnar_batches * 5 <= base.search_steps

    benchmark(
        lambda: set(
            fixpoint(program, instance, backend="columnar").tuples("Goal")
        )
    )
    benchmark.extra_info["columnar"] = {
        "job": "goal-bound-reach-chain",
        "baseline": base.to_dict(),
        "columnar": col.to_dict(),
        "search_steps_before": base.search_steps,
        "batches_after": col.columnar_batches,
    }
    report(
        "COL-magic-chain",
        "hash-join plans replace per-tuple homomorphism search",
        f"hom_calls {base.hom_calls} → {col.hom_calls}, search steps "
        f"{base.search_steps} → {col.columnar_batches} batches, "
        f"same {len(col_rows)} goal tuple(s)",
    )


def test_chain_wall_clock_speedup(benchmark):
    """Wall-clock, same workload: the batch engine should win big.

    The counters above prove the *shape* changed; this records that the
    shape change is also a real speedup (≈5-10x here).  The assertion
    is deliberately loose (>1x) so CI jitter cannot flake it — the
    committed JSON carries the measured ratio.
    """
    instance = _chain(120, 110)
    program = goal_directed_program(REACH, "Goal")

    start = time.perf_counter()
    expected = fixpoint(program, instance)
    interpreted_wall = time.perf_counter() - start

    start = time.perf_counter()
    assert fixpoint(program, instance, backend="columnar") == expected
    columnar_wall = time.perf_counter() - start
    speedup = interpreted_wall / columnar_wall if columnar_wall else 0.0

    result = benchmark(lambda: fixpoint(program, instance, backend="columnar"))
    assert result == expected
    assert speedup > 1.0
    benchmark.extra_info["columnar"] = {
        "job": "goal-bound-reach-chain-wall",
        "interpreted_seconds": interpreted_wall,
        "columnar_seconds": columnar_wall,
        "speedup": speedup,
    }
    report(
        "COL-wall-clock",
        "(design) batch probes amortize the per-tuple engine overhead",
        f"interpreted {interpreted_wall * 1e3:.1f}ms vs columnar "
        f"{columnar_wall * 1e3:.1f}ms ({speedup:.1f}x)",
    )


@pytest.mark.parametrize("job_name", ["t1-datalog-fgdl"])
def test_evidence_job_backend_delta(benchmark, job_name):
    """A real registered evidence job under each ambient backend."""
    job = REGISTRY.get(job_name)
    fn = job.resolve()

    def run_with(backend: str) -> EngineStats:
        previous = set_default_backend(backend)
        stats = EngineStats()
        try:
            with collecting(stats):
                out = fn(**job.inputs)
        finally:
            set_default_backend(previous)
        assert out["verdict"] == job.expected
        return stats

    base = run_with("interpreted")
    col = run_with("columnar")
    # jobs also run direct homomorphism checks (containment tests)
    # outside fixpoint, which stay on the search engine by design —
    # only the fixpoint share of hom_calls disappears
    assert col.join_probe_rows > 0
    assert col.hom_calls < base.hom_calls
    benchmark.pedantic(lambda: run_with("columnar"), rounds=1, iterations=1)
    benchmark.extra_info["columnar"] = {
        "job": job_name,
        "baseline": base.to_dict(),
        "columnar": col.to_dict(),
    }
    report(
        f"COL-{job_name}",
        "registered verdicts are backend-independent",
        f"hom_calls {base.hom_calls} → {col.hom_calls} "
        f"(residual = non-fixpoint containment checks), "
        f"join probe rows 0 → {col.join_probe_rows}",
    )


def test_query_evaluate_backend_parity(benchmark):
    """End-user surface: DatalogQuery.evaluate(backend='columnar')."""
    query = DatalogQuery(REACH, "Goal")
    instance = _chain(80, 70)
    expected = query.evaluate(instance)
    rows = benchmark(lambda: query.evaluate(instance, backend="columnar"))
    assert rows == expected
    report(
        "COL-evaluate-parity",
        "the backend is an engine detail, not a semantics change",
        f"{len(rows)} goal tuple(s), identical on both backends",
    )
