"""Figure 5 / Lemma 3 — view-image treewidth stays under the bound.

Thin timed wrappers over the ``fig5-lemma3-treewidth`` evidence job
(``repro.harness.evidence_figures``); each benchmark row narrows the
registered sweep to one (family, radius) point.
"""

import pytest

from benchmarks.conftest import run_evidence_job

RADII = (1, 2)
FAMILIES = ("chain", "cycle", "tree")


@pytest.mark.parametrize("radius", RADII)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_lemma3_margin(benchmark, radius, family):
    run_evidence_job(
        benchmark, "fig5-lemma3-treewidth",
        radii=[radius], families=[family],
    )
