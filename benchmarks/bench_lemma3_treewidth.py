"""Figure 5 / Lemma 3 — view-image treewidth stays under the bound.

The case analysis of Figure 5 supports Lemma 3: applying connected CQ
views of radius ``r`` to an instance of treewidth ``k`` (with treespan
≤ 2) yields an image of treewidth ≤ ``k(k^{r+1}-1)/(k-1)``.  We measure
the actual image treewidth across instance families and view radii and
report the margin.
"""

import pytest

from repro.core.parser import parse_cq
from repro.determinacy.automata_checker import lemma3_bound
from repro.rewriting.generators import binary_tree, chain, cycle
from repro.td.heuristics import decompose, treewidth_exact
from repro.views.view import View, ViewSet

from benchmarks.conftest import report

RADIUS_VIEWS = {
    1: ViewSet([View("V1", parse_cq("V(x,z) <- R(x,y), R(y,z)"))]),
    2: ViewSet([
        View("V2", parse_cq("V(x,w) <- R(x,y), R(y,z), R(z,w)")),
    ]),
}

FAMILIES = {
    "chain": lambda: chain("R", 8),
    "cycle": lambda: cycle("R", 6),
    "tree": lambda: binary_tree("R", 3),
}


@pytest.mark.parametrize("radius", sorted(RADIUS_VIEWS))
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_lemma3_margin(benchmark, radius, family):
    views = RADIUS_VIEWS[radius]
    instance = FAMILIES[family]()
    k = treewidth_exact(instance, limit=8) or decompose(instance).width()

    def measure():
        image = views.image(instance)
        exact = treewidth_exact(image, limit=8)
        return exact if exact is not None else decompose(image).width()

    image_width = benchmark(measure)
    bound = lemma3_bound(k, radius)
    assert image_width <= bound
    report(
        f"FIG5/Lemma3 ({family}, r={radius})",
        f"image treewidth ≤ k(k^(r+1)-1)/(k-1) = {bound:.0f} for k={k}",
        f"measured image treewidth {image_width} (margin "
        f"{bound - image_width:.0f})",
    )
