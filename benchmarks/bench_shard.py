"""SHARD — the partitioned parallel fixpoint vs the single process.

``pytest benchmarks/bench_shard.py --benchmark-only -s
--benchmark-json=BENCH_shard.json`` records, per benchmark, the wall
time of the single-process engine next to the sharded run and the
shard counters (workers, exchanged rows, local rounds) in
``extra_info.shard`` — the committed ``BENCH_shard.json`` is the
evidence that hash-partitioning a communication-free stratum buys real
wall time (each worker probes an index a fraction of the size) while
the exchange-required workload stays correct and within the plan's
certified traffic bound.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.shard import COMMUNICATION_FREE, shard_report
from repro.core.evaluation import fixpoint
from repro.core.instance import Instance
from repro.core.parser import parse_program
from repro.core.shard import sharded_fixpoint
from repro.core.stats import EngineStats

from benchmarks.conftest import report, run_evidence_job

TENANT_REACH = parse_program(
    """
    Reach(g,x,y) <- E(g,x,y).
    Reach(g,x,y) <- E(g,x,z), Reach(g,z,y).
    """
)

#: the flagship workload: disjoint per-tenant chains, every rule pivots
#: on the tenant column, so the plan proves Reach communication-free
_TENANTS, _NODES, _SHARDS = 32, 32, 4


def _tenant_instance(tenants: int, nodes: int) -> Instance:
    return Instance.from_tuples({
        "E": [
            (t, i, i + 1)
            for t in range(tenants)
            for i in range(nodes - 1)
        ]
    })


def _best_of(fn, rounds: int = 3):
    """Min-of-N wall time: robust against CI scheduler jitter."""
    walls = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        walls.append(time.perf_counter() - start)
    return min(walls), result


def test_tenant_reachability_sharded_wall_clock(benchmark):
    """Communication-free partitioning is a real wall-time win.

    One process computes all ``_TENANTS`` tenants against one big
    index; each shard worker computes a quarter of them against an
    index a quarter of the size, and the plan proves no tuple ever
    needs to cross a shard.  The assertion is deliberately loose
    (>1x) so CI jitter cannot flake it — the committed JSON carries
    the measured ratio.
    """
    base = _tenant_instance(_TENANTS, _NODES)
    plan = shard_report(TENANT_REACH, instance=base, workers=_SHARDS)
    assert plan.classification()["Reach"] == COMMUNICATION_FREE

    single_wall, expected = _best_of(lambda: fixpoint(TENANT_REACH, base))
    stats = EngineStats()
    sharded_wall, sharded = _best_of(
        lambda: sharded_fixpoint(
            TENANT_REACH, base, _SHARDS, stats=stats
        )
    )
    assert sharded == expected
    assert stats.shard_exchanged_rows == 0
    speedup = single_wall / sharded_wall if sharded_wall else 0.0
    assert speedup > 1.0

    result = benchmark.pedantic(
        lambda: sharded_fixpoint(TENANT_REACH, base, _SHARDS),
        rounds=1, iterations=1,
    )
    assert result == expected
    benchmark.extra_info["shard"] = {
        "job": "tenant-reachability-wall",
        "tenants": _TENANTS, "nodes": _NODES, "shards": _SHARDS,
        "classification": "communication_free",
        "single_seconds": single_wall,
        "sharded_seconds": sharded_wall,
        "speedup": speedup,
        "exchanged_rows": 0,
    }
    report(
        "SHARD-tenant-wall",
        "(design) communication-free strata scale out with 0 exchange",
        f"single {single_wall * 1e3:.0f}ms vs {_SHARDS}-way sharded "
        f"{sharded_wall * 1e3:.0f}ms ({speedup:.2f}x, 0 rows exchanged)",
    )


def test_grid_exchange_traffic_vs_certified_bound(benchmark):
    """Exchange-required sharding: measured traffic vs the bound.

    Plain grid reachability has no pivot, so deltas cross the wire
    between semi-naive rounds; the plan's bound ``|Reach| * (shards-1)``
    must dominate the measured total because each derived fact is fresh
    (and therefore shipped) at most once per peer.
    """
    program = parse_program(
        """
        Reach(x,y) <- E(x,y).
        Reach(x,y) <- E(x,z), Reach(z,y).
        """
    )
    side = 12
    edges = []
    for i in range(side):
        for j in range(side):
            if i + 1 < side:
                edges.append(((i, j), (i + 1, j)))
            if j + 1 < side:
                edges.append(((i, j), (i, j + 1)))
    base = Instance.from_tuples({"E": edges})
    plan = shard_report(program, instance=base, workers=2)
    stratum = plan.plan_of("Reach")
    assert stratum is not None

    stats = EngineStats()
    expected = fixpoint(program, base)
    result = benchmark.pedantic(
        lambda: sharded_fixpoint(program, base, 2, stats=stats),
        rounds=1, iterations=1,
    )
    assert result == expected
    assert 0 < stats.shard_exchanged_rows <= stratum.exchange_bound
    benchmark.extra_info["shard"] = {
        "job": "grid-exchange-bound",
        "side": side, "shards": 2,
        "classification": "exchange_required",
        "exchanged_rows": stats.shard_exchanged_rows,
        "exchange_bound": stratum.exchange_bound,
        "local_rounds": stats.shard_local_rounds,
    }
    report(
        "SHARD-grid-bound",
        "measured exchange stays within the plan's certified bound",
        f"{stats.shard_exchanged_rows} rows exchanged <= bound "
        f"{stratum.exchange_bound} over {stats.shard_local_rounds} "
        f"local rounds",
    )


@pytest.mark.parametrize(
    "job_name", ["shard-tenant-reachability", "shard-grid-exchange"]
)
def test_shard_evidence_jobs(benchmark, job_name):
    """The registered evidence jobs, timed under the bench harness."""
    run_evidence_job(benchmark, job_name)
