"""RPQ-LL — the related-work regime: losslessness of RPQ views.

The paper's §1 positions its results against [10, 11, 15]: monotonic
determinacy for RPQ views = losslessness under the sound view
assumption (decidable, implies Datalog rewritability).  We run our
checkers on a family of RPQ configurations and report the verdicts.
"""

import pytest

from repro.core.containment import Verdict
from repro.determinacy.checker import check_tests
from repro.rpq import rpq_query, rpq_views

from benchmarks.conftest import report

CASES = [
    # (query, views, expected-refuted?)
    ("a b", {"Va": "a", "Vb": "b"}, False),
    ("a", {"Vab": "a | b"}, True),
    ("( a b ) +", {"Va": "a", "Vb": "b"}, False),
    ("a ( b ) * c", {"Va": "a", "Vb": "b"}, True),  # c missing
    ("a | b", {"Vab": "a | b"}, False),
]


@pytest.mark.parametrize("query_text,view_defs,refuted", CASES)
def test_rpq_losslessness(benchmark, query_text, view_defs, refuted):
    query = rpq_query(query_text, "Q").to_datalog()
    views = rpq_views(view_defs)

    result = benchmark.pedantic(
        check_tests,
        args=(query, views),
        kwargs={"approx_depth": 4, "view_depth": 3, "max_tests": 300},
        rounds=1, iterations=1,
    )
    if refuted:
        assert result.verdict is Verdict.NO
    else:
        assert result.verdict is not Verdict.NO
    report(
        f"RPQ-LL ({query_text!r} / {sorted(view_defs.values())})",
        "monotonic determinacy of an RPQ over RPQ views = losslessness "
        "under the sound view assumption (decidable, [10]/[15])",
        f"verdict {result.verdict.value}: {result.detail}",
    )
