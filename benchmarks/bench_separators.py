"""SEP — separators (§7, Thm 9).

* the certain-answer separator (PTime for CQ views) agrees with Q;
* the stratified separator for Q_TP (appendix) agrees with Q_TP;
* the Thm 9 phenomenon: the faithful separator's cost is the machine's
  running time — exponential in the input size while the view instance
  grows linearly.
"""

import pytest

from repro.constructions.machines import counter_run, encode_run
from repro.constructions.thm9 import TuringSeparator, thm9_query, thm9_views
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_program
from repro.rewriting.separator import CertainAnswerSeparator
from repro.rewriting.verification import check_separator
from repro.views.view import View, ViewSet

from benchmarks.conftest import report


def test_sep_certain_answers(benchmark):
    query = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(x) <- U(x)")),
        View("VS", parse_cq("V(x) <- S(x)")),
    ])
    separator = CertainAnswerSeparator(query, views)
    bad = benchmark(check_separator, query, views, separator, None, 30)
    assert bad is None
    report(
        "SEP (certain answers)",
        "Datalog rewritings give PTime separators; certain answers "
        "separate for mon. determined queries over CQ views",
        "inverse-rules separator agrees with Q on 30 random instances",
    )


def test_sep_stratified(benchmark):
    from repro.constructions.reduction_thm6 import thm6_query, thm6_views
    from repro.constructions.tiling import unsolvable_example
    from repro.rewriting.stratified import StratifiedSeparator

    tp = unsolvable_example()
    query = thm6_query(tp)
    views = thm6_views(tp)
    separator = StratifiedSeparator(tp)
    as_set = lambda j: {()} if separator.boolean(j) else set()  # noqa: E731
    bad = benchmark(check_separator, query, views, as_set, None, 20)
    assert bad is None
    report(
        "SEP (stratified, appendix)",
        "Q_TP always has a stratified-Datalog (PTime) separator even "
        "when no Datalog rewriting exists",
        "R = Vhelper ∨ Q*verify ∨ (Q*start ∧ ProductTest) agrees with "
        "Q_TP on 20 random instances",
    )


@pytest.mark.parametrize("bits", [2, 3, 4, 5])
def test_sep_thm9_cost_tracks_machine(benchmark, bits):
    machine, word, trace = counter_run(bits)
    honest = encode_run(word, trace, machine)
    views = thm9_views(machine)
    image = views.image(honest)
    separator = TuringSeparator(machine, tape_length=len(word) + 1)

    verdict = benchmark.pedantic(
        separator.boolean, args=(image,), rounds=1, iterations=1
    )
    assert verdict is True
    steps = separator.simulated_steps
    input_size = len(word)
    assert steps >= 2 ** bits  # exponential in the input size
    report(
        f"SEP (Thm 9, {bits} bits)",
        "no computable time bound covers all separators: the faithful "
        "separator must simulate the machine",
        f"input size {input_size}, machine steps simulated {steps} "
        f"(≥ 2^{bits})",
    )


def test_sep_thm9_query_agrees(benchmark):
    """The Thm 9 query agrees with the separator on the view images."""
    machine, word, trace = counter_run(2)
    honest = encode_run(word, trace, machine)
    query = thm9_query(machine)
    views = thm9_views(machine)

    def both():
        image = views.image(honest)
        separator = TuringSeparator(machine, tape_length=len(word) + 1)
        return query.boolean(honest), separator.boolean(image)

    q_verdict, s_verdict = benchmark.pedantic(both, rounds=1, iterations=1)
    assert q_verdict == s_verdict is True
    report(
        "SEP (Thm 9 agreement)",
        "the separator computes Q ∘ V on honest encodings",
        "query and separator agree on the accepting run",
    )
