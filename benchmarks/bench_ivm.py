"""IVM — incremental maintenance vs from-scratch recomputation.

``pytest benchmarks/bench_ivm.py --benchmark-only -s
--benchmark-json=BENCH_ivm.json`` drives a
:class:`repro.ivm.MaterializedView` through multi-round update
workloads and times each maintenance round next to a from-scratch
``fixpoint`` of the same base.  The committed ``BENCH_ivm.json``
records, per workload, the two wall totals and their ratio in
``extra_info.ivm`` — the evidence that counting + DRed maintenance
does work proportional to the *delta*, not to the materialization:
on the ≥10-round chain workload the speedup must be at least 3x
(in practice far higher, and growing with instance size).

Every round is also verified against the recompute oracle inside the
measured region's setup, so a fast-but-wrong maintenance pass cannot
post a number.
"""

from __future__ import annotations

import time

from repro.core.evaluation import fixpoint
from repro.core.instance import Instance
from repro.core.parser import parse_program
from repro.core.stats import EngineStats
from repro.ivm import MaterializedView

from benchmarks.conftest import report

REACH = parse_program(
    """
    Reach(x,y) <- E(x,y).
    Reach(x,y) <- E(x,z), Reach(z,y).
    """
)


def _chain_workload(nodes: int, rounds: int):
    """Start one edge short of a chain; alternate extend/cut/re-extend."""
    edges = [(i, i + 1) for i in range(nodes - 1)]
    base = edges[:-1]
    last = edges[-1]
    updates = []
    for index in range(rounds):
        if index % 3 == 1:
            updates.append(("-", ("E", last)))
        else:
            updates.append(("+", ("E", last)))
    return base, updates


def _grid_workload(side: int, rounds: int):
    """A grid losing and regaining bridge edges (DRed-heavy)."""
    edges = []
    for i in range(side):
        for j in range(side):
            if i + 1 < side:
                edges.append(((i, j), (i + 1, j)))
            if j + 1 < side:
                edges.append(((i, j), (i, j + 1)))
    bridges = edges[:: max(1, len(edges) // rounds)][:rounds]
    updates = []
    for index, bridge in enumerate(bridges):
        updates.append(("-" if index % 2 == 0 else "+", ("E", bridge)))
    return edges, updates


def _run(base_edges, updates):
    """Replay ``updates`` incrementally and via recompute; verify each
    round; return (view, maintain_seconds, recompute_seconds, stats)."""
    base = Instance.from_tuples({"E": base_edges})
    view = MaterializedView(REACH, base)
    maintain = 0.0
    recompute = 0.0
    stats = EngineStats()
    for op, fact in updates:
        start = time.perf_counter()
        if op == "+":
            view.apply(inserts=[fact], stats=stats)
        else:
            view.apply(retracts=[fact], stats=stats)
        maintain += time.perf_counter() - start
        start = time.perf_counter()
        oracle = fixpoint(REACH, view.base, optimize=False)
        recompute += time.perf_counter() - start
        assert view.state == oracle, f"maintenance diverged at {op}{fact}"
    return view, maintain, recompute, stats


def _record(
    benchmark, label, claim, view, maintain, recompute, rounds, stats
):
    speedup = recompute / maintain if maintain > 0 else float("inf")
    report(
        label, claim,
        f"{rounds} rounds: maintenance {maintain * 1e3:.1f}ms vs "
        f"recompute {recompute * 1e3:.1f}ms — {speedup:.1f}x "
        f"({len(view.state)} facts maintained)",
    )
    benchmark.extra_info["ivm"] = {
        "workload": label,
        "rounds": rounds,
        "maintain_seconds": round(maintain, 6),
        "recompute_seconds": round(recompute, 6),
        "updates_per_second": round(rounds / maintain, 1)
        if maintain > 0 else None,
        "speedup": round(speedup, 2),
        "final_facts": len(view.state),
        "strategies": view.maintenance_strategies(),
        "maintain_counting_strata": stats.maintain_counting_strata,
        "maintain_dred_strata": stats.maintain_dred_strata,
        "maintain_skipped_rederive": stats.maintain_skipped_rederive,
    }
    return speedup


def test_chain_maintenance_vs_recompute(benchmark):
    """The acceptance workload: ≥10 update rounds on chain TC."""
    nodes, rounds = 90, 12
    base_edges, updates = _chain_workload(nodes, rounds)

    view, maintain, recompute, stats = _run(base_edges, updates)
    speedup = _record(
        benchmark, f"ivm-chain-{nodes}x{rounds}",
        "maintenance cost tracks the delta, not the materialization "
        "(single-edge updates against an O(n^2)-fact closure)",
        view, maintain, recompute, rounds, stats,
    )
    assert speedup >= 3.0, (
        f"chain maintenance only {speedup:.1f}x faster than recompute"
    )

    def maintained_round():
        view.retract([("E", (nodes - 2, nodes - 1))])
        view.insert([("E", (nodes - 2, nodes - 1))])

    benchmark.pedantic(maintained_round, rounds=5, iterations=1)


def test_grid_dred_retractions(benchmark):
    """Retraction-heavy grid reachability: the DRed path pays for
    overdelete + rederive yet must still beat recomputation."""
    side, rounds = 6, 10
    base_edges, updates = _grid_workload(side, rounds)

    view, maintain, recompute, stats = _run(base_edges, updates)
    speedup = _record(
        benchmark, f"ivm-grid-{side}x{side}x{rounds}",
        "DRed overdeletion stays localized: cutting a grid edge "
        "re-derives surviving paths instead of rebuilding the closure",
        view, maintain, recompute, rounds, stats,
    )
    assert speedup > 1.0, (
        f"grid maintenance slower than recompute ({speedup:.1f}x)"
    )

    bridge = base_edges[0]

    def maintained_round():
        view.retract([("E", bridge)])
        view.insert([("E", bridge)])

    benchmark.pedantic(maintained_round, rounds=5, iterations=1)
