"""The paper's Example 1, end to end — including the erratum our
checker found in its second claim.

Run with ``python examples/example1_paper.py``.
"""

from repro import check_rewriting, decide_monotonic_determinacy, Instance
from repro.constructions.example1 import (
    chain_instance,
    example1_query,
    paper_rewriting_v0_v2,
    paper_rewriting_v3_v4,
    views_v0_v2,
    views_v3_v4,
)
from repro.rewriting import datalog_rewriting


def main() -> None:
    query = example1_query()
    print("Example 1 query:")
    print(query.program, "\n")

    # -- first claim: V0-V2 --------------------------------------------
    views = views_v0_v2()
    print("V0-V2: bounded determinacy check:",
          decide_monotonic_determinacy(query, views, approx_depth=4).detail)
    paper_rw = paper_rewriting_v0_v2()
    bad = check_rewriting(query, views, paper_rw, trials=50)
    print("paper's Datalog rewriting verified on 50 random instances:",
          bad is None)
    ours = datalog_rewriting(query, views)
    bad = check_rewriting(query, views, ours, trials=50)
    print("our inverse-rules rewriting verified too:", bad is None, "\n")

    # -- second claim: V3-V4, and the erratum --------------------------
    views34 = views_v3_v4()
    rewriting34 = paper_rewriting_v3_v4()
    chain = chain_instance(3)
    print("V3-V4 on a 3-diamond chain:",
          rewriting34.boolean(views34.image(chain)),
          "== Q:", query.boolean(chain))

    degenerate = Instance()
    degenerate.add_tuple("U1", ("a",))
    degenerate.add_tuple("U2", ("a",))
    print("\nErratum: on the degenerate instance {U1(a), U2(a)}:")
    print("  Q =", query.boolean(degenerate),
          " but V3/V4 image is empty ->  rewriting =",
          rewriting34.boolean(views34.image(degenerate)))
    result = decide_monotonic_determinacy(query, views34, approx_depth=3)
    print("  checker verdict:", result.verdict.value, "-", result.detail)
    print("  failing approximation:",
          result.counterexample.approximation)


if __name__ == "__main__":
    main()
