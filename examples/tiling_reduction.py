"""The undecidability engine of §6: tiling problems as monotonic
determinacy instances (Thm 6 / Prop. 10).

For a *solvable* tiling problem the reduction produces a query/view
pair that is NOT monotonically determined — and our Lemma-5 checker
finds the failing grid-like test.  For an *unsolvable* problem every
test succeeds.

Run with ``python examples/tiling_reduction.py``.
"""

from repro import check_tests
from repro.constructions import (
    solvable_example,
    thm6_query,
    thm6_views,
    unsolvable_example,
)


def main() -> None:
    for label, tp in (
        ("solvable", solvable_example()),
        ("unsolvable", unsolvable_example()),
    ):
        solution = tp.solve(3)
        print(f"tiling problem [{label}]: {len(tp.tiles)} tiles,",
              f"solution up to 3x3: {solution and solution[:2]}")
        query = thm6_query(tp)
        views = thm6_views(tp)
        print(f"  Q_TP: {len(query.program)} MDL rules;"
              f" V_TP: {len(views)} views")
        result = check_tests(
            query, views, approx_depth=4, view_depth=1, max_tests=400
        )
        print(f"  monotonic determinacy: {result.verdict.value}"
              f" ({result.detail})")
        if result.counterexample is not None:
            d_prime = result.counterexample.test_instance
            print("  failing test is a grid-like instance with"
                  f" {len(d_prime)} facts:")
            for line in d_prime.pretty().splitlines():
                print("   ", line)
        print()


if __name__ == "__main__":
    main()
