"""Losslessness of regular path query views ([10, 11, 15]) inside the
monotonic-determinacy framework.

An RPQ view set is *lossless under the sound view assumption* exactly
when the query is monotonically determined over the views — the regime
the paper generalizes.  This example runs the library's checkers on
classic lossless / lossy RPQ configurations over a transport network.

Run with ``python examples/rpq_losslessness.py``.
"""

from repro import check_tests
from repro.rpq import rpq_query, rpq_views
from repro.rpq.query import graph_instance
from repro.views.inverse_rules import certain_answers


def main() -> None:
    # a transport graph: t = tram, b = bus, f = ferry
    network = graph_instance([
        ("dock", "f", "island"),
        ("center", "t", "dock"),
        ("center", "b", "stadium"),
        ("stadium", "t", "dock"),
    ])

    query = rpq_query("( t | b ) * f", "ReachByLandThenFerry")
    print("query:", query.regex, "\n")
    print("answers on the network:",
          sorted(query.evaluate(network)), "\n")

    # lossless publisher: separate feeds per mode
    fine = rpq_views({"Vt": "t", "Vb": "b", "Vf": "f"})
    result = check_tests(
        query.to_datalog(), fine, approx_depth=4, view_depth=2,
        max_tests=300,
    )
    print("per-mode views:", result.verdict.value, "-", result.detail)

    # lossy publisher: one merged "some land transport" feed
    coarse = rpq_views({"Vland": "t | b", "Vf": "f"})
    result = check_tests(
        query.to_datalog(), coarse, approx_depth=4, view_depth=2,
        max_tests=300,
    )
    print("merged land feed:", result.verdict.value, "-", result.detail)
    # merging t and b is fine for THIS query (it never tells them apart)

    # genuinely lossy: the ferry feed is missing
    broken = rpq_views({"Vt": "t", "Vb": "b"})
    result = check_tests(
        query.to_datalog(), broken, approx_depth=4, view_depth=2,
        max_tests=300,
    )
    print("no ferry feed:", result.verdict.value, "-", result.detail)


if __name__ == "__main__":
    main()
