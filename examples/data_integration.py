"""Data integration with inverse rules: answering recursive queries
from sound views ([14], appendix of the paper).

Scenario: a flight network where we only see (a) non-stop routes of one
alliance and (b) a "reachable via the alliance" view published by an
aggregator.  We compute certain answers and a Datalog rewriting for a
recursive reachability query.

Run with ``python examples/data_integration.py``.
"""

from repro import (
    DatalogQuery,
    View,
    ViewSet,
    certain_answers,
    check_rewriting,
    inverse_rules_rewriting,
    parse_cq,
    parse_instance,
    parse_program,
)


def main() -> None:
    # the global query: cities reachable from a hub
    query = DatalogQuery(parse_program(
        """
        Reach(x) <- Hub(x).
        Reach(y) <- Reach(x), Flight(x,y).
        GoalReach(x) <- Reach(x).
        """
    ), "GoalReach", "reachable")

    # the views: hubs are public, flights are published per-leg
    views = ViewSet([
        View("VHub", parse_cq("V(x) <- Hub(x)")),
        View("VLeg", parse_cq("V(x,y) <- Flight(x,y)")),
    ])

    # a concrete network
    db = parse_instance(
        """
        Hub('FRA').
        Flight('FRA','VIE'). Flight('VIE','WAW').
        Flight('WAW','KRK'). Flight('JFK','SFO').
        """
    )
    image = views.image(db)

    print("certain answers over the published views:")
    for (city,) in sorted(certain_answers(query, views, image)):
        print("  reachable:", city)

    # the rewriting can be shipped to the view store and run there
    rewriting = inverse_rules_rewriting(query, views)
    print("\nDatalog rewriting over the view schema:"
          f" {len(rewriting.program)} rules")
    bad = check_rewriting(query, views, rewriting, trials=50)
    print("verified against direct evaluation on 50 random instances:",
          bad is None)

    # sound views: the aggregator may publish only SOME legs; certain
    # answers stay sound (they only use what is published)
    partial = image.copy()
    partial.discard(next(iter(
        f for f in image.facts() if f.pred == "VLeg"
        and f.args == ("WAW", "KRK")
    )))
    print("\nafter dropping the WAW->KRK leg from the published view:")
    for (city,) in sorted(certain_answers(query, views, partial)):
        print("  reachable:", city)


if __name__ == "__main__":
    main()
