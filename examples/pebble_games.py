"""Pebble games and non-definability (§7).

Demonstrates the tools behind Theorems 7 and 8: existential k-pebble
games, the TP* parity construction, and why the Duplicator's wins imply
that no Datalog query of bounded body size separates the instances.

Run with ``python examples/pebble_games.py``.
"""

from repro import Instance, duplicator_wins, instance_maps_into
from repro.constructions import grid_instance, tp_star


def clique(n: int) -> Instance:
    inst = Instance()
    for i in range(n):
        for j in range(n):
            if i != j:
                inst.add_tuple("E", (i, j))
    return inst


def main() -> None:
    # -- warm-up: cliques ----------------------------------------------
    k3, k2 = clique(3), clique(2)
    print("K3 -> K2 (homomorphism):", instance_maps_into(k3, k2))
    print("K3 ->2 K2 (2-pebble game):", duplicator_wins(k3, k2, 2))
    print("K3 ->3 K2 (3-pebble game):", duplicator_wins(k3, k2, 3))
    print("  => no Datalog query with 2-atom bodies separates K3 from K2\n")

    # -- the Lemma 6 phenomenon ----------------------------------------
    tp = tp_star()
    target = tp.as_instance()
    print(f"TP*: {len(tp.tiles)} tiles, {len(tp.horizontal)} HC pairs")
    for n in (2, 3):
        grid = grid_instance(n, n)
        hom = instance_maps_into(grid, target)
        game = duplicator_wins(grid, target, 2)
        print(f"  grid {n}x{n}: tilable (hom) = {hom},"
              f" 2-pebble Duplicator wins = {game}")
    print("\nNo grid is TP*-tilable, but the Duplicator survives any")
    print("2-pebble interrogation — the gap Thm 8 turns into a query")
    print("with no Datalog rewriting.")


if __name__ == "__main__":
    main()
