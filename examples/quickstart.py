"""Quickstart: views, determinacy, rewritings in ten minutes.

Run with ``python examples/quickstart.py``.

The scenario: a company database with ``Emp(emp, dept)`` and
``Mgr(dept, boss)``.  Two view publishers expose different slices; we
ask which queries can be answered from the views alone, and compute
rewritings when they can.
"""

from repro import (
    View,
    ViewSet,
    decide_monotonic_determinacy,
    parse_cq,
    parse_instance,
    rewrite_forward_backward,
    NotRewritableError,
)


def main() -> None:
    # -- the query: who has a boss? -----------------------------------
    query = parse_cq("Q(e) <- Emp(e, d), Mgr(d, b)")
    print("query:", query, "\n")

    # -- view publisher 1: both relations, fully ----------------------
    full_views = ViewSet([
        View("VEmp", parse_cq("V(e,d) <- Emp(e,d)")),
        View("VMgr", parse_cq("V(d,b) <- Mgr(d,b)")),
    ])
    result = decide_monotonic_determinacy(query, full_views)
    print("full views:", result.verdict.value, "-", result.detail)
    rewriting = rewrite_forward_backward(query, full_views)
    print("rewriting over the views:", rewriting, "\n")

    # evaluate the rewriting against a concrete database
    db = parse_instance(
        "Emp('ada','eng'). Emp('bob','ops'). Mgr('eng','carol')."
    )
    answers = rewriting.evaluate(full_views.image(db))
    print("who has a boss?", sorted(answers), "\n")

    # -- view publisher 2: departments are anonymized -----------------
    lossy_views = ViewSet([
        View("VEmp", parse_cq("V(e) <- Emp(e,d)")),      # drops the dept
        View("VMgr", parse_cq("V(b) <- Mgr(d,b)")),      # drops the dept
    ])
    result = decide_monotonic_determinacy(query, lossy_views)
    print("anonymized views:", result.verdict.value, "-", result.detail)
    try:
        rewrite_forward_backward(query, lossy_views)
    except NotRewritableError as exc:
        print("as expected, no rewriting exists:", exc)


if __name__ == "__main__":
    main()
