"""SARIF 2.1.0 rendering of analyzer diagnostics.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
(Static Analysis Results Interchange Format) is the exchange format
code-scanning UIs ingest (GitHub code scanning, VS Code SARIF viewer,
...).  :func:`sarif_report` maps the ``repro lint`` vocabulary onto it:

* every code of the :data:`repro.analysis.diagnostics.CODES` registry
  becomes a ``tool.driver.rules`` entry (the registry is append-only, so
  ``ruleIndex`` values are stable within one report);
* each :class:`~repro.analysis.diagnostics.Diagnostic` becomes a
  ``result`` with ``level`` mapped from its severity (``error`` /
  ``warning`` / ``note``) and its span as a 1-based ``region``;
* a diagnostic about a *synthesized* rule (optimizer output) has no
  source span — its ``derived_from`` provenance is rendered as a
  ``relatedLocation`` pointing at the originating source rule.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.analysis.diagnostics import CODES, Diagnostic, Severity
from repro.core.parser import Span

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: SARIF ``level`` per severity (SARIF has no "info", it has "note").
_LEVELS: dict[Severity, str] = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _region(span: Span) -> dict[str, int]:
    return {
        "startLine": span.line,
        "startColumn": span.col,
        "endLine": span.end_line,
        "endColumn": span.end_col,
    }


def _location(uri: str, span: Optional[Span]) -> dict[str, Any]:
    physical: dict[str, Any] = {"artifactLocation": {"uri": uri}}
    if span is not None:
        physical["region"] = _region(span)
    return {"physicalLocation": physical}


def _rules() -> list[dict[str, Any]]:
    """The full CODES registry as SARIF rule metadata, in code order."""
    rules = []
    for code in sorted(CODES):
        severity, title = CODES[code]
        rules.append({
            "id": code,
            "name": title.title().replace(" ", ""),
            "shortDescription": {"text": title},
            "defaultConfiguration": {"level": _LEVELS[severity]},
        })
    return rules


def _result(
    diagnostic: Diagnostic, uri: str, rule_index: dict[str, int]
) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": diagnostic.code,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [_location(uri, diagnostic.span)],
    }
    if diagnostic.code in rule_index:
        result["ruleIndex"] = rule_index[diagnostic.code]
    if diagnostic.rule_index is not None:
        result["properties"] = {"ruleIndexInProgram": diagnostic.rule_index}
    if diagnostic.derived_from is not None:
        result["relatedLocations"] = [{
            **_location(uri, diagnostic.derived_from),
            "message": {"text": "synthesized from the rule here"},
        }]
    return result


def sarif_report(
    diagnostics: Sequence[Diagnostic],
    path: Optional[str] = None,
    tool_name: str = "repro-lint",
) -> dict[str, Any]:
    """A single-run SARIF 2.1.0 log for ``diagnostics``.

    ``path`` is the analyzed artifact's URI (the lint target file);
    diagnostics without a span still produce a result located at the
    artifact, per the SARIF convention for file-level findings.
    """
    try:
        from repro import __version__ as version
    except ImportError:  # pragma: no cover - only during partial installs
        version = "unknown"
    uri = path or "<input>"
    rule_index = {code: i for i, code in enumerate(sorted(CODES))}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "version": version,
                    "informationUri": (
                        "https://github.com/paper-repro/"
                        "monotonic-determinacy"
                    ),
                    "rules": _rules(),
                }
            },
            "artifacts": [{"location": {"uri": uri}}],
            "results": [
                _result(diagnostic, uri, rule_index)
                for diagnostic in diagnostics
            ],
        }],
    }
