"""Certified program transformations driven by the static analyses.

A *pass* is a pure function ``ProgramState -> (ProgramState, records)``:
it never mutates its input, and every change it makes is written down as
a :class:`TransformRecord` carrying the source span of the rule it came
from.  The passes only apply transformations justified by an analysis
this package already performs:

* ``dead_code`` — rules unreachable from the goal
  (:class:`~repro.analysis.dependency.DependencyGraph`), body atoms
  whose removal keeps the rule equivalent, and subsumed rules
  (:func:`repro.core.optimize.rule_subsumes`);
* ``specialize`` — constant propagation: IDB predicates defined only by
  ground facts are folded into their call sites;
* ``inline`` — non-recursive IDBs used by exactly one body atom (read
  off the SCC condensation) are unfolded into that call site;
* ``magic_sets`` — the demand transformation, driven by the same
  left-to-right sideways-information-passing adornments
  :func:`repro.analysis.semantics.binding_patterns` computes: recursion
  reached with bound arguments is restricted to the demanded tuples
  instead of being computed in full and filtered post-hoc;
* ``join_order`` — static greedy join reordering of each rule body from
  a per-atom selectivity estimate (EDB cardinality when an instance is
  supplied, bound-variable/constant counts always), so the engine's
  ``ordering="static"`` path starts from a good plan without runtime
  replanning.

Equivalence contract: every pass preserves the *goal relation on
instances over the extensional schema* (the only instances the decision
procedures and the evidence harness ever evaluate on).  ``dead_code``
and ``join_order`` are equivalences on arbitrary instances; the
renaming passes (``specialize``/``inline``/``magic_sets``) are not
semantics-preserving on instances that smuggle in facts for intensional
predicates, which is why :meth:`repro.core.datalog.DatalogQuery.evaluate`
guards the optimized path against such instances.

With ``certify=True``, :func:`optimize_program` emits one
``program_equivalence`` claim per changed pass — independently
validated by :mod:`repro.certify.checker` with naive replay evaluation
on targeted witnesses plus a seeded random-instance stream, so a wrong
transformation cannot certify itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Optional, Sequence

from repro.analysis.dependency import DependencyGraph
from repro.analysis.semantics import binding_patterns
from repro.core.atoms import Atom
from repro.core.cq import CanonConst
from repro.core.datalog import DatalogProgram, Rule
from repro.core.instance import Instance
from repro.core.optimize import (
    drop_subsumed_rules,
    minimize_rule_bodies,
    rule_subsumes,
)
from repro.core.parser import Span
from repro.core.terms import Variable

#: cap on the rule blow-up one constant-propagation site may cause
_SPECIALIZE_LIMIT = 64

#: witness instances shipped per equivalence claim (plus their union)
_WITNESS_LIMIT = 16

#: ambient optimization (``fixpoint(optimize=True)`` / the evaluation
#: default) steps aside for programs above this many rules: the
#: subsumption-based passes are quadratic in the rule count with a
#: homomorphism search per pair, which is fine for human-written
#: programs but pathological on machine-generated ones (the Thm 8
#: witness program has ~2k rules).  Explicit ``optimize_program`` calls
#: are not limited — the caller asked.
OPTIMIZE_RULE_LIMIT = 200


# ---------------------------------------------------------------------------
# records and state
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RuleProvenance:
    """Where a rule came from.

    ``span`` locates the rule in the original source (``None`` for
    synthesized rules); ``derived_from`` points at the source rule a
    synthesized rule was derived from, so diagnostics on generated
    programs can still be anchored to real source positions.
    """

    span: Optional[Span] = None
    derived_from: Optional[Span] = None

    def origin(self) -> Optional[Span]:
        """The best source anchor available for this rule."""
        return self.span if self.span is not None else self.derived_from


@dataclass(frozen=True)
class TransformRecord:
    """One change performed by one pass."""

    pass_name: str
    action: str
    detail: str
    rule_index: Optional[int] = None
    span: Optional[Span] = None
    derived_from: Optional[Span] = None

    def render(self) -> str:
        where = ""
        if self.span is not None:
            where = f" at {self.span.label()}"
        elif self.derived_from is not None:
            where = f" (derived from rule at {self.derived_from.label()})"
        return f"[{self.pass_name}] {self.action}: {self.detail}{where}"

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "pass": self.pass_name,
            "action": self.action,
            "detail": self.detail,
        }
        if self.rule_index is not None:
            out["rule"] = self.rule_index
        if self.span is not None:
            out["span"] = self.span.as_dict()
        if self.derived_from is not None:
            out["derived_from"] = self.derived_from.as_dict()
        return out


@dataclass(frozen=True)
class ProgramState:
    """A program mid-pipeline, with per-rule provenance kept aligned."""

    program: DatalogProgram
    goal: str
    provenance: tuple[RuleProvenance, ...] = ()

    def __post_init__(self) -> None:
        rules = len(self.program.rules)
        prov = tuple(self.provenance)[:rules]
        prov += (RuleProvenance(),) * (rules - len(prov))
        object.__setattr__(self, "provenance", prov)

    def entries(self) -> list[tuple[Rule, RuleProvenance]]:
        return list(zip(self.program.rules, self.provenance))


def _state_from(
    goal: str, entries: Sequence[tuple[Rule, RuleProvenance]]
) -> ProgramState:
    return ProgramState(
        DatalogProgram(rule for rule, _ in entries),
        goal,
        tuple(prov for _, prov in entries),
    )


#: a pass: pure ``(state, instance) -> (state, records)``
OptimizerPass = Callable[
    [ProgramState, Optional[Instance]],
    "tuple[ProgramState, tuple[TransformRecord, ...]]",
]


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------
def _freeze(term: object) -> object:
    return CanonConst(term.name) if isinstance(term, Variable) else term


def _unify(
    pairs: Sequence[tuple[object, object]],
) -> Optional[dict[Variable, object]]:
    """Flat-term unification; returns a fully resolved substitution."""
    mapping: dict[Variable, object] = {}

    def resolve(term: object) -> object:
        while isinstance(term, Variable) and term in mapping:
            term = mapping[term]
        return term

    for left, right in pairs:
        left, right = resolve(left), resolve(right)
        if left == right:
            continue
        if isinstance(left, Variable):
            mapping[left] = right
        elif isinstance(right, Variable):
            mapping[right] = left
        else:
            return None
    return {var: resolve(var) for var in mapping}


def _adorn(atom: Atom, bound: set[Variable]) -> str:
    """The adornment of one call: ``b`` per constant-or-bound argument.

    Identical to the per-atom step of
    :func:`repro.analysis.semantics.binding_patterns`.
    """
    return "".join(
        "f" if isinstance(term, Variable) and term not in bound else "b"
        for term in atom.args
    )


def _head_bound(rule: Rule, adornment: str) -> set[Variable]:
    return {
        arg
        for arg, mark in zip(rule.head.args, adornment)
        if mark == "b" and isinstance(arg, Variable)
    }


# ---------------------------------------------------------------------------
# detectors (shared with the lint passes: I207 / I208 / W111)
# ---------------------------------------------------------------------------
def magic_opportunities(
    program: DatalogProgram,
    goal: str,
    dependency: Optional[DependencyGraph] = None,
    adornments: Optional[dict[str, tuple[str, ...]]] = None,
) -> dict[str, tuple[str, ...]]:
    """Recursive IDBs called *only* with bound arguments (I207).

    These are exactly the predicates the magic-sets pass restricts: the
    engine would otherwise compute them in full and filter afterwards.
    A predicate whose reachable adornments include the all-free pattern
    is excluded — its free copy's demand is the full extension, so the
    transformation could not restrict anything (the recursive self-call
    of a chain rule always contributes a bound pattern, which would
    otherwise make this detector fire on every recursive program).
    """
    dependency = dependency or DependencyGraph(program)
    if adornments is None:
        adornments = binding_patterns(program, goal, dependency)
    recursive = dependency.recursive_predicates()
    out: dict[str, tuple[str, ...]] = {}
    for pred, patterns in adornments.items():
        if pred not in recursive:
            continue
        bound = tuple(p for p in patterns if "b" in p)
        if bound and len(bound) == len(patterns):
            out[pred] = bound
    return out


def inline_candidates(
    program: DatalogProgram,
    goal: Optional[str] = None,
    dependency: Optional[DependencyGraph] = None,
) -> tuple[str, ...]:
    """Non-recursive, non-goal IDBs used by exactly one body atom (I208)."""
    dependency = dependency or DependencyGraph(program)
    recursive = dependency.recursive_predicates()
    idb = program.idb_predicates()
    uses: dict[str, int] = {}
    for rule in program.rules:
        for atom in rule.body:
            if atom.pred in idb:
                uses[atom.pred] = uses.get(atom.pred, 0) + 1
    return tuple(sorted(
        pred
        for pred, n in uses.items()
        if n == 1 and pred != goal and pred not in recursive
    ))


def dead_body_atoms(
    program: DatalogProgram,
) -> tuple[tuple[int, int, Atom], ...]:
    """``(rule, atom, Atom)`` triples removable without changing the rule.

    An atom is *dead* when the rule without it still derives exactly the
    same facts (mutual subsumption with the head fixed) — the W111 lint
    finding and the atom-level step of the ``dead_code`` pass.
    """
    out: list[tuple[int, int, Atom]] = []
    for rule_index, rule in enumerate(program.rules):
        for atom_index in range(len(rule.body)):
            reduced = _droppable_atom(rule, atom_index)
            if reduced is not None:
                out.append((rule_index, atom_index, rule.body[atom_index]))
    return tuple(out)


def _droppable_atom(rule: Rule, atom_index: int) -> Optional[Rule]:
    """The rule without ``atom_index`` when the removal is an equivalence."""
    body = rule.body[:atom_index] + rule.body[atom_index + 1:]
    vars_left: set[Variable] = set()
    for atom in body:
        vars_left |= atom.variables()
    if not rule.head.variables() <= vars_left:
        return None
    candidate = Rule(rule.head, body)
    if rule_subsumes(candidate, rule) and rule_subsumes(rule, candidate):
        return candidate
    return None


# ---------------------------------------------------------------------------
# pass: dead_code
# ---------------------------------------------------------------------------
def pass_dead_code(
    state: ProgramState, instance: Optional[Instance] = None
) -> tuple[ProgramState, tuple[TransformRecord, ...]]:
    """Drop unreachable rules, dead body atoms, and subsumed rules."""
    del instance
    records: list[TransformRecord] = []
    entries = state.entries()

    unreachable = set(
        DependencyGraph(state.program).unreachable_rule_indices(state.goal)
    )
    kept: list[tuple[Rule, RuleProvenance]] = []
    for index, (rule, prov) in enumerate(entries):
        if index in unreachable:
            records.append(TransformRecord(
                "dead_code", "drop-rule",
                f"rule {rule!r} is unreachable from goal {state.goal}",
                index, prov.span, prov.derived_from,
            ))
        else:
            kept.append((rule, prov))

    minimized: list[tuple[Rule, RuleProvenance]] = []
    for index, (rule, prov) in enumerate(kept):
        changed = True
        while changed:
            changed = False
            for atom_index in range(len(rule.body)):
                reduced = _droppable_atom(rule, atom_index)
                if reduced is not None:
                    records.append(TransformRecord(
                        "dead_code", "drop-atom",
                        f"body atom {rule.body[atom_index]!r} of "
                        f"{rule!r} is dead (removal preserves the rule)",
                        index, prov.span, prov.derived_from,
                    ))
                    rule = reduced
                    changed = True
                    break
        minimized.append((rule, prov))

    surviving: list[tuple[Rule, RuleProvenance]] = []
    for index, (rule, prov) in enumerate(minimized):
        subsumer = next(
            (other for other, _ in surviving if rule_subsumes(other, rule)),
            None,
        )
        if subsumer is not None:
            records.append(TransformRecord(
                "dead_code", "drop-rule",
                f"rule {rule!r} is subsumed by {subsumer!r}",
                index, prov.span, prov.derived_from,
            ))
            continue
        kept_so_far: list[tuple[Rule, RuleProvenance]] = []
        for other, other_prov in surviving:
            if rule_subsumes(rule, other):
                records.append(TransformRecord(
                    "dead_code", "drop-rule",
                    f"rule {other!r} is subsumed by {rule!r}",
                    None, other_prov.span, other_prov.derived_from,
                ))
            else:
                kept_so_far.append((other, other_prov))
        surviving = kept_so_far
        surviving.append((rule, prov))

    return _state_from(state.goal, surviving), tuple(records)


# ---------------------------------------------------------------------------
# pass: specialize (constant propagation)
# ---------------------------------------------------------------------------
def pass_specialize(
    state: ProgramState, instance: Optional[Instance] = None
) -> tuple[ProgramState, tuple[TransformRecord, ...]]:
    """Fold IDBs defined only by ground facts into their call sites."""
    del instance
    program = state.program
    idb = program.idb_predicates()
    fact_preds = {
        pred
        for pred in idb
        if pred != state.goal
        and all(not rule.body for rule in program.rules_for(pred))
    }
    if not fact_preds:
        return state, ()

    facts: dict[str, list[tuple[object, ...]]] = {
        pred: [rule.head.args for rule in program.rules_for(pred)]
        for pred in fact_preds
    }

    def expand_rule(rule: Rule) -> Optional[list[Rule]]:
        """All ground-fact expansions of ``rule`` (None past the cap)."""
        done: list[Rule] = []
        work = [rule]
        while work:
            current = work.pop()
            position = next(
                (
                    i
                    for i, a in enumerate(current.body)
                    if a.pred in fact_preds
                ),
                None,
            )
            if position is None:
                done.append(current)
                continue
            call = current.body[position]
            reduced = current.body[:position] + current.body[position + 1:]
            for row in facts[call.pred]:
                theta = _unify(list(zip(call.args, row)))
                if theta is None:
                    continue
                work.append(Rule(
                    current.head.substitute(theta),
                    tuple(a.substitute(theta) for a in reduced),
                ))
            if len(work) + len(done) > _SPECIALIZE_LIMIT:
                return None
        return done

    records: list[TransformRecord] = []
    expanded: list[tuple[Rule, RuleProvenance]] = []
    blocked: set[str] = set()
    for index, (rule, prov) in enumerate(state.entries()):
        sites = {a.pred for a in rule.body if a.pred in fact_preds}
        if rule.head.pred in fact_preds or not sites:
            expanded.append((rule, prov))
            continue
        variants = expand_rule(rule)
        if variants is None:
            blocked |= sites
            expanded.append((rule, prov))
            continue
        records.append(TransformRecord(
            "specialize", "expand",
            f"propagated facts of {', '.join(sorted(sites))} into "
            f"{rule!r} ({len(variants)} specialised rule(s))",
            index, prov.span, prov.derived_from,
        ))
        origin = prov.origin()
        expanded.extend(
            (variant, RuleProvenance(None, origin)) for variant in variants
        )
    if not records:
        return state, ()

    still_used = {
        atom.pred
        for rule, _ in expanded
        for atom in rule.body
    } | blocked
    final: list[tuple[Rule, RuleProvenance]] = []
    for rule, prov in expanded:
        pred = rule.head.pred
        if pred in fact_preds and pred not in still_used:
            records.append(TransformRecord(
                "specialize", "drop-rule",
                f"fact {rule!r} fully propagated; predicate {pred} "
                "is no longer referenced",
                None, prov.span, prov.derived_from,
            ))
            continue
        final.append((rule, prov))
    return _state_from(state.goal, final), tuple(records)


# ---------------------------------------------------------------------------
# pass: inline
# ---------------------------------------------------------------------------
def pass_inline(
    state: ProgramState, instance: Optional[Instance] = None
) -> tuple[ProgramState, tuple[TransformRecord, ...]]:
    """Unfold single-use non-recursive IDBs into their one call site."""
    del instance
    records: list[TransformRecord] = []
    entries = state.entries()
    for _ in range(len(state.program.idb_predicates()) + 1):
        program = DatalogProgram(rule for rule, _ in entries)
        candidates = inline_candidates(program, state.goal)
        applied = False
        for pred in candidates:
            host_index, atom_index = next(
                (i, j)
                for i, (rule, _) in enumerate(entries)
                for j, atom in enumerate(rule.body)
                if atom.pred == pred
            )
            host, host_prov = entries[host_index]
            call = host.body[atom_index]
            replacements: list[Rule] = []
            ok = True
            for defining in program.rules_for(pred):
                renamed = defining
                clash = defining.variables() & host.variables()
                if clash:
                    renamed = defining.substitute({
                        var: Variable(f"_inl_{pred}_{var.name}")
                        for var in defining.variables()
                    })
                theta = _unify(list(zip(renamed.head.args, call.args)))
                if theta is None:
                    continue
                try:
                    replacements.append(Rule(
                        host.head.substitute(theta),
                        tuple(
                            a.substitute(theta)
                            for a in host.body[:atom_index]
                            + renamed.body
                            + host.body[atom_index + 1:]
                        ),
                    ))
                except ValueError:  # pragma: no cover - defensive
                    ok = False
                    break
            if not ok:
                continue
            records.append(TransformRecord(
                "inline", "inline",
                f"unfolded single-use non-recursive predicate {pred} "
                f"into {host!r} ({len(replacements)} expansion(s))",
                host_index, host_prov.span, host_prov.derived_from,
            ))
            origin = host_prov.origin()
            rebuilt: list[tuple[Rule, RuleProvenance]] = []
            for index, (rule, prov) in enumerate(entries):
                if rule.head.pred == pred:
                    records.append(TransformRecord(
                        "inline", "drop-rule",
                        f"definition {rule!r} of {pred} absorbed into "
                        "its call site",
                        index, prov.span, prov.derived_from,
                    ))
                    continue
                if index == host_index:
                    rebuilt.extend(
                        (replacement, RuleProvenance(None, origin))
                        for replacement in replacements
                    )
                    continue
                rebuilt.append((rule, prov))
            entries = rebuilt
            applied = True
            break
        if not applied:
            break
    if not records:
        return state, ()
    return _state_from(state.goal, entries), tuple(records)


# ---------------------------------------------------------------------------
# pass: magic_sets
# ---------------------------------------------------------------------------
def pass_magic_sets(
    state: ProgramState, instance: Optional[Instance] = None
) -> tuple[ProgramState, tuple[TransformRecord, ...]]:
    """The demand transformation over the binding-pattern adornments.

    Applies only when some *recursive* predicate is reached with a
    bound argument (otherwise there is no demand to propagate and the
    rewrite would only add overhead).  The goal keeps its name at its
    initial all-free adornment, so the transformed program answers the
    same goal predicate.
    """
    del instance
    program = state.program
    goal = state.goal
    if not magic_opportunities(program, goal):
        return state, ()
    idb = program.idb_predicates()
    initial = "f" * program.arity_of(goal)

    adorned: list[tuple[str, str]] = [(goal, initial)]
    seen = {(goal, initial)}
    cursor = 0
    while cursor < len(adorned):
        pred, adornment = adorned[cursor]
        cursor += 1
        for rule in program.rules_for(pred):
            bound = _head_bound(rule, adornment)
            for atom in rule.body:
                if atom.pred in idb:
                    key = (atom.pred, _adorn(atom, bound))
                    if key not in seen:
                        seen.add(key)
                        adorned.append(key)
                bound |= atom.variables()

    taken = set(program.predicates())

    def fresh(base: str) -> str:
        name = base
        while name in taken:
            name = "_" + name
        taken.add(name)
        return name

    names: dict[tuple[str, str], str] = {}
    magic: dict[tuple[str, str], str] = {}
    for key in adorned:
        pred, adornment = key
        names[key] = (
            pred if key == (goal, initial) else fresh(f"{pred}_{adornment}")
        )
        magic[key] = fresh(f"magic_{pred}_{adornment}")

    prov_of = dict(enumerate(state.provenance))
    index_of = {id(rule): i for i, rule in enumerate(program.rules)}
    out: list[tuple[Rule, RuleProvenance]] = []
    emitted: set[Rule] = set()

    def emit(rule: Rule, origin: Optional[Span]) -> None:
        if rule not in emitted:
            emitted.add(rule)
            out.append((rule, RuleProvenance(None, origin)))

    goal_rules = program.rules_for(goal)
    seed_origin = (
        prov_of[index_of[id(goal_rules[0])]].origin() if goal_rules else None
    )
    emit(Rule(Atom(magic[(goal, initial)], ()), ()), seed_origin)

    records: list[TransformRecord] = [TransformRecord(
        "magic_sets", "seed",
        f"seeded demand {magic[(goal, initial)]}() for goal {goal}",
        None, None, seed_origin,
    )]
    for key in adorned:
        pred, adornment = key
        for rule in program.rules_for(pred):
            rule_index = index_of[id(rule)]
            origin = prov_of[rule_index].origin()
            bound = _head_bound(rule, adornment)
            guard_args = tuple(
                arg
                for arg, mark in zip(rule.head.args, adornment)
                if mark == "b"
            )
            new_body: list[Atom] = [Atom(magic[key], guard_args)]
            for atom in rule.body:
                if atom.pred in idb:
                    call = (atom.pred, _adorn(atom, bound))
                    demand_args = tuple(
                        term
                        for term, mark in zip(atom.args, call[1])
                        if mark == "b"
                    )
                    emit(
                        Rule(Atom(magic[call], demand_args), tuple(new_body)),
                        origin,
                    )
                    new_body.append(Atom(names[call], atom.args))
                else:
                    new_body.append(atom)
                bound |= atom.variables()
            emit(
                Rule(Atom(names[key], rule.head.args), tuple(new_body)),
                origin,
            )
        records.append(TransformRecord(
            "magic_sets", "adorn",
            f"{pred} with pattern {adornment} evaluated as {names[key]} "
            f"under demand {magic[key]}",
            None, None, None,
        ))
    return _state_from(goal, out), tuple(records)


# ---------------------------------------------------------------------------
# pass: join_order
# ---------------------------------------------------------------------------
#: which per-atom cost estimator drives join reordering: ``"model"``
#: uses the certified cardinality bounds of :mod:`repro.analysis.cost`
#: (per-predicate bounds from the SCC abstract interpretation plus
#: ``min(|R|, adom**free_vars)`` per atom); ``"heuristic"`` is the
#: original selectivity formula, kept as an escape hatch.
_JOIN_COST_MODEL = "model"


def set_join_cost_model(name: str) -> str:
    """Select the join-cost estimator; returns the previous choice."""
    global _JOIN_COST_MODEL
    if name not in ("model", "heuristic"):
        raise ValueError(
            f"unknown join cost model {name!r}; use 'model' or 'heuristic'"
        )
    previous = _JOIN_COST_MODEL
    _JOIN_COST_MODEL = name
    return previous


def join_cost_model() -> str:
    """The active join-cost estimator name."""
    return _JOIN_COST_MODEL


def _atom_cost(
    atom: Atom,
    bound: set[Variable],
    sizes: dict[str, int],
    default_size: int,
) -> float:
    """Estimated scan cost: relation cardinality shrunk per bound slot.

    Only *distinct unbound* variables widen the estimate: a repeated
    variable within the atom (``R(z,z)``) or a constant slot filters
    the relation rather than enumerating it, so both count as
    selective — the pre-cost-model version counted every unbound
    occurrence as free, ranking self-joins as expensive as full scans
    of a wider relation.
    """
    size = sizes.get(atom.pred, default_size)
    seen: set[Variable] = set()
    free = 0
    selective = 0
    for term in atom.args:
        if (
            isinstance(term, Variable)
            and term not in bound
            and term not in seen
        ):
            seen.add(term)
            free += 1
        else:
            selective += 1
    return size * (4.0 ** free) / (4.0 ** selective)


def _greedy_order(
    body: tuple[Atom, ...],
    sizes: dict[str, int],
    default_size: int,
    adom: Optional[int] = None,
) -> list[int]:
    from repro.analysis.cost import atom_match_bound

    use_model = adom is not None and _JOIN_COST_MODEL == "model"
    remaining = list(range(len(body)))
    bound: set[Variable] = set()
    order: list[int] = []
    while remaining:
        connected = [
            i for i in remaining if body[i].variables() & bound
        ] or remaining
        if use_model:
            best = min(
                connected,
                key=lambda i: (
                    atom_match_bound(
                        body[i], bound, sizes, adom, default_size
                    ),
                    i,
                ),
            )
        else:
            best = min(
                connected,
                key=lambda i: (
                    _atom_cost(body[i], bound, sizes, default_size),
                    i,
                ),
            )
        order.append(best)
        remaining.remove(best)
        bound |= body[best].variables()
    return order


def _planning_inputs(
    program: DatalogProgram, instance: Optional[Instance]
) -> tuple[dict[str, int], int, Optional[int]]:
    """``(sizes, default_size, adom)`` for the active cost model.

    The heuristic model plans from EDB cardinalities alone (IDB atoms
    fall back to ``default_size``); the certified model additionally
    feeds every IDB predicate its sound cardinality bound and the
    active-domain width, so recursive atoms are ranked by what they can
    actually grow to instead of a flat default.
    """
    sizes: dict[str, int] = {}
    if instance is not None:
        for pred in program.edb_predicates():
            sizes[pred] = instance.size(pred)
    default_size = max(sizes.values(), default=16) or 16
    if _JOIN_COST_MODEL != "model":
        return sizes, default_size, None
    from repro.analysis.cost import cost_report

    report = cost_report(program, instance=instance, peel=False)
    merged = dict(sizes)
    for pred, pb in report.bounds.items():
        merged.setdefault(pred, pb.bound)
    return merged, default_size, report.parameters.adom


def pass_join_order(
    state: ProgramState, instance: Optional[Instance] = None
) -> tuple[ProgramState, tuple[TransformRecord, ...]]:
    """Statically reorder rule bodies by the active cost model."""
    sizes, default_size, adom = _planning_inputs(state.program, instance)
    records: list[TransformRecord] = []
    entries: list[tuple[Rule, RuleProvenance]] = []
    for index, (rule, prov) in enumerate(state.entries()):
        order = _greedy_order(rule.body, sizes, default_size, adom)
        if order == sorted(order):
            entries.append((rule, prov))
            continue
        reordered = Rule(
            rule.head, tuple(rule.body[i] for i in order)
        )
        records.append(TransformRecord(
            "join_order", "reorder",
            f"body of {rule!r} reordered to "
            f"{[repr(a) for a in reordered.body]} "
            "(selectivity-first static plan)",
            index, prov.span, prov.derived_from,
        ))
        entries.append((reordered, prov))
    if not records:
        return state, ()
    return _state_from(state.goal, entries), tuple(records)


# ---------------------------------------------------------------------------
# the pipeline
# ---------------------------------------------------------------------------
#: registered passes, in default application order
PASSES: dict[str, OptimizerPass] = {
    "dead_code": pass_dead_code,
    "specialize": pass_specialize,
    "inline": pass_inline,
    "magic_sets": pass_magic_sets,
    "join_order": pass_join_order,
}

DEFAULT_PIPELINE: tuple[str, ...] = tuple(PASSES)


@dataclass(frozen=True)
class OptimizationStage:
    """One pass application: the program before and after."""

    name: str
    before: DatalogProgram
    after: DatalogProgram
    records: tuple[TransformRecord, ...] = ()

    @property
    def changed(self) -> bool:
        return self.before.rules != self.after.rules


@dataclass(frozen=True)
class OptimizationResult:
    """The outcome of running a pass pipeline over one query program."""

    original: DatalogProgram
    optimized: DatalogProgram
    goal: str
    provenance: tuple[RuleProvenance, ...] = ()
    stages: tuple[OptimizationStage, ...] = ()
    certificate: Optional[dict[str, Any]] = field(default=None)

    @property
    def changed(self) -> bool:
        return self.original.rules != self.optimized.rules

    @property
    def records(self) -> tuple[TransformRecord, ...]:
        return tuple(
            record for stage in self.stages for record in stage.records
        )

    def diff(self) -> tuple[tuple[Rule, ...], tuple[Rule, ...]]:
        """``(removed, added)`` rules between original and optimized."""
        before = list(self.original.rules)
        after = list(self.optimized.rules)
        removed = tuple(rule for rule in before if rule not in after)
        added = tuple(rule for rule in after if rule not in before)
        return removed, added

    def as_dict(self) -> dict[str, Any]:
        removed, added = self.diff()
        return {
            "goal": self.goal,
            "changed": self.changed,
            "rules_before": len(self.original.rules),
            "rules_after": len(self.optimized.rules),
            "passes": [
                {
                    "name": stage.name,
                    "changed": stage.changed,
                    "records": [r.as_dict() for r in stage.records],
                }
                for stage in self.stages
            ],
            "removed": [repr(rule) for rule in removed],
            "added": [repr(rule) for rule in added],
            "optimized": [repr(rule) for rule in self.optimized.rules],
        }


#: naive-replay relations: predicate -> set of rows
WitnessRelations = dict[str, set[tuple[object, ...]]]


def equivalence_witnesses(
    program: DatalogProgram,
) -> list[WitnessRelations]:
    """Targeted witness instances: each rule's frozen extensional body.

    Canonical-database style: evaluating on the frozen body of a rule
    exercises exactly that rule's firing pattern, so a transformation
    that breaks one rule is caught without relying on random sampling.
    """
    idb = program.idb_predicates()
    witnesses: list[WitnessRelations] = []
    union: WitnessRelations = {}
    for rule in program.rules[:_WITNESS_LIMIT]:
        relations: WitnessRelations = {}
        for atom in rule.body:
            if atom.pred in idb:
                continue
            row = tuple(_freeze(term) for term in atom.args)
            relations.setdefault(atom.pred, set()).add(row)
            union.setdefault(atom.pred, set()).add(row)
        if relations:
            witnesses.append(relations)
    if union:
        witnesses.append(union)
    return witnesses


def optimize_program(
    program: DatalogProgram,
    goal: str,
    passes: Optional[Sequence[str]] = None,
    *,
    instance: Optional[Instance] = None,
    spans: Optional[Sequence[Optional[Span]]] = None,
    certify: bool = False,
    trials: int = 12,
    seed: int = 0,
) -> OptimizationResult:
    """Run the pass pipeline over ``(program, goal)``.

    ``instance`` feeds real EDB cardinalities to the join reorderer;
    ``spans`` (parallel to ``program.rules``) anchor records and derived
    rules to source positions; ``certify=True`` emits one
    ``program_equivalence`` claim per changed pass, wrapped in a
    certificate envelope ready for
    :func:`repro.certify.check_certificate`.
    """
    if goal not in program.idb_predicates():
        raise ValueError(f"goal {goal} is not an IDB of the program")
    names = tuple(passes) if passes is not None else DEFAULT_PIPELINE
    unknown = [name for name in names if name not in PASSES]
    if unknown:
        known = ", ".join(PASSES)
        raise ValueError(
            f"unknown pass(es) {', '.join(unknown)}; known passes: {known}"
        )
    provenance = tuple(
        RuleProvenance(span)
        for span in (spans if spans is not None else ())
    )
    state = ProgramState(program, goal, provenance)
    stages: list[OptimizationStage] = []
    claims: list[dict[str, Any]] = []
    for name in names:
        before = state.program
        new_state, records = PASSES[name](state, instance)
        if (
            records
            and goal not in new_state.program.idb_predicates()
        ):  # pragma: no cover - guard against a pass dropping the goal
            records = (TransformRecord(
                name, "revert",
                "pass dropped the goal predicate; its output was discarded",
            ),)
            new_state = state
        stages.append(OptimizationStage(
            name, before, new_state.program, records
        ))
        if certify and new_state.program.rules != before.rules:
            from repro.certify.emit import claim_program_equivalence

            claims.append(claim_program_equivalence(
                before,
                new_state.program,
                goal,
                witnesses=equivalence_witnesses(before),
                trials=trials,
                seed=seed,
                pass_name=name,
            ))
        state = new_state
    cert: Optional[dict[str, Any]] = None
    if certify and claims:
        from repro.certify.emit import certificate

        cert = certificate(claims, meta={
            "component": "analysis.optimize",
            "goal": goal,
            "passes": list(names),
        })
    return OptimizationResult(
        program, state.program, goal, state.provenance, tuple(stages), cert
    )


# ---------------------------------------------------------------------------
# cached entry points for the evaluation engine
# ---------------------------------------------------------------------------
@lru_cache(maxsize=256)
def optimized_query_program(
    program: DatalogProgram, goal: str
) -> DatalogProgram:
    """The syntactic pipeline (everything but join reordering), cached.

    Join reordering is applied per call site instead, because it wants
    the concrete instance's cardinalities.
    """
    return optimize_program(
        program, goal, ("dead_code", "specialize", "inline", "magic_sets")
    ).optimized


@lru_cache(maxsize=256)
def optimized_provenance(
    program: DatalogProgram, goal: str
) -> tuple[DatalogProgram, tuple[RuleProvenance, ...]]:
    """Like :func:`optimized_query_program` but keeping provenance."""
    result = optimize_program(
        program, goal, ("dead_code", "specialize", "inline", "magic_sets")
    )
    return result.optimized, result.provenance


@lru_cache(maxsize=256)
def syntactic_fixpoint_program(program: DatalogProgram) -> DatalogProgram:
    """Goal-free syntactic minimization (safe for any program).

    Without a goal predicate only the universally sound rewrites apply:
    per-rule body minimization and subsumed-rule removal, both of which
    preserve every IDB relation on every instance.
    """
    return drop_subsumed_rules(minimize_rule_bodies(program))


def reorder_joins(
    program: DatalogProgram, instance: Optional[Instance] = None
) -> DatalogProgram:
    """Goal-free static join reordering (safe for any program).

    Body permutation never changes a rule's derivations, so this is the
    one pass :func:`repro.core.evaluation.fixpoint` may apply without a
    goal predicate.
    """
    sizes, default_size, adom = _planning_inputs(program, instance)
    rules = []
    for rule in program.rules:
        order = _greedy_order(rule.body, sizes, default_size, adom)
        if order == sorted(order):
            rules.append(rule)
        else:
            rules.append(Rule(rule.head, tuple(rule.body[i] for i in order)))
    return DatalogProgram(tuple(rules))
