"""Certified static cost & cardinality analysis.

An abstract interpretation over the SCC condensation
(:class:`repro.analysis.dependency.DependencyGraph`) that computes, per
predicate, a *sound* worst-case cardinality bound — polynomial in the
EDB sizes and the active-domain width — and, per rule, a join cost
bound with per-atom provenance.

Soundness argument (the invariant ``evidence run --check-cost``
re-checks empirically on every fixpoint):

* every value in a derived fact comes from the instance's active
  domain or from a constant written in the program, so ``adom**arity``
  bounds any IDB relation outright;
* an atom with ``k`` *distinct* variables matches at most
  ``min(|R|, adom**k)`` rows — repeated variables and constants only
  shrink the match set, never grow it;
* a non-recursive predicate's size is at most the sum over its rules
  of ``min(prod of atom bounds, adom**distinct_head_vars)`` plus any
  IDB facts seeded directly in the instance;
* a recursive predicate is bounded by the head shapes of its rules
  (each rule can only derive facts matching its head pattern), capped
  at ``adom**arity`` — sound regardless of how many rounds recursion
  runs;
* dropping the ``vacuous_rules`` that
  :func:`repro.analysis.semantics.boundedness_report` proves subsumed
  preserves the fixpoint, so bounds computed on the peeled program are
  sound for the original.

All arithmetic saturates at :data:`BOUND_CAP` (saturating *up* keeps
every bound sound).  The per-rule join costs are sound bounds on the
number of intermediate tuples a left-to-right join in the estimated
order can produce; they drive the optimizer's join reordering, the
``auto`` backend choice and the harness scheduler, but only the
per-predicate cardinality bounds are certified by ``--check-cost``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Optional

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, Rule
from repro.core.terms import Variable

from repro.analysis.dependency import DependencyGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instance import Instance

#: saturation ceiling for all bound arithmetic; larger-than-real is
#: always sound, so products/powers clamp here instead of overflowing
BOUND_CAP = 10**15

#: assumed per-relation EDB size when no instance is supplied
DEFAULT_EDB_SIZE = 16

#: cost analysis is skipped above this (mirrors OPTIMIZE_RULE_LIMIT:
#: generated mega-programs pay more for the analysis than the run)
COST_RULE_LIMIT = 200


def _sat_mul(a: int, b: int) -> int:
    out = a * b
    return out if out < BOUND_CAP else BOUND_CAP


def _sat_add(a: int, b: int) -> int:
    out = a + b
    return out if out < BOUND_CAP else BOUND_CAP


def _sat_pow(base: int, exp: int) -> int:
    out = 1
    for _ in range(exp):
        out = _sat_mul(out, base)
    return out


def _distinct_vars(atom: Atom) -> int:
    return len({t for t in atom.args if isinstance(t, Variable)})


def _program_constants(program: DatalogProgram) -> set[object]:
    out: set[object] = set()
    for rule in program.rules:
        for atom in (rule.head, *rule.body):
            out |= atom.constants()
    return out


@dataclass(frozen=True)
class CostParameters:
    """The inputs the abstract interpretation runs against.

    ``measured`` parameters come from a concrete instance (exact EDB
    sizes, exact active-domain width); ``assumed`` parameters model
    every EDB relation at :data:`DEFAULT_EDB_SIZE` rows for purely
    static analysis (lint, scheduling) where no instance exists.
    """

    edb_sizes: Mapping[str, int]
    idb_seeds: Mapping[str, int]
    adom: int
    default_edb_size: int
    assumed: bool

    @staticmethod
    def from_instance(
        program: DatalogProgram, instance: "Instance"
    ) -> "CostParameters":
        """Exact parameters for one concrete instance."""
        idb = program.idb_predicates()
        edb_sizes: dict[str, int] = {}
        idb_seeds: dict[str, int] = {}
        for pred in instance.predicates():
            if pred in idb:
                idb_seeds[pred] = instance.size(pred)
            else:
                edb_sizes[pred] = instance.size(pred)
        adom = len(
            set(instance.active_domain()) | _program_constants(program)
        )
        return CostParameters(
            edb_sizes=edb_sizes,
            idb_seeds=idb_seeds,
            adom=max(1, adom),
            default_edb_size=0,
            assumed=False,
        )

    @staticmethod
    def assumed_for(
        program: DatalogProgram, edb_size: int = DEFAULT_EDB_SIZE
    ) -> "CostParameters":
        """Instance-free parameters: every EDB at ``edb_size`` rows.

        The derived active-domain width is itself a sound consequence
        of the assumption: ``edb_size`` facts of arity ``k`` introduce
        at most ``edb_size * k`` values, plus the program's constants.
        """
        adom = len(_program_constants(program))
        sizes: dict[str, int] = {}
        for pred in sorted(program.edb_predicates()):
            arity = program.arity_of(pred)
            sizes[pred] = edb_size
            adom = _sat_add(adom, _sat_mul(edb_size, arity))
        return CostParameters(
            edb_sizes=sizes,
            idb_seeds={},
            adom=max(1, adom),
            default_edb_size=edb_size,
            assumed=True,
        )


@dataclass(frozen=True)
class PredicateBound:
    """A sound worst-case cardinality bound for one predicate."""

    pred: str
    arity: int
    bound: int
    recursive: bool
    basis: str
    rule_indices: tuple[int, ...] = ()

    def as_dict(self) -> dict[str, object]:
        return {
            "pred": self.pred,
            "arity": self.arity,
            "bound": self.bound,
            "recursive": self.recursive,
            "basis": self.basis,
            "rule_indices": list(self.rule_indices),
        }


@dataclass(frozen=True)
class AtomCost:
    """One body atom's contribution in the estimated join order."""

    atom: str
    pred: str
    bound: int
    distinct_vars: int
    bindable: bool
    cartesian: bool
    running: int

    def as_dict(self) -> dict[str, object]:
        return {
            "atom": self.atom,
            "pred": self.pred,
            "bound": self.bound,
            "distinct_vars": self.distinct_vars,
            "bindable": self.bindable,
            "cartesian": self.cartesian,
            "running": self.running,
        }


@dataclass(frozen=True)
class RuleCost:
    """Join cost bound for one rule, with per-atom provenance."""

    rule_index: int
    head: str
    atoms: tuple[AtomCost, ...]
    output_bound: int
    join_cost: int
    dominant: Optional[AtomCost]
    cartesian: bool

    def as_dict(self) -> dict[str, object]:
        return {
            "rule_index": self.rule_index,
            "head": self.head,
            "atoms": [a.as_dict() for a in self.atoms],
            "output_bound": self.output_bound,
            "join_cost": self.join_cost,
            "dominant": (
                self.dominant.as_dict() if self.dominant else None
            ),
            "cartesian": self.cartesian,
        }


@dataclass(frozen=True)
class CostReport:
    """The full result of the abstract interpretation."""

    parameters: CostParameters
    bounds: Mapping[str, PredicateBound]
    rules: tuple[RuleCost, ...]
    total_bound: int
    total_join_cost: int
    peeled_rules: tuple[int, ...] = ()
    unreachable: frozenset[str] = field(default_factory=frozenset)

    def bound_of(self, pred: str) -> Optional[PredicateBound]:
        return self.bounds.get(pred)

    def as_dict(self) -> dict[str, object]:
        return {
            "adom": self.parameters.adom,
            "assumed": self.parameters.assumed,
            "bounds": {
                pred: pb.as_dict() for pred, pb in self.bounds.items()
            },
            "rules": [rc.as_dict() for rc in self.rules],
            "total_bound": self.total_bound,
            "total_join_cost": self.total_join_cost,
            "peeled_rules": list(self.peeled_rules),
            "unreachable": sorted(self.unreachable),
        }

    def render_text(self) -> str:
        mode = "assumed" if self.parameters.assumed else "measured"
        lines = [
            f"cost analysis ({mode} parameters, adom {self.parameters.adom})",
            f"  total predicted facts <= {self.total_bound}",
            f"  total predicted join cost <= {self.total_join_cost}",
        ]
        if self.peeled_rules:
            dropped = ", ".join(str(i) for i in self.peeled_rules)
            lines.append(f"  boundedness peeling dropped rules: {dropped}")
        lines.append("  predicate bounds:")
        for pred in sorted(self.bounds):
            pb = self.bounds[pred]
            kind = "recursive" if pb.recursive else "nonrecursive"
            lines.append(
                f"    {pred}/{pb.arity} <= {pb.bound}  [{kind}; {pb.basis}]"
            )
        for rc in self.rules:
            lines.append(
                f"  rule {rc.rule_index} ({rc.head}): output <= "
                f"{rc.output_bound}, join cost <= {rc.join_cost}"
                + (" [cartesian]" if rc.cartesian else "")
            )
            for ac in rc.atoms:
                marks = []
                if not ac.bindable:
                    marks.append("unbindable")
                if ac.cartesian:
                    marks.append("cartesian")
                note = f"  [{', '.join(marks)}]" if marks else ""
                lines.append(
                    f"      {ac.atom}: <= {ac.bound} rows, running "
                    f"{ac.running}{note}"
                )
        return "\n".join(lines)


def atom_match_bound(
    atom: Atom,
    bound_vars: frozenset[Variable] | set[Variable],
    sizes: Mapping[str, int],
    adom: int,
    default_size: int,
) -> int:
    """Max rows of ``atom`` matching any fixed binding of ``bound_vars``.

    Constants, repeated variables and already-bound variables all
    reduce the number of *distinct free* variables, which caps the
    match set at ``adom**free`` independently of the relation size.
    """
    size = sizes.get(atom.pred, default_size)
    free = len(
        {t for t in atom.args if isinstance(t, Variable)} - set(bound_vars)
    )
    return min(max(size, 0), _sat_pow(adom, free))


def _rule_output_bound(
    rule: Rule, sizes: Mapping[str, int], params: CostParameters
) -> int:
    homs = 1
    for atom in rule.body:
        homs = _sat_mul(
            homs,
            atom_match_bound(
                atom, frozenset(), sizes, params.adom,
                params.default_edb_size,
            ),
        )
    head_vars = _distinct_vars(rule.head)
    return min(homs, _sat_pow(params.adom, head_vars))


def _head_shape_bound(rule: Rule, params: CostParameters) -> int:
    return _sat_pow(params.adom, _distinct_vars(rule.head))


def _peel_vacuous(
    program: DatalogProgram,
    goal: Optional[str],
    dependency: Optional[DependencyGraph],
) -> tuple[DatalogProgram, tuple[int, ...], tuple[int, ...]]:
    """Drop the subsumed recursive rules boundedness peeling proves
    vacuous; returns (peeled program, kept original indices, dropped)."""
    from repro.analysis.semantics import boundedness_report

    report = boundedness_report(program, goal, dependency=dependency)
    dropped = sorted({pair[0] for pair in report.vacuous_rules})
    if not dropped:
        return program, tuple(range(len(program.rules))), ()
    kept = tuple(
        i for i in range(len(program.rules)) if i not in set(dropped)
    )
    peeled = DatalogProgram(program.rules[i] for i in kept)
    return peeled, kept, tuple(dropped)


def _rule_cost(
    original_index: int,
    rule: Rule,
    sizes: Mapping[str, int],
    params: CostParameters,
) -> RuleCost:
    """Greedy connected-first join order with saturating running
    products — mirrors the optimizer's reordering strategy."""
    remaining = list(rule.body)
    bound_vars: set[Variable] = set()
    atom_costs: list[AtomCost] = []
    running = 1
    join_cost = 0
    any_cartesian = False
    var_count: dict[Variable, int] = {}
    for atom in rule.body:
        for v in atom.variables():
            var_count[v] = var_count.get(v, 0) + 1
    while remaining:
        connected = [
            a
            for a in remaining
            if not bound_vars or (a.variables() & bound_vars)
        ]
        pool = connected or remaining
        cartesian_step = bool(bound_vars) and not connected
        best = min(
            pool,
            key=lambda a: (
                atom_match_bound(
                    a, bound_vars, sizes, params.adom,
                    params.default_edb_size,
                ),
                remaining.index(a),
            ),
        )
        bound = atom_match_bound(
            best, bound_vars, sizes, params.adom, params.default_edb_size
        )
        running = _sat_mul(running, bound)
        join_cost = _sat_add(join_cost, running)
        bindable = len(rule.body) == 1 or any(
            var_count[v] > 1 for v in best.variables()
        )
        step_cartesian = cartesian_step and bound > 1 and running > bound
        any_cartesian = any_cartesian or step_cartesian
        atom_costs.append(
            AtomCost(
                atom=repr(best),
                pred=best.pred,
                bound=bound,
                distinct_vars=_distinct_vars(best),
                bindable=bindable,
                cartesian=step_cartesian,
                running=running,
            )
        )
        remaining.remove(best)
        bound_vars |= best.variables()
    output = min(running, _head_shape_bound(rule, params))
    dominant = (
        max(atom_costs, key=lambda ac: ac.bound) if atom_costs else None
    )
    return RuleCost(
        rule_index=original_index,
        head=repr(rule.head),
        atoms=tuple(atom_costs),
        output_bound=output,
        join_cost=join_cost,
        dominant=dominant,
        cartesian=any_cartesian,
    )


def cost_report(
    program: DatalogProgram,
    goal: Optional[str] = None,
    instance: Optional["Instance"] = None,
    parameters: Optional[CostParameters] = None,
    dependency: Optional[DependencyGraph] = None,
    peel: bool = True,
) -> CostReport:
    """Run the abstract interpretation and return every bound.

    With a ``goal``, predicates the goal cannot reach are bound by
    their instance seeds alone (goal-directed evaluation prunes their
    rules).  With an ``instance`` (or explicit ``parameters``) the
    bounds are exact-parameter; otherwise every EDB is assumed to hold
    :data:`DEFAULT_EDB_SIZE` rows.
    """
    if parameters is not None:
        params = parameters
    elif instance is not None:
        params = CostParameters.from_instance(program, instance)
    else:
        params = CostParameters.assumed_for(program)

    peeled_rules: tuple[int, ...] = ()
    kept = tuple(range(len(program.rules)))
    work = program
    if peel and program.rules and len(program.rules) <= COST_RULE_LIMIT:
        work, kept, peeled_rules = _peel_vacuous(program, goal, dependency)
    dep = (
        dependency
        if dependency is not None and not peeled_rules
        else DependencyGraph(work)
    )

    unreachable: frozenset[str] = frozenset()
    if goal is not None and goal in dep.graph:
        unreachable = frozenset(
            dep.idb - dep.reachable_from(goal)
        )

    sizes: dict[str, int] = dict(params.edb_sizes)
    bounds: dict[str, PredicateBound] = {}

    def _arity(pred: str) -> int:
        try:
            return work.arity_of(pred)
        except KeyError:  # pragma: no cover - IDB preds always occur
            return 0

    for scc in dep.sccs:
        for pred in sorted(scc.predicates):
            arity = _arity(pred)
            seed = params.idb_seeds.get(pred, 0)
            cap = _sat_pow(params.adom, arity)
            if pred in unreachable:
                bounds[pred] = PredicateBound(
                    pred, arity, min(seed, cap), scc.recursive,
                    "unreachable from goal: instance seeds only",
                    scc.rule_indices,
                )
                sizes[pred] = bounds[pred].bound
                continue
            pred_rules = [
                (kept[j], work.rules[j])
                for j in scc.rule_indices
                if work.rules[j].head.pred == pred
            ]
            if not scc.recursive:
                total = seed
                for _, rule in pred_rules:
                    total = _sat_add(
                        total, _rule_output_bound(rule, sizes, params)
                    )
                bound = min(total, cap)
                basis = (
                    f"sum of {len(pred_rules)} rule bound(s)"
                    + (f" + {seed} seed fact(s)" if seed else "")
                )
            else:
                shape = seed
                for _, rule in pred_rules:
                    shape = _sat_add(shape, _head_shape_bound(rule, params))
                bound = min(shape, cap)
                basis = f"head shapes capped at adom^{arity} = {cap}"
            bounds[pred] = PredicateBound(
                pred, arity, bound, scc.recursive, basis,
                tuple(index for index, _ in pred_rules),
            )
            sizes[pred] = bound

    rules = tuple(
        _rule_cost(kept[j], rule, sizes, params)
        for j, rule in enumerate(work.rules)
    )
    total_bound = 0
    for pb in bounds.values():
        total_bound = _sat_add(total_bound, pb.bound)
    total_join = 0
    for rc in rules:
        total_join = _sat_add(total_join, rc.join_cost)
    return CostReport(
        parameters=params,
        bounds=bounds,
        rules=rules,
        total_bound=total_bound,
        total_join_cost=total_join,
        peeled_rules=peeled_rules,
        unreachable=unreachable,
    )


def predicate_bounds(
    program: DatalogProgram,
    instance: Optional["Instance"] = None,
    goal: Optional[str] = None,
) -> dict[str, int]:
    """Just the ``pred -> bound`` map (optimizer-facing shortcut)."""
    report = cost_report(program, goal=goal, instance=instance)
    return {pred: pb.bound for pred, pb in report.bounds.items()}


def predicted_join_volume(
    program: DatalogProgram, instance: Optional["Instance"] = None
) -> int:
    """Total predicted intermediate-tuple volume for one fixpoint.

    The scalar the ``auto`` backend thresholds on: the sum of every
    rule's join cost bound under measured (or assumed) parameters.
    Not a certified bound — recursion reuses rule bodies across rounds
    — but monotone in problem size, which is all a backend pick needs.
    """
    if not program.rules or len(program.rules) > COST_RULE_LIMIT:
        return 0
    report = cost_report(program, instance=instance, peel=False)
    return report.total_join_cost


# ----------------------------------------------------------------------
# the --check-cost guard: empirical re-validation of every bound
# ----------------------------------------------------------------------
class CostGuard:
    """Compares measured relation sizes against predicted bounds.

    Installed via :func:`cost_checking`, called by
    :func:`repro.core.evaluation.fixpoint` after every evaluation with
    the *actually executed* program.  Any measured IDB relation larger
    than its predicted bound is an unsound prediction and is recorded
    loudly (and counted into ``EngineStats.cost_violations``).
    """

    def __init__(self, limit: int = COST_RULE_LIMIT) -> None:
        self.limit = limit
        self.checks = 0
        self.predicates = 0
        self.violations: list[dict[str, object]] = []

    def __call__(
        self,
        program: DatalogProgram,
        instance: "Instance",
        result: "Instance",
        stats: object = None,
    ) -> None:
        from repro.core import stats as _stats
        from repro.core.stats import EngineStats

        if not program.rules or len(program.rules) > self.limit:
            return
        with _stats.suspended():
            report = cost_report(program, instance=instance)
        self.checks += 1
        idb = program.idb_predicates()
        checked = 0
        violated = 0
        for pred, pb in report.bounds.items():
            if pred not in idb:
                continue
            checked += 1
            measured = result.size(pred)
            if measured > pb.bound:
                violated += 1
                self.violations.append(
                    {
                        "pred": pred,
                        "measured": measured,
                        "bound": pb.bound,
                        "basis": pb.basis,
                        "recursive": pb.recursive,
                    }
                )
        self.predicates += checked
        collector = (
            stats if isinstance(stats, EngineStats) else _stats.active()
        )
        if collector is not None:
            collector.cost_checks += 1
            collector.cost_bounds_checked += checked
            collector.cost_violations += violated

    def summary(self) -> dict[str, object]:
        return {
            "checks": self.checks,
            "predicates": self.predicates,
            "violations": list(self.violations),
        }


@contextmanager
def cost_checking(limit: int = COST_RULE_LIMIT) -> Iterator[CostGuard]:
    """Install a :class:`CostGuard` for the duration of the block."""
    from repro.core import evaluation

    guard = CostGuard(limit=limit)
    previous = evaluation.set_cost_guard(guard)
    try:
        yield guard
    finally:
        evaluation.set_cost_guard(previous)
