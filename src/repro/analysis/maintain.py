"""Certified static maintainability analysis for materialized views.

An abstract interpretation over the SCC condensation
(:class:`repro.analysis.dependency.DependencyGraph`) that classifies
every stratum for *update* behavior and extends the PR-7 cost model
(:mod:`repro.analysis.cost`) from full-relation bounds to bounds on
|Δ| as a function of the update size, with per-rule provenance.

Per stratum the analysis decides:

* **counting-safe** — the stratum can be maintained with derivation
  counts: it is non-recursive, or it is a single-predicate SCC whose
  recursion is entirely *vacuous* (every same-SCC rule is subsumed per
  :func:`repro.analysis.semantics.boundedness_report`), so dropping
  the recursive rules preserves the fixpoint and the remaining rules
  have bounded derivation multiplicity;
* **DRed-required** — genuinely recursive: deletions need the
  overdelete/rederive protocol (Gupta–Mumick–Subrahmanian);
* **insert-monotone** — no retraction can reach the stratum: neither
  its predicates nor anything they transitively read is retractable
  (by default every EDB predicate and every base-seeded IDB predicate
  is retractable; ``append_only`` narrows the set), so no deletion
  machinery is ever needed;
* **self-maintainable** — deletions are answerable from the view plus
  the delta without re-reading the base (Gupta–Jagadish–Mumick): true
  for counting strata (the stored counts decide survival) and for
  insert-monotone strata (deletions cannot occur).

Delta bounds are sound for *any* round that changes at most ``u`` base
facts against the analyzed parameters:

* an EDB (or base-seeded IDB) predicate changes by at most ``u`` facts;
* a counting stratum's delta telescopes through the signed delta-rule
  expansion Δ(A₁⋈…⋈Aₙ) = Σᵢ old(…)⋈ΔAᵢ⋈new(…): each body atom's delta
  bound times the match bounds of its siblings, where sibling relations
  are measured under parameters inflated by ``u`` (covering both the
  old and the new state), summed over effective rules and capped at
  twice the relation bound;
* a DRed stratum may overdelete its entire old state and rederive its
  entire new state, so |Δ| ≤ old + new ≤ 2× the inflated relation
  bound — loose but sound, which is what admission control and the
  runtime :class:`MaintenanceGuard` need.

All arithmetic saturates at :data:`~repro.analysis.cost.BOUND_CAP`;
saturating *up* keeps every bound sound.  ``evidence run
--check-maintenance`` re-checks the bounds and the strategy claims
against every measured :class:`~repro.ivm.materialized.MaintenanceRound`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Optional

from repro.core.datalog import DatalogProgram
from repro.core.terms import Variable

from repro.analysis.cost import (
    BOUND_CAP,
    COST_RULE_LIMIT,
    CostParameters,
    CostReport,
    _sat_add,
    _sat_mul,
    _sat_pow,
    atom_match_bound,
    cost_report,
)
from repro.analysis.dependency import DependencyGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instance import Instance
    from repro.ivm.materialized import MaintenanceRound, MaterializedView

#: maintainability analysis is skipped above this rule count (mirrors
#: COST_RULE_LIMIT: generated mega-programs pay more for the analysis
#: than any maintenance round could save)
MAINTAIN_RULE_LIMIT = COST_RULE_LIMIT

#: default update size the static report is rendered at (one changed
#: base fact); callers re-derive bounds for larger batches
DEFAULT_UPDATE_SIZE = 1

_COUNTING = "counting"
_DRED = "dred"


@dataclass(frozen=True)
class DeltaBound:
    """A sound bound on |plus| + |minus| for one predicate per round.

    ``bound`` is the per-round delta bound at the report's update
    size; ``relation_bound`` is the full-relation bound under the
    update-inflated parameters (the quantity DRed churn is measured
    against).  ``per_rule`` carries the provenance: each effective
    rule's contribution to the delta, as ``(rule_index, contribution)``
    pairs over *original* program rule indices.
    """

    pred: str
    arity: int
    bound: int
    relation_bound: int
    recursive: bool
    basis: str
    per_rule: tuple[tuple[int, int], ...] = ()

    def as_dict(self) -> dict[str, object]:
        return {
            "pred": self.pred,
            "arity": self.arity,
            "bound": self.bound,
            "relation_bound": self.relation_bound,
            "recursive": self.recursive,
            "basis": self.basis,
            "per_rule": [list(pair) for pair in self.per_rule],
        }


@dataclass(frozen=True)
class StratumPlan:
    """The maintenance classification of one SCC."""

    index: int
    predicates: tuple[str, ...]
    recursive: bool
    strategy: str
    counting_safe: bool
    insert_monotone: bool
    self_maintainable: bool
    basis: str
    rule_indices: tuple[int, ...]
    #: rule indices surviving vacuous-rule peeling — the rules a
    #: counting maintainer actually has to fire
    effective_rule_indices: tuple[int, ...]
    delta_bound: int

    def as_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "predicates": list(self.predicates),
            "recursive": self.recursive,
            "strategy": self.strategy,
            "counting_safe": self.counting_safe,
            "insert_monotone": self.insert_monotone,
            "self_maintainable": self.self_maintainable,
            "basis": self.basis,
            "rule_indices": list(self.rule_indices),
            "effective_rule_indices": list(self.effective_rule_indices),
            "delta_bound": self.delta_bound,
        }


@dataclass(frozen=True)
class MaintainReport:
    """Everything the maintainability analysis derived."""

    parameters: CostParameters
    update_size: int
    strata: tuple[StratumPlan, ...]
    bounds: Mapping[str, DeltaBound]
    retraction_sources: frozenset[str]
    counting_strata: int
    dred_strata: int
    total_delta_bound: int
    cost: Optional[CostReport] = field(default=None, compare=False)

    def plan_of(self, pred: str) -> Optional[StratumPlan]:
        for stratum in self.strata:
            if pred in stratum.predicates:
                return stratum
        return None

    def bound_of(self, pred: str) -> Optional[DeltaBound]:
        return self.bounds.get(pred)

    def strategies(self) -> dict[str, str]:
        """``pred -> "counting" | "dred"`` over every IDB predicate."""
        out: dict[str, str] = {}
        for stratum in self.strata:
            for pred in stratum.predicates:
                out[pred] = stratum.strategy
        return out

    def classification(self) -> dict[str, object]:
        """The instance-independent claims a certificate can carry.

        Strategy, insert-monotonicity and counting-safety depend only
        on the program text (vacuous-rule subsumption is instance-free)
        and the retractable-predicate assumption, so an independent
        checker can re-derive this dict from the program alone.
        """
        strategies = self.strategies()
        return {
            "strategies": {p: strategies[p] for p in sorted(strategies)},
            "insert_monotone": sorted(
                pred
                for stratum in self.strata
                if stratum.insert_monotone
                for pred in stratum.predicates
            ),
            "counting_safe": sorted(
                pred
                for stratum in self.strata
                if stratum.counting_safe
                for pred in stratum.predicates
            ),
        }

    def as_dict(self) -> dict[str, object]:
        return {
            "parameters": {
                "edb_sizes": dict(self.parameters.edb_sizes),
                "idb_seeds": dict(self.parameters.idb_seeds),
                "adom": self.parameters.adom,
                "assumed": self.parameters.assumed,
            },
            "update_size": self.update_size,
            "strata": [stratum.as_dict() for stratum in self.strata],
            "bounds": {
                pred: self.bounds[pred].as_dict()
                for pred in sorted(self.bounds)
            },
            "retraction_sources": sorted(self.retraction_sources),
            "counting_strata": self.counting_strata,
            "dred_strata": self.dred_strata,
            "total_delta_bound": self.total_delta_bound,
        }

    def render_text(self) -> str:
        lines = [
            "maintainability analysis "
            + ("(assumed parameters)" if self.parameters.assumed
               else "(measured parameters)"),
            f"  update size: {self.update_size} base fact(s)/round",
            f"  strata: {self.counting_strata} counting, "
            f"{self.dred_strata} DRed",
            f"  total delta bound: {_fmt(self.total_delta_bound)}",
            "",
        ]
        for stratum in self.strata:
            traits = [stratum.strategy]
            if stratum.insert_monotone:
                traits.append("insert-monotone")
            if stratum.self_maintainable:
                traits.append("self-maintainable")
            lines.append(
                f"  stratum {stratum.index} "
                f"[{', '.join(stratum.predicates)}]: "
                + ", ".join(traits)
            )
            lines.append(f"    {stratum.basis}")
            for pred in stratum.predicates:
                db = self.bounds.get(pred)
                if db is not None:
                    lines.append(
                        f"    |Δ{pred}| <= {_fmt(db.bound)}  ({db.basis})"
                    )
        return "\n".join(lines)


def _fmt(bound: int) -> str:
    return "saturated" if bound >= BOUND_CAP else str(bound)


def _inflated(params: CostParameters, program: DatalogProgram,
              update_size: int) -> CostParameters:
    """Parameters covering every instance within ``update_size`` base
    changes of the analyzed one: each relation gains at most ``u``
    facts and the active domain at most ``u * max_arity`` values."""
    if update_size <= 0:
        return params
    max_arity = 1
    for rule in program.rules:
        for atom in (rule.head, *rule.body):
            max_arity = max(max_arity, len(atom.args))
    return CostParameters(
        edb_sizes={
            pred: _sat_add(size, update_size)
            for pred, size in params.edb_sizes.items()
        },
        idb_seeds={
            pred: _sat_add(size, update_size)
            for pred, size in params.idb_seeds.items()
        },
        adom=_sat_add(params.adom, _sat_mul(update_size, max_arity)),
        default_edb_size=_sat_add(params.default_edb_size, update_size),
        assumed=params.assumed,
    )


def _vacuous_dropped(program: DatalogProgram, goal: Optional[str],
                     dependency: Optional[DependencyGraph]) -> frozenset[int]:
    """Original indices of rules boundedness peeling proves vacuous."""
    from repro.analysis.semantics import boundedness_report

    report = boundedness_report(program, goal, dependency=dependency)
    return frozenset(pair[0] for pair in report.vacuous_rules)


def _retraction_reach(
    program: DatalogProgram,
    dependency: DependencyGraph,
    retractable: frozenset[str],
) -> dict[str, bool]:
    """``pred -> can a retraction reach it`` for every IDB predicate.

    The dependency graph only carries IDB nodes, so EDB reads are
    rediscovered from the rule bodies while walking the SCCs in
    evaluation order (dependencies first).
    """
    reached: dict[str, bool] = {}
    for scc in dependency.sccs:
        hit = any(pred in retractable for pred in scc.predicates)
        if not hit:
            for rule in scc.rules:
                for atom in rule.body:
                    if atom.pred in retractable:
                        hit = True
                    elif atom.pred not in scc.predicates and reached.get(
                        atom.pred, False
                    ):
                        hit = True
        for pred in scc.predicates:
            reached[pred] = hit
    return reached


def maintain_report(
    program: DatalogProgram,
    goal: Optional[str] = None,
    instance: Optional["Instance"] = None,
    parameters: Optional[CostParameters] = None,
    dependency: Optional[DependencyGraph] = None,
    update_size: int = DEFAULT_UPDATE_SIZE,
    append_only: frozenset[str] = frozenset(),
) -> MaintainReport:
    """Run the maintainability analysis and return every claim.

    ``update_size`` is the number of base facts a round may change;
    ``append_only`` names base predicates the caller promises never to
    retract from (they stop counting as retraction sources).  Bound
    parameters resolve exactly as in :func:`repro.analysis.cost.cost_report`.
    """
    if parameters is not None:
        params = parameters
    elif instance is not None:
        params = CostParameters.from_instance(program, instance)
    else:
        params = CostParameters.assumed_for(program)
    u = max(0, update_size)

    dep = dependency if dependency is not None else DependencyGraph(program)
    within_limit = bool(program.rules) and (
        len(program.rules) <= MAINTAIN_RULE_LIMIT
    )
    dropped: frozenset[int] = frozenset()
    if within_limit:
        dropped = _vacuous_dropped(program, goal, dep)

    inflated = _inflated(params, program, u)
    cost = (
        cost_report(program, goal=goal, parameters=inflated, dependency=dep)
        if within_limit
        else None
    )

    def relation_bound(pred: str) -> int:
        if cost is not None:
            pb = cost.bound_of(pred)
            if pb is not None:
                return pb.bound
        return inflated.edb_sizes.get(pred, inflated.default_edb_size)

    # base predicates a round may retract from: every EDB predicate
    # not promised append-only, plus every base-seeded IDB predicate
    # (the view accepts direct base updates to IDB predicates too)
    retractable = (frozenset(dep.edb) - append_only) | frozenset(
        params.idb_seeds
    )
    reached = _retraction_reach(program, dep, retractable)

    sizes: dict[str, int] = {
        pred: relation_bound(pred) for pred in dep.edb
    }
    deltas: dict[str, DeltaBound] = {}
    for pred in sorted(dep.edb):
        deltas[pred] = DeltaBound(
            pred=pred,
            arity=program.arity_of(pred),
            bound=0 if pred in append_only and u == 0 else u,
            relation_bound=sizes[pred],
            recursive=False,
            basis=f"base relation: at most {u} direct change(s)/round",
        )

    strata: list[StratumPlan] = []
    counting_strata = 0
    dred_strata = 0
    for scc in dep.sccs:
        effective = tuple(
            index for index in scc.rule_indices if index not in dropped
        )
        effectively_recursive = any(
            atom.pred in scc.predicates
            for index in effective
            for atom in program.rules[index].body
        )
        if not scc.recursive:
            counting_safe = True
            basis = "non-recursive: bounded derivation multiplicity"
        elif (
            within_limit
            and len(scc.predicates) == 1
            and not effectively_recursive
        ):
            counting_safe = True
            basis = (
                f"recursive but provably bounded: "
                f"{len(scc.rule_indices) - len(effective)} vacuous "
                f"recursive rule(s) subsumed, effective rules are "
                f"non-recursive"
            )
        else:
            counting_safe = False
            basis = (
                "genuine recursion: deletions need overdelete/rederive"
            )
        insert_monotone = not any(
            reached.get(pred, False) for pred in scc.predicates
        )
        strategy = _COUNTING if counting_safe else _DRED
        if strategy == _COUNTING:
            counting_strata += 1
        else:
            dred_strata += 1

        stratum_delta = 0
        for pred in sorted(scc.predicates):
            arity = program.arity_of(pred)
            rel = relation_bound(pred)
            churn_cap = min(
                _sat_mul(2, rel),
                _sat_mul(2, _sat_pow(inflated.adom, arity)),
            )
            # the view accepts direct base updates to IDB predicates
            seed = u
            if counting_safe:
                per_rule: list[tuple[int, int]] = []
                total = seed
                for index in effective:
                    rule = program.rules[index]
                    if rule.head.pred != pred:
                        continue
                    contribution = 0
                    for i, delta_atom in enumerate(rule.body):
                        delta_in = deltas.get(delta_atom.pred)
                        term = delta_in.bound if delta_in is not None else u
                        bound_vars = {
                            t for t in delta_atom.args
                            if isinstance(t, Variable)
                        }
                        for j, atom in enumerate(rule.body):
                            if j == i:
                                continue
                            term = _sat_mul(term, atom_match_bound(
                                atom, bound_vars, sizes, inflated.adom,
                                inflated.default_edb_size,
                            ))
                            bound_vars |= {
                                t for t in atom.args
                                if isinstance(t, Variable)
                            }
                        contribution = _sat_add(contribution, term)
                    per_rule.append((index, contribution))
                    total = _sat_add(total, contribution)
                bound = min(total, churn_cap)
                basis_d = (
                    f"telescoped delta rules over "
                    f"{len(per_rule)} effective rule(s)"
                )
                deltas[pred] = DeltaBound(
                    pred, arity, bound, rel, scc.recursive, basis_d,
                    tuple(per_rule),
                )
            else:
                bound = churn_cap
                basis_d = (
                    "DRed churn: |minus| <= old state, "
                    "|plus| <= new state"
                )
                deltas[pred] = DeltaBound(
                    pred, arity, bound, rel, scc.recursive, basis_d,
                    tuple(
                        (index, _sat_pow(
                            inflated.adom,
                            len({
                                t for t in program.rules[index].head.args
                                if isinstance(t, Variable)
                            }),
                        ))
                        for index in scc.rule_indices
                        if program.rules[index].head.pred == pred
                    ),
                )
            sizes[pred] = rel
            stratum_delta = _sat_add(stratum_delta, bound)

        strata.append(StratumPlan(
            index=scc.index,
            predicates=tuple(sorted(scc.predicates)),
            recursive=scc.recursive,
            strategy=strategy,
            counting_safe=counting_safe,
            insert_monotone=insert_monotone,
            self_maintainable=counting_safe or insert_monotone,
            basis=basis,
            rule_indices=tuple(scc.rule_indices),
            effective_rule_indices=effective,
            delta_bound=stratum_delta,
        ))

    total = 0
    for db in deltas.values():
        total = _sat_add(total, db.bound)
    return MaintainReport(
        parameters=params,
        update_size=u,
        strata=tuple(strata),
        bounds=deltas,
        retraction_sources=frozenset(retractable),
        counting_strata=counting_strata,
        dred_strata=dred_strata,
        total_delta_bound=total,
        cost=cost,
    )


class MaintenanceGuard:
    """Compares measured maintenance rounds against the static claims.

    Installed via :func:`maintenance_checking`, called by
    :meth:`repro.ivm.materialized.MaterializedView.apply` after every
    round with the pre-round base.  Two kinds of unsound prediction
    are recorded loudly:

    * a measured per-predicate delta (|plus| + |minus|) exceeding the
      bound :func:`maintain_report` predicted for the round's update
      size against the pre∪post base (bounds are monotone in relation
      sizes and active-domain width, so the union soundly covers both
      the old and the new state);
    * the view maintaining a stratum with a different strategy than
      the report planned for it.
    """

    def __init__(self, limit: int = MAINTAIN_RULE_LIMIT) -> None:
        self.limit = limit
        self.checks = 0
        self.predicates = 0
        self.strategies: dict[str, int] = {_COUNTING: 0, _DRED: 0}
        self.violations: list[dict[str, object]] = []

    def check_round(
        self,
        view: "MaterializedView",
        round_: "MaintenanceRound",
        update_size: int,
        base_before: Optional["Instance"] = None,
    ) -> None:
        from repro.core import stats as _stats

        program = view.program
        if not program.rules or len(program.rules) > self.limit:
            return
        audit = view.base if base_before is None else base_before | view.base
        with _stats.suspended():
            report = maintain_report(
                program, instance=audit, update_size=update_size
            )
        self.checks += 1
        for pred in sorted(set(round_.plus) | set(round_.minus)):
            measured = len(round_.plus.get(pred, ())) + len(
                round_.minus.get(pred, ())
            )
            db = report.bound_of(pred)
            if db is None:
                continue
            self.predicates += 1
            if measured > db.bound:
                self.violations.append({
                    "kind": "delta",
                    "pred": pred,
                    "measured": measured,
                    "bound": db.bound,
                    "update_size": update_size,
                    "basis": db.basis,
                })
        planned = report.strategies()
        actual = view.maintenance_strategies()
        for pred in sorted(actual):
            strategy = actual[pred]
            if strategy in self.strategies:
                self.strategies[strategy] += 1
            expected = planned.get(pred)
            # the view may maintain a provably counting-safe stratum
            # with DRed (plan disabled / over limit) — that is merely
            # conservative; counting where the analysis demands DRed
            # is the unsound direction
            if expected == _DRED and strategy == _COUNTING:
                self.violations.append({
                    "kind": "strategy",
                    "pred": pred,
                    "planned": expected,
                    "actual": strategy,
                })

    def summary(self) -> dict[str, object]:
        return {
            "checks": self.checks,
            "predicates": self.predicates,
            "strategies": dict(self.strategies),
            "violations": list(self.violations),
        }


_MAINTENANCE_GUARD: Optional[MaintenanceGuard] = None


def set_maintenance_guard(
    guard: Optional[MaintenanceGuard],
) -> Optional[MaintenanceGuard]:
    """Install (or clear) the ambient guard; returns the previous one."""
    global _MAINTENANCE_GUARD
    previous = _MAINTENANCE_GUARD
    _MAINTENANCE_GUARD = guard
    return previous


def active_maintenance_guard() -> Optional[MaintenanceGuard]:
    return _MAINTENANCE_GUARD


@contextmanager
def maintenance_checking(
    limit: int = MAINTAIN_RULE_LIMIT,
) -> Iterator[MaintenanceGuard]:
    """Install a :class:`MaintenanceGuard` for the duration of the block."""
    guard = MaintenanceGuard(limit=limit)
    previous = set_maintenance_guard(guard)
    try:
        yield guard
    finally:
        set_maintenance_guard(previous)
