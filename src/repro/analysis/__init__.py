"""Static analysis of Datalog programs (diagnostics, dependency
structure, fragment classification, dead-rule pruning).

Validates and explains a program *before* a 2ExpTime-grade construction
runs on it: arity/schema consistency, rule safety, goal reachability,
duplicate and subsumed rules, cartesian-product bodies, and fragment
membership (MDL / frontier-guarded / linear / connected) with per-rule
witnesses.  The dependency analysis also feeds the SCC-stratified
fixpoint engine (:func:`repro.core.evaluation.stratified_fixpoint`) and
the ``python -m repro lint`` CLI.
"""

from repro.analysis.analyzer import (
    AnalysisContext,
    AnalysisReport,
    ProgramAnalysisError,
    ProgramAnalyzer,
    analyze_query,
)
from repro.analysis.dependency import (
    SCC,
    DependencyGraph,
    FragmentReport,
    FragmentViolation,
    evaluation_strata,
    fragment_report,
    prune_unreachable,
)
from repro.analysis.cost import (
    AtomCost,
    CostGuard,
    CostParameters,
    CostReport,
    PredicateBound,
    RuleCost,
    atom_match_bound,
    cost_checking,
    cost_report,
    predicate_bounds,
    predicted_join_volume,
)
from repro.analysis.diagnostics import CODES, Diagnostic, Severity, make
from repro.analysis.maintain import (
    DeltaBound,
    MaintainReport,
    MaintenanceGuard,
    StratumPlan,
    maintain_report,
    maintenance_checking,
)
from repro.analysis.fixer import (
    FIXABLE_CODES,
    AppliedFix,
    FixResult,
    fix_source,
)
from repro.analysis.optimize import (
    DEFAULT_PIPELINE,
    PASSES,
    OptimizationResult,
    OptimizationStage,
    RuleProvenance,
    TransformRecord,
    dead_body_atoms,
    inline_candidates,
    join_cost_model,
    magic_opportunities,
    optimize_program,
    optimized_query_program,
    reorder_joins,
    set_join_cost_model,
    syntactic_fixpoint_program,
)
from repro.analysis.sarif import sarif_report
from repro.analysis.semantics import (
    BoundednessReport,
    Capability,
    RuleWitness,
    SemanticReport,
    SortReport,
    binding_patterns,
    boundedness_report,
    capability_facts,
    nonrecursive_to_ucq,
    semantic_report,
    sort_report,
)

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "ProgramAnalysisError",
    "ProgramAnalyzer",
    "analyze_query",
    "SCC",
    "DependencyGraph",
    "FragmentReport",
    "FragmentViolation",
    "evaluation_strata",
    "fragment_report",
    "prune_unreachable",
    "AtomCost",
    "CostGuard",
    "CostParameters",
    "CostReport",
    "PredicateBound",
    "RuleCost",
    "atom_match_bound",
    "cost_checking",
    "cost_report",
    "predicate_bounds",
    "predicted_join_volume",
    "CODES",
    "Diagnostic",
    "Severity",
    "make",
    "DeltaBound",
    "MaintainReport",
    "MaintenanceGuard",
    "StratumPlan",
    "maintain_report",
    "maintenance_checking",
    "FIXABLE_CODES",
    "AppliedFix",
    "FixResult",
    "fix_source",
    "DEFAULT_PIPELINE",
    "PASSES",
    "OptimizationResult",
    "OptimizationStage",
    "RuleProvenance",
    "TransformRecord",
    "dead_body_atoms",
    "inline_candidates",
    "join_cost_model",
    "set_join_cost_model",
    "magic_opportunities",
    "optimize_program",
    "optimized_query_program",
    "reorder_joins",
    "sarif_report",
    "syntactic_fixpoint_program",
    "BoundednessReport",
    "Capability",
    "RuleWitness",
    "SemanticReport",
    "SortReport",
    "binding_patterns",
    "boundedness_report",
    "capability_facts",
    "nonrecursive_to_ucq",
    "semantic_report",
    "sort_report",
]
