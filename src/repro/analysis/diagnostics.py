"""The diagnostic vocabulary of the static analyzer.

A :class:`Diagnostic` is one finding about a program: a stable *code*
(``E...`` error, ``W...`` warning, ``I...`` info), a severity, a
human-readable message, and — when the program came from source text —
a :class:`~repro.core.parser.Span` locating the offending rule or atom.

The code registry (:data:`CODES`) is the contract between the analyzer,
the ``repro lint`` CLI, and the test-suite waivers: codes are append-only
and never change meaning.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.parser import Span


class Severity(enum.IntEnum):
    """Diagnostic severity; higher values are more severe."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


#: Registry of all diagnostic codes: ``code -> (severity, title)``.
CODES: dict[str, tuple[Severity, str]] = {
    "E001": (Severity.ERROR, "inconsistent predicate arity"),
    "E002": (Severity.ERROR, "unsafe rule"),
    "E003": (Severity.ERROR, "undefined goal predicate"),
    "E004": (Severity.ERROR, "syntax error"),
    "E005": (Severity.ERROR, "empty program"),
    "W101": (Severity.WARNING, "duplicate rule"),
    "W102": (Severity.WARNING, "subsumed rule"),
    "W103": (Severity.WARNING, "constant in rule head"),
    "W104": (Severity.WARNING, "cartesian product in rule body"),
    "W105": (Severity.WARNING, "rule unreachable from the goal"),
    "W106": (Severity.WARNING, "predicate defined but never used"),
    "W108": (Severity.WARNING, "view name shadows a program predicate"),
    "W109": (Severity.WARNING, "sort conflict"),
    "W110": (Severity.WARNING, "vacuously recursive rule"),
    "W111": (Severity.WARNING, "dead body atom"),
    "W112": (Severity.WARNING, "cartesian/exponential join blowup risk"),
    "W113": (Severity.WARNING, "recursion with super-linear bound"),
    "W114": (
        Severity.WARNING,
        "predicate bound dominated by an unbindable atom",
    ),
    "W115": (Severity.WARNING, "retraction amplification risk"),
    "W116": (
        Severity.WARNING,
        "DRed on a stratum provably counting-safe",
    ),
    "W117": (Severity.WARNING, "unbounded delta growth"),
    "W118": (Severity.WARNING, "exchange-heavy sharded stratum"),
    "W119": (Severity.WARNING, "sequential bottleneck under sharding"),
    "I201": (Severity.INFO, "fragment classification"),
    "I202": (Severity.INFO, "fragment explanation"),
    "I203": (Severity.INFO, "recursion structure"),
    "I204": (Severity.INFO, "binding patterns"),
    "I205": (Severity.INFO, "boundedness"),
    "I206": (Severity.INFO, "schema sorts"),
    "I207": (Severity.INFO, "magic sets applicable"),
    "I208": (Severity.INFO, "inlinable single-use predicate"),
    "I209": (Severity.INFO, "cost summary"),
    "I210": (Severity.INFO, "maintenance plan"),
    "I211": (Severity.INFO, "self-maintainable stratum"),
    "I212": (Severity.INFO, "delta bound summary"),
    "I213": (Severity.INFO, "shard plan summary"),
    "I214": (Severity.INFO, "communication-free stratum"),
    "I215": (Severity.INFO, "predicted exchange volume"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``span`` locates the finding in the source text.  For diagnostics
    about *synthesized* rules (optimizer output: magic rules, inlined
    rules, ...) there is no source position; ``derived_from`` instead
    points at the source rule the synthesized rule descends from, so a
    finding never carries a dangling ``(0, 0)`` position.
    """

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    rule_index: Optional[int] = None
    derived_from: Optional[Span] = None

    def sort_key(self) -> tuple[Any, ...]:
        """Source order first, then severity (errors before warnings)."""
        if self.span is not None:
            position = (0, self.span.line, self.span.col)
        else:
            position = (1, 0, 0)
        return (*position, -int(self.severity), self.code)

    def render(self, path: Optional[str] = None) -> str:
        """``file:line:col: CODE message`` (path and span optional)."""
        where = path or "<input>"
        if self.span is not None:
            where = f"{where}:{self.span.label()}"
        line = f"{where}: {self.code} [{self.severity.label}] {self.message}"
        if self.span is None and self.derived_from is not None:
            line += f" (derived from rule at {self.derived_from.label()})"
        return line

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.span is not None:
            out["span"] = self.span.as_dict()
        if self.rule_index is not None:
            out["rule"] = self.rule_index
        if self.derived_from is not None:
            out["derived_from"] = self.derived_from.as_dict()
        return out


def make(
    code: str,
    message: str,
    span: Optional[Span] = None,
    rule_index: Optional[int] = None,
    derived_from: Optional[Span] = None,
) -> Diagnostic:
    """Build a diagnostic, taking the severity from the registry."""
    severity, _title = CODES[code]
    return Diagnostic(code, severity, message, span, rule_index, derived_from)
