"""Auto-fixes for safely removable diagnostics (``repro lint --fix``).

Only diagnostics whose fix is a pure *deletion* that provably preserves
the query answer are fixable:

* ``W101`` (duplicate rule) — the later copy of two rules identical up
  to a variable renaming contributes nothing; drop it.
* ``W106`` (predicate defined but never used) — a non-goal IDB that no
  rule body reads can never influence the goal relation; drop all of
  its defining rules.

The fixer works on the *source text*, not the AST: each removed rule is
deleted at its parsed :class:`~repro.core.parser.Span`, so comments,
layout and the spans of every surviving rule are untouched.  Removal can
cascade (dropping the rules of an unused predicate may orphan another
predicate), so the analyze→delete loop runs until no fixable diagnostic
remains — which is what makes ``--fix`` idempotent: a second run parses
the fixed text, finds no ``W101``/``W106``, and returns it unchanged.

Programs with errors (``E...``) are never modified: a fix computed from
a partially-parsed or unsafe program could delete the wrong region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.parser import ProgramSource, Span, parse_program_source

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.datalog import Rule
    from repro.views.view import ViewSet

#: Diagnostic codes ``--fix`` knows how to repair, all by rule deletion.
FIXABLE_CODES: frozenset[str] = frozenset({"W101", "W106"})

# Guard against a pathological analyze→delete loop; each iteration
# removes at least one rule, so a program of n rules converges in <= n
# passes and this bound is never reached in practice.
_MAX_PASSES = 1000


@dataclass(frozen=True)
class AppliedFix:
    """One deletion performed by the fixer."""

    code: str
    rule_index: int
    rule_text: str
    reason: str
    span: Optional[Span] = None

    def render(self) -> str:
        where = f" at {self.span.label()}" if self.span is not None else ""
        return f"{self.code}{where}: removed {self.rule_text!r} ({self.reason})"

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "code": self.code,
            "rule_index": self.rule_index,
            "rule_text": self.rule_text,
            "reason": self.reason,
        }
        if self.span is not None:
            out["span"] = self.span.as_dict()
        return out


@dataclass(frozen=True)
class FixResult:
    """The outcome of :func:`fix_source`."""

    text: str
    fixes: tuple[AppliedFix, ...]
    passes: int

    @property
    def changed(self) -> bool:
        return bool(self.fixes)


def _line_offsets(text: str) -> list[int]:
    """Absolute offset of the start of each (1-based) line."""
    offsets = [0]
    for line in text.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _span_range(text: str, offsets: list[int], span: Span) -> tuple[int, int]:
    """The half-open character range ``[start, end)`` covered by ``span``."""
    start = offsets[span.line - 1] + (span.col - 1)
    end = offsets[span.end_line - 1] + span.end_col  # end_col is inclusive
    return start, min(end, len(text))


def _delete_spans(text: str, spans: list[Span]) -> str:
    """Delete each span from ``text``, dropping lines left blank by it."""
    offsets = _line_offsets(text)
    ranges = sorted(
        (_span_range(text, offsets, span) for span in spans), reverse=True
    )
    for start, end in ranges:
        # widen to whole lines when only whitespace surrounds the span,
        # so deleting a rule removes its now-blank line too
        line_start = text.rfind("\n", 0, start) + 1
        line_end = text.find("\n", end)
        line_end = len(text) if line_end == -1 else line_end + 1
        if (
            text[line_start:start].strip() == ""
            and text[end:line_end].strip() in ("", "\n")
        ):
            start, end = line_start, line_end
        text = text[:start] + text[end:]
    return text


def _fixable_rule_indices(
    report: "AnalysisReport", program_rules: "tuple[Rule, ...]"
) -> dict[int, AppliedFix]:
    """Map rule index -> the fix that removes it, for this round."""
    removals: dict[int, AppliedFix] = {}
    for diagnostic in report.diagnostics:
        if diagnostic.code not in FIXABLE_CODES:
            continue
        if diagnostic.rule_index is None:
            continue
        if diagnostic.code == "W101":
            index = diagnostic.rule_index
            removals.setdefault(
                index,
                AppliedFix(
                    "W101",
                    index,
                    repr(program_rules[index]),
                    "exact duplicate of an earlier rule",
                ),
            )
        else:  # W106: drop every rule defining the unused predicate
            pred = program_rules[diagnostic.rule_index].head.pred
            for index, rule in enumerate(program_rules):
                if rule.head.pred == pred:
                    removals.setdefault(
                        index,
                        AppliedFix(
                            "W106",
                            index,
                            repr(rule),
                            f"predicate {pred} is never used",
                        ),
                    )
    return removals


def fix_source(
    text: str,
    goal: Optional[str] = None,
    views: Optional["ViewSet"] = None,
) -> FixResult:
    """Apply all safe deletions to ``text`` until none remain.

    Returns the (possibly unchanged) text together with every fix
    applied, in the order they were performed.  ``goal`` and ``views``
    mirror the ``lint`` arguments so the fixer sees exactly the
    diagnostics ``lint`` reports — in particular a goal keeps its
    (transitive) support out of ``W106``'s reach.
    """
    from repro.analysis.analyzer import analyze_query

    applied: list[AppliedFix] = []
    passes = 0
    while passes < _MAX_PASSES:
        source: ProgramSource = parse_program_source(text)
        program = source.program()
        report = analyze_query(program, views=views, source=source, goal=goal)
        if report.has_errors():
            break  # never rewrite a program the analyzer rejects
        removals = _fixable_rule_indices(report, program.rules)
        if not removals:
            break
        passes += 1
        entries = tuple(
            entry for entry in source.entries if entry.rule is not None
        )
        if len(entries) != len(program.rules):  # pragma: no cover - defensive
            break
        spans: list[Span] = []
        for index in sorted(removals):
            fix = removals[index]
            span = entries[index].span
            spans.append(span)
            applied.append(
                AppliedFix(
                    fix.code, fix.rule_index, fix.rule_text, fix.reason, span
                )
            )
        text = _delete_spans(text, spans)
    return FixResult(text, tuple(applied), passes)


if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.analyzer import AnalysisReport
