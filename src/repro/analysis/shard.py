"""Certified static shardability analysis for parallel fixpoints.

An abstract interpretation over the SCC condensation
(:class:`repro.analysis.dependency.DependencyGraph`) that plans a
hash-partitioned parallel evaluation: for every stratum it propagates
join-variable co-occurrence through the rule bodies to find candidate
partition keys, and classifies the stratum as

* **communication-free** — every rule has a *pivot* variable occurring
  in the head and in every body atom, and one key position per
  predicate can be chosen consistently across the stratum's rules so
  that each rule's pivot sits at the chosen position of the head *and*
  of every body atom.  Hash-partitioning every relation on its key
  position then makes each worker's local fixpoint self-contained:
  all body facts that can join to derive a head fact hash to the same
  worker the head fact belongs on, so workers never exchange tuples
  (the classic co-hashing argument for parallel Datalog);
* **exchange-required** — no such assignment exists (or a rule has no
  pivot at all): the semi-naive deltas must be re-shuffled between
  rounds.  The exchange volume is estimated from the PR-7
  :class:`~repro.analysis.cost.CostReport` bounds: every derived fact
  may have to travel to the other ``workers - 1`` workers;
* **sequential** — parallelism cannot help or is unsound to localize:
  a rule with a variable-free head (0-ary heads, constant-only heads)
  funnels everything into one fact, an empty or cartesian body
  (:func:`~repro.analysis.dependency.rule_body_components` finds more
  than one variable-sharing component) joins unrelated partitions, so
  the stratum runs on the parent process as today.

The key search is a small backtracking CSP.  Candidate positions for a
predicate are the intersection, over every occurrence of the predicate
in the stratum's rules, of the positions where some pivot variable of
that rule occurs; the backtracking assignment is verified rule by rule
and capped at :data:`_CSP_STEP_LIMIT` steps.  Failure is always safe:
an unplanned stratum degrades to ``exchange_required``, never to an
unsound communication-free claim.  ``evidence run --check-sharding``
installs a :class:`ShardGuard` that audits the claim at runtime: in a
communication-free stratum no worker may ever hold a fact whose key
hashes to a different worker.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional

from repro.core.datalog import DatalogProgram, Rule
from repro.core.terms import Variable

from repro.analysis.cost import (
    BOUND_CAP,
    COST_RULE_LIMIT,
    CostParameters,
    CostReport,
    _sat_add,
    _sat_mul,
    cost_report,
)
from repro.analysis.dependency import DependencyGraph, rule_body_components

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instance import Instance

#: shardability analysis is skipped above this rule count (mirrors
#: COST_RULE_LIMIT: a mega-program's plan costs more than it saves)
SHARD_RULE_LIMIT = COST_RULE_LIMIT

#: workers the report is rendered for when the caller does not say
DEFAULT_SHARD_WORKERS = 4

#: backtracking budget of the key-assignment search; blown budget
#: degrades the stratum to exchange_required (safe, never unsound)
_CSP_STEP_LIMIT = 10_000

COMMUNICATION_FREE = "communication_free"
EXCHANGE_REQUIRED = "exchange_required"
SEQUENTIAL = "sequential"


def shard_key(value: object) -> int:
    """Deterministic, process-independent hash of one key value.

    Python's builtin ``hash`` is salted per process, so two
    ``multiprocessing`` workers would disagree on where a tuple lives;
    CRC-32 over the value's ``repr`` is stable across processes and
    runs, which is what the plan, the executor and the
    :class:`ShardGuard` all need to agree on.
    """
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


def shard_of(value: object, shards: int) -> int:
    """The worker index (``0 <= i < shards``) owning ``value``."""
    return shard_key(value) % shards if shards > 0 else 0


@dataclass(frozen=True)
class ShardStratumPlan:
    """The shardability classification of one SCC.

    ``keys`` maps every predicate occurring in the stratum's rules
    (including EDBs and earlier-stratum IDBs read by the bodies) to
    the argument position relations are hash-partitioned on; it is
    non-empty exactly for communication-free strata.  ``exchange_bound``
    is the worst-case number of row transfers between rounds for
    exchange-required strata (0 otherwise), saturating at
    :data:`~repro.analysis.cost.BOUND_CAP`.
    """

    index: int
    predicates: tuple[str, ...]
    recursive: bool
    classification: str
    keys: Mapping[str, int]
    basis: str
    rule_indices: tuple[int, ...]
    exchange_bound: int

    def as_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "predicates": list(self.predicates),
            "recursive": self.recursive,
            "classification": self.classification,
            "keys": dict(self.keys),
            "basis": self.basis,
            "rule_indices": list(self.rule_indices),
            "exchange_bound": self.exchange_bound,
        }


@dataclass(frozen=True)
class ShardReport:
    """Everything the shardability analysis derived."""

    parameters: CostParameters
    workers: int
    strata: tuple[ShardStratumPlan, ...]
    communication_free: int
    exchange_required: int
    sequential: int
    total_exchange_bound: int
    cost: Optional[CostReport] = field(default=None, compare=False)

    def plan_of(self, pred: str) -> Optional[ShardStratumPlan]:
        for stratum in self.strata:
            if pred in stratum.predicates:
                return stratum
        return None

    def classification(self) -> dict[str, str]:
        """``pred -> classification`` over every IDB predicate."""
        out: dict[str, str] = {}
        for stratum in self.strata:
            for pred in stratum.predicates:
                out[pred] = stratum.classification
        return out

    def as_dict(self) -> dict[str, object]:
        return {
            "workers": self.workers,
            "assumed_parameters": self.parameters.assumed,
            "adom": self.parameters.adom,
            "strata": [stratum.as_dict() for stratum in self.strata],
            "communication_free": self.communication_free,
            "exchange_required": self.exchange_required,
            "sequential": self.sequential,
            "total_exchange_bound": _fmt_json(self.total_exchange_bound),
        }

    def render_text(self) -> str:
        lines = [
            f"shardability plan for {self.workers} worker(s) "
            f"({'assumed' if self.parameters.assumed else 'measured'} "
            f"parameters, adom {self.parameters.adom}):"
        ]
        for stratum in self.strata:
            preds = ", ".join(stratum.predicates)
            lines.append(
                f"  stratum {stratum.index} "
                f"[{preds}]{' (recursive)' if stratum.recursive else ''}: "
                f"{stratum.classification}"
            )
            if stratum.keys:
                keys = ", ".join(
                    f"{pred}[{pos}]"
                    for pred, pos in sorted(stratum.keys.items())
                )
                lines.append(f"    partition keys: {keys}")
            if stratum.classification == EXCHANGE_REQUIRED:
                lines.append(
                    f"    exchange bound: {_fmt(stratum.exchange_bound)} "
                    f"row transfer(s) per round"
                )
            lines.append(f"    basis: {stratum.basis}")
        lines.append(
            f"summary: {self.communication_free} communication-free, "
            f"{self.exchange_required} exchange-required, "
            f"{self.sequential} sequential stratum(a); total exchange "
            f"bound {_fmt(self.total_exchange_bound)}"
        )
        return "\n".join(lines)


def _fmt(bound: int) -> str:
    return "saturated" if bound >= BOUND_CAP else str(bound)


def _fmt_json(bound: int) -> object:
    return "saturated" if bound >= BOUND_CAP else bound


def _rule_pivots(rule: Rule) -> frozenset[Variable]:
    """Variables occurring in the head *and* in every body atom."""
    if not rule.body:
        return frozenset()
    pivots = {t for t in rule.head.args if isinstance(t, Variable)}
    for atom in rule.body:
        pivots &= atom.variables()
        if not pivots:
            break
    return frozenset(pivots)


def _sequential_reason(rule: Rule) -> Optional[str]:
    """Why ``rule`` forces its stratum onto one process, or None."""
    if not any(isinstance(t, Variable) for t in rule.head.args):
        return "variable-free head funnels every derivation into one fact"
    if not rule.body:
        return "empty body derives unconditionally on every shard"
    if len(rule_body_components(rule)) > 1:
        return "cartesian body joins unrelated partitions"
    return None


def _candidate_positions(
    rules: Iterable[Rule],
) -> Optional[dict[str, frozenset[int]]]:
    """Per-predicate candidate key positions from pivot co-occurrence.

    For every occurrence of a predicate (head or body) in some rule,
    the positions where one of that rule's pivot variables sits; the
    candidate set is the intersection over all occurrences.  ``None``
    (or any empty per-predicate set) means no consistent assignment
    can exist and the caller classifies exchange_required.
    """
    candidates: dict[str, frozenset[int]] = {}
    for rule in rules:
        pivots = _rule_pivots(rule)
        if not pivots:
            return None
        for atom in (rule.head, *rule.body):
            here = frozenset(
                i for i, t in enumerate(atom.args) if t in pivots
            )
            if atom.pred in candidates:
                candidates[atom.pred] &= here
            else:
                candidates[atom.pred] = here
            if not candidates[atom.pred]:
                return None
    return candidates


def _rule_admits(rule: Rule, keys: Mapping[str, int]) -> bool:
    """Does some pivot sit at the chosen key position everywhere?"""
    head_key = keys.get(rule.head.pred)
    if head_key is None or head_key >= len(rule.head.args):
        return False
    pivot = rule.head.args[head_key]
    if not isinstance(pivot, Variable):
        return False
    for atom in rule.body:
        key = keys.get(atom.pred)
        if key is None or key >= len(atom.args):
            return False
        if atom.args[key] != pivot:
            return False
    return True


def _solve_keys(rules: tuple[Rule, ...]) -> Optional[dict[str, int]]:
    """Backtracking search for a consistent key-position assignment."""
    candidates = _candidate_positions(rules)
    if candidates is None:
        return None
    preds = sorted(candidates, key=lambda p: (len(candidates[p]), p))
    steps = 0

    def consistent(keys: dict[str, int]) -> bool:
        # only rules whose every predicate is already assigned can be
        # checked; unassigned ones are re-checked deeper in the search
        for rule in rules:
            involved = {rule.head.pred, *rule.body_predicates()}
            if involved <= keys.keys() and not _rule_admits(rule, keys):
                return False
        return True

    def search(position: int, keys: dict[str, int]) -> Optional[dict[str, int]]:
        nonlocal steps
        if position == len(preds):
            return dict(keys)
        pred = preds[position]
        for key in sorted(candidates[pred]):
            steps += 1
            if steps > _CSP_STEP_LIMIT:
                return None
            keys[pred] = key
            if consistent(keys):
                found = search(position + 1, keys)
                if found is not None:
                    return found
            del keys[pred]
        return None

    return search(0, {})


def shard_report(
    program: DatalogProgram,
    goal: Optional[str] = None,
    instance: Optional["Instance"] = None,
    parameters: Optional[CostParameters] = None,
    dependency: Optional[DependencyGraph] = None,
    workers: int = DEFAULT_SHARD_WORKERS,
) -> ShardReport:
    """Plan a hash-partitioned parallel evaluation of ``program``.

    ``parameters`` (or ``instance``, measured) feed the PR-7 cost model
    the exchange-volume estimates come from; without either the
    assumed defaults are used.  ``workers`` only scales the exchange
    bounds — the classifications are worker-count independent.
    """
    workers = max(1, workers)
    if parameters is not None:
        params = parameters
    elif instance is not None:
        params = CostParameters.from_instance(program, instance)
    else:
        params = CostParameters.assumed_for(program)
    dep = dependency if dependency is not None else DependencyGraph(program)
    within_limit = bool(program.rules) and (
        len(program.rules) <= SHARD_RULE_LIMIT
    )
    cost: Optional[CostReport] = None
    if within_limit:
        cost = cost_report(
            program, goal=goal, parameters=params, dependency=dep
        )

    strata: list[ShardStratumPlan] = []
    comm_free = exchange = sequential = 0
    total_exchange = 0
    for scc in dep.sccs:
        rules = tuple(program.rules[i] for i in scc.rule_indices)
        classification = COMMUNICATION_FREE
        keys: dict[str, int] = {}
        basis = ""
        exchange_bound = 0

        reasons = [
            (index, _sequential_reason(program.rules[index]))
            for index in scc.rule_indices
        ]
        blocking = [(i, r) for i, r in reasons if r is not None]
        if blocking:
            classification = SEQUENTIAL
            index, reason = blocking[0]
            basis = f"rule {index}: {reason}"
        elif not within_limit:
            classification = EXCHANGE_REQUIRED
            basis = (
                f"program exceeds SHARD_RULE_LIMIT "
                f"({len(program.rules)} > {SHARD_RULE_LIMIT}); "
                f"key search skipped"
            )
            exchange_bound = BOUND_CAP
        else:
            solved = _solve_keys(rules)
            if solved is not None:
                keys = solved
                basis = (
                    f"pivot co-occurrence admits a consistent key for "
                    f"all {len(keys)} predicate(s) across "
                    f"{len(rules)} rule(s)"
                )
            else:
                classification = EXCHANGE_REQUIRED
                basis = (
                    "no common pivot position survives every rule; "
                    "deltas re-shuffled between semi-naive rounds"
                )
                for pred in sorted(scc.predicates):
                    bound = (
                        cost.bound_of(pred) if cost is not None else None
                    )
                    per_pred = bound.bound if bound is not None else BOUND_CAP
                    exchange_bound = _sat_add(
                        exchange_bound,
                        _sat_mul(per_pred, workers - 1),
                    )

        if classification == COMMUNICATION_FREE:
            comm_free += 1
        elif classification == EXCHANGE_REQUIRED:
            exchange += 1
        else:
            sequential += 1
        total_exchange = _sat_add(total_exchange, exchange_bound)
        strata.append(ShardStratumPlan(
            index=scc.index,
            predicates=tuple(sorted(scc.predicates)),
            recursive=scc.recursive,
            classification=classification,
            keys=keys,
            basis=basis,
            rule_indices=tuple(scc.rule_indices),
            exchange_bound=exchange_bound,
        ))

    return ShardReport(
        parameters=params,
        workers=workers,
        strata=tuple(strata),
        communication_free=comm_free,
        exchange_required=exchange,
        sequential=sequential,
        total_exchange_bound=total_exchange,
        cost=cost,
    )


class ShardGuard:
    """Audits sharded runs for conformance with the static plan.

    Installed via :func:`sharding_checking`, fed by the sharded
    executor after every stratum with what each worker derived.  The
    one unsound direction is recorded loudly: a worker holding a fact
    of a communication-free stratum whose partition key hashes to a
    *different* worker — the analysis claimed that can never happen.
    """

    def __init__(self, limit: int = SHARD_RULE_LIMIT) -> None:
        self.limit = limit
        self.checks = 0
        self.strata = 0
        self.facts = 0
        self.violations: list[dict[str, object]] = []

    def check_stratum(
        self,
        plan: ShardStratumPlan,
        shards: int,
        per_worker: Mapping[int, Iterable[tuple[str, tuple[object, ...]]]],
    ) -> None:
        """Verify no tuple crossed a shard boundary in ``plan``."""
        self.checks += 1
        if plan.classification != COMMUNICATION_FREE:
            return
        self.strata += 1
        for worker, facts in per_worker.items():
            for pred, args in facts:
                key = plan.keys.get(pred)
                if key is None or key >= len(args):
                    continue
                self.facts += 1
                owner = shard_of(args[key], shards)
                if owner != worker:
                    self.violations.append({
                        "kind": "boundary",
                        "stratum": plan.index,
                        "pred": pred,
                        "fact": repr(args),
                        "worker": worker,
                        "owner": owner,
                    })

    def summary(self) -> dict[str, object]:
        return {
            "checks": self.checks,
            "strata": self.strata,
            "facts": self.facts,
            "violations": list(self.violations),
        }


_SHARD_GUARD: Optional[ShardGuard] = None


def set_shard_guard(guard: Optional[ShardGuard]) -> Optional[ShardGuard]:
    """Install (or clear) the ambient guard; returns the previous one."""
    global _SHARD_GUARD
    previous = _SHARD_GUARD
    _SHARD_GUARD = guard
    return previous


def active_shard_guard() -> Optional[ShardGuard]:
    return _SHARD_GUARD


@contextmanager
def sharding_checking(
    limit: int = SHARD_RULE_LIMIT,
) -> Iterator[ShardGuard]:
    """Install a :class:`ShardGuard` for the duration of the block."""
    guard = ShardGuard(limit=limit)
    previous = set_shard_guard(guard)
    try:
        yield guard
    finally:
        set_shard_guard(previous)
