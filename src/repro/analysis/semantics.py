"""Semantic static analysis: typed capability facts with witnesses.

Where :mod:`repro.analysis.dependency` classifies a program into the
paper's fragments with *violations* (why a test fails), this module
produces the full semantic picture the decision procedures dispatch on
(Tables 1–2 assign verdicts per fragment cell):

* :func:`capability_facts` — one typed :class:`Capability` per fragment
  property (monadic / frontier-guarded / linear / connected), each
  carrying per-rule *witnesses* when it holds (the guard atom, the unary
  head, the single recursive call) and counter-rules when it fails.
* :func:`binding_patterns` — adornment analysis from the goal:
  the magic-sets style bound/free patterns each IDB predicate is called
  with under left-to-right sideways information passing.
* :func:`boundedness_report` — boundedness detection on the SCC
  condensation: a nonrecursive program is trivially bounded, and
  *vacuously* recursive rules (subsumed by another rule, hence
  droppable without changing the query) are peeled off until the
  recursion either disappears — in which case the program is bounded
  and :func:`nonrecursive_to_ucq` materialises the equivalent UCQ —
  or is genuine.
* :func:`sort_report` — sort inference against the schema: columns
  ``(predicate, position)`` connected by shared variables form one
  sort; a sort observing constants of different kinds (int vs. str) is
  a likely modelling bug.

:func:`semantic_report` bundles all four; the analyzer surfaces them as
``I204``–``I206`` / ``W109``–``W110`` diagnostics under
``repro lint --semantic``, and :mod:`repro.determinacy.checker` uses
:func:`boundedness_report` to dispatch bounded Datalog queries to the
UCQ decision route instead of ad-hoc ``isinstance`` checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Callable, Optional, Sequence

from repro.analysis.dependency import (
    DependencyGraph,
    FragmentReport,
    FragmentViolation,
    fragment_report,
)
from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogProgram
from repro.core.optimize import rule_subsumes
from repro.core.parser import Span
from repro.core.terms import Variable
from repro.core.ucq import UCQ

SpanLookup = Callable[[int], Optional[Span]]


# ---------------------------------------------------------------------------
# capability facts
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RuleWitness:
    """Per-rule evidence for (or against) a capability."""

    rule_index: int
    detail: str
    span: Optional[Span] = None

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "rule": self.rule_index,
            "detail": self.detail,
        }
        if self.span is not None:
            out["span"] = self.span.as_dict()
        return out


@dataclass(frozen=True)
class Capability:
    """One typed fact about the program, with per-rule evidence.

    ``witnesses`` list the rules that *satisfy* the property and how;
    ``violations`` list the counter-rules that break it.  Exactly one
    side is decisive (``holds`` iff ``violations`` is empty), but both
    are kept: a certificate consumer replays the witnesses, a lint user
    reads the violations.
    """

    name: str
    holds: bool
    witnesses: tuple[RuleWitness, ...] = ()
    violations: tuple[RuleWitness, ...] = ()

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "holds": self.holds,
            "witnesses": [w.as_dict() for w in self.witnesses],
            "violations": [v.as_dict() for v in self.violations],
        }


def _no_span(_index: int) -> Optional[Span]:
    return None


def capability_facts(
    program: DatalogProgram,
    dependency: Optional[DependencyGraph] = None,
    fragment: Optional[FragmentReport] = None,
    span_of: Optional[SpanLookup] = None,
) -> tuple[Capability, ...]:
    """The fragment properties as typed facts with per-rule witnesses."""
    dependency = dependency or DependencyGraph(program)
    fragment = fragment or fragment_report(program, dependency)
    span_of = span_of or _no_span
    edb = dependency.edb
    recursive_preds = dependency.recursive_predicates()

    def witness(index: int, detail: str) -> RuleWitness:
        return RuleWitness(index, detail, span_of(index))

    monadic_wit, guard_wit, linear_wit, connected_wit = [], [], [], []
    linear_violations = []
    for index, rule in enumerate(program.rules):
        if rule.head.arity <= 1:
            monadic_wit.append(witness(
                index,
                f"head {rule.head.pred}/{rule.head.arity} is unary",
            ))
        frontier = rule.frontier()
        if not frontier:
            guard_wit.append(witness(index, "empty frontier needs no guard"))
        else:
            guard = next(
                (
                    position
                    for position, atom in enumerate(rule.body)
                    if atom.pred in edb and frontier <= atom.variables()
                ),
                None,
            )
            if guard is not None:
                named = ", ".join(sorted(v.name for v in frontier))
                guard_wit.append(witness(
                    index,
                    f"body atom #{guard} {rule.body[guard]!r} guards the "
                    f"frontier {{{named}}}",
                ))
        scc_preds = (
            dependency.scc_of(rule.head.pred).predicates
            if rule.head.pred in recursive_preds
            else frozenset()
        )
        recursive_atoms = [
            (position, atom)
            for position, atom in enumerate(rule.body)
            if atom.pred in scc_preds
        ]
        if rule.head.pred in recursive_preds:
            if len(recursive_atoms) <= 1:
                shape = (
                    f"one recursive call {recursive_atoms[0][1]!r}"
                    if recursive_atoms
                    else "no same-SCC call (exit rule)"
                )
                linear_wit.append(witness(index, shape))
            else:
                calls = ", ".join(repr(a) for _, a in recursive_atoms)
                linear_violations.append(witness(
                    index,
                    f"rule #{index} makes {len(recursive_atoms)} same-SCC "
                    f"calls ({calls})",
                ))
        from repro.analysis.dependency import rule_body_components

        if len(rule_body_components(rule)) <= 1:
            connected_wit.append(witness(index, "body is one component"))

    def lift(
        violations: "Sequence[FragmentViolation]",
    ) -> tuple[RuleWitness, ...]:
        return tuple(
            RuleWitness(v.rule_index, v.reason, span_of(v.rule_index))
            for v in violations
        )

    return (
        Capability(
            "monadic",
            fragment.monadic,
            tuple(monadic_wit),
            lift(fragment.monadic_violations),
        ),
        Capability(
            "frontier-guarded",
            fragment.frontier_guarded,
            tuple(guard_wit),
            # paper convention: MDL counts as FG, so violations only
            # matter (and are only reported) when the program is not MDL
            () if fragment.monadic else lift(fragment.guard_violations),
        ),
        Capability(
            "linear",
            fragment.linear,
            tuple(linear_wit),
            tuple(linear_violations),
        ),
        Capability(
            "connected",
            fragment.connected,
            tuple(connected_wit),
            lift(fragment.connectivity_violations),
        ),
    )


# ---------------------------------------------------------------------------
# binding patterns (adornments)
# ---------------------------------------------------------------------------
def binding_patterns(
    program: DatalogProgram,
    goal: Optional[str],
    dependency: Optional[DependencyGraph] = None,
) -> dict[str, tuple[str, ...]]:
    """Adornments each IDB is called with, starting from an all-free goal.

    Magic-sets style: processing each rule body left to right, an IDB
    argument is *bound* (``b``) when it is a constant or a variable
    already bound by the head's bound positions or an earlier body
    atom, else *free* (``f``).  The result maps each reachable IDB to
    the sorted set of adornment strings it is invoked with.
    """
    dependency = dependency or DependencyGraph(program)
    idb = dependency.idb
    if goal is None or goal not in idb:
        return {}
    seen: dict[str, set[str]] = {}
    start = "f" * program.arity_of(goal)
    seen[goal] = {start}
    work = [(goal, start)]
    while work:
        pred, adornment = work.pop()
        for rule in program.rules_for(pred):
            bound: set[Variable] = {
                arg
                for arg, mark in zip(rule.head.args, adornment)
                if mark == "b" and isinstance(arg, Variable)
            }
            for atom in rule.body:
                if atom.pred in idb:
                    pattern = "".join(
                        "f"
                        if isinstance(term, Variable) and term not in bound
                        else "b"
                        for term in atom.args
                    )
                    if pattern not in seen.setdefault(atom.pred, set()):
                        seen[atom.pred].add(pattern)
                        work.append((atom.pred, pattern))
                bound |= atom.variables()
    return {pred: tuple(sorted(pats)) for pred, pats in sorted(seen.items())}


# ---------------------------------------------------------------------------
# boundedness on the SCC condensation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BoundednessReport:
    """Whether the program is (detectably) bounded, and the evidence.

    ``vacuous_rules`` are ``(dropped, subsuming)`` pairs of original
    rule indices: each dropped rule is subsumed by the subsuming one
    (sound per :func:`repro.core.optimize.rule_subsumes`), so removal
    preserves the query; ``ucq`` is the equivalent UCQ of the goal when
    the surviving program is nonrecursive and small enough to unfold.
    """

    bounded: bool
    reason: str
    vacuous_rules: tuple[tuple[int, int], ...] = ()
    ucq: Optional[UCQ] = None

    def as_dict(self) -> dict[str, object]:
        return {
            "bounded": self.bounded,
            "reason": self.reason,
            "vacuous_rules": [list(pair) for pair in self.vacuous_rules],
            "ucq_disjuncts": (
                len(self.ucq.disjuncts) if self.ucq is not None else None
            ),
        }


def _recursive_rule_indices(dependency: DependencyGraph) -> set[int]:
    """Indices of rules making at least one same-SCC body call."""
    out = set()
    for scc in dependency.sccs:
        if not scc.recursive:
            continue
        for index, rule in zip(scc.rule_indices, scc.rules):
            if any(atom.pred in scc.predicates for atom in rule.body):
                out.add(index)
    return out


def boundedness_report(
    program: DatalogProgram,
    goal: Optional[str] = None,
    dependency: Optional[DependencyGraph] = None,
    limit: int = 64,
) -> BoundednessReport:
    """Detect boundedness by peeling vacuously recursive rules.

    A recursive rule subsumed by another surviving rule derives nothing
    its subsumer does not; dropping it is an equivalence.  Iterating
    until no recursive rule is droppable either eliminates recursion —
    the program is bounded, and with a ``goal`` the equivalent UCQ is
    unfolded (up to ``limit`` disjuncts) — or leaves genuine recursion,
    for which this sound-but-incomplete test reports unbounded.
    """
    dependency = dependency or DependencyGraph(program)
    original = list(range(len(program.rules)))
    current = program
    dep = dependency
    vacuous: list[tuple[int, int]] = []
    while True:
        recursive = _recursive_rule_indices(dep)
        if not recursive:
            break
        rules = current.rules
        dropped: set[int] = set()
        for index in sorted(recursive):
            for other in range(len(rules)):
                if other == index or other in dropped:
                    continue
                if not rule_subsumes(rules[other], rules[index]):
                    continue
                # mutual subsumption: keep the earlier rule
                if other > index and rule_subsumes(rules[index], rules[other]):
                    continue
                vacuous.append((original[index], original[other]))
                dropped.add(index)
                break
        if not dropped:
            preds = ", ".join(sorted(
                {rules[i].head.pred for i in recursive}
            ))
            return BoundednessReport(
                False,
                f"genuine recursion through {preds} "
                "(no recursive rule is subsumed)",
                tuple(vacuous),
            )
        original = [i for pos, i in enumerate(original) if pos not in dropped]
        current = DatalogProgram(
            rule for pos, rule in enumerate(rules) if pos not in dropped
        )
        dep = DependencyGraph(current)
    if vacuous:
        reason = (
            f"nonrecursive after dropping {len(vacuous)} vacuously "
            "recursive rule(s)"
        )
    else:
        reason = "program is nonrecursive"
    ucq = (
        nonrecursive_to_ucq(current, goal, limit=limit)
        if goal is not None
        else None
    )
    return BoundednessReport(True, reason, tuple(vacuous), ucq)


def _rename_expansion(
    head: Atom, body: tuple[Atom, ...], fresh: "count[int]"
) -> tuple[Atom, tuple[Atom, ...]]:
    variables = head.variables().union(*(a.variables() for a in body)) \
        if body else head.variables()
    mapping = {v: Variable(f"_u{next(fresh)}") for v in variables}
    return (
        head.substitute(mapping),
        tuple(a.substitute(mapping) for a in body),
    )


def nonrecursive_to_ucq(
    program: DatalogProgram, goal: str, limit: int = 64
) -> Optional[UCQ]:
    """Unfold a nonrecursive program into the goal's equivalent UCQ.

    Dependencies-first over the SCC condensation, each IDB body atom is
    replaced by every (renamed-apart) expansion of its predicate.
    Returns ``None`` — rather than an approximation — when the program
    is recursive, the goal is not an IDB, a rule head uses constants or
    repeated variables in a way simple unification cannot thread, a
    disjunct would be atom-free, or the unfolding exceeds ``limit``
    disjuncts.
    """
    dependency = DependencyGraph(program)
    if goal not in dependency.idb:
        return None
    if any(scc.recursive for scc in dependency.sccs):
        return None
    fresh = count()
    expansions: dict[str, list[tuple[Atom, tuple[Atom, ...]]]] = {}
    for scc in dependency.sccs:  # evaluation order: dependencies first
        outs: list[tuple[Atom, tuple[Atom, ...]]] = []
        for rule in scc.rules:
            if rule.head.constants():
                return None
            bodies: Optional[list[tuple[Atom, ...]]] = [()]
            for atom in rule.body:
                if atom.pred not in dependency.idb:
                    bodies = [body + (atom,) for body in bodies]
                    continue
                subs = expansions.get(atom.pred)
                if not subs:
                    # an IDB with no derivations: this rule fires never
                    bodies = None
                    break
                grown: list[tuple[Atom, ...]] = []
                for body in bodies:
                    for sub_head, sub_body in subs:
                        renamed_head, renamed_body = _rename_expansion(
                            sub_head, sub_body, fresh
                        )
                        mapping: dict[Variable, object] = {}
                        ok = True
                        for h_arg, c_arg in zip(
                            renamed_head.args, atom.args
                        ):
                            assert isinstance(h_arg, Variable)
                            if mapping.get(h_arg, c_arg) != c_arg:
                                ok = False
                                break
                            mapping[h_arg] = c_arg
                        if not ok:
                            return None
                        grown.append(body + tuple(
                            a.substitute(mapping) for a in renamed_body
                        ))
                        if len(grown) > limit:
                            return None
                bodies = grown
            if bodies is None:
                continue
            for body in bodies:
                outs.append((rule.head, body))
            if len(outs) > limit:
                return None
        if outs:
            for pred in scc.predicates:
                expansions[pred] = [
                    e for e in outs if e[0].pred == pred
                ] or expansions.get(pred, [])
    goal_expansions = expansions.get(goal)
    if not goal_expansions:
        return None
    disjuncts = []
    for head, body in goal_expansions:
        if not body:
            return None
        head_vars = tuple(head.args)
        disjuncts.append(ConjunctiveQuery(
            head_vars,  # type: ignore[arg-type]  # heads checked var-only
            body,
            f"{goal}_{len(disjuncts)}",
        ))
    return UCQ(tuple(disjuncts), name=goal)


# ---------------------------------------------------------------------------
# sort inference
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SortClass:
    """One inferred sort: columns linked by shared variables."""

    columns: tuple[tuple[str, int], ...]
    kinds: tuple[str, ...]
    samples: tuple[str, ...]

    @property
    def conflicting(self) -> bool:
        return len(self.kinds) > 1

    def describe(self) -> str:
        cols = ", ".join(f"{pred}[{pos}]" for pred, pos in self.columns)
        if not self.kinds:
            return f"{{{cols}}}"
        seen = ", ".join(
            f"{kind} (e.g. {sample})"
            for kind, sample in zip(self.kinds, self.samples)
        )
        return f"{{{cols}}} carrying {seen}"

    def as_dict(self) -> dict[str, object]:
        return {
            "columns": [list(col) for col in self.columns],
            "kinds": list(self.kinds),
            "samples": list(self.samples),
            "conflicting": self.conflicting,
        }


@dataclass(frozen=True)
class SortReport:
    """Sort classes over all predicate columns, plus the conflicts."""

    classes: tuple[SortClass, ...]

    def conflicts(self) -> tuple[SortClass, ...]:
        return tuple(c for c in self.classes if c.conflicting)

    def as_dict(self) -> dict[str, object]:
        return {"classes": [c.as_dict() for c in self.classes]}


def _constant_kind(term: object) -> str:
    if isinstance(term, bool):
        return "bool"
    if isinstance(term, int):
        return "int"
    if isinstance(term, str):
        return "str"
    return type(term).__name__


def sort_report(program: DatalogProgram) -> SortReport:
    """Union-find sorts over ``(predicate, position)`` columns.

    Within one rule, columns touched by the same variable share a sort;
    constants stamp their kind onto the column's sort.  A sort carrying
    more than one constant kind is flagged as conflicting (W109).
    """
    parent: dict[tuple[str, int], tuple[str, int]] = {}

    def find(col: tuple[str, int]) -> tuple[str, int]:
        parent.setdefault(col, col)
        root = col
        while parent[root] != root:
            root = parent[root]
        while parent[col] != root:
            parent[col], col = root, parent[col]
        return root

    def union(left: tuple[str, int], right: tuple[str, int]) -> None:
        left_root, right_root = find(left), find(right)
        if left_root != right_root:
            parent[max(left_root, right_root)] = min(left_root, right_root)

    constants: dict[tuple[str, int], dict[str, str]] = {}
    for rule in program.rules:
        var_col: dict[Variable, tuple[str, int]] = {}
        for atom in (rule.head, *rule.body):
            for position, term in enumerate(atom.args):
                column = (atom.pred, position)
                find(column)
                if isinstance(term, Variable):
                    anchor = var_col.setdefault(term, column)
                    union(anchor, column)
                else:
                    constants.setdefault(column, {}).setdefault(
                        _constant_kind(term), repr(term)
                    )

    grouped: dict[tuple[str, int], list[tuple[str, int]]] = {}
    for column in parent:
        grouped.setdefault(find(column), []).append(column)
    classes = []
    for _root, columns in sorted(grouped.items()):
        kinds: dict[str, str] = {}
        for column in columns:
            for kind, sample in constants.get(column, {}).items():
                kinds.setdefault(kind, sample)
        ordered = tuple(sorted(kinds))
        classes.append(SortClass(
            tuple(sorted(columns)),
            ordered,
            tuple(kinds[kind] for kind in ordered),
        ))
    return SortReport(tuple(classes))


# ---------------------------------------------------------------------------
# the bundled report
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SemanticReport:
    """Everything the semantic pipeline derived about one program."""

    capabilities: tuple[Capability, ...]
    adornments: dict[str, tuple[str, ...]]
    boundedness: BoundednessReport
    sorts: SortReport

    def capability(self, name: str) -> Capability:
        for cap in self.capabilities:
            if cap.name == name:
                return cap
        raise KeyError(name)

    def as_dict(self) -> dict[str, object]:
        return {
            "capabilities": [c.as_dict() for c in self.capabilities],
            "adornments": {
                pred: list(pats) for pred, pats in self.adornments.items()
            },
            "boundedness": self.boundedness.as_dict(),
            "sorts": self.sorts.as_dict(),
        }


def semantic_report(
    program: DatalogProgram,
    goal: Optional[str] = None,
    dependency: Optional[DependencyGraph] = None,
    fragment: Optional[FragmentReport] = None,
    span_of: Optional[SpanLookup] = None,
) -> SemanticReport:
    """Run the full semantic pipeline over ``program``."""
    dependency = dependency or DependencyGraph(program)
    fragment = fragment or fragment_report(program, dependency)
    return SemanticReport(
        capabilities=capability_facts(program, dependency, fragment, span_of),
        adornments=binding_patterns(program, goal, dependency),
        boundedness=boundedness_report(program, goal, dependency),
        sorts=sort_report(program),
    )
