"""The built-in analysis passes.

Each pass is a plain function ``(AnalysisContext) -> Iterable[Diagnostic]``;
:class:`~repro.analysis.analyzer.ProgramAnalyzer` runs every registered
pass and merges the findings.  Passes never mutate the program.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional

from repro.analysis.dependency import rule_body_components
from repro.analysis.diagnostics import Diagnostic, make
from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import Rule
from repro.core.optimize import rule_subsumes
from repro.core.parser import Span
from repro.core.terms import Variable
from repro.core.ucq import UCQ

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.analyzer import AnalysisContext


def _view_atoms(definition: Any) -> Iterator[Atom]:
    """Every atom of a view definition (CQ, UCQ or Datalog)."""
    if isinstance(definition, ConjunctiveQuery):
        yield from definition.atoms
    elif isinstance(definition, UCQ):
        for disjunct in definition.disjuncts:
            yield from disjunct.atoms
    else:
        for rule in definition.program.rules:
            yield rule.head
            yield from rule.body


def check_safety(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """E002 — rules whose head variables do not all occur in the body.

    Safe rules are enforced by :class:`~repro.core.datalog.Rule` itself,
    so violations can only come from lenient source parsing
    (:func:`~repro.core.parser.parse_program_source`).
    """
    if ctx.source is None:
        return
    for entry in ctx.source.entries:
        if entry.rule is None:
            yield make("E002", entry.error or "unsafe rule", entry.head_span)


def check_empty(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """E005 — a program with no (safe) rules cannot derive anything."""
    if not ctx.program.rules:
        yield make("E005", "program contains no rules")


def check_goal(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """E003 — the goal must be an IDB (the head of some rule)."""
    if ctx.goal is None:
        return
    if ctx.goal not in ctx.dependency.idb:
        known = ", ".join(sorted(ctx.dependency.idb)) or "none"
        yield make(
            "E003",
            f"goal predicate {ctx.goal} is not the head of any rule "
            f"(IDBs: {known})",
        )


def check_arity_consistency(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """E001 — every predicate must be used with one arity everywhere.

    Covers rule heads, rule bodies, and (when views are supplied) the
    base-schema atoms of every view definition, so a query/view pair
    that disagrees on a shared base relation is flagged before any
    decision procedure runs.
    """
    seen: dict[str, tuple[int, Optional[Span], str]] = {}

    def visit(
        atom: Atom, span: Optional[Span], where: str
    ) -> Iterator[Diagnostic]:
        first = seen.get(atom.pred)
        if first is None:
            seen[atom.pred] = (atom.arity, span, where)
        elif first[0] != atom.arity:
            origin = f"first used with arity {first[0]} ({first[2]}"
            if first[1] is not None:
                origin += f" at {first[1].label()}"
            origin += ")"
            yield make(
                "E001",
                f"{atom.pred} used with arity {atom.arity} in {where}, "
                f"{origin}",
                span,
            )

    for index, rule in enumerate(ctx.program.rules):
        yield from visit(
            rule.head, ctx.head_span(index), f"head of rule #{index}"
        )
        for position, atom in enumerate(rule.body):
            yield from visit(
                atom,
                ctx.atom_span(index, position),
                f"body of rule #{index}",
            )
    if ctx.views is not None:
        for view in ctx.views:
            for atom in _view_atoms(view.definition):
                yield from visit(atom, None, f"definition of view {view.name}")


def check_duplicate_rules(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W101 — rules identical up to a renaming of variables."""

    def canonical(rule: Rule) -> tuple[Any, ...]:
        renaming: dict[Variable, str] = {}

        def key(atom: Atom) -> tuple[Any, ...]:
            parts = []
            for term in atom.args:
                if isinstance(term, Variable):
                    name = renaming.setdefault(term, f"_{len(renaming)}")
                    parts.append(("var", name))
                else:
                    parts.append(("const", term))
            return (atom.pred, tuple(parts))

        return (key(rule.head), tuple(key(a) for a in rule.body))

    first_of: dict[tuple, int] = {}
    for index, rule in enumerate(ctx.program.rules):
        shape = canonical(rule)
        original = first_of.setdefault(shape, index)
        if original != index:
            yield make(
                "W101",
                f"rule #{index} duplicates rule #{original} "
                f"({ctx.program.rules[original]!r})",
                ctx.rule_span(index),
                rule_index=index,
            )


def check_subsumed_rules(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W102 — rules made redundant by a more general rule.

    Uses the sound syntactic subsumption of
    :func:`repro.core.optimize.rule_subsumes` (IDB body atoms treated as
    opaque), so a flagged rule can be dropped without changing the
    query on any instance.
    """
    rules = ctx.program.rules
    for index, rule in enumerate(rules):
        for other_index, other in enumerate(rules):
            if other_index == index:
                continue
            if not rule_subsumes(other, rule):
                continue
            # mutual subsumption: keep the earlier rule, flag the later
            if other_index > index and rule_subsumes(rule, other):
                continue
            yield make(
                "W102",
                f"rule #{index} is subsumed by rule #{other_index} "
                f"({other!r})",
                ctx.rule_span(index),
                rule_index=index,
            )
            break


def check_constant_in_head(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W103 — non-fact rules whose head contains a constant.

    Ground facts (empty body) are normal data; a *derivation* rule with
    a constant head position usually indicates a typo (an upper-case
    variable name becomes a constant in the text syntax).
    """
    for index, rule in enumerate(ctx.program.rules):
        if not rule.body:
            continue
        constants = sorted(map(repr, rule.head.constants()))
        if constants:
            yield make(
                "W103",
                f"head of rule #{index} contains constant(s) "
                f"{', '.join(constants)}",
                ctx.head_span(index),
                rule_index=index,
            )


def check_cartesian_body(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W104 — rule bodies that join variable-disjoint parts.

    Such a body is a cartesian product: the engine enumerates the full
    cross product of the parts' matches each time the rule fires.  Only
    flagged when at least two parts bind variables (nullary markers are
    harmless).
    """
    for index, rule in enumerate(ctx.program.rules):
        components = rule_body_components(rule)
        meaningful = [
            comp
            for comp in components
            if any(rule.body[i].variables() for i in comp)
        ]
        if len(meaningful) > 1:
            shaped = " / ".join(
                "{" + ", ".join(repr(rule.body[i]) for i in comp) + "}"
                for comp in meaningful
            )
            yield make(
                "W104",
                f"body of rule #{index} is a cartesian product of "
                f"{shaped}",
                ctx.rule_span(index),
                rule_index=index,
            )


def check_unreachable_rules(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W105 — rules the goal does not depend on (dead under the goal)."""
    if ctx.goal is None or ctx.goal not in ctx.dependency.idb:
        return
    for index in ctx.dependency.unreachable_rule_indices(ctx.goal):
        rule = ctx.program.rules[index]
        yield make(
            "W105",
            f"rule #{index} for {rule.head.pred} is unreachable from "
            f"goal {ctx.goal} and never contributes to the answer",
            ctx.rule_span(index),
            rule_index=index,
        )


def check_unused_predicates(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W106 — IDBs that are defined but never read (and are not the goal)."""
    unused = ctx.dependency.unused_predicates(ctx.goal)
    for pred in sorted(unused):
        index = next(
            i
            for i, rule in enumerate(ctx.program.rules)
            if rule.head.pred == pred
        )
        yield make(
            "W106",
            f"predicate {pred} is defined (rule #{index}) but never "
            "used in any rule body",
            ctx.head_span(index),
            rule_index=index,
        )


def check_view_shadowing(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W108 — a view whose name collides with a query IDB."""
    if ctx.views is None:
        return
    for view in ctx.views:
        if view.name in ctx.dependency.idb:
            yield make(
                "W108",
                f"view {view.name} shadows an IDB predicate of the "
                "query program",
            )


def check_fragment(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I201/I202/I203 — fragment label, witnesses, recursion structure."""
    report = ctx.fragment
    shape = []
    if report.recursive:
        shape.append("linear" if report.linear else "nonlinear")
    if not report.connected:
        shape.append("disconnected bodies")
    suffix = f" ({', '.join(shape)})" if shape else ""
    yield make("I201", f"program fragment: {report.label}{suffix}")
    for reason in report.explanations():
        yield make("I202", reason)
    recursive_sccs = [s for s in ctx.dependency.sccs if s.recursive]
    if recursive_sccs:
        described = "; ".join(
            "{%s}%s" % (
                ", ".join(sorted(s.predicates)),
                "" if s.linear else " (nonlinear)",
            )
            for s in recursive_sccs
        )
        yield make(
            "I203",
            f"{len(recursive_sccs)} recursive SCC(s): {described}",
        )


def check_binding_patterns(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I204 — the adornments each IDB is called with from the goal."""
    if ctx.semantics is None:
        return
    for pred, patterns in ctx.semantics.adornments.items():
        yield make(
            "I204",
            f"{pred} is called with binding pattern(s) "
            f"{', '.join(patterns)}",
        )


def check_boundedness(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I205/W110 — boundedness verdict and vacuous recursive rules."""
    if ctx.semantics is None:
        return
    report = ctx.semantics.boundedness
    for dropped, subsuming in report.vacuous_rules:
        yield make(
            "W110",
            f"recursive rule #{dropped} is subsumed by rule "
            f"#{subsuming} ({ctx.program.rules[subsuming]!r}) and can "
            "be dropped without changing the query",
            ctx.rule_span(dropped),
            rule_index=dropped,
        )
    if report.bounded and ctx.fragment.recursive:
        suffix = (
            f"; equivalent to a UCQ with {len(report.ucq.disjuncts)} "
            "disjunct(s)"
            if report.ucq is not None
            else ""
        )
        yield make("I205", f"program is bounded: {report.reason}{suffix}")


def check_sorts(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I206/W109 — inferred column sorts and kind conflicts."""
    if ctx.semantics is None:
        return
    report = ctx.semantics.sorts
    for sort in report.conflicts():
        yield make(
            "W109",
            f"columns of one sort carry mixed constant kinds: "
            f"{sort.describe()}",
        )
    if report.classes:
        yield make(
            "I206",
            f"{len(report.classes)} column sort(s) inferred"
            + (
                f", {len(report.conflicts())} conflicting"
                if report.conflicts()
                else ""
            ),
        )


def check_magic_applicable(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I207 — recursive IDBs the magic-sets transformation would restrict.

    Fires when the goal reaches a recursive predicate with at least one
    bound argument under left-to-right sideways information passing —
    exactly the opportunity ``repro optimize`` (pass ``magic_sets``)
    exploits.
    """
    if ctx.semantics is None or ctx.goal is None:
        return
    if ctx.goal not in ctx.dependency.idb:
        return
    from repro.analysis.optimize import magic_opportunities

    opportunities = magic_opportunities(
        ctx.program, ctx.goal, ctx.dependency, ctx.semantics.adornments
    )
    for pred in sorted(opportunities):
        patterns = ", ".join(opportunities[pred])
        yield make(
            "I207",
            f"recursive predicate {pred} is called with bound "
            f"pattern(s) {patterns}; magic-sets transformation "
            "applicable (repro optimize)",
        )


def check_inlinable(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I208 — non-recursive single-use predicates worth inlining."""
    if ctx.semantics is None:
        return
    from repro.analysis.optimize import inline_candidates

    for pred in inline_candidates(ctx.program, ctx.goal, ctx.dependency):
        index = next(
            i
            for i, rule in enumerate(ctx.program.rules)
            if rule.head.pred == pred
        )
        yield make(
            "I208",
            f"predicate {pred} is non-recursive and used by exactly "
            "one body atom; inlining applicable (repro optimize)",
            ctx.head_span(index),
            rule_index=index,
        )


def check_dead_body_atoms(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W111 — body atoms removable without changing the rule's output."""
    if ctx.semantics is None:
        return
    from repro.analysis.optimize import dead_body_atoms

    for rule_index, atom_index, atom in dead_body_atoms(ctx.program):
        yield make(
            "W111",
            f"body atom {atom!r} of rule #{rule_index} is redundant: "
            "dropping it derives exactly the same facts",
            ctx.atom_span(rule_index, atom_index),
            rule_index=rule_index,
        )


def _cost_anchor(
    ctx: "AnalysisContext", rule_indices: tuple[int, ...]
) -> Optional[Span]:
    """The first anchorable source span among ``rule_indices``."""
    for index in rule_indices:
        span = ctx.rule_span(index)
        if span is not None:
            return span
    return None


def check_cost_summary(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I209 — one-line summary of the static cost analysis."""
    if ctx.cost is None:
        return
    report = ctx.cost
    mode = "assumed" if report.parameters.assumed else "measured"
    yield make(
        "I209",
        f"predicted <= {report.total_bound} fact(s) across "
        f"{len(report.bounds)} IDB predicate(s), total join cost <= "
        f"{report.total_join_cost} ({mode} parameters, adom "
        f"{report.parameters.adom}); `repro analyze cost` prints the "
        "full table",
    )


def check_cost_blowup(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W112 — joins forced through a large cartesian step.

    Sharper than W104 (which flags every variable-disjoint body): this
    fires only when the cost model predicts the cross product actually
    blows up past the active-domain width, and quantifies the risk.
    """
    if ctx.cost is None:
        return
    adom = ctx.cost.parameters.adom
    for rc in ctx.cost.rules:
        if rc.cartesian and rc.join_cost > adom:
            yield make(
                "W112",
                f"rule #{rc.rule_index} joins variable-disjoint parts: "
                f"up to {rc.join_cost} intermediate tuple(s) for an "
                f"output bound of {rc.output_bound}",
                ctx.rule_span(rc.rule_index),
                rule_index=rc.rule_index,
            )


def check_cost_recursion(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W113 — recursive predicates whose bound is super-linear in adom."""
    if ctx.cost is None:
        return
    adom = ctx.cost.parameters.adom
    for pred in sorted(ctx.cost.bounds):
        pb = ctx.cost.bounds[pred]
        if pb.recursive and pb.bound > adom:
            yield make(
                "W113",
                f"recursive predicate {pred}/{pb.arity} can grow to "
                f"{pb.bound} fact(s) ({pb.basis}); goal binding or "
                "magic sets (repro optimize) restrict the demand",
                _cost_anchor(ctx, pb.rule_indices),
            )


def check_cost_unbindable(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W114 — rules whose cost is pinned by a join-order-immune atom.

    The dominant atom shares no variable with the rest of the body, so
    no join order can use earlier bindings to shrink its scan — the
    predicted bound is structural, not a planning artifact.
    """
    if ctx.cost is None:
        return
    for rc in ctx.cost.rules:
        dom = rc.dominant
        if (
            dom is not None
            and not dom.bindable
            and len(rc.atoms) > 1
            and dom.bound > 1
        ):
            yield make(
                "W114",
                f"rule #{rc.rule_index} is dominated by {dom.atom} "
                f"(<= {dom.bound} row(s)), which shares no variable "
                "with the rest of the body and cannot be shrunk by "
                "any join order",
                ctx.rule_span(rc.rule_index),
                rule_index=rc.rule_index,
            )


def check_maintain_summary(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I210 — the maintenance plan in one line."""
    if ctx.maintain is None:
        return
    report = ctx.maintain
    yield make(
        "I210",
        f"maintenance plan: {report.counting_strata} counting / "
        f"{report.dred_strata} DRed stratum(era) over "
        f"{len(report.strata)} SCC(s); `repro analyze maintain` "
        "prints the full classification",
    )


def check_maintain_self(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I211 — strata maintainable without touching the base.

    Reported only where it is news: insert-monotone strata (no
    retraction can reach them) and recursive strata the analysis
    proves counting-safe; plain non-recursive counting strata are
    self-maintainable by construction and stay quiet.
    """
    if ctx.maintain is None:
        return
    for stratum in ctx.maintain.strata:
        if not stratum.self_maintainable:
            continue
        if not (stratum.insert_monotone
                or (stratum.recursive and stratum.counting_safe)):
            continue
        traits = []
        if stratum.insert_monotone:
            traits.append("insert-monotone: no retraction reaches it")
        if stratum.recursive and stratum.counting_safe:
            traits.append("recursive but counting-safe")
        yield make(
            "I211",
            f"stratum [{', '.join(stratum.predicates)}] is "
            f"self-maintainable ({'; '.join(traits)})",
            _cost_anchor(ctx, stratum.rule_indices),
        )


def check_maintain_delta(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I212 — the predicted update impact at unit update size."""
    if ctx.maintain is None:
        return
    report = ctx.maintain
    from repro.analysis.cost import BOUND_CAP

    total = report.total_delta_bound
    rendered = "saturated" if total >= BOUND_CAP else str(total)
    yield make(
        "I212",
        f"predicted |delta| <= {rendered} fact(s) per "
        f"{report.update_size}-fact update across "
        f"{len(report.bounds)} predicate(s)",
    )


def check_maintain_amplification(
    ctx: "AnalysisContext",
) -> Iterable[Diagnostic]:
    """W115 — retractions can cascade super-linearly.

    Fires on DRed strata a retraction can actually reach whose
    relation bound exceeds the active-domain width: one deleted base
    fact may overdelete (and force rederiving) up to the whole
    relation.
    """
    if ctx.maintain is None:
        return
    adom = ctx.maintain.parameters.adom
    for stratum in ctx.maintain.strata:
        if stratum.strategy != "dred" or stratum.insert_monotone:
            continue
        risky: dict[str, int] = {}
        for pred in stratum.predicates:
            bound = ctx.maintain.bound_of(pred)
            if bound is not None and bound.relation_bound > adom:
                risky[pred] = bound.bound
        if risky:
            yield make(
                "W115",
                f"retraction amplification risk in stratum "
                f"[{', '.join(stratum.predicates)}]: deleting one base "
                f"fact may churn up to {max(risky.values())} fact(s) "
                f"of {', '.join(sorted(risky))} through "
                "overdelete/rederive",
                _cost_anchor(ctx, stratum.rule_indices),
            )


def check_maintain_dred_on_safe(
    ctx: "AnalysisContext",
) -> Iterable[Diagnostic]:
    """W116 — recursion that only *looks* like it needs DRed.

    A recursive stratum whose same-SCC rules are all provably vacuous
    is counting-safe; running DRed on it pays the overdelete/rederive
    protocol for recursion that cannot derive anything new.
    """
    if ctx.maintain is None:
        return
    for stratum in ctx.maintain.strata:
        if stratum.recursive and stratum.counting_safe:
            vacuous = (
                len(stratum.rule_indices)
                - len(stratum.effective_rule_indices)
            )
            yield make(
                "W116",
                f"stratum [{', '.join(stratum.predicates)}] is recursive "
                f"only through {vacuous} vacuous rule(s); DRed would be "
                "wasted — counting maintenance applies",
                _cost_anchor(ctx, stratum.rule_indices),
            )


def check_maintain_unbounded(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W117 — delta bounds that saturate: no useful growth guarantee."""
    if ctx.maintain is None:
        return
    from repro.analysis.cost import BOUND_CAP

    saturated = sorted(
        pred
        for pred, bound in ctx.maintain.bounds.items()
        if bound.bound >= BOUND_CAP
    )
    if saturated:
        yield make(
            "W117",
            f"delta bound saturated for {', '.join(saturated)}: a "
            "single update's impact cannot be usefully bounded "
            "(admission control degrades to accept-all)",
        )


def check_shard_summary(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I213 — the shard plan in one line."""
    if ctx.shard is None:
        return
    report = ctx.shard
    yield make(
        "I213",
        f"shard plan for {report.workers} worker(s): "
        f"{report.communication_free} communication-free, "
        f"{report.exchange_required} exchange-required, "
        f"{report.sequential} sequential stratum(a); "
        "`repro analyze shard` prints the full plan",
    )


def check_shard_commfree(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I214 — strata that parallelize with zero tuple exchange."""
    if ctx.shard is None:
        return
    for stratum in ctx.shard.strata:
        if stratum.classification != "communication_free":
            continue
        keys = ", ".join(
            f"{pred}[{pos}]" for pred, pos in sorted(stratum.keys.items())
        )
        yield make(
            "I214",
            f"stratum [{', '.join(stratum.predicates)}] is "
            f"communication-free: hash-partition {keys} and workers "
            "never exchange tuples",
            _cost_anchor(ctx, stratum.rule_indices),
        )


def check_shard_exchange(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """I215 — the predicted per-round exchange volume."""
    if ctx.shard is None:
        return
    from repro.analysis.cost import BOUND_CAP

    report = ctx.shard
    if not report.exchange_required:
        return
    total = report.total_exchange_bound
    rendered = "saturated" if total >= BOUND_CAP else str(total)
    yield make(
        "I215",
        f"predicted exchange volume <= {rendered} row transfer(s) per "
        f"round across {report.exchange_required} exchange-required "
        f"stratum(a) on {report.workers} worker(s)",
    )


def check_shard_exchange_heavy(
    ctx: "AnalysisContext",
) -> Iterable[Diagnostic]:
    """W118 — strata whose exchange bound dwarfs the relation bound.

    Fires when re-shuffling the deltas may move more rows per round
    than the active domain is wide — the parallel speedup is then easy
    to lose to communication, and a goal binding (magic sets) that
    shrinks the deltas matters more than more workers.
    """
    if ctx.shard is None:
        return
    adom = ctx.shard.parameters.adom
    for stratum in ctx.shard.strata:
        if stratum.classification != "exchange_required":
            continue
        if stratum.exchange_bound > adom:
            yield make(
                "W118",
                f"stratum [{', '.join(stratum.predicates)}] re-shuffles "
                f"up to {_fmt_bound(stratum.exchange_bound)} row(s) "
                "between every semi-naive round; no common partition "
                "key survives its rules",
                _cost_anchor(ctx, stratum.rule_indices),
            )


def check_shard_sequential(ctx: "AnalysisContext") -> Iterable[Diagnostic]:
    """W119 — strata no worker count can help."""
    if ctx.shard is None:
        return
    for stratum in ctx.shard.strata:
        if stratum.classification != "sequential":
            continue
        yield make(
            "W119",
            f"stratum [{', '.join(stratum.predicates)}] is a sequential "
            f"bottleneck under sharding: {stratum.basis}",
            _cost_anchor(ctx, stratum.rule_indices),
        )


def _fmt_bound(bound: int) -> str:
    from repro.analysis.cost import BOUND_CAP

    return "saturated" if bound >= BOUND_CAP else str(bound)


#: Extra passes run only under ``analyze(..., semantic=True)``.
SEMANTIC_PASSES = (
    check_binding_patterns,
    check_boundedness,
    check_sorts,
    check_magic_applicable,
    check_inlinable,
    check_dead_body_atoms,
    check_cost_summary,
    check_cost_blowup,
    check_cost_recursion,
    check_cost_unbindable,
    check_maintain_summary,
    check_maintain_self,
    check_maintain_delta,
    check_maintain_amplification,
    check_maintain_dred_on_safe,
    check_maintain_unbounded,
    check_shard_summary,
    check_shard_commfree,
    check_shard_exchange,
    check_shard_exchange_heavy,
    check_shard_sequential,
)


#: The analyzer's default pipeline, in reporting order.
DEFAULT_PASSES = (
    check_safety,
    check_empty,
    check_goal,
    check_arity_consistency,
    check_duplicate_rules,
    check_subsumed_rules,
    check_constant_in_head,
    check_cartesian_body,
    check_unreachable_rules,
    check_unused_predicates,
    check_view_shadowing,
    check_fragment,
)
