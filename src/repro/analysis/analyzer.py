"""The program analyzer: run registered passes, collect diagnostics.

Entry points:

* :func:`analyze_query` — analyze a :class:`~repro.core.datalog.DatalogQuery`
  (or bare program), optionally against a :class:`~repro.views.view.ViewSet`
  and the :class:`~repro.core.parser.ProgramSource` it was parsed from
  (for source spans);
* :class:`ProgramAnalyzer` — the reusable engine behind it, with a
  ``register`` hook for custom passes.

The result is an :class:`AnalysisReport`: ordered diagnostics plus the
dependency and fragment structure, with renderers for the ``repro lint``
text and JSON outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence, Union

from repro.analysis.dependency import (
    DependencyGraph,
    FragmentReport,
    fragment_report,
)
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.passes import DEFAULT_PASSES, SEMANTIC_PASSES
from repro.analysis.semantics import SemanticReport, semantic_report
from repro.core.datalog import DatalogProgram, DatalogQuery
from repro.core.parser import ProgramSource, Span, SourceRule
from repro.views.view import ViewSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.cost import CostReport
    from repro.analysis.maintain import MaintainReport
    from repro.analysis.optimize import RuleProvenance
    from repro.analysis.shard import ShardReport

AnalysisPass = Callable[["AnalysisContext"], Iterable[Diagnostic]]
Analyzable = Union[DatalogQuery, DatalogProgram]


@dataclass
class AnalysisContext:
    """Everything a pass may look at (shared, computed once)."""

    program: DatalogProgram
    goal: Optional[str]
    views: Optional[ViewSet]
    source: Optional[ProgramSource]
    dependency: DependencyGraph
    fragment: FragmentReport
    semantics: Optional[SemanticReport] = None
    cost: Optional["CostReport"] = None
    maintain: Optional["MaintainReport"] = None
    shard: Optional["ShardReport"] = None
    _entries: tuple[Optional[SourceRule], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.source is not None and not self._entries:
            aligned = tuple(
                entry for entry in self.source.entries
                if entry.rule is not None
            )
            if len(aligned) == len(self.program.rules):
                self._entries = aligned
        if not self._entries:
            self._entries = (None,) * len(self.program.rules)

    def rule_span(self, index: int) -> Optional[Span]:
        entry = self._entries[index]
        return entry.span if entry is not None else None

    def head_span(self, index: int) -> Optional[Span]:
        entry = self._entries[index]
        return entry.head_span if entry is not None else None

    def atom_span(self, rule_index: int, atom_index: int) -> Optional[Span]:
        entry = self._entries[rule_index]
        return entry.atom_span(atom_index) if entry is not None else None


@dataclass(frozen=True)
class AnalysisReport:
    """The analyzer's findings for one program (+ optional views)."""

    diagnostics: tuple[Diagnostic, ...]
    fragment: FragmentReport
    dependency: DependencyGraph
    semantics: Optional[SemanticReport] = None
    cost: Optional["CostReport"] = None
    maintain: Optional["MaintainReport"] = None
    shard: Optional["ShardReport"] = None

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    def has_errors(self) -> bool:
        return bool(self.errors())

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def render_text(self, path: Optional[str] = None) -> str:
        lines = [d.render(path) for d in self.diagnostics]
        errors, warnings = len(self.errors()), len(self.warnings())
        lines.append(
            f"{errors} error(s), {warnings} warning(s), "
            f"fragment {self.fragment.label}"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        out = {
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "summary": {
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "infos": len(self.infos()),
            },
            "fragment": self.fragment.as_dict(),
            "sccs": [
                {
                    "predicates": sorted(scc.predicates),
                    "recursive": scc.recursive,
                    "linear": scc.linear,
                    "rules": list(scc.rule_indices),
                }
                for scc in self.dependency.sccs
            ],
        }
        if self.semantics is not None:
            out["semantics"] = self.semantics.as_dict()
        if self.cost is not None:
            out["cost"] = self.cost.as_dict()
        if self.maintain is not None:
            out["maintain"] = self.maintain.as_dict()
        if self.shard is not None:
            out["shard"] = self.shard.as_dict()
        return out


class ProgramAnalyzer:
    """Runs a pipeline of analysis passes over a program."""

    def __init__(self, passes: Optional[Iterable[AnalysisPass]] = None) -> None:
        self._passes: list[AnalysisPass] = list(
            DEFAULT_PASSES if passes is None else passes
        )

    def register(self, analysis_pass: AnalysisPass) -> None:
        """Append a custom pass to the pipeline."""
        self._passes.append(analysis_pass)

    def analyze(
        self,
        target: Analyzable,
        views: Optional[ViewSet] = None,
        source: Optional[ProgramSource] = None,
        goal: Optional[str] = None,
        semantic: bool = False,
        provenance: Optional[Sequence["RuleProvenance"]] = None,
    ) -> AnalysisReport:
        if isinstance(target, DatalogQuery):
            program, goal = target.program, target.goal
        else:
            program = target
        dependency = DependencyGraph(program)
        fragment = fragment_report(program, dependency)
        ctx = AnalysisContext(
            program=program,
            goal=goal,
            views=views,
            source=source,
            dependency=dependency,
            fragment=fragment,
        )
        if semantic:
            ctx.semantics = semantic_report(
                program,
                goal=goal,
                dependency=dependency,
                fragment=fragment,
                span_of=ctx.rule_span,
            )
            from repro.analysis.cost import cost_report
            from repro.analysis.maintain import maintain_report
            from repro.analysis.shard import shard_report
            from repro.core import stats as _stats

            with _stats.suspended():
                ctx.cost = cost_report(
                    program, goal=goal, dependency=dependency
                )
                ctx.maintain = maintain_report(
                    program, goal=goal, dependency=dependency
                )
                ctx.shard = shard_report(
                    program, goal=goal, dependency=dependency
                )
        found: list[Diagnostic] = []
        passes = self._passes + (
            list(SEMANTIC_PASSES) if semantic else []
        )
        for analysis_pass in passes:
            found.extend(analysis_pass(ctx))
        # a duplicate rule is trivially subsumed by its twin: keep the
        # specific W101 and drop the redundant W102 for the same rule
        duplicated = {
            d.rule_index
            for d in found
            if d.code == "W101" and d.rule_index is not None
        }
        found = [
            d
            for d in found
            if not (d.code == "W102" and d.rule_index in duplicated)
        ]
        # optimizer provenance: diagnostics about synthesized rules
        # (no source span) inherit the originating rule's position as
        # ``derived_from`` instead of rendering with no location at all
        if provenance is not None:
            relocated = []
            for diagnostic in found:
                index = diagnostic.rule_index
                if (
                    diagnostic.span is None
                    and index is not None
                    and 0 <= index < len(provenance)
                ):
                    origin = provenance[index]
                    if origin.span is not None:
                        diagnostic = replace(diagnostic, span=origin.span)
                    elif origin.derived_from is not None:
                        diagnostic = replace(
                            diagnostic, derived_from=origin.derived_from
                        )
                relocated.append(diagnostic)
            found = relocated
        found.sort(key=Diagnostic.sort_key)
        return AnalysisReport(
            tuple(found), fragment, dependency, ctx.semantics, ctx.cost,
            ctx.maintain, ctx.shard,
        )


def analyze_query(
    target: Analyzable,
    views: Optional[ViewSet] = None,
    source: Optional[ProgramSource] = None,
    goal: Optional[str] = None,
    semantic: bool = False,
    provenance: Optional[Sequence["RuleProvenance"]] = None,
) -> AnalysisReport:
    """Analyze with the default pass pipeline.

    ``goal`` names the goal predicate when ``target`` is a bare program
    (a :class:`DatalogQuery` carries its own); it need not be an IDB —
    an unknown goal is reported as E003 rather than raised.  With
    ``semantic=True`` the :mod:`repro.analysis.semantics` pipeline also
    runs: the report carries a :class:`SemanticReport` and the
    ``I204``–``I208``/``W109``–``W111`` diagnostics.  ``provenance``
    (per-rule :class:`~repro.analysis.optimize.RuleProvenance`, e.g.
    from :func:`~repro.analysis.optimize.optimize_program`) relocates
    findings about synthesized rules onto their originating source rule
    via the diagnostics' ``derived_from`` field.
    """
    return ProgramAnalyzer().analyze(
        target,
        views=views,
        source=source,
        goal=goal,
        semantic=semantic,
        provenance=provenance,
    )


class ProgramAnalysisError(ValueError):
    """A procedure refused its input because analysis found errors."""

    def __init__(self, report: AnalysisReport, context: str) -> None:
        self.report = report
        details = "; ".join(d.render() for d in report.errors())
        super().__init__(f"{context}: {details}")
