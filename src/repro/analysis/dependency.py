"""Predicate dependency analysis: SCC condensation, recursion shape,
fragment classification with explanations, and evaluation strata.

The predicate dependency graph has an edge ``P -> R`` when some rule
with head ``P`` uses ``R`` in its body.  Its strongly connected
components, listed dependencies-first, give the *evaluation strata* the
stratified fixpoint engine (:func:`repro.core.evaluation.
stratified_fixpoint`) runs one at a time; per-SCC we also classify
recursive vs. nonrecursive and linear vs. nonlinear recursion.

:func:`fragment_report` reproduces the fragment tests of
:class:`~repro.core.datalog.DatalogProgram` (§2, Tables 1–2 of the
paper) but keeps *witnesses*: which rule, and why, breaks MDL,
frontier-guardedness, or body connectivity — today's
``is_frontier_guarded`` only returns a bare bool.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Optional

import networkx as nx

from repro.core.datalog import DatalogProgram, DatalogQuery, Rule


@dataclass(frozen=True)
class SCC:
    """One strongly connected component of the dependency graph."""

    index: int
    predicates: frozenset[str]
    rule_indices: tuple[int, ...]
    rules: tuple[Rule, ...]
    recursive: bool
    linear: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = (
            ("linear " if self.linear else "nonlinear ") + "recursive"
            if self.recursive
            else "nonrecursive"
        )
        return f"SCC({sorted(self.predicates)}, {kind}, {len(self.rules)} rules)"


class DependencyGraph:
    """Dependency structure of a Datalog program.

    ``sccs`` lists the condensation in *evaluation order*: a component
    appears after every component it depends on, so evaluating the
    components left to right never revisits a finished one.
    """

    def __init__(self, program: DatalogProgram) -> None:
        self.program = program
        self.idb = program.idb_predicates()
        self.edb = program.edb_predicates()
        graph = nx.DiGraph()
        graph.add_nodes_from(self.idb)
        for rule in program.rules:
            for atom in rule.body:
                if atom.pred in self.idb:
                    graph.add_edge(rule.head.pred, atom.pred)
        self.graph = graph

    @cached_property
    def sccs(self) -> tuple[SCC, ...]:
        condensation = nx.condensation(self.graph)
        members = condensation.graph["mapping"]  # pred -> component id
        rules_of: dict[int, list[int]] = {}
        for index, rule in enumerate(self.program.rules):
            rules_of.setdefault(members[rule.head.pred], []).append(index)
        out = []
        # Condensation edges point from dependent to dependency, so the
        # *reversed* topological order lists dependencies first.
        order = list(reversed(list(nx.topological_sort(condensation))))
        for position, comp_id in enumerate(order):
            preds = frozenset(condensation.nodes[comp_id]["members"])
            indices = tuple(rules_of.get(comp_id, ()))
            rules = tuple(self.program.rules[i] for i in indices)
            recursive = len(preds) > 1 or any(
                self.graph.has_edge(p, p) for p in preds
            )
            linear = all(
                sum(1 for atom in rule.body if atom.pred in preds) <= 1
                for rule in rules
            )
            out.append(
                SCC(position, preds, indices, rules, recursive, linear)
            )
        return tuple(out)

    def scc_of(self, pred: str) -> SCC:
        for scc in self.sccs:
            if pred in scc.predicates:
                return scc
        raise KeyError(pred)

    def recursive_predicates(self) -> set[str]:
        out: set[str] = set()
        for scc in self.sccs:
            if scc.recursive:
                out |= scc.predicates
        return out

    def is_linear(self) -> bool:
        """Every recursive SCC uses at most one same-SCC body atom per rule."""
        return all(scc.linear for scc in self.sccs if scc.recursive)

    def reachable_from(self, goal: str) -> set[str]:
        """IDB predicates the goal transitively depends on (goal included)."""
        if goal not in self.graph:
            return set()
        return {goal} | nx.descendants(self.graph, goal)

    def unreachable_rule_indices(self, goal: str) -> list[int]:
        needed = self.reachable_from(goal)
        return [
            index
            for index, rule in enumerate(self.program.rules)
            if rule.head.pred not in needed
        ]

    def unused_predicates(self, goal: Optional[str] = None) -> set[str]:
        """IDBs never used in any body and distinct from the goal."""
        used = {
            atom.pred
            for rule in self.program.rules
            for atom in rule.body
        }
        return {
            pred
            for pred in self.idb
            if pred not in used and pred != goal
        }

    def prune_unreachable(self, goal: str) -> DatalogProgram:
        """The subprogram of rules the goal transitively depends on.

        A goal that is not an IDB head of this program — typically one
        defined only by views layered on top of it — depends on *every*
        rule for all this graph can tell, so the program is returned
        unchanged rather than emptied.  (``reachable_from`` returns the
        empty set for such a goal; pruning against it would silently
        drop the whole program and make downstream evaluation
        vacuously empty.)
        """
        if goal not in self.graph:
            return self.program
        needed = self.reachable_from(goal)
        kept = tuple(
            rule for rule in self.program.rules if rule.head.pred in needed
        )
        if len(kept) == len(self.program.rules):
            return self.program
        return DatalogProgram(kept)


def evaluation_strata(program: DatalogProgram) -> list[SCC]:
    """The SCCs of ``program`` in evaluation (dependencies-first) order."""
    return list(DependencyGraph(program).sccs)


def prune_unreachable(query: DatalogQuery) -> DatalogQuery:
    """Drop every rule whose head the goal does not depend on.

    Sound for fixpoint evaluation: removed rules can only derive facts
    for predicates the goal never reads (directly or transitively), so
    the goal relation of the fixpoint is unchanged.  Delegates to
    :meth:`DependencyGraph.prune_unreachable`, which keeps the program
    intact when the goal is not an IDB head.
    """
    pruned = DependencyGraph(query.program).prune_unreachable(query.goal)
    if pruned is query.program:
        return query
    return DatalogQuery(pruned, query.goal, query.name)


# ---------------------------------------------------------------------------
# fragment classification with explanations
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FragmentViolation:
    """Why one rule keeps the program out of a fragment."""

    rule_index: int
    rule: Rule
    reason: str


@dataclass(frozen=True)
class FragmentReport:
    """Fragment membership of a program with per-rule witnesses."""

    label: str
    recursive: bool
    monadic: bool
    frontier_guarded: bool
    linear: bool
    connected: bool
    monadic_violations: tuple[FragmentViolation, ...]
    guard_violations: tuple[FragmentViolation, ...]
    connectivity_violations: tuple[FragmentViolation, ...]

    def explanations(self) -> list[str]:
        """Human-readable reasons for every failed fragment test."""
        out = []
        for violation in self.monadic_violations:
            out.append(f"not MDL: {violation.reason}")
        if not self.monadic:
            for violation in self.guard_violations:
                out.append(f"not frontier-guarded: {violation.reason}")
        for violation in self.connectivity_violations:
            out.append(f"not connected: {violation.reason}")
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "recursive": self.recursive,
            "monadic": self.monadic,
            "frontier_guarded": self.frontier_guarded,
            "linear": self.linear,
            "connected": self.connected,
            "explanations": self.explanations(),
        }


def _body_components(rule: Rule) -> list[list[int]]:
    """Connected components of the body's variable-sharing graph."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(rule.body)))
    for i, left in enumerate(rule.body):
        for j in range(i + 1, len(rule.body)):
            if left.variables() & rule.body[j].variables():
                graph.add_edge(i, j)
    return [sorted(c) for c in nx.connected_components(graph)]


def rule_body_components(rule: Rule) -> list[list[int]]:
    """Public alias used by the cartesian-product diagnostic pass."""
    return _body_components(rule)


def fragment_report(
    program: DatalogProgram, dependency: Optional[DependencyGraph] = None
) -> FragmentReport:
    """Classify ``program`` with explanations (cf. §2 and Tables 1–2).

    The label follows :meth:`DatalogProgram.fragment`, including the
    paper's convention that every MDL program counts as
    frontier-guarded; the violation lists say which rule breaks which
    test and why.
    """
    dependency = dependency or DependencyGraph(program)
    edb = dependency.edb

    monadic_violations = []
    guard_violations = []
    connectivity_violations = []
    for index, rule in enumerate(program.rules):
        if rule.head.arity > 1:
            monadic_violations.append(
                FragmentViolation(
                    index,
                    rule,
                    f"rule #{index} defines {rule.head.pred}/"
                    f"{rule.head.arity}, but MDL IDBs must be unary",
                )
            )
        if not rule.is_frontier_guarded(edb):
            frontier = ", ".join(
                sorted(v.name for v in rule.frontier())
            )
            guard_violations.append(
                FragmentViolation(
                    index,
                    rule,
                    f"head variables {{{frontier}}} of rule #{index} do "
                    "not co-occur in any extensional body atom",
                )
            )
        components = _body_components(rule)
        if len(components) > 1:
            shaped = " / ".join(
                "{" + ", ".join(repr(rule.body[i]) for i in comp) + "}"
                for comp in components
            )
            connectivity_violations.append(
                FragmentViolation(
                    index,
                    rule,
                    f"body of rule #{index} splits into independent "
                    f"parts {shaped}",
                )
            )

    recursive = any(scc.recursive for scc in dependency.sccs)
    monadic = not monadic_violations
    frontier_guarded = monadic or not guard_violations
    if not recursive:
        label = "nonrecursive"
    elif monadic:
        label = "MDL"
    elif frontier_guarded:
        label = "FGDL"
    else:
        label = "Datalog"
    return FragmentReport(
        label=label,
        recursive=recursive,
        monadic=monadic,
        frontier_guarded=frontier_guarded,
        linear=dependency.is_linear(),
        connected=not connectivity_violations,
        monadic_violations=tuple(monadic_violations),
        guard_violations=tuple(guard_violations),
        connectivity_violations=tuple(connectivity_violations),
    )
