"""Pebble games and unravellings (§7)."""

from repro.games.pebble import (
    duplicator_wins,
    kconsistency_closure,
    separates_in_datalog,
)
from repro.games.unravelling import (
    Unravelling,
    bags_are_partial_isomorphisms,
    projection_is_homomorphism,
    unravel,
)

__all__ = [
    "duplicator_wins", "kconsistency_closure", "separates_in_datalog",
    "Unravelling", "bags_are_partial_isomorphisms",
    "projection_is_homomorphism", "unravel",
]
