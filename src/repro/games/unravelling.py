"""k-unravellings and (1,k)-unravellings (§7).

A k-unravelling of ``I`` is a (generally infinite) instance of treewidth
< k that maps onto ``I`` and is ``→k``-equivalent to it (Fact 4).  All
uses in the paper inspect bounded neighbourhoods, so we build *depth-d
truncations*: the tree of "scenes" (subsets of ``adom(I)`` of size ≤ k),
where a child keeps the parent's copies of shared elements (at most one
for the (1,k)-variant) and takes fresh copies otherwise.

:func:`unravel` returns the truncated instance together with the
homomorphism ``Φ`` onto ``I`` (condition (1): each bag is a partial
isomorphism by construction, because scene facts are copied fact-for-
fact).

Truncation caveat (documented in DESIGN.md): properties of the form
"some hom exists into the unravelling" are witnessed soundly by a deep
enough truncation; "no hom exists" is evidenced on the truncation and
justified analytically in the benchmarks (distance arguments).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.instance import Instance


@dataclass
class Unravelling:
    """A truncated unravelling with its projection homomorphism."""

    instance: Instance
    projection: dict  # copy element -> original element
    bags: list[tuple]  # the bags of the witnessing tree decomposition
    k: int
    depth: int

    def copy_count(self) -> int:
        return len(self.projection)


def _scenes(elements: list, k: int) -> list[tuple]:
    out: list[tuple] = []
    for size in range(1, k + 1):
        out.extend(combinations(elements, size))
    return out


def _fact_supported_scenes(instance: Instance, k: int) -> list[tuple]:
    """Scenes contained in the element set of some fact.

    A *sub*-unravelling: conditions (1) and the treewidth/projection
    properties are preserved; the full condition (2) is weakened to
    fact-supported subsets.  Homomorphism targets lose nothing (facts
    only live in fact-supported bags), and the blow-up drops from
    ``n^k`` to ``|facts|·2^arity`` scenes.
    """
    out: set[tuple] = set()
    for fact in instance.facts():
        elems = sorted(set(fact.args), key=repr)
        for size in range(1, min(k, len(elems)) + 1):
            out.update(combinations(elems, size))
    return sorted(out, key=repr)


def unravel(
    instance: Instance,
    k: int,
    depth: int,
    frontier_one: bool = False,
    max_nodes: int = 200_000,
    scenes: str = "all",
) -> Unravelling:
    """The depth-``depth`` truncation of a (1,)k-unravelling.

    ``frontier_one=True`` builds a (1,k)-unravelling: neighbouring bags
    share at most one element (children are generated per choice of the
    single kept element, plus an all-fresh child).  ``scenes`` is
    ``"all"`` (the paper's condition (2)) or ``"fact-supported"`` (see
    :func:`_fact_supported_scenes`).
    """
    elements = sorted(instance.active_domain(), key=repr)
    if scenes == "fact-supported":
        scene_list = _fact_supported_scenes(instance, k)
    elif scenes == "all":
        scene_list = _scenes(elements, k)
    else:
        raise ValueError(f"unknown scenes mode {scenes!r}")
    scenes = scene_list
    facts_by_scene = {
        scene: [
            f
            for f in instance.facts()
            if f.args and set(f.args) <= set(scene)
        ]
        for scene in scenes
    }

    out = Instance()
    projection: dict = {}
    bags: list[tuple] = []
    counter = [0]

    def fresh_copy(original) -> tuple:
        counter[0] += 1
        copy = (original, counter[0])
        projection[copy] = original
        return copy

    def add_scene_facts(scene: tuple, copies: dict) -> None:
        for fact in facts_by_scene[scene]:
            out.add_tuple(fact.pred, tuple(copies[a] for a in fact.args))

    def expand(scene: tuple, copies: dict, level: int) -> None:
        if counter[0] > max_nodes:
            raise RuntimeError(
                f"unravelling truncation exceeded {max_nodes} copies"
            )
        bags.append(tuple(copies[a] for a in scene))
        add_scene_facts(scene, copies)
        if level == depth:
            return
        for child_scene in scenes:
            shared = [a for a in child_scene if a in copies]
            if frontier_one and len(shared) > 1:
                keep_choices = [(a,) for a in shared]
            elif frontier_one:
                keep_choices = [tuple(shared)] if shared else [()]
            else:
                keep_choices = [tuple(shared)]
            if frontier_one and shared:
                keep_choices = list(keep_choices) + [()]
            for kept in keep_choices:
                child_copies = {}
                for a in child_scene:
                    if a in kept:
                        child_copies[a] = copies[a]
                    else:
                        child_copies[a] = fresh_copy(a)
                expand(child_scene, child_copies, level + 1)

    # A single root scene suffices: condition (2) only constrains the
    # children of each node, and every scene appears below the root.
    root_scene = scenes[0] if scenes else ()
    if root_scene:
        root_copies = {a: fresh_copy(a) for a in root_scene}
        expand(root_scene, root_copies, 0)
    return Unravelling(out, projection, bags, k, depth)


def projection_is_homomorphism(unravelling: Unravelling, original: Instance) -> bool:
    """Check Φ : U → I (Fact 4(1), first half)."""
    for fact in unravelling.instance.facts():
        image = tuple(unravelling.projection[a] for a in fact.args)
        if not original.has_tuple(fact.pred, image):
            return False
    return True


def bags_are_partial_isomorphisms(
    unravelling: Unravelling, original: Instance
) -> bool:
    """Condition (1) of the unravelling definition.

    Φ restricted to each bag must be a partial isomorphism: injective
    (holds by construction: distinct bag copies have distinct originals)
    and reflecting facts — within a bag, the copies carry *all* facts
    the originals satisfy.
    """
    for bag in unravelling.bags:
        originals = [unravelling.projection[c] for c in bag]
        if len(set(originals)) != len(originals):
            return False
        back = dict(zip(originals, bag))
        for fact in original.facts():
            if fact.args and all(a in back for a in fact.args):
                copied = tuple(back[a] for a in fact.args)
                if not unravelling.instance.has_tuple(fact.pred, copied):
                    return False
    return True
