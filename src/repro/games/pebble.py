"""Existential k-pebble games (§7, Facts 1, 2, 5).

We decide whether the Duplicator wins the existential k-pebble game on
``(I, I')`` — written ``I →k I'`` — by computing the largest family
``H`` of partial homomorphisms satisfying the two closure conditions of
Fact 5 (the k-consistency algorithm of [4, 5]):

1. downward closure: subfunctions of members are members;
2. extendability: every member of size < k extends to any further
   source element within the family.

The Duplicator wins iff the closure is non-empty.  The cost is
``O((n·m)^k)``-ish; the benchmarks stay at ``k ≤ 3`` on laptop-size
structures, exactly the regime the Thm 8 construction needs
(``2 ≤ k < min{n, m}`` with ``n = m = 3..5``).
"""

from __future__ import annotations

from itertools import combinations, product as iproduct
from typing import Iterable, Optional

from repro.core.instance import Instance


def _constraints_within(
    instance: Instance, domain: tuple
) -> list[tuple[str, tuple]]:
    """Facts of ``instance`` whose elements all lie in ``domain``."""
    dom = set(domain)
    return [
        (f.pred, f.args)
        for f in instance.facts()
        if all(a in dom for a in f.args)
    ]


def _partial_homs(
    source: Instance, target: Instance, domain: tuple
) -> Iterable[frozenset]:
    """All partial homomorphisms with exactly the given domain."""
    constraints = _constraints_within(source, domain)
    target_dom = sorted(target.active_domain(), key=repr)
    for images in iproduct(target_dom, repeat=len(domain)):
        mapping = dict(zip(domain, images))
        if all(
            target.has_tuple(pred, tuple(mapping[a] for a in args))
            for pred, args in constraints
        ):
            yield frozenset(mapping.items())


def duplicator_wins(
    source: Instance, target: Instance, k: int
) -> bool:
    """``source →k target``: does the Duplicator win the k-pebble game?"""
    if k < 1:
        raise ValueError("k must be >= 1")
    source_dom = sorted(source.active_domain(), key=repr)
    if not source_dom:
        return True
    if not target.active_domain():
        return False

    # H[frozenset(domain)] = set of partial homs (as frozensets of pairs)
    family: dict[frozenset, set] = {frozenset(): {frozenset()}}
    for size in range(1, min(k, len(source_dom)) + 1):
        for domain in combinations(source_dom, size):
            key = frozenset(domain)
            family[key] = set(_partial_homs(source, target, domain))

    changed = True
    while changed:
        changed = False
        for key in list(family):
            keep = set()
            for f in family[key]:
                if _consistent(f, key, family, source_dom, k):
                    keep.add(f)
            if len(keep) != len(family[key]):
                family[key] = keep
                changed = True
        if not family[frozenset()]:
            return False
    return bool(family[frozenset()])


def _consistent(
    f: frozenset,
    key: frozenset,
    family: dict,
    source_dom: list,
    k: int,
) -> bool:
    # downward closure: immediate subfunctions must be present
    for pair in f:
        sub_key = key - {pair[0]}
        if f - {pair} not in family.get(sub_key, ()):
            return False
    # extendability
    if len(key) < k:
        for a in source_dom:
            if a in key:
                continue
            super_key = key | {a}
            supers = family.get(super_key, ())
            if not any(f <= g for g in supers):
                return False
    return True


def kconsistency_closure(
    source: Instance, target: Instance, k: int
) -> dict:
    """The full closed family (for inspection in tests/benchmarks)."""
    source_dom = sorted(source.active_domain(), key=repr)
    family: dict[frozenset, set] = {frozenset(): {frozenset()}}
    for size in range(1, min(k, len(source_dom)) + 1):
        for domain in combinations(source_dom, size):
            family[frozenset(domain)] = set(
                _partial_homs(source, target, domain)
            )
    changed = True
    while changed:
        changed = False
        for key in list(family):
            keep = {
                f
                for f in family[key]
                if _consistent(f, key, family, source_dom, k)
            }
            if len(keep) != len(family[key]):
                family[key] = keep
                changed = True
    return family


def separates_in_datalog(
    accepting: Instance,
    rejecting: Instance,
    k: int,
) -> Optional[bool]:
    """Fact 2 helper: can ANY Datalog query with rule bodies of size ≤ k
    accept ``accepting`` and reject ``rejecting``?

    Returns False (definitely not separable at this k) when
    ``accepting →k rejecting`` — existential k-pebble games preserve
    Boolean Datalog with bodies of size ≤ k — and None (no conclusion)
    otherwise.
    """
    if duplicator_wins(accepting, rejecting, k):
        return False
    return None
