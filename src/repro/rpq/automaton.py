"""Glushkov (position) automata for label regexes.

An ε-free NFA whose states are the positions of the regex — the right
shape for compiling RPQs into linear Datalog: one unary/binary IDB per
state, one rule per transition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rpq.regex import (
    Epsilon,
    Label,
    Regex,
    Star,
    Union_,
    nullable,
)


@dataclass(frozen=True)
class GlushkovNFA:
    """An ε-free NFA with a single initial state 0.

    ``transitions``: set of ``(source, label, target)``;
    ``accepting``: set of states; ``accepts_empty`` handles ε.
    """

    states: frozenset
    transitions: frozenset
    accepting: frozenset
    accepts_empty: bool

    def successors(self, state, label) -> set:
        return {
            t for (s, lab, t) in self.transitions
            if s == state and lab == label
        }

    def accepts(self, word: tuple) -> bool:
        if not word:
            return self.accepts_empty
        current = {0}
        for label in word:
            current = {
                t
                for s in current
                for (src, lab, t) in self.transitions
                if src == s and lab == label
            }
            if not current:
                return False
        return bool(current & self.accepting)


def nfa_of(regex: Regex) -> GlushkovNFA:
    """The Glushkov automaton of a regex."""
    first, last, follow, labels = _glushkov(regex, [0])
    transitions = set()
    for pos in first:
        transitions.add((0, labels[pos], pos))
    for a, b in follow:
        transitions.add((a, labels[b], b))
    states = frozenset({0} | set(labels))
    return GlushkovNFA(
        states=states,
        transitions=frozenset(transitions),
        accepting=frozenset(last),
        accepts_empty=nullable(regex),
    )


def _glushkov(regex: Regex, counter: list) -> tuple:
    """(first, last, follow, labels) with a shared position counter."""
    if isinstance(regex, Epsilon):
        return set(), set(), set(), {}
    if isinstance(regex, Label):
        counter[0] += 1
        pos = counter[0]
        return {pos}, {pos}, set(), {pos: regex.name}
    if isinstance(regex, Star):
        first, last, follow, labels = _glushkov(regex.inner, counter)
        follow = set(follow)
        for a in last:
            for b in first:
                follow.add((a, b))
        return first, last, follow, labels
    if isinstance(regex, Union_):
        first: set = set()
        last: set = set()
        follow: set = set()
        labels: dict = {}
        for part in regex.parts:
            f, l, fo, lab = _glushkov(part, counter)
            first |= f
            last |= l
            follow |= fo
            labels.update(lab)
        return first, last, follow, labels
    # Concat
    annotated = [_glushkov(part, counter) for part in regex.parts]
    first: set = set()
    prefix_nullable = True
    for (f, _l, _fo, _lab), part in zip(annotated, regex.parts):
        if prefix_nullable:
            first |= f
        prefix_nullable = prefix_nullable and nullable(part)
    last: set = set()
    suffix_nullable = True
    for (_f, l, _fo, _lab), part in zip(
        reversed(annotated), tuple(reversed(regex.parts))
    ):
        if suffix_nullable:
            last |= l
        suffix_nullable = suffix_nullable and nullable(part)
    follow: set = set()
    labels: dict = {}
    for _f, _l, fo, lab in annotated:
        follow |= fo
        labels.update(lab)
    prev_last: set = set()
    for (f, l, _fo, _lab), part in zip(annotated, regex.parts):
        for a in prev_last:
            for b in f:
                follow.add((a, b))
        if nullable(part):
            prev_last = prev_last | l
        else:
            prev_last = set(l)
    return first, last, follow, labels
