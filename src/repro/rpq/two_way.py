"""Two-way regular path queries (2RPQs, [11]).

A 2RPQ may traverse edges backwards: the label alphabet is extended
with inverses ``a⁻`` (written ``a-`` in the text syntax).  Compilation
is the same linear-Datalog translation with the edge atom flipped for
inverse labels.
"""

from __future__ import annotations

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.terms import variables
from repro.rpq.automaton import nfa_of
from repro.rpq.query import edge_predicate
from repro.rpq.regex import parse_regex

INVERSE_SUFFIX = "⁻"


def _normalize_label(label: str) -> tuple[str, bool]:
    """``a-`` / ``a⁻`` → (base label, inverted?)."""
    if label.endswith("-") or label.endswith(INVERSE_SUFFIX):
        return label.rstrip("-" + INVERSE_SUFFIX), True
    return label, False


def two_way_rpq(regex_text: str, name: str = "rpq2") -> DatalogQuery:
    """Compile a 2RPQ to Datalog.

    Inverse labels are written with a trailing ``-``, e.g.
    ``"a ( b- ) * c"`` walks an ``a``-edge forward, ``b``-edges
    backward, then a ``c``-edge forward.
    """
    regex = parse_regex(regex_text)
    nfa = nfa_of(regex)
    x, y, z = variables("x y z")
    rules: list[Rule] = []

    def state_pred(state) -> str:
        return f"{name}·q{state}"

    def edge_atom(label: str, source, target) -> Atom:
        base, inverted = _normalize_label(label)
        if inverted:
            return Atom(edge_predicate(base), (target, source))
        return Atom(edge_predicate(base), (source, target))

    for source, label, target in sorted(nfa.transitions, key=repr):
        if source == 0:
            rules.append(
                Rule(
                    Atom(state_pred(target), (x, y)),
                    (edge_atom(label, x, y),),
                )
            )
        else:
            rules.append(
                Rule(
                    Atom(state_pred(target), (x, y)),
                    (
                        Atom(state_pred(source), (x, z)),
                        edge_atom(label, z, y),
                    ),
                )
            )
    goal = f"Goal·{name}"
    for state in sorted(nfa.accepting, key=repr):
        rules.append(
            Rule(Atom(goal, (x, y)), (Atom(state_pred(state), (x, y)),))
        )
    if nfa.accepts_empty:
        bases = sorted({
            _normalize_label(label)[0]
            for (_s, label, _t) in nfa.transitions
        }) or ["·none"]
        for base in bases:
            rules.append(Rule(Atom(goal, (x, x)), (
                Atom(edge_predicate(base), (x, y)),
            )))
            rules.append(Rule(Atom(goal, (x, x)), (
                Atom(edge_predicate(base), (y, x)),
            )))
    if not any(r.head.pred == goal for r in rules):
        rules.append(Rule(Atom(goal, (x, y)), (Atom("Never⊥", (x, y)),)))
    return DatalogQuery(DatalogProgram(tuple(rules)), goal, name)
