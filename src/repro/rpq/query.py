"""RPQs as Datalog queries over a graph schema.

A graph database has one binary relation ``E·a`` per edge label ``a``.
An RPQ ``L`` returns the pairs ``(x, y)`` connected by a path spelling a
word of ``L``; it compiles to *linear* Datalog with one binary IDB per
NFA state.  RPQ views make the "losslessness" setting of [10, 11, 15]
expressible inside this library: monotonic determinacy of an RPQ over
RPQ views is exactly losslessness under the sound view assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.instance import Instance
from repro.core.terms import variables
from repro.views.view import View, ViewSet
from repro.rpq.automaton import GlushkovNFA, nfa_of
from repro.rpq.regex import Regex, parse_regex


def edge_predicate(label: str) -> str:
    return f"E·{label}"


def graph_instance(edges) -> Instance:
    """Build a graph database from ``(source, label, target)`` triples."""
    out = Instance()
    for source, label, target in edges:
        out.add_tuple(edge_predicate(label), (source, target))
    return out


@dataclass(frozen=True)
class RPQ:
    """A regular path query with its compiled automaton."""

    name: str
    regex: Regex
    nfa: GlushkovNFA

    def to_datalog(self) -> DatalogQuery:
        """The linear Datalog compilation (binary IDB per NFA state)."""
        x, y, z = variables("x y z")
        rules: list[Rule] = []

        def state_pred(state) -> str:
            return f"{self.name}·q{state}"

        for source, label, target in sorted(
            self.nfa.transitions, key=repr
        ):
            if source == 0:
                # Glushkov automata have no transitions back into the
                # initial state, so state 0 needs no IDB of its own.
                rules.append(
                    Rule(
                        Atom(state_pred(target), (x, y)),
                        (Atom(edge_predicate(label), (x, y)),),
                    )
                )
            else:
                rules.append(
                    Rule(
                        Atom(state_pred(target), (x, y)),
                        (
                            Atom(state_pred(source), (x, z)),
                            Atom(edge_predicate(label), (z, y)),
                        ),
                    )
                )
        goal = f"Goal·{self.name}"
        for state in sorted(self.nfa.accepting, key=repr):
            rules.append(
                Rule(
                    Atom(goal, (x, y)),
                    (Atom(state_pred(state), (x, y)),),
                )
            )
        if self.nfa.accepts_empty:
            # ε: every active-domain element reaches itself
            labels = sorted(
                {label for (_s, label, _t) in self.nfa.transitions}
            ) or ["·none"]
            for label in labels:
                rules.append(
                    Rule(Atom(goal, (x, x)), (
                        Atom(edge_predicate(label), (x, y)),
                    ))
                )
                rules.append(
                    Rule(Atom(goal, (x, x)), (
                        Atom(edge_predicate(label), (y, x)),
                    ))
                )
        if not any(r.head.pred == goal for r in rules):
            rules.append(
                Rule(Atom(goal, (x, y)), (Atom("Never⊥", (x, y)),))
            )
        return DatalogQuery(DatalogProgram(tuple(rules)), goal, self.name)

    def evaluate(self, graph: Instance) -> set[tuple]:
        return self.to_datalog().evaluate(graph)

    def accepts_word(self, word: tuple) -> bool:
        return self.nfa.accepts(word)


def rpq_query(regex_text: str, name: str = "rpq") -> RPQ:
    """Parse and compile an RPQ."""
    regex = parse_regex(regex_text)
    return RPQ(name, regex, nfa_of(regex))


def rpq_view(name: str, regex_text: str) -> View:
    """A view defined by an RPQ."""
    return View(name, rpq_query(regex_text, name).to_datalog())


def rpq_views(definitions: Mapping[str, str]) -> ViewSet:
    """A view set from ``{name: regex}``."""
    return ViewSet([
        rpq_view(name, text) for name, text in sorted(definitions.items())
    ])
