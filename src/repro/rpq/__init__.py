"""Regular path queries (the related-work query class of [10, 11, 15, 16]).

The paper situates its results against the RPQ line of work:
monotonic determinacy for RPQ views — "losslessness under the sound view
assumption" — is decidable in ExpSpace and implies Datalog rewritability,
while plain determinacy is undecidable.  This package makes that regime
runnable inside our framework: RPQs compile to linear Datalog over a
graph schema, RPQ views are ordinary views, and our checkers/rewriters
apply unchanged.
"""

from repro.rpq.regex import Regex, parse_regex
from repro.rpq.automaton import GlushkovNFA, nfa_of
from repro.rpq.query import (
    RPQ,
    rpq_query,
    rpq_view,
    rpq_views,
)

__all__ = [
    "Regex", "parse_regex", "GlushkovNFA", "nfa_of", "RPQ",
    "rpq_query", "rpq_view", "rpq_views",
]
