"""Regular expressions over edge labels.

Grammar (labels are identifiers; standard precedence)::

    regex   := term ('|' term)*
    term    := factor+
    factor  := base ('*' | '+' | '?')*
    base    := LABEL | '(' regex ')' | 'ε'

Example: ``"a (b | c)* d"`` — an ``a``-edge, then ``b``/``c``-edges, then
a ``d``-edge.
"""

from __future__ import annotations

import re as _re
from dataclasses import dataclass
from typing import Iterator, Union


@dataclass(frozen=True)
class Label:
    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Epsilon:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ε"


@dataclass(frozen=True)
class Concat:
    parts: tuple

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return " ".join(map(repr, self.parts))


@dataclass(frozen=True)
class Union_:
    parts: tuple

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " | ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Star:
    inner: "Regex"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.inner!r})*"


Regex = Union[Label, Epsilon, Concat, Union_, Star]

# labels may carry a trailing '-' (2RPQ inverse, see repro.rpq.two_way)
_TOKEN = _re.compile(r"\s*(?:(\w+-?|\w+⁻)|([()|*+?])|(ε))")


class RegexParseError(ValueError):
    pass


def _tokens(text: str) -> Iterator[str]:
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None or match.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise RegexParseError(f"bad regex near {rest[:10]!r}")
        pos = match.end()
        yield match.group(1) or match.group(2) or match.group(3)
    yield ""  # eof


class _Parser:
    def __init__(self, text: str) -> None:
        self._toks = list(_tokens(text))
        self._i = 0

    def peek(self) -> str:
        return self._toks[self._i]

    def next(self) -> str:
        tok = self._toks[self._i]
        self._i += 1
        return tok

    def parse(self) -> Regex:
        out = self._union()
        if self.peek() != "":
            raise RegexParseError(f"trailing input at {self.peek()!r}")
        return out

    def _union(self) -> Regex:
        parts = [self._concat()]
        while self.peek() == "|":
            self.next()
            parts.append(self._concat())
        return parts[0] if len(parts) == 1 else Union_(tuple(parts))

    def _concat(self) -> Regex:
        parts = []
        while self.peek() not in ("", "|", ")"):
            parts.append(self._postfix())
        if not parts:
            return Epsilon()
        return parts[0] if len(parts) == 1 else Concat(tuple(parts))

    def _postfix(self) -> Regex:
        base = self._base()
        while self.peek() in ("*", "+", "?"):
            op = self.next()
            if op == "*":
                base = Star(base)
            elif op == "+":
                base = Concat((base, Star(base)))
            else:
                base = Union_((base, Epsilon()))
        return base

    def _base(self) -> Regex:
        tok = self.next()
        if tok == "(":
            inner = self._union()
            if self.next() != ")":
                raise RegexParseError("unbalanced parentheses")
            return inner
        if tok in ("", ")", "|", "*", "+", "?"):
            raise RegexParseError(f"unexpected {tok!r}")
        if tok == "ε":
            return Epsilon()
        return Label(tok)


def parse_regex(text: str) -> Regex:
    """Parse a regular expression over edge labels."""
    return _Parser(text).parse()


def labels_of(regex: Regex) -> set[str]:
    """All edge labels mentioned."""
    if isinstance(regex, Label):
        return {regex.name}
    if isinstance(regex, Epsilon):
        return set()
    if isinstance(regex, (Concat, Union_)):
        out: set[str] = set()
        for part in regex.parts:
            out |= labels_of(part)
        return out
    return labels_of(regex.inner)


def nullable(regex: Regex) -> bool:
    """Whether the language contains the empty word."""
    if isinstance(regex, Epsilon):
        return True
    if isinstance(regex, Label):
        return False
    if isinstance(regex, Star):
        return True
    if isinstance(regex, Concat):
        return all(nullable(p) for p in regex.parts)
    return any(nullable(p) for p in regex.parts)
