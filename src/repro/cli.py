"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``decide``  — monotonic determinacy of a query over views
* ``rewrite`` — compute a rewriting (UCQ for CQ/UCQ queries, inverse
  rules for recursive queries over CQ views)
* ``certain`` — certain answers of a query over a view instance
* ``eval``    — evaluate a query over an instance
* ``lint``    — static analysis: diagnostics with source positions,
  dependency/fragment structure, text, JSON or SARIF 2.1.0 output
* ``optimize``— certified program transformations (dead code,
  specialization, inlining, magic sets, join reordering) with a
  transformation log, rule diff and optional ``program_equivalence``
  certificate
* ``evidence``— regenerate the paper's tables and figures as a
  parallel, cached, verdict-checked job DAG (``repro.harness``)

Inputs are files in the library's text syntax (see
:mod:`repro.core.parser`).  A *query file* contains Datalog rules plus a
directive line ``# goal: <Pred>`` (absent: the file is parsed as a
single CQ).  A *views file* contains blocks separated by ``# view:
<Name>`` directives, each holding one CQ (single rule) or Datalog
program with ``# goal:``.

All parsing goes through the span-aware
:func:`repro.core.parser.parse_program_source` path, so malformed
input to any command reports ``file:line:col`` plus a caret excerpt
(exit status 2), exactly like ``lint`` renders its ``E004``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

import contextlib

from repro.core.backend import backend_names, set_default_backend
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.parser import (
    ParseError,
    Span,
    parse_instance,
    parse_program_source,
    source_excerpt,
)
from repro.core.terms import Variable
from repro.views.view import View, ViewSet

#: exit status for malformed input files (decide/rewrite/certain/eval)
INPUT_ERROR = 2


def _shift(span: Optional[Span], offset: int) -> Optional[Span]:
    """Move a block-local span down by ``offset`` file lines."""
    if span is None or offset == 0:
        return span
    return Span(
        span.line + offset, span.col, span.end_line + offset, span.end_col
    )


def _input_error(
    message: str,
    span: Optional[Span],
    *,
    path: Optional[str],
    offset: int = 0,
    full_text: str = "",
) -> ParseError:
    """A ParseError re-anchored to the whole file, carrying its path."""
    span = _shift(span, offset)
    error = ParseError(message, span, source_excerpt(full_text, span))
    error.path = path  # type: ignore[attr-defined]
    return error


def _parse_query_text(
    text: str,
    *,
    path: Optional[str] = None,
    offset: int = 0,
    full_text: Optional[str] = None,
):
    """Parse a query block through the span-aware parser path.

    ``# goal:`` directives are comments to the tokenizer, so they stay
    in the parsed text and every reported position matches the file as
    written.  ``offset``/``full_text`` re-anchor positions when ``text``
    is a block cut out of a larger file (views files).
    """
    full = full_text if full_text is not None else text
    goal = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("# goal:"):
            goal = stripped.split(":", 1)[1].strip()
    try:
        source = parse_program_source(text)
    except ParseError as exc:
        raise _input_error(
            exc.message, exc.span,
            path=path, offset=offset, full_text=full,
        ) from None
    for entry in source.entries:
        if entry.rule is None:
            raise _input_error(
                entry.error or "unsafe rule", entry.head_span,
                path=path, offset=offset, full_text=full,
            )
    if not source.entries:
        raise _input_error(
            "empty program", None,
            path=path, offset=offset, full_text=full,
        )
    program = source.program()
    if goal is not None:
        if goal not in {rule.head.pred for rule in program.rules}:
            raise _input_error(
                f"goal predicate {goal!r} is not defined by any rule",
                None, path=path, offset=offset, full_text=full,
            )
        return DatalogQuery(program, goal)
    if len(source.entries) != 1:
        raise _input_error(
            "a query file without '# goal:' must contain exactly one "
            "CQ rule", source.entries[1].span,
            path=path, offset=offset, full_text=full,
        )
    rule = source.entries[0].rule
    assert rule is not None  # unsafe entries rejected above
    head_vars = []
    for term in rule.head.args:
        if not isinstance(term, Variable):
            raise _input_error(
                "CQ head arguments must be variables",
                source.entries[0].head_span,
                path=path, offset=offset, full_text=full,
            )
        head_vars.append(term)
    return ConjunctiveQuery(tuple(head_vars), rule.body, "Q")


def load_query(path: str):
    return _parse_query_text(Path(path).read_text(), path=path)


def load_views(path: str) -> ViewSet:
    text = Path(path).read_text()
    # (name, 0-based line of the first block line, block lines)
    blocks: list[tuple[str, int, list[str]]] = []
    current: list[str] | None = None
    for lineno, line in enumerate(text.splitlines()):
        stripped = line.strip()
        if stripped.startswith("# view:"):
            name = stripped.split(":", 1)[1].strip()
            current = []
            blocks.append((name, lineno + 1, current))
        elif current is not None:
            current.append(line)
    if not blocks:
        raise SystemExit("views file needs at least one '# view:' block")
    views = []
    for name, start, lines in blocks:
        views.append(View(name, _parse_query_text(
            "\n".join(lines), path=path, offset=start, full_text=text,
        )))
    return ViewSet(views)


def _read_text(path: str) -> str:
    """Read a UTF-8 input file through the span-aware error path.

    A file that is not valid UTF-8 (``UnicodeDecodeError`` is a
    ``ValueError``, so neither the ``ParseError`` nor the ``OSError``
    handler in :func:`main` would catch it) surfaces as the same
    ``file: E004 [error] ...`` + exit 2 the parser errors use, instead
    of a raw traceback.
    """
    try:
        return Path(path).read_text()
    except UnicodeDecodeError as exc:
        error = ParseError(
            f"file is not valid UTF-8 text "
            f"({exc.reason} at byte {exc.start})"
        )
        error.path = path  # type: ignore[attr-defined]
        raise error from None


def load_instance(path: str):
    try:
        return parse_instance(_read_text(path))
    except ParseError as exc:
        if getattr(exc, "path", None) is None:
            exc.path = path  # type: ignore[attr-defined]
        raise


@contextlib.contextmanager
def _backend_from(args: argparse.Namespace):
    """Ambiently select ``--backend`` for the command, then restore.

    The decision procedures call ``fixpoint``/``evaluate`` from many
    internal sites; flipping the process-wide default (and restoring it
    on exit, so ``main()`` stays reusable in-process, e.g. from tests)
    reaches them all without threading a parameter through every layer.
    """
    previous = set_default_backend(getattr(args, "backend", "interpreted"))
    try:
        yield
    finally:
        set_default_backend(previous)


def cmd_decide(args: argparse.Namespace) -> int:
    from repro.determinacy.checker import decide_monotonic_determinacy

    query = load_query(args.query)
    views = load_views(args.views)
    with _backend_from(args):
        result = decide_monotonic_determinacy(
            query, views, approx_depth=args.depth,
            optimize=getattr(args, "optimize", False),
        )
    print(f"verdict : {result.verdict.value}")
    print(f"method  : {result.method}")
    print(f"detail  : {result.detail}")
    if result.counterexample is not None:
        print("--- counterexample (failing canonical test) ---")
        print(result.counterexample.describe())
    return 0 if result.verdict.value != "no" else 1


def cmd_rewrite(args: argparse.Namespace) -> int:
    query = load_query(args.query)
    views = load_views(args.views)
    if isinstance(query, ConjunctiveQuery):
        from repro.rewriting.forward_backward import (
            NotRewritableError,
            rewrite_forward_backward,
        )

        try:
            rewriting = rewrite_forward_backward(query, views)
        except NotRewritableError as exc:
            print(f"not rewritable: {exc}", file=sys.stderr)
            return 1
        for disjunct in rewriting.disjuncts:
            print(repr(disjunct))
        return 0
    from repro.rewriting.datalog_rewriting import datalog_rewriting

    rewriting = datalog_rewriting(query, views)
    print(f"# goal: {rewriting.goal}")
    for rule in rewriting.program.rules:
        print(repr(rule))
    return 0


def cmd_certain(args: argparse.Namespace) -> int:
    from repro.views.inverse_rules import certain_answers

    query = load_query(args.query)
    if isinstance(query, ConjunctiveQuery):
        raise SystemExit("certain answers need a Datalog query file")
    views = load_views(args.views)
    view_instance = load_instance(args.instance)
    for row in sorted(
        certain_answers(query, views, view_instance), key=repr
    ):
        print(row)
    return 0


def cmd_eval(args: argparse.Namespace) -> int:
    query = load_query(args.query)
    instance = load_instance(args.instance)
    with _backend_from(args):
        rows = sorted(query.evaluate(instance), key=repr)
    for row in rows:
        print(row)
    return 0


#: ``repro lint`` exit codes.
LINT_OK, LINT_ERRORS, LINT_WARNINGS = 0, 1, 2


def cmd_lint(args: argparse.Namespace) -> int:
    """Lint a query file: diagnostics with positions, text or JSON.

    Exit status: 0 — clean (infos only), 2 — warnings, 1 — errors (or
    any warning under ``--strict``).  ``# goal:`` directives are plain
    comments to the tokenizer, so reported positions match the file
    as written.
    """
    import json

    from repro.analysis import Severity, analyze_query, make
    from repro.core.parser import ParseError, parse_program_source

    text = Path(args.query).read_text()
    goal = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("# goal:"):
            goal = stripped.split(":", 1)[1].strip()

    fixes = []
    try:
        views = load_views(args.views) if args.views else None
        if getattr(args, "fix", False):
            from repro.analysis.fixer import fix_source

            result = fix_source(text, goal=goal, views=views)
            if result.changed:
                Path(args.query).write_text(result.text)
                text = result.text
            fixes = list(result.fixes)
        source = parse_program_source(text)
    except ParseError as exc:
        diagnostic = make("E004", exc.message, exc.span)
        if args.format == "json":
            print(json.dumps({
                "diagnostics": [diagnostic.as_dict()],
                "summary": {"errors": 1, "warnings": 0, "infos": 0},
            }, indent=2, sort_keys=True))
        elif args.format == "sarif":
            from repro.analysis import sarif_report

            print(json.dumps(
                sarif_report([diagnostic], args.query),
                indent=2, sort_keys=True,
            ))
        else:
            print(diagnostic.render(getattr(exc, "path", None) or args.query))
            print("1 error(s), 0 warning(s)")
        return LINT_ERRORS

    report = analyze_query(
        source.program(), views=views, source=source, goal=goal,
        semantic=args.semantic,
    )
    if args.format == "json":
        payload = report.as_dict()
        if getattr(args, "fix", False):
            payload["fixes"] = [f.as_dict() for f in fixes]
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        from repro.analysis import sarif_report

        print(json.dumps(
            sarif_report(report.diagnostics, args.query),
            indent=2, sort_keys=True,
        ))
    else:
        for fix in fixes:
            print(f"{args.query}: fixed {fix.render()}")
        print(report.render_text(args.query))
    worst = report.max_severity()
    if worst is Severity.ERROR:
        return LINT_ERRORS
    if worst is Severity.WARNING:
        return LINT_ERRORS if args.strict else LINT_WARNINGS
    return LINT_OK


#: diagnostic codes produced by the cost analysis passes
COST_CODES = ("I209", "W112", "W113", "W114")

#: diagnostic codes produced by the maintainability analysis passes
MAINTAIN_CODES = ("I210", "I211", "I212", "W115", "W116", "W117")

#: diagnostic codes produced by the shardability analysis passes
SHARD_CODES = ("I213", "I214", "I215", "W118", "W119")


def _load_analyze_query(path: str):
    """Parse an ``analyze`` query file span-aware: (program, source, goal)."""
    text = _read_text(path)
    goal = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("# goal:"):
            goal = stripped.split(":", 1)[1].strip()
    try:
        source = parse_program_source(text)
    except ParseError as exc:
        exc.path = path  # type: ignore[attr-defined]
        raise
    return source.program(), source, goal


def _run_analyze(args: argparse.Namespace, codes, build_report) -> int:
    """Shared plumbing for the ``analyze`` subcommands.

    Parses the query file span-aware, loads ``--instance`` when given
    (both through the ``ParseError``/``OSError`` handlers in
    :func:`main`, so malformed input exits 2 with a positioned
    diagnostic for every subcommand alike), calls ``build_report(
    program, goal, instance)`` for the analysis-specific report, and
    emits it in the selected format.  ``--format sarif`` re-runs the
    full semantic analyzer and keeps only the subcommand's own
    diagnostic ``codes`` so the artifact stays focused next to the
    full ``lint`` log.
    """
    import json

    program, source, goal = _load_analyze_query(args.query)
    instance = load_instance(args.instance) if args.instance else None
    report = build_report(program, goal, instance)

    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        from repro.analysis import analyze_query, sarif_report

        analysis = analyze_query(
            program, source=source, goal=goal, semantic=True
        )
        findings = [d for d in analysis.diagnostics if d.code in codes]
        print(json.dumps(
            sarif_report(findings, args.query), indent=2, sort_keys=True,
        ))
    else:
        print(report.render_text())
    return 0


def cmd_analyze_cost(args: argparse.Namespace) -> int:
    """Static cost & cardinality analysis of a query file.

    Computes the certified per-predicate cardinality bounds and
    per-rule join costs (:mod:`repro.analysis.cost`).  Without
    ``--instance`` the bounds use *assumed* parameters (every EDB
    relation at 16 facts); with one, the instance's measured relation
    sizes and active domain.  ``--format sarif`` emits only the
    cost-related diagnostics (I209, W112-W114) so the artifact stays
    focused next to the full ``lint`` log.
    """
    from repro.analysis.cost import CostParameters, cost_report

    def build(program, goal, instance):
        parameters = None
        if instance is None:
            parameters = CostParameters.assumed_for(program)
        return cost_report(
            program, goal=goal, instance=instance, parameters=parameters
        )

    return _run_analyze(args, COST_CODES, build)


def cmd_analyze_maintain(args: argparse.Namespace) -> int:
    """Static maintainability analysis of a query file.

    Classifies every stratum for update behavior (counting vs DRed,
    insert-monotone, self-maintainable) and bounds |Δ| per update
    (:mod:`repro.analysis.maintain`).  ``--format sarif`` emits only
    the maintenance diagnostics (I210-I212, W115-W117).
    """
    from repro.analysis.cost import CostParameters
    from repro.analysis.maintain import maintain_report

    append_only = frozenset(
        p.strip() for p in (args.append_only or "").split(",") if p.strip()
    )

    def build(program, goal, instance):
        parameters = None
        if instance is None:
            parameters = CostParameters.assumed_for(program)
        return maintain_report(
            program, goal=goal, instance=instance, parameters=parameters,
            update_size=args.update_size, append_only=append_only,
        )

    return _run_analyze(args, MAINTAIN_CODES, build)


def cmd_analyze_shard(args: argparse.Namespace) -> int:
    """Static shardability analysis of a query file.

    Classifies every stratum as communication-free, exchange-required
    or sequential for a hash-partitioned parallel fixpoint, with the
    surviving partition keys and certified exchange-volume bounds
    (:mod:`repro.analysis.shard`).  ``--format sarif`` emits only the
    sharding diagnostics (I213-I215, W118-W119).
    """
    from repro.analysis.cost import CostParameters
    from repro.analysis.shard import shard_report

    def build(program, goal, instance):
        parameters = None
        if instance is None:
            parameters = CostParameters.assumed_for(program)
        return shard_report(
            program, goal=goal, instance=instance, parameters=parameters,
            workers=args.workers,
        )

    return _run_analyze(args, SHARD_CODES, build)


def cmd_optimize(args: argparse.Namespace) -> int:
    """Run the certified optimizer over a query file.

    Parses through the span-aware path so every transformation record
    points back at a source position (or, for synthesized rules, at the
    rule it was derived from).  ``--emit-certificate`` additionally
    ships ``program_equivalence`` claims for every applied pass and
    *validates them with the independent checker* before writing — an
    invalid certificate is a bug and exits 1.
    """
    import json

    from repro.analysis import analyze_query
    from repro.analysis.optimize import PASSES, optimize_program

    text = Path(args.query).read_text()
    goal = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("# goal:"):
            goal = stripped.split(":", 1)[1].strip()
    query = _parse_query_text(text, path=args.query)
    if not isinstance(query, DatalogQuery):
        print(
            "error: optimize needs a Datalog query file with '# goal:'",
            file=sys.stderr,
        )
        return INPUT_ERROR
    source = parse_program_source(text)
    spans = [
        entry.span for entry in source.entries if entry.rule is not None
    ]

    passes = None
    if args.passes:
        passes = tuple(name.strip() for name in args.passes.split(","))
        unknown = [name for name in passes if name not in PASSES]
        if unknown:
            known = ", ".join(PASSES)
            print(
                f"error: unknown pass(es) {', '.join(unknown)} "
                f"(known: {known})",
                file=sys.stderr,
            )
            return INPUT_ERROR
    instance = load_instance(args.instance) if args.instance else None
    certify = args.emit_certificate is not None
    result = optimize_program(
        query.program, goal or query.goal, passes,
        instance=instance, spans=spans, certify=certify,
    )

    if args.format == "json":
        payload = result.as_dict()
        report = analyze_query(
            result.optimized, goal=result.goal, semantic=True,
            provenance=result.provenance,
        )
        payload["diagnostics"] = [d.as_dict() for d in report.diagnostics]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for stage in result.stages:
            for record in stage.records:
                print(f"{args.query}: {record.render()}")
        removed, added = result.diff()
        if not result.changed:
            print(f"{args.query}: nothing to optimize")
        else:
            for rule in removed:
                print(f"- {rule!r}")
            for rule in added:
                print(f"+ {rule!r}")
        print(f"# goal: {result.goal}")
        for rule in result.optimized.rules:
            print(repr(rule))

    if certify:
        from repro.certify import check_certificate

        certificate = result.certificate
        assert certificate is not None
        outcome = check_certificate(certificate)
        Path(args.emit_certificate).write_text(
            json.dumps(certificate, indent=2, sort_keys=True)
        )
        claims = len(certificate["claims"])
        if not outcome.valid:
            for failure in outcome.failures:
                print(f"certificate INVALID: {failure}", file=sys.stderr)
            return 1
        print(
            f"certificate: {claims} claim(s) checked, valid "
            f"-> {args.emit_certificate}",
            file=sys.stderr,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="monotonic determinacy & rewritability toolkit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine counters (homomorphism calls, rows scanned, "
        "index rebuilds, phase times) to stderr after the command",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    decide = sub.add_parser("decide", help="decide monotonic determinacy")
    decide.add_argument("query")
    decide.add_argument("views")
    decide.add_argument("--depth", type=int, default=4)
    decide.add_argument(
        "--optimize",
        action="store_true",
        help="run a recursive Datalog query through the certified "
        "optimizer before the canonical-test procedure; applied "
        "transformations ship program_equivalence claims in the "
        "verdict certificate",
    )
    decide.add_argument(
        "--backend", choices=backend_names(), default="interpreted",
        help="evaluation engine for every fixpoint the procedure runs "
        "(default interpreted)",
    )
    decide.set_defaults(func=cmd_decide)

    rewrite = sub.add_parser("rewrite", help="compute a rewriting")
    rewrite.add_argument("query")
    rewrite.add_argument("views")
    rewrite.set_defaults(func=cmd_rewrite)

    certain = sub.add_parser("certain", help="certain answers")
    certain.add_argument("query")
    certain.add_argument("views")
    certain.add_argument("instance")
    certain.set_defaults(func=cmd_certain)

    evaluate = sub.add_parser("eval", help="evaluate a query")
    evaluate.add_argument("query")
    evaluate.add_argument("instance")
    evaluate.add_argument(
        "--backend", choices=backend_names(), default="interpreted",
        help="evaluation engine (default interpreted)",
    )
    evaluate.set_defaults(func=cmd_eval)

    lint = sub.add_parser(
        "lint", help="analyze a query file and report diagnostics"
    )
    lint.add_argument("query")
    lint.add_argument("--views", help="views file to check against")
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="sarif emits a SARIF 2.1.0 log for code-scanning UIs",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors (exit 1 instead of 2)",
    )
    lint.add_argument(
        "--fix",
        action="store_true",
        help="rewrite the file in place, deleting safely removable "
        "rules (W101 duplicate rules, W106 unused predicates); "
        "idempotent — a second run is a no-op",
    )
    lint.add_argument(
        "--semantic",
        action="store_true",
        help="also run the semantic passes: capability facts, binding "
        "patterns, boundedness, sort inference (I204-I206, W109-W110)",
    )
    lint.set_defaults(func=cmd_lint)

    optimize = sub.add_parser(
        "optimize",
        help="apply certified analysis-driven program transformations",
    )
    optimize.add_argument("query", help="Datalog query file with '# goal:'")
    optimize.add_argument(
        "--instance",
        help="instance file whose cardinalities drive join reordering",
    )
    optimize.add_argument(
        "--passes",
        help="comma-separated pass names to run, in order "
        "(default: dead_code,specialize,inline,magic_sets,join_order)",
    )
    optimize.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    optimize.add_argument(
        "--emit-certificate",
        metavar="PATH",
        help="write a schema-2 certificate with one program_equivalence "
        "claim per applied pass, validated by the independent checker "
        "before writing (invalid -> exit 1)",
    )
    optimize.set_defaults(func=cmd_optimize)

    analyze = sub.add_parser(
        "analyze",
        help="standalone static analyses (cost, maintain, shard)",
    )
    analyze_sub = analyze.add_subparsers(dest="analysis", required=True)
    cost = analyze_sub.add_parser(
        "cost",
        help="certified cardinality bounds and join cost estimates",
    )
    cost.add_argument("query", help="Datalog query file")
    cost.add_argument(
        "--instance",
        help="instance file; its measured relation sizes and active "
        "domain parameterize the bounds (default: assumed parameters, "
        "every EDB at 16 facts)",
    )
    cost.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="sarif emits only the cost diagnostics (I209, W112-W114)",
    )
    cost.set_defaults(func=cmd_analyze_cost)

    maintain = analyze_sub.add_parser(
        "maintain",
        help="certified maintainability classification and delta bounds",
    )
    maintain.add_argument("query", help="Datalog query file")
    maintain.add_argument(
        "--instance",
        help="instance file parameterizing the bounds (default: "
        "assumed parameters, every EDB at 16 facts)",
    )
    maintain.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="sarif emits only the maintenance diagnostics "
        "(I210-I212, W115-W117)",
    )
    maintain.add_argument(
        "--update-size", type=int, default=1, metavar="N",
        help="base facts one round may change (default 1); delta "
        "bounds are functions of this",
    )
    maintain.add_argument(
        "--append-only", metavar="PREDS",
        help="comma-separated base predicates promised never to be "
        "retracted from (they stop counting as retraction sources)",
    )
    maintain.set_defaults(func=cmd_analyze_maintain)

    shard = analyze_sub.add_parser(
        "shard",
        help="certified shardability classification and exchange bounds",
    )
    shard.add_argument("query", help="Datalog query file")
    shard.add_argument(
        "--instance",
        help="instance file parameterizing the exchange bounds "
        "(default: assumed parameters, every EDB at 16 facts)",
    )
    shard.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="sarif emits only the sharding diagnostics "
        "(I213-I215, W118-W119)",
    )
    shard.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="worker count the plan assumes (default 4); exchange "
        "bounds scale with N-1",
    )
    shard.set_defaults(func=cmd_analyze_shard)

    from repro.harness.cli import add_evidence_parser

    add_evidence_parser(sub)

    from repro.serve.cli import add_serve_parser

    add_serve_parser(sub)
    return parser


def _render_input_error(exc: ParseError) -> None:
    """``file:line:col: E004 [error] message`` + caret excerpt, à la lint."""
    from repro.analysis import make

    path = getattr(exc, "path", None)
    print(make("E004", exc.message, exc.span).render(path), file=sys.stderr)
    if exc.excerpt:
        print(exc.excerpt, file=sys.stderr)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.stats:
            from repro.core.stats import EngineStats, collecting

            stats = EngineStats()
            with stats.phase("total"), collecting(stats):
                code = args.func(args)
            print(stats.render(), file=sys.stderr)
            return code
        return args.func(args)
    except ParseError as exc:
        _render_input_error(exc)
        return INPUT_ERROR
    except OSError as exc:
        name = exc.filename if exc.filename is not None else ""
        print(f"error: cannot read {name}: {exc.strerror}", file=sys.stderr)
        return INPUT_ERROR


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
