"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``decide``  — monotonic determinacy of a query over views
* ``rewrite`` — compute a rewriting (UCQ for CQ/UCQ queries, inverse
  rules for recursive queries over CQ views)
* ``certain`` — certain answers of a query over a view instance
* ``eval``    — evaluate a query over an instance
* ``lint``    — static analysis: diagnostics with source positions,
  dependency/fragment structure, text or JSON output

Inputs are files in the library's text syntax (see
:mod:`repro.core.parser`).  A *query file* contains Datalog rules plus a
directive line ``# goal: <Pred>`` (absent: the file is parsed as a
single CQ).  A *views file* contains blocks separated by ``# view:
<Name>`` directives, each holding one CQ (single rule) or Datalog
program with ``# goal:``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_instance, parse_program
from repro.views.view import View, ViewSet


def _parse_query_text(text: str):
    goal = None
    lines = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("# goal:"):
            goal = stripped.split(":", 1)[1].strip()
        else:
            lines.append(line)
    body = "\n".join(lines)
    if goal is None:
        return parse_cq(body)
    return DatalogQuery(parse_program(body), goal)


def load_query(path: str):
    return _parse_query_text(Path(path).read_text())


def load_views(path: str) -> ViewSet:
    text = Path(path).read_text()
    blocks: list[tuple[str, list[str]]] = []
    current: tuple[str, list[str]] | None = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("# view:"):
            name = stripped.split(":", 1)[1].strip()
            current = (name, [])
            blocks.append(current)
        elif current is not None:
            current[1].append(line)
    if not blocks:
        raise SystemExit("views file needs at least one '# view:' block")
    views = []
    for name, lines in blocks:
        views.append(View(name, _parse_query_text("\n".join(lines))))
    return ViewSet(views)


def cmd_decide(args: argparse.Namespace) -> int:
    from repro.determinacy.checker import decide_monotonic_determinacy

    query = load_query(args.query)
    views = load_views(args.views)
    result = decide_monotonic_determinacy(
        query, views, approx_depth=args.depth
    )
    print(f"verdict : {result.verdict.value}")
    print(f"method  : {result.method}")
    print(f"detail  : {result.detail}")
    if result.counterexample is not None:
        print("--- counterexample (failing canonical test) ---")
        print(result.counterexample.describe())
    return 0 if result.verdict.value != "no" else 1


def cmd_rewrite(args: argparse.Namespace) -> int:
    query = load_query(args.query)
    views = load_views(args.views)
    if isinstance(query, ConjunctiveQuery):
        from repro.rewriting.forward_backward import (
            NotRewritableError,
            rewrite_forward_backward,
        )

        try:
            rewriting = rewrite_forward_backward(query, views)
        except NotRewritableError as exc:
            print(f"not rewritable: {exc}", file=sys.stderr)
            return 1
        for disjunct in rewriting.disjuncts:
            print(repr(disjunct))
        return 0
    from repro.rewriting.datalog_rewriting import datalog_rewriting

    rewriting = datalog_rewriting(query, views)
    print(f"# goal: {rewriting.goal}")
    for rule in rewriting.program.rules:
        print(repr(rule))
    return 0


def cmd_certain(args: argparse.Namespace) -> int:
    from repro.views.inverse_rules import certain_answers

    query = load_query(args.query)
    if isinstance(query, ConjunctiveQuery):
        raise SystemExit("certain answers need a Datalog query file")
    views = load_views(args.views)
    view_instance = parse_instance(Path(args.instance).read_text())
    for row in sorted(
        certain_answers(query, views, view_instance), key=repr
    ):
        print(row)
    return 0


def cmd_eval(args: argparse.Namespace) -> int:
    query = load_query(args.query)
    instance = parse_instance(Path(args.instance).read_text())
    for row in sorted(query.evaluate(instance), key=repr):
        print(row)
    return 0


#: ``repro lint`` exit codes.
LINT_OK, LINT_ERRORS, LINT_WARNINGS = 0, 1, 2


def cmd_lint(args: argparse.Namespace) -> int:
    """Lint a query file: diagnostics with positions, text or JSON.

    Exit status: 0 — clean (infos only), 2 — warnings, 1 — errors (or
    any warning under ``--strict``).  ``# goal:`` directives are plain
    comments to the tokenizer, so reported positions match the file
    as written.
    """
    import json

    from repro.analysis import Severity, analyze_query, make
    from repro.core.parser import ParseError, parse_program_source

    text = Path(args.query).read_text()
    goal = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("# goal:"):
            goal = stripped.split(":", 1)[1].strip()

    try:
        source = parse_program_source(text)
        views = load_views(args.views) if args.views else None
    except ParseError as exc:
        diagnostic = make("E004", exc.message, exc.span)
        if args.format == "json":
            print(json.dumps({
                "diagnostics": [diagnostic.as_dict()],
                "summary": {"errors": 1, "warnings": 0, "infos": 0},
            }, indent=2, sort_keys=True))
        else:
            print(diagnostic.render(args.query))
            print("1 error(s), 0 warning(s)")
        return LINT_ERRORS

    report = analyze_query(
        source.program(), views=views, source=source, goal=goal
    )
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text(args.query))
    worst = report.max_severity()
    if worst is Severity.ERROR:
        return LINT_ERRORS
    if worst is Severity.WARNING:
        return LINT_ERRORS if args.strict else LINT_WARNINGS
    return LINT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="monotonic determinacy & rewritability toolkit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine counters (homomorphism calls, rows scanned, "
        "index rebuilds, phase times) to stderr after the command",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    decide = sub.add_parser("decide", help="decide monotonic determinacy")
    decide.add_argument("query")
    decide.add_argument("views")
    decide.add_argument("--depth", type=int, default=4)
    decide.set_defaults(func=cmd_decide)

    rewrite = sub.add_parser("rewrite", help="compute a rewriting")
    rewrite.add_argument("query")
    rewrite.add_argument("views")
    rewrite.set_defaults(func=cmd_rewrite)

    certain = sub.add_parser("certain", help="certain answers")
    certain.add_argument("query")
    certain.add_argument("views")
    certain.add_argument("instance")
    certain.set_defaults(func=cmd_certain)

    evaluate = sub.add_parser("eval", help="evaluate a query")
    evaluate.add_argument("query")
    evaluate.add_argument("instance")
    evaluate.set_defaults(func=cmd_eval)

    lint = sub.add_parser(
        "lint", help="analyze a query file and report diagnostics"
    )
    lint.add_argument("query")
    lint.add_argument("--views", help="views file to check against")
    lint.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors (exit 1 instead of 2)",
    )
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.stats:
        from repro.core.stats import EngineStats, collecting

        stats = EngineStats()
        with stats.phase("total"), collecting(stats):
            code = args.func(args)
        print(stats.render(), file=sys.stderr)
        return code
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
