"""Tree decomposition construction.

* :func:`decompose` — heuristic decomposition of an arbitrary instance
  via networkx's min-fill-in junction tree (width within the heuristic's
  guarantee, exact enough for the laptop-scale inputs we use).
* :func:`decomposition_of_expansion` — the *standard* decomposition of a
  Datalog expansion tree: one bag per rule firing (proof of Prop. 3).
  This is exact, has width = max rule variable count, and for normalized
  MDL queries has ``l(TD) ≤ 2`` (Lemma 1).
* :func:`treewidth_exact` — exact treewidth by brute force over small
  instances (used in tests to validate the bounds of Lemmas 2 and 3).
"""

from __future__ import annotations

from itertools import permutations
from typing import Optional

import networkx as nx
from networkx.algorithms.approximation import treewidth_min_fill_in

from repro.core.approximation import ExpansionNode
from repro.core.gaifman import gaifman_graph
from repro.core.instance import Instance
from repro.td.decomposition import (
    DecompositionNode,
    TreeDecomposition,
    single_bag_decomposition,
)


def decompose(instance: Instance, rooted_tuple: tuple = ()) -> TreeDecomposition:
    """A heuristic tree decomposition of an instance.

    When ``rooted_tuple`` is given, its elements are added to every bag
    on the path to a bag containing them... more simply: they are added
    to the root bag and the decomposition is re-rooted there, preserving
    validity (adding elements to a connected prefix keeps both
    conditions; we add them to the root only, after rooting at a bag
    already containing the first element when possible).
    """
    graph = gaifman_graph(instance)
    # elements co-occurring in the rooted tuple must share a bag: clique them
    for i, u in enumerate(rooted_tuple):
        for v in rooted_tuple[i + 1:]:
            if u != v:
                graph.add_edge(u, v)
    if graph.number_of_nodes() == 0:
        return single_bag_decomposition(rooted_tuple)
    _, junction = treewidth_min_fill_in(graph)
    if junction.number_of_nodes() == 0:
        return single_bag_decomposition(
            tuple(rooted_tuple)
            + tuple(e for e in graph.nodes if e not in rooted_tuple)
        )

    # pick a root bag containing the rooted tuple if possible
    root_bag = None
    want = set(rooted_tuple)
    for bag in junction.nodes:
        if want <= set(bag):
            root_bag = bag
            break
    if root_bag is None:
        root_bag = next(iter(junction.nodes))

    def build(bag, parent) -> DecompositionNode:
        elements = list(bag)
        if bag == root_bag and rooted_tuple:
            ordered = list(rooted_tuple) + [
                e for e in elements if e not in want
            ]
        else:
            ordered = elements
        node = DecompositionNode(tuple(ordered))
        for nbr in junction.neighbors(bag):
            if nbr != parent:
                node.children.append(build(nbr, bag))
        return node

    root = build(root_bag, None)
    if rooted_tuple and not (want <= set(root.bag)):
        root = DecompositionNode(
            tuple(rooted_tuple), [root]
        )
    return TreeDecomposition(root)


def decomposition_of_expansion(tree: ExpansionNode) -> TreeDecomposition:
    """The standard decomposition of an expansion: one bag per firing.

    The bag of a node consists of the global terms of the rule firing;
    parent and child share exactly the terms of the connecting IDB atom,
    so the decomposition conditions hold by construction.  Bags are given
    in canonical-database elements (``CanonConst``) so the decomposition
    is valid for ``tree_to_cq(tree).canonical_database()``.
    """
    from repro.core.cq import CanonConst
    from repro.core.terms import Variable

    def freeze(term):
        return CanonConst(term.name) if isinstance(term, Variable) else term

    def build(node: ExpansionNode) -> DecompositionNode:
        return DecompositionNode(
            tuple(freeze(t) for t in node.bag()),
            [build(c) for c in node.children],
        )

    return TreeDecomposition(build(tree))


def treewidth_exact(instance: Instance, limit: int = 8) -> Optional[int]:
    """Exact treewidth (paper convention: max bag size) of a small instance.

    Searches elimination orderings; returns None when the active domain
    exceeds ``limit`` (exponential blow-up guard).  Used as a test oracle.
    """
    graph = gaifman_graph(instance)
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    if n > limit:
        return None
    best = n
    for order in permutations(graph.nodes):
        g = graph.copy()
        width = 0
        for v in order:
            nbrs = list(g.neighbors(v))
            width = max(width, len(nbrs) + 1)
            for i, u in enumerate(nbrs):
                for w in nbrs[i + 1:]:
                    g.add_edge(u, w)
            g.remove_node(v)
            if width >= best:
                break
        best = min(best, width)
    return best
