"""Tree decompositions (§3).

Follows the paper's convention: a decomposition *of width k* has bags of
at most ``k`` elements (not the usual ``k+1``).  A decomposition is a
rooted tree of *bags* (tuples of distinct elements); we also support the
rooted variant for pairs ``(I, ā)`` where ``ā`` must be an initial
segment of the root bag.

``l(TD)`` — the maximum number of bags containing a single element — is
the "treespan" quantity of Lemma 1/Lemma 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.core.instance import Instance


@dataclass
class DecompositionNode:
    """A bag in a rooted tree decomposition."""

    bag: tuple
    children: list["DecompositionNode"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(set(self.bag)) != len(self.bag):
            raise ValueError(f"bag has duplicate elements: {self.bag}")

    def nodes(self) -> Iterator["DecompositionNode"]:
        yield self
        for child in self.children:
            yield from child.nodes()

    def max_outdegree(self) -> int:
        return max(
            (len(n.children) for n in self.nodes()), default=0
        ) if self.children else 0


@dataclass
class TreeDecomposition:
    """A rooted tree decomposition ``TD = (τ, λ)``."""

    root: DecompositionNode

    def nodes(self) -> list[DecompositionNode]:
        return list(self.root.nodes())

    def width(self) -> int:
        """Maximum bag size (the paper's ``k``)."""
        return max(len(n.bag) for n in self.nodes())

    def treespan(self) -> int:
        """``l(TD)``: max number of bags containing one element."""
        counts: dict = {}
        for node in self.nodes():
            for element in node.bag:
                counts[element] = counts.get(element, 0) + 1
        return max(counts.values(), default=0)

    def elements(self) -> set:
        out: set = set()
        for node in self.nodes():
            out.update(node.bag)
        return out

    # ------------------------------------------------------------------
    # validity
    # ------------------------------------------------------------------
    def is_valid_for(
        self, instance: Instance, rooted_tuple: tuple = ()
    ) -> bool:
        """Check the two decomposition conditions (plus rootedness).

        * every fact's elements lie together in some bag,
        * for every element, the bags containing it form a subtree,
        * ``rooted_tuple`` (if given) is an initial segment of the root bag.
        """
        nodes = self.nodes()
        if rooted_tuple and self.root.bag[: len(rooted_tuple)] != tuple(
            rooted_tuple
        ):
            return False
        bags = [set(n.bag) for n in nodes]
        for fact in instance.facts():
            need = set(fact.args)
            if not any(need <= bag for bag in bags):
                return False
        if not (instance.active_domain() <= self.elements()):
            return False
        return self._connected_occurrences()

    def _connected_occurrences(self) -> bool:
        index: dict[int, DecompositionNode] = {}
        parent: dict[int, Optional[int]] = {id(self.root): None}
        order: list[DecompositionNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            index[id(node)] = node
            order.append(node)
            for child in node.children:
                parent[id(child)] = id(node)
                stack.append(child)
        for element in self.elements():
            holders = [n for n in order if element in n.bag]
            if len(holders) <= 1:
                continue
            # connected iff each holder except one has a holder parent
            holder_ids = {id(n) for n in holders}
            roots = [
                n for n in holders
                if parent[id(n)] is None or parent[id(n)] not in holder_ids
            ]
            if len(roots) != 1:
                return False
        return True

    # ------------------------------------------------------------------
    # normal forms
    # ------------------------------------------------------------------
    def binarized(self) -> "TreeDecomposition":
        """An equivalent decomposition with outdegree at most 2.

        A node with ``m > 2`` children is replaced by a right-leaning
        chain of copies of the same bag (§3: "It is easy to show that if
        an instance has any tree decomposition of width k, it has one
        with this property").
        """

        def rebuild(node: DecompositionNode) -> DecompositionNode:
            children = [rebuild(c) for c in node.children]
            if len(children) <= 2:
                return DecompositionNode(node.bag, children)
            head = children[0]
            rest = children[1:]
            current = DecompositionNode(node.bag, [rest[-1]])
            for child in reversed(rest[:-1]):
                current = DecompositionNode(node.bag, [child, current])
            return DecompositionNode(node.bag, [head, current])

        return TreeDecomposition(rebuild(self.root))

    def is_frontier_one(self) -> bool:
        """Neighbouring bags share at most one element (Thm 1, MDL case)."""

        def check(node: DecompositionNode) -> bool:
            for child in node.children:
                if len(set(node.bag) & set(child.bag)) > 1:
                    return False
                if not check(child):
                    return False
            return True

        return check(self.root)

    def size(self) -> int:
        return len(self.nodes())


def decomposition_from_bags(
    bag_tree: dict, root_key, bags: dict
) -> TreeDecomposition:
    """Build from adjacency ``{key: [child keys]}`` plus ``{key: bag}``."""

    def build(key) -> DecompositionNode:
        return DecompositionNode(
            tuple(bags[key]), [build(c) for c in bag_tree.get(key, ())]
        )

    return TreeDecomposition(build(root_key))


def single_bag_decomposition(elements: Iterable) -> TreeDecomposition:
    """The trivial one-bag decomposition."""
    return TreeDecomposition(DecompositionNode(tuple(elements)))
