"""Tree decompositions and tree codes (§3)."""

from repro.td.decomposition import (
    DecompositionNode,
    TreeDecomposition,
    decomposition_from_bags,
    single_bag_decomposition,
)
from repro.td.heuristics import (
    decompose,
    decomposition_of_expansion,
    treewidth_exact,
)
from repro.td.codes import (
    CodeNode,
    TreeCode,
    code_of_instance,
    decode,
    encode,
)

__all__ = [
    "DecompositionNode", "TreeDecomposition", "decomposition_from_bags",
    "single_bag_decomposition", "decompose", "decomposition_of_expansion",
    "treewidth_exact", "CodeNode", "TreeCode", "code_of_instance",
    "decode", "encode",
]
