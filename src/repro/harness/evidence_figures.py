"""Figure 1–5 evidence — the paper's constructions regenerated as data.

Each function sweeps the figure's parameter family (sizes come in as
JSON-serializable job inputs) and checks the figure's claim at every
point.  ``benchmarks/bench_fig*.py`` wrap the same functions for
timing.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.harness.evidence_common import finish


def fig1_adjacency_gadgets(
    sizes: Sequence[Sequence[int]] = ((2, 2), (3, 3), (4, 3)),
) -> dict[str, Any]:
    """Figure 1: HA/VA detect exactly grid adjacency."""
    from repro.constructions.reduction_thm6 import (
        grid_test_instance,
        ha_cq,
        va_cq,
    )
    from repro.constructions.tiling import solvable_example

    from repro.certify.emit import certificate, claim_query_output

    tp = solvable_example()
    checks = []
    claims = []
    pairs = 0
    for n, m in (tuple(size) for size in sizes):
        inst = grid_test_instance(tp, n, m)
        claims.append(claim_query_output(ha_cq(), inst))
        claims.append(claim_query_output(va_cq(), inst))
        ha = {(row[0], row[1]) for row in ha_cq().evaluate(inst)}
        va = {(row[0], row[1]) for row in va_cq().evaluate(inst)}
        expected_ha = {
            (("z", i, j), ("z", i + 1, j))
            for i in range(1, n)
            for j in range(1, m + 1)
        }
        expected_va = {
            (("z", i, j), ("z", i, j + 1))
            for i in range(1, n + 1)
            for j in range(1, m)
        }
        checks.append((f"ha-{n}x{m}", ha == expected_ha))
        checks.append((f"va-{n}x{m}", va == expected_va))
        pairs += len(ha) + len(va)
    return finish(
        "exact-adjacency", checks,
        f"HA/VA return exactly the grid neighbour pairs on "
        f"{len(sizes)} grids ({pairs} pairs total)",
        {"grids": len(sizes), "pairs": pairs},
        certificate=certificate(
            claims,
            meta={"method": "HA/VA gadget evaluation (Fig. 1)"},
        ),
    )


def fig1_verify_rules(n: int = 3, m: int = 3) -> dict[str, Any]:
    """Figure 1: Qverify fires exactly on constraint violations."""
    from repro.constructions.reduction_thm6 import (
        grid_test_instance,
        thm6_query,
    )
    from repro.constructions.tiling import solvable_example

    from repro.certify.emit import certificate, claim_membership

    tp = solvable_example()
    query = thm6_query(tp)
    good = tp.tile_grid(n, m)
    good_instance = grid_test_instance(tp, n, m, good)
    ok = query.boolean(good_instance)
    broken = dict(good)
    broken[(2, 2)] = "a" if good[(2, 2)] == "b" else "b"
    bad_instance = grid_test_instance(tp, n, m, broken)
    bad = query.boolean(bad_instance)
    checks = [
        ("valid-tiling-accepted", ok is False),
        ("flipped-tile-detected", bad is True),
    ]
    return finish(
        "detects-violations", checks,
        f"valid {n}x{m} tiling → Q false; single flipped tile → Q true",
        certificate=certificate(
            [
                claim_membership(query, good_instance, (), member=False),
                claim_membership(query, bad_instance, ()),
            ],
            meta={"method": "Qverify on tilings (Fig. 1)"},
        ),
    )


def fig2_view_image_is_product(ells: Sequence[int] = (2, 3, 4)) -> dict[str, Any]:
    """Figure 2: V(I_ℓ) has S = C × D, axes atomic, special views empty."""
    from repro.constructions.reduction_thm6 import (
        axes_instance,
        thm6_views,
    )
    from repro.constructions.tiling import solvable_example

    from repro.certify.emit import certificate, claim_view_image

    tp = solvable_example()
    views = thm6_views(tp)
    checks = []
    claims = []
    for ell in ells:
        base = axes_instance(ell)
        image = views.image(base)
        claims.append(claim_view_image(views, base, image))
        checks.append((
            f"s-product-{ell}", len(image.tuples("S")) == ell * ell
        ))
        checks.append((
            f"axes-{ell}",
            len(image.tuples("VXSucc")) == ell
            and len(image.tuples("VYSucc")) == ell,
        ))
        checks.append((
            f"special-empty-{ell}",
            not image.tuples("VHA") and not image.tuples("VI"),
        ))
    return finish(
        "product-image", checks,
        f"S = C × D with ℓ² facts for ℓ ∈ {tuple(ells)}; axes exposed "
        "atomically; special views empty",
        {"ells": list(ells)},
        certificate=certificate(
            claims,
            meta={"method": "view images of I_ℓ (Fig. 2)"},
        ),
    )


def fig2_tests_recover_grids(approx_depth: int = 4) -> dict[str, Any]:
    """Figure 2: inverting S-atoms with tile disjuncts yields grid tests."""
    from repro.certify.emit import (
        certificate,
        claim_instance_subset,
        claim_view_image,
    )
    from repro.constructions.reduction_thm6 import thm6_query, thm6_views
    from repro.constructions.tiling import solvable_example
    from repro.core.approximation import approximations
    from repro.determinacy.tests import tests_for_approximation

    tp = solvable_example()
    query = thm6_query(tp)
    views = thm6_views(tp)
    target = None
    for cq in approximations(query, approx_depth):
        if sum(1 for a in cq.atoms if a.pred == "C") == 2:
            target = cq
            break
    grid_like = 0
    total = 0
    grid_test = None
    if target is not None:
        for test in tests_for_approximation(target, views, view_depth=1):
            total += 1
            d_prime = test.test_instance
            if len(d_prime.tuples("XProj")) == 4 and not d_prime.tuples("C"):
                grid_like += 1
                if grid_test is None:
                    grid_test = test
    checks = [
        ("approximation-found", target is not None),
        ("grid-test-recovered", grid_like >= 1),
    ]
    cert = None
    if grid_test is not None:
        # the Lemma-5 invariant behind the recovered grid: the
        # approximation's view image survives into the test instance
        test_image = views.image(grid_test.test_instance)
        cert = certificate(
            [
                claim_view_image(
                    views,
                    target.canonical_database(),
                    grid_test.view_image,
                ),
                claim_view_image(
                    views, grid_test.test_instance, test_image
                ),
                claim_instance_subset(grid_test.view_image, test_image),
            ],
            meta={"method": "inverse-applied grid test (Fig. 2)"},
        )
    return finish(
        "grids-recovered", checks,
        f"{grid_like} fully-grid tests among {total} inversion choices "
        "of the ℓ=2 approximation",
        {"grid_like": grid_like, "total": total},
        certificate=cert,
    )


def fig3_chain_and_image(ks: Sequence[int] = (1, 2, 3, 4)) -> dict[str, Any]:
    """Figure 3: I_k satisfies Q and its image is S · R^k · T."""
    from repro.constructions.diamonds import (
        diamond_chain,
        diamond_query,
        diamond_views,
    )

    from repro.certify.emit import (
        certificate,
        claim_membership,
        claim_view_image,
    )

    q = diamond_query()
    views = diamond_views()
    checks = []
    claims = []
    for k in ks:
        chain = diamond_chain(k + 1)
        holds = q.boolean(chain)
        image = views.image(chain)
        claims.append(claim_membership(q, chain, ()))
        claims.append(claim_view_image(views, chain, image))
        checks.append((f"q-holds-{k}", bool(holds)))
        checks.append((
            f"image-shape-{k}",
            len(image.tuples("S")) == 1
            and len(image.tuples("R")) == k
            and len(image.tuples("T")) == 1,
        ))
    return finish(
        "image-matches", checks,
        f"Q(I_k)=True and image = S·R^k·T for k ∈ {tuple(ks)}",
        {"ks": list(ks)},
        certificate=certificate(
            claims,
            meta={"method": "diamond chains and images (Fig. 3)"},
        ),
    )


def fig3_unravelled_counterexample(k: int = 2, depth: int = 2) -> dict[str, Any]:
    """Figure 3: the inverse chase of the (1,k)-unravelling fails Q."""
    from repro.constructions.diamonds import (
        diamond_query,
        diamond_views,
        unravelled_counterexample,
    )

    from repro.certify.emit import (
        certificate,
        claim_instance_subset,
        claim_membership,
    )

    _image, chased, unravelling = unravelled_counterexample(k, depth=depth)
    q = diamond_query()
    image = diamond_views().image(chased)
    checks = [
        ("chase-fails-q", not q.boolean(chased)),
        ("image-covers-unravelling", unravelling.instance <= image),
    ]
    return finish(
        "counterexample", checks,
        f"Q(I'_k)=False on {len(chased)} facts; J'_k ⊆ V(I'_k) with "
        f"{unravelling.copy_count()} copies",
        {
            "chased_facts": len(chased),
            "copies": unravelling.copy_count(),
        },
        certificate=certificate(
            [
                claim_membership(q, chased, (), member=False),
                claim_instance_subset(unravelling.instance, image),
            ],
            meta={"method": "inverse chase of the unravelling (Fig. 3)"},
        ),
    )


def fig4_long_row(
    lengths: Sequence[int] = (1, 2, 3), k: int = 2, depth: int = 2
) -> dict[str, Any]:
    """Figure 4: rows of length ≥ 2 cannot embed into the unravelling."""
    from repro.certify.emit import (
        certificate,
        claim_hom_witness,
        claim_no_hom,
    )
    from repro.constructions.diamonds import (
        long_row_cq,
        unravelled_counterexample,
    )
    from repro.core.homomorphism import (
        find_homomorphism,
        instance_maps_into,
    )

    _image, _chased, unravelling = unravelled_counterexample(k, depth=depth)
    checks = []
    claims = []
    for length in lengths:
        row = long_row_cq(length)
        maps = instance_maps_into(
            row.canonical_database(), unravelling.instance
        )
        checks.append((f"row-{length}", maps == (length <= 1)))
        if maps:
            mapping = find_homomorphism(row.atoms, unravelling.instance)
            if mapping is not None:
                claims.append(claim_hom_witness(
                    row.atoms, unravelling.instance, mapping
                ))
        else:
            claims.append(claim_no_hom(row.atoms, unravelling.instance))
    return finish(
        "no-embedding", checks,
        f"row(ℓ) embeds iff ℓ ≤ 1, checked for ℓ ∈ {tuple(lengths)}",
        {"lengths": list(lengths)},
        certificate=certificate(
            claims,
            meta={"method": "row embeddings into J'_k (Fig. 4)"},
        ),
    )


def fig5_lemma3_treewidth(
    radii: Sequence[int] = (1, 2),
    families: Sequence[str] = ("chain", "cycle", "tree"),
) -> dict[str, Any]:
    """Figure 5 / Lemma 3: view-image treewidth stays under the bound."""
    from repro.certify.emit import certificate, claim_view_image
    from repro.core.parser import parse_cq
    from repro.determinacy.automata_checker import lemma3_bound
    from repro.harness.evidence_common import decomposition_claim
    from repro.rewriting.generators import binary_tree, chain, cycle
    from repro.td.heuristics import decompose, treewidth_exact
    from repro.views.view import View, ViewSet

    radius_views = {
        1: ViewSet([View("V1", parse_cq("V(x,z) <- R(x,y), R(y,z)"))]),
        2: ViewSet([
            View("V2", parse_cq("V(x,w) <- R(x,y), R(y,z), R(z,w)")),
        ]),
    }
    builders = {
        "chain": lambda: chain("R", 8),
        "cycle": lambda: cycle("R", 6),
        "tree": lambda: binary_tree("R", 3),
    }
    checks = []
    claims = []
    min_margin = None
    for radius in radii:
        views = radius_views[radius]
        for family in families:
            instance = builders[family]()
            k = (
                treewidth_exact(instance, limit=8)
                or decompose(instance).width()
            )
            image = views.image(instance)
            exact = treewidth_exact(image, limit=8)
            width = exact if exact is not None else decompose(image).width()
            bound = lemma3_bound(k, radius)
            checks.append((f"{family}-r{radius}", width <= bound))
            claims.append(claim_view_image(views, instance, image))
            claims.append(
                decomposition_claim(image, decompose(image))
            )
            margin = bound - width
            if min_margin is None or margin < min_margin:
                min_margin = margin
    return finish(
        "within-bound", checks,
        f"image treewidth ≤ k(k^(r+1)-1)/(k-1) across "
        f"{len(checks)} (family, radius) points; tightest margin "
        f"{min_margin:.0f}",
        {"points": len(checks), "min_margin": min_margin},
        certificate=certificate(
            claims,
            meta={
                "method": "view images + heuristic decompositions "
                "(Lemma 3)",
                "note": "the Lemma-3 bound comparison itself uses the "
                "job's exact-treewidth search; claims certify a "
                "concrete decomposition per image",
            },
        ),
    )
