"""Parallel, fault-tolerant execution of the evidence job DAG.

Each job runs in its own worker process (not a shared pool) so a
hanging job can be killed at its wall-clock deadline without poisoning
a pool worker.  The scheduler keeps at most ``workers`` processes
alive, launches jobs as their dependencies reach ``OK``, retries
crashed jobs with linear backoff, and on a terminal failure marks every
transitive dependent ``SKIPPED`` — one bad cell never takes down the
rest of the table.

Decision procedures here are non-elementary in the worst case
(ROADMAP/PODS 2020), so bounded execution is a correctness feature:
``TIMEOUT`` is a first-class verdict, not a hang.
"""

from __future__ import annotations

import contextlib
import multiprocessing
from multiprocessing.connection import Connection
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.core.stats import EngineStats, collecting
from repro.harness.cache import ResultCache
from repro.harness.job import Job, JobResult, JobStatus

#: scheduler poll interval (seconds) — cheap, bounds kill latency
_TICK = 0.02

EventSink = Callable[[dict], None]


@dataclass
class RunnerConfig:
    """Knobs for one run; CLI flags map onto these fields."""

    workers: int = 4
    default_timeout: float = 120.0    # seconds per job attempt
    retry_backoff: float = 0.25       # seconds * attempt number
    retry_timeouts: bool = False      # a hang usually hangs again
    start_method: Optional[str] = None  # None -> fork if available
    optimize: bool = False            # run jobs with the optimizer on
    backend: str = "interpreted"      # evaluation engine for the jobs
    check_cost: bool = False          # audit fixpoints against the
                                      # static cardinality bounds
    check_maintenance: bool = False   # audit maintenance rounds against
                                      # the static delta bounds/strategy
    shards: int = 0                   # >1: run job fixpoints sharded
                                      # across this many worker processes
    check_sharding: bool = False      # audit communication-free strata
                                      # against the shard plan


def _worker(
    fn_ref: str,
    inputs: dict[str, Any],
    conn: Connection,
    optimize: bool = False,
    backend: str = "interpreted",
    check_cost: bool = False,
    check_maintenance: bool = False,
    shards: int = 0,
    check_sharding: bool = False,
) -> None:
    """Child-process entry: resolve the job fn, run it, ship the result.

    Everything crossing the pipe is plain dicts of JSON-ready values;
    :class:`EngineStats` travels as ``to_dict()`` and is merged back in
    the parent (the whole point of the round-trip API).

    ``optimize`` flips the process-wide evaluation default
    (:func:`repro.core.evaluation.set_default_optimize`) so every
    ``fixpoint``/``evaluate`` call inside the job runs through the
    certified optimizer; ``backend`` does the same for the evaluation
    engine (:func:`repro.core.backend.set_default_backend`) — job
    functions need no signature change either way.  ``check_cost``
    installs a :class:`repro.analysis.cost.CostGuard` for the job's
    lifetime: every fixpoint the job computes is audited against the
    static cardinality bounds and the tally (checks, bounds, any
    violations) ships back as the result's ``cost`` block.
    ``check_maintenance`` does the same for incremental maintenance: a
    :class:`repro.analysis.maintain.MaintenanceGuard` audits every
    :meth:`MaterializedView.apply` round against the static delta
    bounds and strategy classification, shipping the tally back as the
    result's ``maintain`` block.  ``shards > 1`` flips the process-wide
    sharding default (:func:`repro.core.shard.set_default_shards`) so
    every fixpoint large enough to qualify runs hash-partitioned across
    that many worker processes; ``check_sharding`` installs a
    :class:`repro.analysis.shard.ShardGuard` auditing every
    communication-free stratum for plan conformance (no tuple on the
    wrong shard), shipping the tally back as the result's ``shard``
    block.  When ``backend`` is ``auto``, the per-fixpoint backend
    choices are shipped as ``backend_resolution`` so the manifest can
    say why each engine was picked.
    """
    import contextlib as _contextlib

    try:
        if optimize:
            from repro.core.evaluation import set_default_optimize

            set_default_optimize(True)
        if backend != "interpreted":
            from repro.core.backend import set_default_backend

            set_default_backend(backend)
        if backend == "auto":
            from repro.core.backend import reset_auto_resolutions

            reset_auto_resolutions()
        job_fn = Job(
            name="<worker>", fn=fn_ref, claim="", expected=""
        ).resolve()
        guard_ctx: Any = _contextlib.nullcontext()
        if check_cost:
            from repro.analysis.cost import cost_checking

            guard_ctx = cost_checking()
        maintain_ctx: Any = _contextlib.nullcontext()
        if check_maintenance:
            from repro.analysis.maintain import maintenance_checking

            maintain_ctx = maintenance_checking()
        if shards and shards > 1:
            from repro.core.shard import set_default_shards

            set_default_shards(shards)
        shard_ctx: Any = _contextlib.nullcontext()
        if check_sharding:
            from repro.analysis.shard import sharding_checking

            shard_ctx = sharding_checking()
        stats = EngineStats()
        with guard_ctx as guard, maintain_ctx as mguard, \
                shard_ctx as sguard, collecting(stats):
            payload = job_fn(**inputs)
        if not isinstance(payload, dict) or "verdict" not in payload:
            raise TypeError(
                f"job function {fn_ref!r} must return a dict with a "
                f"'verdict' key, got {type(payload).__name__}"
            )
        message = {
            "verdict": str(payload["verdict"]),
            "measured": str(payload.get("measured", "")),
            "metrics": payload.get("metrics", {}),
            "engine": stats.to_dict(),
            "certificate": payload.get("certificate"),
            "ivm": payload.get("ivm"),
        }
        if guard is not None:
            message["cost"] = guard.summary()
        if mguard is not None:
            message["maintain"] = mguard.summary()
        if sguard is not None:
            message["shard"] = sguard.summary()
        if backend == "auto":
            from repro.core.backend import auto_resolutions

            message["backend_resolution"] = auto_resolutions()
        conn.send(message)
    except BaseException:
        with contextlib.suppress(Exception):
            conn.send({"error": traceback.format_exc()})
    finally:
        conn.close()


@dataclass
class _Running:
    job: Job
    process: multiprocessing.process.BaseProcess
    conn: object
    deadline: float
    started: float
    attempt: int


@dataclass
class _Pending:
    job: Job
    attempt: int = 1
    not_before: float = 0.0
    waiting_on: set[Any] = field(default_factory=set)


class _NullSink:
    def __call__(self, event: dict[str, Any]) -> None:
        pass


def _toposort_check(jobs: Sequence[Job]) -> None:
    """Reject unknown dependencies and cycles up front."""
    by_name = {job.name: job for job in jobs}
    if len(by_name) != len(jobs):
        seen: set[str] = set()
        for job in jobs:
            if job.name in seen:
                raise ValueError(f"duplicate job name {job.name!r}")
            seen.add(job.name)
    for job in jobs:
        for dep in job.deps:
            if dep not in by_name:
                raise ValueError(
                    f"job {job.name!r} depends on unknown job {dep!r}"
                )
    state: dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str, stack: tuple[str, ...]) -> None:
        mark = state.get(name)
        if mark == 1:
            return
        if mark == 0:
            cycle = " -> ".join((*stack[stack.index(name):], name))
            raise ValueError(f"dependency cycle: {cycle}")
        state[name] = 0
        for dep in by_name[name].deps:
            visit(dep, (*stack, name))
        state[name] = 1

    for job in jobs:
        visit(job.name, ())


def run_jobs(
    jobs: Iterable[Job],
    config: Optional[RunnerConfig] = None,
    cache: Optional[ResultCache] = None,
    events: Optional[EventSink] = None,
) -> dict[str, JobResult]:
    """Execute ``jobs`` respecting dependencies; returns name -> result.

    Never raises for job-level trouble: crashes, timeouts and verdict
    mismatches all land in the returned :class:`JobResult` objects (and
    in the event stream).  Raises only for a malformed DAG.
    """
    jobs = list(jobs)
    _toposort_check(jobs)
    config = config or RunnerConfig()
    emit = events or _NullSink()

    method = config.start_method
    if method is None:
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    ctx = multiprocessing.get_context(method)

    dependents: dict[str, list[str]] = {job.name: [] for job in jobs}
    for job in jobs:
        for dep in job.deps:
            dependents[dep].append(job.name)

    results: dict[str, JobResult] = {}
    pending: dict[str, _Pending] = {
        job.name: _Pending(job, waiting_on=set(job.deps)) for job in jobs
    }
    running: dict[str, _Running] = {}

    def skip_dependents(name: str, reason: str) -> None:
        """Transitively mark everything downstream of ``name`` SKIPPED."""
        frontier = list(dependents[name])
        while frontier:
            child = frontier.pop()
            if child not in pending:
                continue
            entry = pending.pop(child)
            results[child] = JobResult(
                name=child,
                status=JobStatus.SKIPPED,
                expected=entry.job.expected,
                measured=f"skipped: dependency {name} {reason}",
            )
            emit({
                "event": "job_skipped",
                "job": child,
                "cause": name,
                "reason": reason,
            })
            frontier.extend(dependents[child])

    def settle(name: str, result: JobResult) -> None:
        results[name] = result
        if result.status.is_success:
            for child in dependents[name]:
                if child in pending:
                    pending[child].waiting_on.discard(name)
        else:
            skip_dependents(name, result.status.value)

    def launch(entry: _Pending) -> None:
        job = entry.job
        recv, send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker,
            args=(
                job.fn, dict(job.inputs), send,
                config.optimize, config.backend, config.check_cost,
                config.check_maintenance, config.shards,
                config.check_sharding,
            ),
            # not daemonic: a daemonic process may not have children,
            # and sharded fixpoints spawn a worker pool inside the job
            daemon=False,
            name=f"evidence-{job.name}",
        )
        now = time.monotonic()
        timeout = (
            job.timeout if job.timeout is not None
            else config.default_timeout
        )
        process.start()
        send.close()  # parent keeps only the read end
        running[job.name] = _Running(
            job=job,
            process=process,
            conn=recv,
            deadline=now + timeout,
            started=now,
            attempt=entry.attempt,
        )
        emit({
            "event": "job_start",
            "job": job.name,
            "attempt": entry.attempt,
            "timeout_s": timeout,
            "pid": process.pid,
        })

    def kill(entry: _Running) -> None:
        entry.process.terminate()
        entry.process.join(timeout=1.0)
        if entry.process.is_alive():
            entry.process.kill()
            entry.process.join(timeout=1.0)
        entry.conn.close()

    def retry_or_fail(
        entry: _Running, status: JobStatus, error: Optional[str]
    ) -> None:
        job = entry.job
        retryable = (
            status is JobStatus.FAILED
            or (status is JobStatus.TIMEOUT and config.retry_timeouts)
        )
        if retryable and entry.attempt <= job.retries:
            delay = config.retry_backoff * entry.attempt
            pending[job.name] = _Pending(
                job, attempt=entry.attempt + 1,
                not_before=time.monotonic() + delay,
            )
            emit({
                "event": "job_retry",
                "job": job.name,
                "attempt": entry.attempt,
                "backoff_s": delay,
                "status": status.value,
            })
            return
        duration = time.monotonic() - entry.started
        result = JobResult(
            name=job.name,
            status=status,
            expected=job.expected,
            duration=duration,
            attempts=entry.attempt,
            error=error,
            measured=(
                f"killed after {duration:.1f}s"
                if status is JobStatus.TIMEOUT
                else "crashed"
            ),
        )
        emit({
            "event": "job_end",
            "job": job.name,
            "status": status.value,
            "attempt": entry.attempt,
            "duration_s": round(duration, 4),
        })
        settle(job.name, result)

    emit({
        "event": "run_start",
        "jobs": len(jobs),
        "workers": config.workers,
        "start_method": method,
        "cache": cache is not None,
    })

    # cache pass: settle hits before any process is spawned, in
    # dependency order so a hit can unblock a dependent's hit check
    if cache is not None:
        progressed = True
        while progressed:
            progressed = False
            for name in list(pending):
                entry = pending[name]
                if entry.waiting_on:
                    continue
                hit = cache.load(entry.job)
                if hit is None:
                    continue
                hit.status = (
                    JobStatus.OK if hit.matched else JobStatus.MISMATCH
                )
                del pending[name]
                emit({
                    "event": "job_cached",
                    "job": name,
                    "verdict": hit.verdict,
                    "matched": hit.matched,
                })
                settle(name, hit)
                progressed = True

    while pending or running:
        now = time.monotonic()
        # launch everything ready while worker slots are free
        for name in list(pending):
            if len(running) >= config.workers:
                break
            entry = pending[name]
            if entry.waiting_on or entry.not_before > now:
                continue
            del pending[name]
            launch(entry)

        if not running:
            if pending:
                # only backoff waits remain — sleep until the earliest
                wake = min(e.not_before for e in pending.values())
                time.sleep(max(0.0, min(wake - now, 0.5)) or _TICK)
                continue
            break

        time.sleep(_TICK)
        for name in list(running):
            entry = running[name]
            job = entry.job
            delivered = False
            try:
                delivered = entry.conn.poll()
            except (OSError, EOFError):
                delivered = False
            if delivered:
                try:
                    payload = entry.conn.recv()
                except (OSError, EOFError):
                    payload = {"error": "worker pipe closed mid-send"}
                del running[name]
                entry.process.join(timeout=5.0)
                entry.conn.close()
                if "error" in payload:
                    retry_or_fail(entry, JobStatus.FAILED, payload["error"])
                    continue
                duration = time.monotonic() - entry.started
                verdict = payload["verdict"]
                result = JobResult(
                    name=name,
                    status=(
                        JobStatus.OK if verdict == job.expected
                        else JobStatus.MISMATCH
                    ),
                    expected=job.expected,
                    verdict=verdict,
                    measured=payload.get("measured", ""),
                    metrics=payload.get("metrics", {}),
                    engine=payload.get("engine", {}),
                    duration=duration,
                    attempts=entry.attempt,
                    certificate=payload.get("certificate"),
                    cost=payload.get("cost"),
                    backend_resolution=payload.get("backend_resolution"),
                    ivm=payload.get("ivm"),
                    maintain=payload.get("maintain"),
                    shard=payload.get("shard"),
                )
                if cache is not None:
                    cache.store(job, result)
                emit({
                    "event": "job_end",
                    "job": name,
                    "status": result.status.value,
                    "verdict": verdict,
                    "matched": result.matched,
                    "attempt": entry.attempt,
                    "duration_s": round(duration, 4),
                })
                settle(name, result)
            elif now >= entry.deadline:
                del running[name]
                kill(entry)
                emit({
                    "event": "job_timeout",
                    "job": name,
                    "attempt": entry.attempt,
                    "after_s": round(now - entry.started, 4),
                })
                retry_or_fail(entry, JobStatus.TIMEOUT, None)
            elif not entry.process.is_alive():
                # died without sending anything (segfault, os.kill)
                del running[name]
                entry.conn.close()
                retry_or_fail(
                    entry,
                    JobStatus.FAILED,
                    f"worker exited with code {entry.process.exitcode} "
                    f"without a result",
                )

    emit({
        "event": "run_end",
        "statuses": {
            name: result.status.value for name, result in results.items()
        },
    })
    return results
