"""Cost-model-driven scheduling of the evidence job DAG.

The runner (:func:`repro.harness.runner.run_jobs`) launches whichever
ready jobs it encounters first, in registration order.  That leaves
easy wall-clock time on the table: with 4 workers and 22 jobs, starting
a heavy benchmark *last* serializes it behind the whole table.  This
module predicts each job's cost *statically* — without running
anything — and reorders the ready set so the predicted-heaviest work
starts first (classic LPT list scheduling), while dependencies keep
their order constraints.

Prediction reuses the certified cost analysis
(:mod:`repro.analysis.cost`): a job function's source is walked for
Datalog program literals (string constants containing ``<-``), each
parses through the normal parser, and the *assumed-parameter* cost
report's total join cost is summed.  Jobs whose source carries no
parsable program (pure orchestration, figure rendering) fall back to a
small base cost; ``heavy``-flagged benchmarks are multiplied up since
they iterate their programs over scaled instances.

The predictions also produce *hints*: a job predicted past
:data:`HEAVY_COST` is marked ``heavy`` and, when it declares no
explicit timeout, granted double the runner default so a correctly
predicted long job is not killed by a generic deadline.  Hints travel
via :func:`dataclasses.replace` on the frozen :class:`Job` — the cache
key covers name/fn/inputs only, so hinted and unhinted runs share
entries.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import replace
from typing import Iterable, Optional, Sequence

from repro.harness.job import Job

#: fallback cost for jobs with no extractable program literal
BASE_COST = 100

#: multiplier for ``heavy``-flagged jobs (benchmarks iterate their
#: programs over instances much larger than the assumed parameters)
HEAVY_FACTOR = 8

#: predicted cost at which a job earns the ``heavy`` flag and a
#: doubled default timeout
HEAVY_COST = 10_000


def _program_literals(fn_ref: str) -> list[str]:
    """Datalog-looking string constants in the job function's source.

    ``fn_ref`` is the job's ``"module:qualname"``.  Resolution failures
    (module not importable, source not on disk, builtins) yield an
    empty list — scheduling must never make a run fail.
    """
    try:
        fn = Job(name="<cost>", fn=fn_ref, claim="", expected="").resolve()
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except Exception:
        return []
    literals = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if "<-" in node.value:
                literals.append(node.value)
    return literals


def predict_job_cost(job: Job) -> int:
    """Predicted total join cost of one job, assumed parameters.

    Sums the cost model's total join cost over every program literal in
    the job function's source (literals that do not parse — fragments,
    deliberately malformed inputs — are skipped).  Falls back to
    :data:`BASE_COST` when nothing parses; ``heavy`` jobs are scaled by
    :data:`HEAVY_FACTOR`.
    """
    from repro.analysis.cost import cost_report
    from repro.core.parser import ParseError, parse_program

    total = 0
    for text in _program_literals(job.fn):
        program = None
        for candidate in (text, text + "."):
            try:
                program = parse_program(candidate)
                break
            except (ParseError, ValueError):
                continue
        if program is None or not program.rules:
            continue
        try:
            report = cost_report(program, peel=False)
        except Exception:
            continue
        total += report.total_join_cost
    if total <= 0:
        total = BASE_COST
    if job.heavy:
        total *= HEAVY_FACTOR
    return total


def _with_hints(
    job: Job, cost: int, default_timeout: Optional[float]
) -> Job:
    """Apply heavy/timeout hints earned by a high predicted cost."""
    if cost < HEAVY_COST:
        return job
    changes: dict[str, object] = {}
    if not job.heavy:
        changes["heavy"] = True
    if job.timeout is None and default_timeout is not None:
        changes["timeout"] = 2.0 * default_timeout
    return replace(job, **changes) if changes else job


def schedule_jobs(
    jobs: Iterable[Job],
    *,
    default_timeout: Optional[float] = None,
) -> tuple[list[Job], dict[str, int]]:
    """Reorder ``jobs`` so the predicted-heaviest ready work runs first.

    Returns ``(ordered jobs, name -> predicted cost)``.  The order is a
    topological sort of the dependency DAG that, among the jobs whose
    dependencies are already placed, always picks the one with the
    highest predicted cost — the runner launches ready jobs in list
    order, so list position *is* the schedule.  Jobs past
    :data:`HEAVY_COST` come back with ``heavy``/``timeout`` hints
    applied (see :func:`_with_hints`).

    Unknown dependencies and cycles are left for the runner's own DAG
    check: such inputs are returned unreordered so the caller still
    reaches the runner's precise error message.
    """
    ordered_input = list(jobs)
    costs = {job.name: predict_job_cost(job) for job in ordered_input}
    by_name = {job.name: job for job in ordered_input}
    if len(by_name) != len(ordered_input):
        return ordered_input, costs
    placed: set[str] = set()
    remaining = dict(by_name)
    schedule: list[Job] = []
    while remaining:
        ready = [
            job for job in remaining.values()
            if all(dep in placed for dep in job.deps if dep in by_name)
        ]
        if not ready:  # cycle: let the runner report it
            schedule.extend(remaining.values())
            break
        best = max(ready, key=lambda job: (costs[job.name], job.name))
        del remaining[best.name]
        placed.add(best.name)
        schedule.append(
            _with_hints(best, costs[best.name], default_timeout)
        )
    return schedule, costs


def render_schedule(
    schedule: Sequence[Job], costs: dict[str, int]
) -> str:
    """One line per job: predicted cost and inherited hints."""
    lines = []
    for position, job in enumerate(schedule):
        flags = []
        if job.heavy:
            flags.append("heavy")
        if job.timeout is not None:
            flags.append(f"timeout {job.timeout:g}s")
        flag_text = f"  [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"  {position + 1:>2}. {job.name:<34} "
            f"cost <= {costs.get(job.name, 0)}{flag_text}"
        )
    return "\n".join(lines)
