"""Table 2 evidence — decidability and complexity of mon. determinacy.

One function per cell family: the implemented decision procedures run
over parameterized instance families and the verdict records agreement
with the cell's claim (decidable cells) or the faithfulness of the
undecidability reduction (Thm 6).  ``benchmarks/bench_table2.py`` wraps
these functions for timing.
"""

from __future__ import annotations

from typing import Any
import random

from repro.core.containment import Verdict
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.parser import parse_cq, parse_program
from repro.harness.evidence_common import (
    decomposition_claim,
    finish,
    merge_claims,
)
from repro.views.view import View, ViewSet


def _first_image_decomposition_claim(
    query: Any, views: ViewSet, approx_depth: int
) -> dict[str, Any]:
    """A certified decomposition of the first nonempty view image.

    The Thm 3/4 pipeline turns on view images having bounded treewidth
    (Lemma 3); this claim lets the independent checker confirm the
    bound is met on a concrete image.
    """
    from repro.core.approximation import approximation_trees, tree_to_cq
    from repro.td.heuristics import decompose

    for tree in approximation_trees(query, approx_depth):
        approximation = tree_to_cq(tree)
        image = views.image(approximation.canonical_database())
        if len(image):
            return decomposition_claim(image, decompose(image))
    raise AssertionError("no approximation with a nonempty view image")


def _random_path_cq(rng: random.Random, length: int) -> ConjunctiveQuery:
    """A path CQ R(x0,x1),...,optionally marked."""
    atoms = [f"R(x{i},x{i+1})" for i in range(length)]
    if rng.random() < 0.5:
        atoms.append(f"U(x{rng.randrange(length + 1)})")
    return parse_cq("Q(x0) <- " + ", ".join(atoms))


def t2_cq_cq(cases: int = 12, seed: int = 7) -> dict[str, Any]:
    """Cell (CQ, CQ): NP-complete [21] — exact checker over a family."""
    from repro.certify.emit import certificate
    from repro.determinacy.checker import decide_monotonic_determinacy

    rng = random.Random(seed)
    family = []
    for _ in range(cases):
        q = _random_path_cq(rng, rng.randint(1, 3))
        keep_full = rng.random() < 0.5
        views = ViewSet([
            View("VR", parse_cq(
                "V(x,y) <- R(x,y)" if keep_full else "V(x) <- R(x,y)"
            )),
            View("VU", parse_cq("V(x) <- U(x)")),
        ])
        family.append((q, views, keep_full))
    results = [
        decide_monotonic_determinacy(q, views) for q, views, _ in family
    ]
    verdicts = [result.verdict for result in results]
    yes = sum(1 for v in verdicts if v is Verdict.YES)
    # full binary views always determine path CQs
    full_ok = all(
        verdict is Verdict.YES
        for verdict, (_q, _v, keep_full) in zip(verdicts, family)
        if keep_full
    )
    checks = [("full-views-determined", full_ok)]
    return finish(
        "decided-exactly", checks,
        f"{cases} generated cases decided exactly: {yes} yes / "
        f"{len(verdicts) - yes} no",
        {"cases": cases, "yes": yes, "no": len(verdicts) - yes},
        certificate=certificate(
            merge_claims(*(result.certificate for result in results)),
            meta={
                "method": "Thm 5 per case",
                "note": f"claims pooled over {cases} generated cases",
            },
        ),
    )


def t2_cq_datalog() -> dict[str, Any]:
    """Cell (CQ, Datalog): decidable in 2ExpTime (Thm 5)."""
    from repro.certify.emit import certificate
    from repro.determinacy.checker import decide_monotonic_determinacy

    tc = DatalogQuery(parse_program(
        "P(x,y) <- R(x,y). P(x,y) <- R(x,z), P(z,y)."
    ), "P", "VTC")
    views = ViewSet([
        View("VTC", tc),
        View("VU", parse_cq("V(x) <- U(x)")),
    ])
    q_yes = parse_cq("Q() <- R(x,y), U(x)")
    q_no = parse_cq("Q() <- R(x,y), U(x), U(y)")
    positive = decide_monotonic_determinacy(q_yes, views)
    negative = decide_monotonic_determinacy(q_no, views)
    checks = [
        ("positive-case-yes", positive.verdict is Verdict.YES),
        ("negative-case-no", negative.verdict is Verdict.NO),
    ]
    return finish(
        "decided-exactly", checks,
        "both test queries decided exactly (one YES, one NO) through "
        "the forward-automaton × ¬CQ-match product",
        certificate=certificate(
            merge_claims(positive.certificate, negative.certificate),
            meta={"method": "Thm 5 over Datalog views"},
        ),
    )


def t2_fgdl(approx_depth: int = 4) -> dict[str, Any]:
    """Cell (FGDL, FGDL): decidable in 2ExpTime (Thm 3) — ETEST pipeline."""
    from repro.certify.emit import certificate
    from repro.determinacy.automata_checker import decide_fgdl
    from repro.determinacy.certificates import negative_certificate

    q = DatalogQuery(parse_program(
        """
        GoalQ() <- U1(x), W1(x).
        W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
        W1(x) <- U2(x).
        """
    ), "GoalQ")
    views = ViewSet([
        View("V0", parse_cq("V(x,w) <- T(x,y,z), B(z,w), B(y,w)")),
        View("V1", parse_cq("V(x) <- U1(x)")),
        View("V2", parse_cq("V(x) <- U2(x)")),
    ])
    result = decide_fgdl(q, views, approx_depth)
    lossy = ViewSet([v for v in views if v.name != "V2"])
    refuted = decide_fgdl(q, lossy, approx_depth=approx_depth)
    checks = [
        ("determined-passes", result.verdict is Verdict.UNKNOWN),
        ("lossy-refuted", refuted.verdict is Verdict.NO),
        ("treewidth-bounded", result.stats["image_treewidth"]
         <= result.stats["lemma3_bound"]),
    ]
    cert = None
    if refuted.counterexample is not None:
        cert = negative_certificate(
            q, lossy, refuted.counterexample,
            extra_claims=[
                _first_image_decomposition_claim(q, views, approx_depth)
            ],
            meta={"method": "ETEST pipeline (Thm 3)"},
        )
    return finish(
        "determined-and-refuted", checks,
        f"determined case: {result.stats['tests_executed']} tests pass, "
        f"k={result.stats['k']}, image tw="
        f"{result.stats['image_treewidth']} ≤ Lemma-3 bound "
        f"{result.stats['lemma3_bound']:.0f}; lossy case refuted",
        {
            "tests_executed": result.stats["tests_executed"],
            "image_treewidth": result.stats["image_treewidth"],
            "lemma3_bound": result.stats["lemma3_bound"],
        },
        certificate=cert,
    )


def t2_undecidable_reduction(
    approx_depth: int = 4, view_depth: int = 1, max_tests: int = 400
) -> dict[str, Any]:
    """Cell (MDL, UCQ): undecidable (Thm 6) — the reduction is faithful."""
    from repro.constructions.reduction_thm6 import thm6_query, thm6_views
    from repro.constructions.tiling import (
        solvable_example,
        unsolvable_example,
    )
    from repro.determinacy.checker import check_tests

    outcomes = {}
    certificates = {}
    for label, tp in (
        ("solvable", solvable_example()),
        ("unsolvable", unsolvable_example()),
    ):
        result = check_tests(
            thm6_query(tp), thm6_views(tp),
            approx_depth=approx_depth, view_depth=view_depth,
            max_tests=max_tests,
        )
        outcomes[label] = result.verdict
        certificates[label] = result.certificate
    checks = [
        ("solvable-refuted", outcomes["solvable"] is Verdict.NO),
        ("unsolvable-passes", outcomes["unsolvable"] is Verdict.UNKNOWN),
    ]
    return finish(
        "reduction-faithful", checks,
        "solvable TP → failing grid test found; unsolvable TP → all "
        "tests pass within budget",
        {"max_tests": max_tests},
        # the solvable side is the checkable half: its failing test is
        # a genuine counterexample pair (the unsolvable side is a
        # budgeted non-refutation, which certifies nothing)
        certificate=certificates["solvable"],
    )


def t2_lower_bounds() -> dict[str, Any]:
    """Prop. 9: the reductions from equivalence/containment."""
    from repro.certify.emit import certificate
    from repro.determinacy.checker import decide_monotonic_determinacy
    from repro.determinacy.reductions import (
        containment_to_determinacy,
        equivalence_to_determinacy,
    )

    outcomes = []
    results = []
    # Lemma 7 on CQs
    for qv_text, equivalent in (
        ("V(x) <- R(x,y), R(x,z)", True),
        ("V(x) <- R(x,y), R(y,z)", False),
    ):
        query, views = equivalence_to_determinacy(
            parse_cq("Q(x) <- R(x,y)"), parse_cq(qv_text)
        )
        result = decide_monotonic_determinacy(query, views)
        results.append(result)
        outcomes.append((result.verdict is Verdict.YES) == equivalent)
    # Lemma 8 on CQs
    for sub, sup, contained in (
        ("Q() <- R(x,y), R(y,z)", "Q() <- R(u,v)", True),
        ("Q() <- R(u,v)", "Q() <- R(x,x)", False),
    ):
        query, views = containment_to_determinacy(
            parse_cq(sub), parse_cq(sup)
        )
        result = decide_monotonic_determinacy(
            query, views, approx_depth=3
        )
        results.append(result)
        outcomes.append((result.verdict is not Verdict.NO) == contained)
    checks = [("all-reductions-faithful", all(outcomes))]
    return finish(
        "reductions-faithful", checks,
        f"{sum(outcomes)}/{len(outcomes)} reduction instances faithful",
        {"instances": len(outcomes), "faithful": sum(outcomes)},
        certificate=certificate(
            merge_claims(*(result.certificate for result in results)),
            meta={
                "method": "Prop. 9 reductions",
                "note": "claims pooled over the decided instances "
                "(budget-limited UNKNOWNs certify nothing)",
            },
        ),
    )


def t2_mdl_cq_thm4(approx_depth: int = 4) -> dict[str, Any]:
    """Cell (MDL, FGDL+CQ): decidable in 3ExpTime (Thm 4)."""
    from repro.certify.emit import certificate
    from repro.core.normalization import is_normalized, normalize
    from repro.determinacy.automata_checker import decide_fgdl
    from repro.determinacy.certificates import negative_certificate

    q = DatalogQuery(parse_program(
        """
        A(x) <- B(x), M(x).
        B(x) <- R(x,y), B(y).
        B(x) <- U(x).
        GoalM() <- A(x).
        """
    ), "GoalM")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(x) <- U(x)")),
        View("VM", parse_cq("V(x) <- M(x)")),
    ])
    normalized = normalize(q)
    result = decide_fgdl(q, views, approx_depth)
    lossy = ViewSet([v for v in views if v.name != "VM"])
    refuted = decide_fgdl(q, lossy, approx_depth=approx_depth)
    checks = [
        ("input-not-normalized", not is_normalized(q)),
        ("normalization-works", is_normalized(normalized)),
        ("determined-passes", result.verdict is Verdict.UNKNOWN),
        ("lossy-refuted", refuted.verdict is Verdict.NO),
    ]
    cert = None
    if refuted.counterexample is not None:
        cert = negative_certificate(
            q, lossy, refuted.counterexample,
            extra_claims=[_first_image_decomposition_claim(
                normalized, views, approx_depth
            )],
            meta={"method": "ETEST pipeline (Thm 4, normalized MDL)"},
        )
    return finish(
        "determined-and-refuted", checks,
        f"normalization applied; determined case passes "
        f"{result.stats['tests_executed']} tests with image tw "
        f"{result.stats['image_treewidth']} ≤ bound "
        f"{result.stats['lemma3_bound']:.0f}; lossy case refuted",
        {
            "tests_executed": result.stats["tests_executed"],
            "image_treewidth": result.stats["image_treewidth"],
        },
        certificate=cert,
    )


def t2_cross_validation(cases: int = 8, seed: int = 13) -> dict[str, Any]:
    """Methodology: the Thm 5 path and the finite-test path agree."""
    from repro.certify.emit import certificate
    from repro.determinacy.checker import check_tests
    from repro.determinacy.cq_query import decide_cq_ucq

    rng = random.Random(seed)
    family = []
    for _ in range(cases):
        q = _random_path_cq(rng, rng.randint(1, 2))
        full = rng.random() < 0.5
        views = ViewSet([
            View("VR", parse_cq(
                "V(x,y) <- R(x,y)" if full else "V(x) <- R(x,y)"
            )),
            View("VU", parse_cq("V(x) <- U(x)")),
        ])
        family.append((q, views))
    agreements = 0
    disagreements = []
    test_certificates = []
    for q, views in family:
        exact = decide_cq_ucq(q, views)[0].verdict
        tests = check_tests(q, views)
        test_certificates.append(tests.certificate)
        if exact == tests.verdict:
            agreements += 1
        else:
            disagreements.append(repr((q, exact, tests.verdict)))
    checks = [("procedures-agree", not disagreements)]
    return finish(
        "procedures-agree", checks,
        f"Thm 5 automata path == Lemma 5 finite-test path on "
        f"{agreements}/{cases} generated cases",
        {"cases": cases, "agreements": agreements},
        certificate=certificate(
            merge_claims(*test_certificates),
            meta={
                "method": "Lemma 5 finite-test path",
                "note": "membership claims certify every canonical "
                "test outcome the cross-validation relied on",
            },
        ),
    )
