"""The evidence-job registry.

:func:`default_registry` declares every Table 1 cell, Table 2 cell and
Figure 1–5 construction as a :class:`~repro.harness.job.Job` with its
paper claim, expected verdict and dependencies.  Dependencies encode
*meaningfulness*, not data flow: e.g. the Figure 4 row-embedding claim
is only evidence if the Figure 3 unravelled counterexample it reasons
about is itself sound, so a broken ``fig3-unravelled-counterexample``
poisons ``fig4-long-row`` instead of letting it "pass" vacuously.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.harness.job import Job

_T1 = "repro.harness.evidence_table1"
_T2 = "repro.harness.evidence_table2"
_FIG = "repro.harness.evidence_figures"
_IVM = "repro.harness.evidence_ivm"
_SHARD = "repro.harness.evidence_shard"


class JobRegistry:
    """An ordered, name-unique collection of jobs."""

    def __init__(self, jobs: Iterable[Job] = ()) -> None:
        self._jobs: dict[str, Job] = {}
        for job in jobs:
            self.add(job)

    def add(self, job: Job) -> Job:
        if job.name in self._jobs:
            raise ValueError(f"duplicate job name {job.name!r}")
        for dep in job.deps:
            if dep not in self._jobs:
                raise ValueError(
                    f"job {job.name!r} depends on {dep!r}, which is not "
                    f"registered (register dependencies first)"
                )
        self._jobs[job.name] = job
        return job

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._jobs

    def get(self, name: str) -> Job:
        return self._jobs[name]

    def select(self, pattern: Optional[str] = None) -> list[Job]:
        """Jobs matching ``pattern`` plus their transitive dependencies.

        Dependencies are pulled in so a filtered run still executes a
        well-formed DAG; declaration order is preserved.
        """
        if not pattern:
            return list(self._jobs.values())
        wanted: set[str] = set()

        def pull(name: str) -> None:
            if name in wanted:
                return
            wanted.add(name)
            for dep in self._jobs[name].deps:
                pull(dep)

        for job in self._jobs.values():
            if job.matches(pattern):
                pull(job.name)
        return [job for job in self._jobs.values() if job.name in wanted]


def default_registry() -> JobRegistry:
    """Every paper claim as a job.  Names are stable CLI identifiers."""
    registry = JobRegistry()

    # ------------------------------------------------------- Table 1
    registry.add(Job(
        name="t1-cq-rewriting",
        fn=f"{_T1}:t1_cq_rewriting",
        claim="CQ query mon. determined over Datalog views → CQ "
              "rewriting of polynomial size (Prop. 8a)",
        expected="cq-rewriting",
        tags=("table1", "rewriting"),
    ))
    registry.add(Job(
        name="t1-ucq-rewriting",
        fn=f"{_T1}:t1_ucq_rewriting",
        claim="UCQ query mon. determined → UCQ rewriting (Prop. 8b)",
        expected="ucq-rewriting",
        tags=("table1", "rewriting"),
    ))
    registry.add(Job(
        name="t1-mdl-cq-fgdl-rewriting",
        fn=f"{_T1}:t1_mdl_cq_fgdl_rewriting",
        claim="MDL query mon. determined over CQ views → FGDL "
              "rewriting ([14]/Thm 2)",
        expected="fgdl-rewriting",
        tags=("table1", "rewriting"),
    ))
    registry.add(Job(
        name="fig3-unravelled-counterexample",
        fn=f"{_FIG}:fig3_unravelled_counterexample",
        claim="the inverse chase of the (1,k)-unravelling fails Q "
              "while its view image covers the unravelling (Fig. 3)",
        expected="counterexample",
        tags=("figures", "fig3"),
        heavy=True,
    ))
    registry.add(Job(
        name="t1-mdl-cq-not-mdl",
        fn=f"{_T1}:t1_mdl_cq_not_mdl",
        claim="the diamond Q separates: Q(I_k)=True, Q(I'_k)=False, "
              "and the Figure-4 row cannot embed into the "
              "(1,k)-unravelling (Thm 7)",
        expected="mdl-separation",
        deps=("fig3-unravelled-counterexample",),
        tags=("table1", "separation"),
        heavy=True,
    ))
    registry.add(Job(
        name="t1-datalog-fgdl",
        fn=f"{_T1}:t1_datalog_fgdl",
        claim="Datalog query mon. determined over FGDL views → "
              "Datalog rewriting (Thm 1)",
        expected="datalog-rewriting",
        tags=("table1", "rewriting"),
    ))
    registry.add(Job(
        name="t1-thm8-no-datalog-rewriting",
        fn=f"{_T1}:t1_thm8_no_datalog_rewriting",
        claim="Q_TP* mon. determined over V_TP* but with no Datalog "
              "rewriting (Thm 8)",
        expected="no-datalog-rewriting",
        tags=("table1", "separation"),
        heavy=True,
    ))
    registry.add(Job(
        name="t1-mdl-rewriting-via-automata",
        fn=f"{_T1}:t1_mdl_rewriting_via_automata",
        claim="for MDL queries the Thm 1 rewriting can be taken in MDL "
              "(frontier-one codes + unary backward predicates)",
        expected="mdl-rewriting",
        tags=("table1", "rewriting"),
    ))

    # ------------------------------------------------------- Table 2
    registry.add(Job(
        name="t2-cq-cq",
        fn=f"{_T2}:t2_cq_cq",
        claim="monotonic determinacy for CQ/CQ is decidable "
              "(NP-complete, [21])",
        expected="decided-exactly",
        inputs={"cases": 12, "seed": 7},
        tags=("table2", "decision"),
    ))
    registry.add(Job(
        name="t2-cq-datalog",
        fn=f"{_T2}:t2_cq_datalog",
        claim="CQ query / recursive Datalog views: decidable in "
              "2ExpTime (Thm 5)",
        expected="decided-exactly",
        tags=("table2", "decision"),
    ))
    registry.add(Job(
        name="t2-fgdl",
        fn=f"{_T2}:t2_fgdl",
        claim="FGDL/FGDL decidable in 2ExpTime; view-image treewidth "
              "stays bounded (Thm 3, Lemmas 2-3)",
        expected="determined-and-refuted",
        tags=("table2", "decision"),
    ))
    registry.add(Job(
        name="t2-undecidable-reduction",
        fn=f"{_T2}:t2_undecidable_reduction",
        claim="tiling solvable ⟺ Q_TP NOT mon. determined over V_TP "
              "(undecidability, Thm 6)",
        expected="reduction-faithful",
        inputs={"approx_depth": 4, "view_depth": 1, "max_tests": 400},
        tags=("table2", "reduction"),
        heavy=True,
    ))
    registry.add(Job(
        name="t2-lower-bounds",
        fn=f"{_T2}:t2_lower_bounds",
        claim="equivalence/containment reduce to monotonic determinacy "
              "(Prop. 9 lower bounds)",
        expected="reductions-faithful",
        tags=("table2", "reduction"),
    ))
    registry.add(Job(
        name="t2-mdl-cq-thm4",
        fn=f"{_T2}:t2_mdl_cq_thm4",
        claim="MDL query over CQ views: decidable in 3ExpTime via "
              "normalization + treewidth bound (Thm 4)",
        expected="determined-and-refuted",
        tags=("table2", "decision"),
    ))
    registry.add(Job(
        name="t2-cross-validation",
        fn=f"{_T2}:t2_cross_validation",
        claim="(methodology) the Thm 5 automata path and the Lemma 5 "
              "finite-test path must agree",
        expected="procedures-agree",
        inputs={"cases": 8, "seed": 13},
        deps=("t2-cq-cq",),
        tags=("table2", "methodology"),
        heavy=True,
    ))

    # ------------------------------------------------------- Figures
    registry.add(Job(
        name="fig1-adjacency-gadgets",
        fn=f"{_FIG}:fig1_adjacency_gadgets",
        claim="HA/VA detect exactly horizontal/vertical grid adjacency "
              "(Fig. 1)",
        expected="exact-adjacency",
        inputs={"sizes": [[2, 2], [3, 3], [4, 3]]},
        tags=("figures", "fig1"),
    ))
    registry.add(Job(
        name="fig1-verify-rules",
        fn=f"{_FIG}:fig1_verify_rules",
        claim="Q_TP is False exactly on grid tests carrying a valid "
              "tiling (Fig. 1, Qverify)",
        expected="detects-violations",
        deps=("fig1-adjacency-gadgets",),
        tags=("figures", "fig1"),
    ))
    registry.add(Job(
        name="fig2-view-image",
        fn=f"{_FIG}:fig2_view_image_is_product",
        claim="V(I_ℓ): S = C × D (ℓ² facts), axes exposed atomically, "
              "special views empty (Fig. 2)",
        expected="product-image",
        inputs={"ells": [2, 3, 4]},
        tags=("figures", "fig2"),
    ))
    registry.add(Job(
        name="fig2-tests-recover-grids",
        fn=f"{_FIG}:fig2_tests_recover_grids",
        claim="grid-like tests arise from the view image by replacing "
              "each S-atom with a tile disjunct (Fig. 2)",
        expected="grids-recovered",
        deps=("fig2-view-image",),
        tags=("figures", "fig2"),
    ))
    registry.add(Job(
        name="fig3-chain-and-image",
        fn=f"{_FIG}:fig3_chain_and_image",
        claim="I_k: chain of k+1 diamonds satisfies Q; its image is "
              "S · R^k · T (Fig. 3)",
        expected="image-matches",
        inputs={"ks": [1, 2, 3, 4]},
        tags=("figures", "fig3"),
    ))
    registry.add(Job(
        name="fig4-long-row",
        fn=f"{_FIG}:fig4_long_row",
        claim="a row of ≥2 R-rectangles needs two shared elements "
              "between bags — impossible in a (1,k)-unravelling (Fig. 4)",
        expected="no-embedding",
        inputs={"lengths": [1, 2, 3]},
        deps=("fig3-unravelled-counterexample",),
        tags=("figures", "fig4"),
    ))
    registry.add(Job(
        name="fig5-lemma3-treewidth",
        fn=f"{_FIG}:fig5_lemma3_treewidth",
        claim="image treewidth ≤ k(k^(r+1)-1)/(k-1) across instance "
              "families and view radii (Fig. 5 / Lemma 3)",
        expected="within-bound",
        inputs={"radii": [1, 2], "families": ["chain", "cycle", "tree"]},
        tags=("figures", "fig5"),
    ))

    # ------------------------------------------- incremental maintenance
    registry.add(Job(
        name="ivm-chain-maintenance",
        fn=f"{_IVM}:ivm_chain_maintenance",
        claim="counting/DRed maintenance of chain transitive closure "
              "equals the from-scratch fixpoint after every round",
        expected="maintenance-equivalent",
        inputs={"nodes": 48, "rounds": 12},
        tags=("ivm", "maintenance"),
    ))
    registry.add(Job(
        name="ivm-grid-maintenance",
        fn=f"{_IVM}:ivm_grid_maintenance",
        claim="DRed overdelete/rederive on grid reachability equals "
              "the from-scratch fixpoint after every round",
        expected="maintenance-equivalent",
        inputs={"side": 5, "rounds": 10},
        tags=("ivm", "maintenance"),
    ))
    registry.add(Job(
        name="ivm-insert-monotone-chain",
        fn=f"{_IVM}:ivm_insert_monotone_chain",
        claim="insert-only rounds into recursive strata skip the DRed "
              "overdelete machinery, and a recursive-but-counting-safe "
              "stratum is maintained by counting instead of DRed",
        expected="maintenance-equivalent",
        inputs={"nodes": 40, "rounds": 10},
        tags=("ivm", "maintenance", "analysis"),
    ))
    registry.add(Job(
        name="ivm-retraction-grid-bounds",
        fn=f"{_IVM}:ivm_retraction_grid_bounds",
        claim="the measured maintenance delta of every retraction round "
              "stays within the statically predicted delta bound",
        expected="maintenance-equivalent",
        inputs={"side": 4, "rounds": 8},
        tags=("ivm", "maintenance", "analysis"),
    ))

    # ------------------------------------------------ sharded evaluation
    registry.add(Job(
        name="shard-tenant-reachability",
        fn=f"{_SHARD}:shard_tenant_reachability",
        claim="a communication-free stratum reaches the identical "
              "fixpoint hash-partitioned across workers with zero "
              "exchanged tuples, every fact on its owning shard",
        expected="shard-equivalent",
        inputs={"tenants": 12, "nodes": 24, "shards": 2},
        tags=("shard", "analysis"),
    ))
    registry.add(Job(
        name="shard-grid-exchange",
        fn=f"{_SHARD}:shard_grid_exchange",
        claim="an exchange-required stratum reaches the identical "
              "fixpoint with measured delta traffic within the "
              "certified exchange bound",
        expected="shard-equivalent",
        inputs={"side": 12, "shards": 2},
        tags=("shard", "analysis"),
    ))
    return registry
