"""Shared shape of evidence-job return values.

Every evidence function performs its construction, evaluates a list of
named boolean checks, and returns::

    {"verdict": <ok-verdict | "violated(check,...)" >,
     "measured": <human summary>,
     "metrics": {...}}

A failed check therefore surfaces as a *verdict mismatch* in the run
manifest (the claim check ran and disagreed), which is distinct from a
crash (``FAILED``) or a kill at the deadline (``TIMEOUT``).
"""

from __future__ import annotations

from typing import Optional, Sequence


def finish(
    ok_verdict: str,
    checks: Sequence[tuple[str, bool]],
    measured: str,
    metrics: Optional[dict] = None,
) -> dict:
    """Fold named checks into the evidence-result dict."""
    failed = [label for label, ok in checks if not ok]
    if failed:
        verdict = "violated(" + ",".join(failed) + ")"
    else:
        verdict = ok_verdict
    return {
        "verdict": verdict,
        "measured": measured,
        "metrics": dict(metrics or {}),
    }
