"""Shared shape of evidence-job return values.

Every evidence function performs its construction, evaluates a list of
named boolean checks, and returns::

    {"verdict": <ok-verdict | "violated(check,...)" >,
     "measured": <human summary>,
     "metrics": {...},
     "certificate": {...} | None}

A failed check therefore surfaces as a *verdict mismatch* in the run
manifest (the claim check ran and disagreed), which is distinct from a
crash (``FAILED``) or a kill at the deadline (``TIMEOUT``).

``certificate`` is a :mod:`repro.certify` certificate restating the
core of the job's claim in the independently checkable vocabulary, so
``evidence run --check-certificates`` can validate every verdict with
naive evaluation only — no trust in the engine fast paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.td.decomposition import TreeDecomposition


def finish(
    ok_verdict: str,
    checks: Sequence[tuple[str, bool]],
    measured: str,
    metrics: Optional[dict[str, Any]] = None,
    certificate: Optional[dict[str, Any]] = None,
    ivm: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Fold named checks into the evidence-result dict.

    ``ivm`` is the optional incremental-maintenance block for jobs
    that drive a :class:`repro.ivm.MaterializedView` (round and
    inserted/deleted/rederived counts, maintenance-vs-recompute
    timings); it ships as the result's ``ivm`` field and is summarized
    by the manifest.
    """
    failed = [label for label, ok in checks if not ok]
    if failed:
        verdict = "violated(" + ",".join(failed) + ")"
    else:
        verdict = ok_verdict
    return {
        "verdict": verdict,
        "measured": measured,
        "metrics": dict(metrics or {}),
        "certificate": certificate,
        "ivm": ivm,
    }


def decomposition_claim(
    facts: Any, decomposition: "TreeDecomposition"
) -> dict[str, Any]:
    """Flatten a :class:`~repro.td.decomposition.TreeDecomposition`
    into a ``tree_decomposition`` claim's bag/edge lists."""
    from repro.certify.emit import claim_tree_decomposition

    nodes = decomposition.nodes()
    index = {id(node): i for i, node in enumerate(nodes)}
    edges = [
        (index[id(node)], index[id(child)])
        for node in nodes
        for child in node.children
    ]
    return claim_tree_decomposition(
        facts,
        [node.bag for node in nodes],
        edges,
        decomposition.width(),
    )


def merge_claims(*certificates: Optional[dict[str, Any]]) -> list[dict[str, Any]]:
    """Concatenate the claims of several certificates (None-tolerant).

    Jobs that exercise many small cases produce one certificate per
    case; the job-level certificate carries the union of their claims.
    """
    claims: list[dict[str, Any]] = []
    for cert in certificates:
        if cert:
            claims.extend(cert.get("claims", []))
    return claims
