"""``python -m repro evidence {list,run,report}``.

* ``list``   — the registered jobs (name, tags, expected verdict, deps)
* ``run``    — execute the job DAG in parallel; writes
  ``manifest.json`` + ``events.jsonl`` under ``--out-dir`` and exits
  non-zero on any verdict mismatch, failure, timeout or skip
* ``report`` — re-render (and re-gate on) a previously written manifest
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.backend import backend_names
from repro.harness.cache import ResultCache, code_fingerprint
from repro.harness.events import EventLog
from repro.harness.manifest import (
    build_manifest,
    check_result_certificates,
    load_manifest,
    manifest_exit_code,
    render_manifest,
    write_manifest,
)
from repro.harness.registry import default_registry
from repro.harness.runner import RunnerConfig, run_jobs

DEFAULT_CACHE_DIR = Path(".repro-cache") / "evidence"
DEFAULT_OUT_DIR = Path("evidence-out")


def cmd_evidence_list(args: argparse.Namespace) -> int:
    registry = default_registry()
    jobs = registry.select(args.filter)
    if args.format == "json":
        print(json.dumps(
            {"jobs": [job.as_dict() for job in jobs]},
            indent=2, sort_keys=True,
        ))
        return 0
    for job in jobs:
        deps = f"  <- {', '.join(job.deps)}" if job.deps else ""
        print(f"{job.name:<34} [{', '.join(job.tags)}]{deps}")
        print(f"    claim   : {job.claim}")
        print(f"    expected: {job.expected}")
    print(f"{len(jobs)} job(s)")
    return 0


def cmd_evidence_run(args: argparse.Namespace) -> int:
    registry = default_registry()
    jobs = registry.select(args.filter)
    if not jobs:
        print(f"no jobs match filter {args.filter!r}", file=sys.stderr)
        return 2
    optimize = getattr(args, "optimize", False)
    backend = getattr(args, "backend", "interpreted")
    check_cost = getattr(args, "check_cost", False)
    check_maintenance = getattr(args, "check_maintenance", False)
    shards = max(0, getattr(args, "shards", 0) or 0)
    check_sharding = getattr(args, "check_sharding", False)
    fingerprint = code_fingerprint()
    # results depend on the evaluation mode, not just the code: key the
    # cache on a structured mode dict so runs in different modes never
    # share entries (and the fingerprint stays pure in the manifest)
    run_mode: dict[str, object] = {"optimize": optimize, "backend": backend}
    if check_cost:
        # cost-audited results carry an extra payload block; keep them
        # apart so plain runs never surface a result without one (and
        # plain cache keys stay byte-identical to earlier schemas)
        run_mode["check_cost"] = True
    if check_maintenance:
        run_mode["check_maintenance"] = True
    if shards:
        # sharded runs partition fixpoints across worker processes;
        # keep their results apart from single-process entries
        run_mode["shards"] = shards
    if check_sharding:
        run_mode["check_sharding"] = True
    cache = (
        None if args.no_cache
        else ResultCache(Path(args.cache_dir), fingerprint, run_mode)
    )
    baseline = None
    if getattr(args, "baseline", None):
        path = Path(args.baseline)
        if path.is_dir():
            path = path / "manifest.json"
        try:
            baseline = load_manifest(path)
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"cannot read baseline manifest {path}: {exc}",
                file=sys.stderr,
            )
            return 2
    out_dir = Path(args.out_dir)
    config = RunnerConfig(
        workers=max(1, args.jobs),
        default_timeout=args.timeout,
        optimize=optimize,
        backend=backend,
        check_cost=check_cost,
        check_maintenance=check_maintenance,
        shards=shards,
        check_sharding=check_sharding,
    )
    if not getattr(args, "no_schedule", False):
        from repro.harness.schedule import schedule_jobs

        jobs, predicted = schedule_jobs(
            jobs, default_timeout=config.default_timeout
        )
        if args.verbose:
            from repro.harness.schedule import render_schedule

            print("schedule (predicted cost, heaviest-ready first):")
            print(render_schedule(jobs, predicted))
    started = time.perf_counter()
    with EventLog(out_dir / "events.jsonl") as events:
        results = run_jobs(jobs, config=config, cache=cache, events=events)
    certificate_checks = (
        check_result_certificates(results)
        if args.check_certificates
        else None
    )
    manifest = build_manifest(
        jobs,
        results,
        wall_seconds=time.perf_counter() - started,
        workers=config.workers,
        default_timeout=config.default_timeout,
        code_fingerprint=fingerprint,
        cache_used=cache is not None,
        certificate_checks=certificate_checks,
        optimize=optimize,
        backend=backend,
        check_cost=check_cost,
        check_maintenance=check_maintenance,
        shards=shards,
        check_sharding=check_sharding,
        baseline=baseline,
    )
    write_manifest(manifest, out_dir / "manifest.json")
    if args.format == "json":
        print(json.dumps(manifest, indent=2, sort_keys=True))
    else:
        print(render_manifest(manifest, verbose=args.verbose))
        print(f"manifest: {out_dir / 'manifest.json'}")
    return manifest_exit_code(manifest)


def cmd_evidence_report(args: argparse.Namespace) -> int:
    path = Path(args.manifest)
    if path.is_dir():
        path = path / "manifest.json"
    try:
        manifest = load_manifest(path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read manifest {path}: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(manifest, indent=2, sort_keys=True))
    else:
        print(render_manifest(manifest, verbose=True))
    return manifest_exit_code(manifest)


def add_evidence_parser(sub: argparse._SubParsersAction) -> None:
    """Wire the ``evidence`` command family into the main CLI."""
    evidence = sub.add_parser(
        "evidence",
        help="regenerate the paper's tables/figures as a checked job DAG",
    )
    esub = evidence.add_subparsers(dest="evidence_command", required=True)

    elist = esub.add_parser("list", help="list registered evidence jobs")
    elist.add_argument(
        "--filter", default=None,
        help="substring over job names/tags (comma = any-of); "
        "dependencies of matches are included",
    )
    elist.add_argument("--format", choices=("text", "json"), default="text")
    elist.set_defaults(func=cmd_evidence_list)

    erun = esub.add_parser("run", help="run the evidence job DAG")
    erun.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="worker processes (default 4)",
    )
    erun.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="per-job wall-clock budget; a job over budget is killed "
        "and marked TIMEOUT (default 120)",
    )
    erun.add_argument("--filter", default=None,
                      help="substring over job names/tags (comma = any-of)")
    erun.add_argument(
        "--no-cache", action="store_true",
        help="ignore (and do not write) the content-addressed cache",
    )
    erun.add_argument(
        "--cache-dir", default=str(DEFAULT_CACHE_DIR),
        help=f"result cache directory (default {DEFAULT_CACHE_DIR})",
    )
    erun.add_argument(
        "--out-dir", default=str(DEFAULT_OUT_DIR),
        help="where manifest.json and events.jsonl are written "
        f"(default {DEFAULT_OUT_DIR})",
    )
    erun.add_argument("--format", choices=("text", "json"), default="text")
    erun.add_argument(
        "--verbose", action="store_true",
        help="include each job's measured summary in text output",
    )
    erun.add_argument(
        "--check-certificates", action="store_true",
        help="re-validate every job's certificate with the independent "
        "checker (naive evaluation only) and gate the exit code on "
        "all of them being valid",
    )
    erun.add_argument(
        "--check-cost", action="store_true",
        help="audit every fixpoint a job computes against the static "
        "cardinality bounds (repro.analysis.cost); any measured "
        "relation exceeding its predicted bound makes the run red. "
        "Part of the cache's run-mode key",
    )
    erun.add_argument(
        "--check-maintenance", action="store_true",
        help="audit every incremental maintenance round against the "
        "static delta bounds and strategy classification "
        "(repro.analysis.maintain); any measured delta exceeding its "
        "predicted bound makes the run red. Part of the cache's "
        "run-mode key",
    )
    erun.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="partition every large-enough fixpoint across N worker "
        "processes per the static shard plan (repro.analysis.shard); "
        "0 = single-process (default). Part of the cache's run-mode "
        "key",
    )
    erun.add_argument(
        "--check-sharding", action="store_true",
        help="audit every communication-free stratum against the shard "
        "plan (no tuple may land on the wrong worker); any boundary "
        "violation makes the run red. Part of the cache's run-mode key",
    )
    erun.add_argument(
        "--no-schedule", action="store_true",
        help="keep registration order instead of the cost-model "
        "schedule (predicted-heaviest ready job first)",
    )
    erun.add_argument(
        "--optimize", action="store_true",
        help="evaluate every job through the certified optimizer "
        "(repro.analysis.optimize); part of the cache's run-mode key, "
        "so optimized and plain runs never share entries",
    )
    erun.add_argument(
        "--backend", choices=backend_names(), default="interpreted",
        help="evaluation engine for every job (default interpreted); "
        "part of the cache's run-mode key",
    )
    erun.add_argument(
        "--baseline", metavar="MANIFEST",
        help="previously written manifest.json (or its directory) to "
        "diff engine totals against; the new manifest records the "
        "per-counter delta",
    )
    erun.set_defaults(func=cmd_evidence_run)

    ereport = esub.add_parser(
        "report", help="render an existing run manifest"
    )
    ereport.add_argument(
        "manifest", nargs="?", default=str(DEFAULT_OUT_DIR),
        help="manifest.json (or its directory)",
    )
    ereport.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    ereport.set_defaults(func=cmd_evidence_report)
