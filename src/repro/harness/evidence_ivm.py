"""Incremental-maintenance evidence — `repro.ivm` against the oracle.

Each job drives a :class:`repro.ivm.MaterializedView` through a
deterministic schedule of insert/retract rounds on a reachability
workload, checks after *every* round that the maintained state equals a
from-scratch fixpoint, and times both paths.  The job's certificate is
the view's final ``ivm_state`` claim, so ``--check-certificates``
re-derives the fixpoint with the naive replay evaluator; the measured
maintenance-vs-recompute speedup ships in the ``ivm`` block (recorded,
not asserted — wall-clock assertions belong to ``benchmarks/``).
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.harness.evidence_common import finish


def _chain_edges(nodes: int) -> list[tuple[str, tuple[Any, ...]]]:
    return [("E", (i, i + 1)) for i in range(nodes - 1)]


def _grid_edges(side: int) -> list[tuple[str, tuple[Any, ...]]]:
    edges: list[tuple[str, tuple[Any, ...]]] = []
    for i in range(side):
        for j in range(side):
            if i + 1 < side:
                edges.append(("E", ((i, j), (i + 1, j))))
            if j + 1 < side:
                edges.append(("E", ((i, j), (i, j + 1))))
    return edges


def _reach_program() -> Any:
    from repro.core import parse_program

    return parse_program(
        """
        Reach(x,y) <- E(x,y).
        Reach(x,y) <- E(x,z), Reach(z,y).
        """
    )


def _maintenance_run(
    edges: list[tuple[str, tuple[Any, ...]]],
    rounds: int,
    backend: Optional[str],
) -> dict[str, Any]:
    """Alternate insert/retract rounds over a sliding window of edges;
    compare against the recompute oracle after every round."""
    from repro.core.instance import Instance
    from repro.ivm import MaterializedView

    base = Instance.from_tuples({"E": [args for _, args in edges[:-rounds]]})
    view = MaterializedView(_reach_program(), base, backend=backend)

    checks: list[tuple[str, bool]] = []
    maintain_s = 0.0
    recompute_s = 0.0
    inserted = deleted = rederived = 0
    tail = edges[-rounds:]
    for index in range(rounds):
        fact = tail[index]
        if index % 3 == 2:  # every third round retracts the previous edge
            start = time.perf_counter()
            report = view.retract([tail[index - 1]])
            maintain_s += time.perf_counter() - start
        else:
            start = time.perf_counter()
            report = view.insert([fact])
            maintain_s += time.perf_counter() - start
        inserted += report.inserted
        deleted += report.deleted
        rederived += report.rederived
        start = time.perf_counter()
        oracle = view.recompute()
        recompute_s += time.perf_counter() - start
        checks.append((f"round-{index + 1}-matches-oracle",
                       view.state == oracle))
    return {
        "view": view,
        "checks": checks,
        "ivm": {
            "rounds": view.rounds,
            "inserted": inserted,
            "deleted": deleted,
            "rederived": rederived,
            "maintain_seconds": round(maintain_s, 6),
            "recompute_seconds": round(recompute_s, 6),
            "speedup": round(recompute_s / maintain_s, 2)
            if maintain_s > 0 else None,
        },
    }


def _mixed_strategy_program() -> Any:
    """Reach is genuinely recursive (DRed); Direct's recursion is
    vacuous (its recursive rule is subsumed by the base rule), so the
    maintainability analysis proves it counting-safe and the view
    maintains it with counting instead of DRed."""
    from repro.core import parse_program

    return parse_program(
        """
        Reach(x,y) <- E(x,y).
        Reach(x,y) <- E(x,z), Reach(z,y).
        Direct(x,y) <- E(x,y).
        Direct(x,y) <- E(x,y), Direct(x,y).
        """
    )


def ivm_insert_monotone_chain(
    nodes: int = 40, rounds: int = 10, backend: Optional[str] = None
) -> dict[str, Any]:
    """Insert-only maintenance on a recursive chain skips DRed.

    Every round only ever adds base facts, so the deletion half of the
    DRed machinery (overdelete, rederive) has nothing to do — the view
    must detect that per round and take the semi-naive-insert fast
    path, visible as ``maintain_skipped_rederive`` in the engine stats
    with zero deleted/rederived facts.  The companion ``Direct``
    stratum is recursive but provably counting-safe, so the static
    plan switches it from DRed to counting maintenance outright
    (``maintain_counting_strata``)."""
    from repro.core.instance import Instance
    from repro.core.stats import EngineStats
    from repro.ivm import MaterializedView

    edges = _chain_edges(nodes)
    base = Instance.from_tuples({"E": [args for _, args in edges[:-rounds]]})
    view = MaterializedView(_mixed_strategy_program(), base, backend=backend)
    stats = EngineStats()

    checks: list[tuple[str, bool]] = []
    inserted = deleted = rederived = 0
    for index, fact in enumerate(edges[-rounds:]):
        report = view.apply(inserts=[fact], stats=stats)
        inserted += report.inserted
        deleted += report.deleted
        rederived += report.rederived
        checks.append((f"round-{index + 1}-matches-oracle",
                       view.state == view.recompute()))
    # the per-round collector shadowed any ambient run-level collector
    # (e.g. the evidence worker's); fold the counters back so the
    # manifest's engine totals see the strategy switch too
    from repro.core import stats as _stats

    ambient = _stats.active()
    if ambient is not None:
        ambient.merge(stats)
    strategies = view.maintenance_strategies()
    checks.append(("no-overdelete-work", deleted == 0 and rederived == 0))
    checks.append(("rederivation-skipped",
                   stats.maintain_skipped_rederive >= rounds))
    checks.append(("counting-strategy-engaged",
                   strategies.get("Direct") == "counting"
                   and stats.maintain_counting_strata >= 1))
    checks.append(("dred-strategy-planned",
                   strategies.get("Reach") == "dred"))
    ivm = {
        "rounds": view.rounds,
        "inserted": inserted,
        "deleted": deleted,
        "rederived": rederived,
        "strategies": strategies,
        "maintain_counting_strata": stats.maintain_counting_strata,
        "maintain_dred_strata": stats.maintain_dred_strata,
        "maintain_skipped_rederive": stats.maintain_skipped_rederive,
    }
    return finish(
        "maintenance-equivalent", checks,
        f"{rounds} insert-only rounds on a {nodes}-node chain skipped "
        f"rederivation {stats.maintain_skipped_rederive} times with 0 "
        f"overdeletes; counting maintained Direct "
        f"({stats.maintain_counting_strata} stratum rounds)",
        {"nodes": nodes, "rounds": rounds,
         "final_facts": len(view.state), "strategies": strategies},
        certificate=view.certificate(meta={"workload": "insert-chain"}),
        ivm=ivm,
    )


def ivm_retraction_grid_bounds(
    side: int = 4, rounds: int = 8, backend: Optional[str] = None
) -> dict[str, Any]:
    """Retraction amplification stays within the predicted delta bound.

    Deleting one grid edge can cascade the removal of many reachability
    facts — the measured |Δ| amplifies the update size.  Before every
    round the job asks the static analysis for a delta bound against
    the current base (exactly the ``repro serve`` admission check) and
    asserts the measured net delta never exceeds it; the
    predicted-vs-measured table ships in the metrics."""
    from repro.core.instance import Instance
    from repro.ivm import MaterializedView

    edges = _grid_edges(side)
    base = Instance.from_tuples({"E": [args for _, args in edges]})
    view = MaterializedView(_reach_program(), base, backend=backend)

    checks: list[tuple[str, bool]] = []
    table: list[dict[str, Any]] = []
    inserted = deleted = rederived = 0
    amplification = 0
    for index in range(rounds):
        fact = edges[(index // 2) % len(edges)]
        kind = "retract" if index % 2 == 0 else "insert"
        predicted = view.predict_delta(1)
        if kind == "retract":
            report = view.retract([fact])
        else:
            report = view.insert([fact])
        inserted += report.inserted
        deleted += report.deleted
        rederived += report.rederived
        measured = sum(len(rows) for rows in report.plus.values())
        measured += sum(len(rows) for rows in report.minus.values())
        amplification = max(amplification, measured)
        table.append({
            "round": index + 1, "kind": kind,
            "predicted": predicted, "measured": measured,
        })
        checks.append((f"round-{index + 1}-matches-oracle",
                       view.state == view.recompute()))
        checks.append((
            f"round-{index + 1}-within-delta-bound",
            predicted is not None and measured <= predicted,
        ))
    return finish(
        "maintenance-equivalent", checks,
        f"{rounds} retract/re-insert rounds on a {side}x{side} grid: "
        f"every measured delta within its static bound (worst "
        f"amplification {amplification} facts from a 1-fact update)",
        {"side": side, "rounds": rounds, "final_facts": len(view.state),
         "delta_bounds": table},
        certificate=view.certificate(meta={"workload": "retraction-grid"}),
        ivm={
            "rounds": view.rounds,
            "inserted": inserted,
            "deleted": deleted,
            "rederived": rederived,
            "max_measured_delta": amplification,
        },
    )


def ivm_chain_maintenance(
    nodes: int = 48, rounds: int = 12, backend: Optional[str] = None
) -> dict[str, Any]:
    """Maintain transitive closure of a growing/shrinking chain."""
    run = _maintenance_run(_chain_edges(nodes), rounds, backend)
    view, ivm = run["view"], run["ivm"]
    return finish(
        "maintenance-equivalent", run["checks"],
        f"{rounds} maintenance rounds on a {nodes}-node chain all match "
        f"the from-scratch fixpoint ({ivm['inserted']} facts inserted, "
        f"{ivm['deleted']} deleted, {len(view.state)} final)",
        {"nodes": nodes, "rounds": rounds, "final_facts": len(view.state)},
        certificate=view.certificate(meta={"workload": "chain"}),
        ivm=ivm,
    )


def ivm_grid_maintenance(
    side: int = 5, rounds: int = 10, backend: Optional[str] = None
) -> dict[str, Any]:
    """Maintain reachability over a grid losing and regaining edges."""
    run = _maintenance_run(_grid_edges(side), rounds, backend)
    view, ivm = run["view"], run["ivm"]
    return finish(
        "maintenance-equivalent", run["checks"],
        f"{rounds} maintenance rounds on a {side}x{side} grid all match "
        f"the from-scratch fixpoint ({ivm['rederived']} facts "
        f"rederived, {len(view.state)} final)",
        {"side": side, "rounds": rounds, "final_facts": len(view.state)},
        certificate=view.certificate(meta={"workload": "grid"}),
        ivm=ivm,
    )
