"""Incremental-maintenance evidence — `repro.ivm` against the oracle.

Each job drives a :class:`repro.ivm.MaterializedView` through a
deterministic schedule of insert/retract rounds on a reachability
workload, checks after *every* round that the maintained state equals a
from-scratch fixpoint, and times both paths.  The job's certificate is
the view's final ``ivm_state`` claim, so ``--check-certificates``
re-derives the fixpoint with the naive replay evaluator; the measured
maintenance-vs-recompute speedup ships in the ``ivm`` block (recorded,
not asserted — wall-clock assertions belong to ``benchmarks/``).
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.harness.evidence_common import finish


def _chain_edges(nodes: int) -> list[tuple[str, tuple[Any, ...]]]:
    return [("E", (i, i + 1)) for i in range(nodes - 1)]


def _grid_edges(side: int) -> list[tuple[str, tuple[Any, ...]]]:
    edges: list[tuple[str, tuple[Any, ...]]] = []
    for i in range(side):
        for j in range(side):
            if i + 1 < side:
                edges.append(("E", ((i, j), (i + 1, j))))
            if j + 1 < side:
                edges.append(("E", ((i, j), (i, j + 1))))
    return edges


def _reach_program() -> Any:
    from repro.core import parse_program

    return parse_program(
        """
        Reach(x,y) <- E(x,y).
        Reach(x,y) <- E(x,z), Reach(z,y).
        """
    )


def _maintenance_run(
    edges: list[tuple[str, tuple[Any, ...]]],
    rounds: int,
    backend: Optional[str],
) -> dict[str, Any]:
    """Alternate insert/retract rounds over a sliding window of edges;
    compare against the recompute oracle after every round."""
    from repro.core.instance import Instance
    from repro.ivm import MaterializedView

    base = Instance.from_tuples({"E": [args for _, args in edges[:-rounds]]})
    view = MaterializedView(_reach_program(), base, backend=backend)

    checks: list[tuple[str, bool]] = []
    maintain_s = 0.0
    recompute_s = 0.0
    inserted = deleted = rederived = 0
    tail = edges[-rounds:]
    for index in range(rounds):
        fact = tail[index]
        if index % 3 == 2:  # every third round retracts the previous edge
            start = time.perf_counter()
            report = view.retract([tail[index - 1]])
            maintain_s += time.perf_counter() - start
        else:
            start = time.perf_counter()
            report = view.insert([fact])
            maintain_s += time.perf_counter() - start
        inserted += report.inserted
        deleted += report.deleted
        rederived += report.rederived
        start = time.perf_counter()
        oracle = view.recompute()
        recompute_s += time.perf_counter() - start
        checks.append((f"round-{index + 1}-matches-oracle",
                       view.state == oracle))
    return {
        "view": view,
        "checks": checks,
        "ivm": {
            "rounds": view.rounds,
            "inserted": inserted,
            "deleted": deleted,
            "rederived": rederived,
            "maintain_seconds": round(maintain_s, 6),
            "recompute_seconds": round(recompute_s, 6),
            "speedup": round(recompute_s / maintain_s, 2)
            if maintain_s > 0 else None,
        },
    }


def ivm_chain_maintenance(
    nodes: int = 48, rounds: int = 12, backend: Optional[str] = None
) -> dict[str, Any]:
    """Maintain transitive closure of a growing/shrinking chain."""
    run = _maintenance_run(_chain_edges(nodes), rounds, backend)
    view, ivm = run["view"], run["ivm"]
    return finish(
        "maintenance-equivalent", run["checks"],
        f"{rounds} maintenance rounds on a {nodes}-node chain all match "
        f"the from-scratch fixpoint ({ivm['inserted']} facts inserted, "
        f"{ivm['deleted']} deleted, {len(view.state)} final)",
        {"nodes": nodes, "rounds": rounds, "final_facts": len(view.state)},
        certificate=view.certificate(meta={"workload": "chain"}),
        ivm=ivm,
    )


def ivm_grid_maintenance(
    side: int = 5, rounds: int = 10, backend: Optional[str] = None
) -> dict[str, Any]:
    """Maintain reachability over a grid losing and regaining edges."""
    run = _maintenance_run(_grid_edges(side), rounds, backend)
    view, ivm = run["view"], run["ivm"]
    return finish(
        "maintenance-equivalent", run["checks"],
        f"{rounds} maintenance rounds on a {side}x{side} grid all match "
        f"the from-scratch fixpoint ({ivm['rederived']} facts "
        f"rederived, {len(view.state)} final)",
        {"side": side, "rounds": rounds, "final_facts": len(view.state)},
        certificate=view.certificate(meta={"workload": "grid"}),
        ivm=ivm,
    )
