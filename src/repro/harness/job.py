"""Job model for the evidence runner.

A :class:`Job` declares one paper claim as an executable check: a
dotted reference to a function, JSON-serializable inputs, the verdict
the paper predicts, and the jobs it depends on.  Functions are referred
to by ``"module:qualname"`` string rather than by object so that worker
processes can resolve them independently and so the cache can
fingerprint the defining module without importing it.

Job functions take their ``inputs`` as keyword arguments and return a
dict with at least ``{"verdict": str}``; ``"measured"`` (a human
summary) and ``"metrics"`` (a JSON-ready dict) are optional.  Raising
is a *failure* (infrastructure/assertion broke), returning an
unexpected verdict is a *mismatch* (the claim check ran but
disagreed) — the manifest distinguishes the two.
"""

from __future__ import annotations

import enum
import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional


class JobStatus(enum.Enum):
    """Terminal state of one job in a run."""

    OK = "ok"              # ran (or cache hit), verdict == expected
    MISMATCH = "mismatch"  # ran, verdict != expected
    FAILED = "failed"      # raised after exhausting retries
    TIMEOUT = "timeout"    # killed at its wall-clock deadline
    SKIPPED = "skipped"    # a dependency did not reach OK

    @property
    def is_success(self) -> bool:
        return self is JobStatus.OK


@dataclass(frozen=True)
class Job:
    """One claim of the paper, as a schedulable unit of evidence."""

    name: str
    fn: str                      # "module:qualname"
    claim: str                   # what the paper asserts
    expected: str                # verdict the claim predicts
    description: str = ""
    inputs: Mapping[str, Any] = field(default_factory=dict)
    deps: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()
    timeout: Optional[float] = None   # seconds; None -> runner default
    retries: int = 1                  # extra attempts after a crash
    heavy: bool = False               # benchmarks: single-round pedantic

    def resolve(self) -> Callable[..., dict[str, Any]]:
        """Import and return the job function."""
        module_name, _, qualname = self.fn.partition(":")
        if not qualname:
            raise ValueError(
                f"job {self.name!r}: fn must be 'module:qualname', "
                f"got {self.fn!r}"
            )
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        if not callable(obj):
            raise TypeError(f"job {self.name!r}: {self.fn!r} is not callable")
        return obj

    def matches(self, pattern: str) -> bool:
        """Substring filter over name and tags (comma = any-of)."""
        needles = [p.strip() for p in pattern.split(",") if p.strip()]
        if not needles:
            return True
        haystacks = (self.name, *self.tags)
        return any(
            needle in haystack
            for needle in needles
            for haystack in haystacks
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "fn": self.fn,
            "claim": self.claim,
            "expected": self.expected,
            "description": self.description,
            "inputs": dict(self.inputs),
            "deps": list(self.deps),
            "tags": list(self.tags),
            "timeout": self.timeout,
            "retries": self.retries,
        }


@dataclass
class JobResult:
    """Outcome of one job in one run."""

    name: str
    status: JobStatus
    expected: str
    verdict: Optional[str] = None     # None when never produced
    measured: str = ""                # human summary from the job fn
    metrics: dict[str, Any] = field(default_factory=dict)
    engine: dict[str, Any] = field(default_factory=dict)  # EngineStats.to_dict()
    duration: float = 0.0             # seconds of the final attempt
    attempts: int = 0
    cached: bool = False
    error: Optional[str] = None       # traceback text on FAILED
    certificate: Optional[dict[str, Any]] = None  # repro.certify certificate
    cost: Optional[dict[str, Any]] = None  # CostGuard.summary() under
                                           # --check-cost, else None
    backend_resolution: Optional[list[dict[str, Any]]] = None
    # per-fixpoint {"backend", "volume", "threshold"} choices made by
    # the auto backend; None unless the run used --backend auto
    ivm: Optional[dict[str, Any]] = None  # incremental-maintenance block
    # ({"rounds", "inserted", "deleted", "rederived", ...}) from jobs
    # that drive a repro.ivm.MaterializedView, else None
    maintain: Optional[dict[str, Any]] = None  # MaintenanceGuard.summary()
    # under --check-maintenance, else None
    shard: Optional[dict[str, Any]] = None  # ShardGuard.summary() under
    # --check-sharding, else None

    @property
    def matched(self) -> bool:
        return self.verdict == self.expected

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status.value,
            "expected": self.expected,
            "verdict": self.verdict,
            "matched": self.matched,
            "measured": self.measured,
            "metrics": self.metrics,
            "engine": self.engine,
            "duration_s": round(self.duration, 6),
            "attempts": self.attempts,
            "cached": self.cached,
            "error": self.error,
            "certificate": self.certificate,
            "cost": self.cost,
            "backend_resolution": self.backend_resolution,
            "ivm": self.ivm,
            "maintain": self.maintain,
            "shard": self.shard,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobResult":
        return cls(
            name=data["name"],
            status=JobStatus(data["status"]),
            expected=data["expected"],
            verdict=data.get("verdict"),
            measured=data.get("measured", ""),
            metrics=data.get("metrics", {}),
            engine=data.get("engine", {}),
            duration=data.get("duration_s", 0.0),
            attempts=data.get("attempts", 0),
            cached=data.get("cached", False),
            error=data.get("error"),
            certificate=data.get("certificate"),
            cost=data.get("cost"),
            backend_resolution=data.get("backend_resolution"),
            ivm=data.get("ivm"),
            maintain=data.get("maintain"),
            shard=data.get("shard"),
        )
