"""Table 1 evidence — rewritability of monotonically determined queries.

One function per cell of the paper's Table 1.  Each regenerates the
cell's claim as executable evidence (construction + verification) and
returns the claim's verdict; the registry records what the paper
predicts and the manifest diffs the two.  The pytest benchmarks in
``benchmarks/bench_table1.py`` are thin timed wrappers over these same
functions.
"""

from __future__ import annotations

from typing import Any
from repro.core.datalog import DatalogQuery
from repro.core.homomorphism import instance_maps_into
from repro.core.parser import parse_cq, parse_program, parse_ucq
from repro.harness.evidence_common import finish
from repro.views.view import View, ViewSet


def t1_cq_rewriting(trials: int = 25) -> dict[str, Any]:
    """Cell (CQ, any views): CQ rewriting, polynomial size (Prop. 8a)."""
    from repro.certify.emit import certificate
    from repro.determinacy.certificates import rewriting_claims
    from repro.rewriting.forward_backward import rewrite_forward_backward
    from repro.rewriting.verification import check_rewriting

    q = parse_cq("Q(x) <- R(x,y), S(y,z), U(z)")
    tc = DatalogQuery(parse_program(
        "P(x,y) <- R(x,y). P(x,y) <- R(x,z), P(z,y)."
    ), "P", "VTC")
    views = ViewSet([
        View("VTC", tc),
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VS", parse_cq("V(y,z) <- S(y,z)")),
        View("VU", parse_cq("V(z) <- U(z)")),
    ])
    rewriting = rewrite_forward_backward(q, views)
    size = rewriting.disjuncts[0].size()
    checks = [
        ("single-disjunct", len(rewriting) == 1),
        ("polynomial-size", size <= len(q.atoms) + len(views)),
        ("verified", check_rewriting(q, views, rewriting, trials=trials)
         is None),
    ]
    return finish(
        "cq-rewriting", checks,
        f"rewriting with {size} atoms, verified on {trials} random "
        "instances",
        {"atoms": size, "trials": trials},
        certificate=certificate(
            rewriting_claims(q, views, rewriting, trials=trials),
            meta={"method": "forward-backward (Prop. 8a)"},
        ),
    )


def t1_ucq_rewriting(trials: int = 25) -> dict[str, Any]:
    """Cell (UCQ, any views): UCQ rewriting (Prop. 8b)."""
    from repro.certify.emit import certificate
    from repro.determinacy.certificates import rewriting_claims
    from repro.rewriting.forward_backward import rewrite_forward_backward
    from repro.rewriting.verification import check_rewriting

    q = parse_ucq(
        """
        Q() <- R(x,y), U(y).
        Q() <- W(x,y), W(y,x).
        """
    )
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(y) <- U(y)")),
        View("VW", parse_cq("V(x,y) <- W(x,y)")),
    ])
    rewriting = rewrite_forward_backward(q, views)
    checks = [
        ("two-disjuncts", len(rewriting) == 2),
        ("verified", check_rewriting(q, views, rewriting, trials=trials)
         is None),
    ]
    return finish(
        "ucq-rewriting", checks,
        f"{len(rewriting)}-disjunct rewriting verified on {trials} "
        "instances",
        {"disjuncts": len(rewriting), "trials": trials},
        certificate=certificate(
            rewriting_claims(q, views, rewriting, trials=trials),
            meta={"method": "forward-backward (Prop. 8b)"},
        ),
    )


def t1_mdl_cq_fgdl_rewriting(trials: int = 20) -> dict[str, Any]:
    """Cell (MDL, CQ views): an FGDL rewriting exists ([14]/Thm 2)."""
    from repro.constructions.diamonds import diamond_query, diamond_views
    from repro.rewriting.datalog_rewriting import (
        datalog_rewriting,
        datalog_rewriting_certificate,
    )
    from repro.rewriting.verification import check_rewriting

    q = diamond_query()
    views = diamond_views()
    rewriting = datalog_rewriting(q, views, frontier_guard=True)
    checks = [
        ("frontier-guarded", rewriting.program.is_frontier_guarded()),
        ("verified", check_rewriting(q, views, rewriting, trials=trials)
         is None),
    ]
    return finish(
        "fgdl-rewriting", checks,
        f"frontier-guarded program with {len(rewriting.program)} rules, "
        f"verified on {trials} random instances",
        {"rules": len(rewriting.program), "trials": trials},
        certificate=datalog_rewriting_certificate(
            q, views, rewriting, trials=trials
        ),
    )


def t1_mdl_cq_not_mdl(k: int = 2, depth: int = 2) -> dict[str, Any]:
    """Cell (MDL, CQ views), negative half: not necessarily MDL (Thm 7)."""
    from repro.certify.emit import (
        certificate,
        claim_membership,
        claim_no_hom,
    )
    from repro.constructions.diamonds import (
        diamond_query,
        long_row_cq,
        unravelled_counterexample,
    )

    _image, chased, unravelling = unravelled_counterexample(k, depth=depth)
    q = diamond_query()
    row = long_row_cq(k)
    checks = [
        ("counterexample-fails-q", q.boolean(chased) is False),
        ("row-does-not-embed", not instance_maps_into(
            row.canonical_database(), unravelling.instance
        )),
    ]
    return finish(
        "mdl-separation", checks,
        f"Q(I'_k)=False on {len(chased)} chased facts; row({k}) does "
        f"not map into the {unravelling.copy_count()}-copy unravelling",
        {
            "chased_facts": len(chased),
            "unravelling_copies": unravelling.copy_count(),
        },
        certificate=certificate(
            [
                claim_membership(q, chased, (), member=False),
                claim_no_hom(row.atoms, unravelling.instance),
            ],
            meta={"method": "unravelled counterexample (Thm 7)"},
        ),
    )


def t1_datalog_fgdl(trials: int = 25) -> dict[str, Any]:
    """Cell (Datalog, FGDL views): Datalog rewriting (Thm 1)."""
    from repro.automata.backward import backward_query
    from repro.automata.forward import approximations_automaton
    from repro.certify.emit import certificate, claim_rewriting_sample
    from repro.core.schema import Schema
    from repro.rewriting.verification import check_rewriting

    q = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    identity_views = ViewSet([
        View("R", parse_cq("V(x,y) <- R(x,y)")),
        View("U", parse_cq("V(x) <- U(x)")),
        View("S", parse_cq("V(x) <- S(x)")),
    ])
    nta = approximations_automaton(q)
    rewriting = backward_query(nta, Schema({"R": 2, "U": 1, "S": 1}))
    checks = [
        ("verified", check_rewriting(
            q, identity_views, rewriting, trials=trials
        ) is None),
    ]
    return finish(
        "datalog-rewriting", checks,
        f"backward-mapped program with {len(rewriting.program)} rules "
        f"verified on {trials} random instances",
        {"rules": len(rewriting.program), "trials": trials},
        certificate=certificate(
            [claim_rewriting_sample(
                q, identity_views, rewriting, trials=trials
            )],
            meta={"method": "automata backward mapping (Thm 1)"},
        ),
    )


def t1_thm8_no_datalog_rewriting(ell: int = 4, depth: int = 2) -> dict[str, Any]:
    """Cell (MDL, UCQ views): NOT necessarily Datalog rewritable (Thm 8)."""
    from repro.certify.emit import (
        certificate,
        claim_instance_subset,
        claim_membership,
    )
    from repro.constructions.thm8 import build_witness

    witness = build_witness(ell, depth=depth)
    image = witness.views.image(witness.counterexample)
    # the certificate replays a small member of the same family: naive
    # evaluation of the full ℓ=4 counterexample (~2k facts) takes about
    # a minute, which would dominate --check-certificates
    small = build_witness(min(ell, 3), depth=1)
    small_image = small.views.image(small.counterexample)
    checks = [
        ("source-satisfies-q", witness.query.boolean(witness.source)
         is True),
        ("counterexample-fails-q", witness.query.boolean(
            witness.counterexample
        ) is False),
        ("unravelling-covered", witness.unravelling.instance <= image),
    ]
    return finish(
        "no-datalog-rewriting", checks,
        f"ℓ={ell}: Q(I_ℓ)=True, Q(I'_ℓ)=False, U_ℓ ⊆ V(I'_ℓ) "
        f"({witness.unravelling.copy_count()} unravelling copies, "
        f"{len(witness.w_instance)} W_ℓ facts, tiling found)",
        {
            "ell": ell,
            "unravelling_copies": witness.unravelling.copy_count(),
            "w_facts": len(witness.w_instance),
        },
        certificate=certificate(
            [
                claim_membership(small.query, small.source, ()),
                claim_membership(
                    small.query, small.counterexample, (),
                    member=False,
                ),
                claim_instance_subset(
                    small.unravelling.instance, small_image
                ),
            ],
            meta={
                "method": "Thm 8 witness family",
                "note": (
                    f"claims replay the ℓ={min(ell, 3)}, depth-1 member "
                    f"of the family; the job checks ℓ={ell} with the "
                    "engine"
                ),
            },
        ),
    )


def t1_mdl_rewriting_via_automata(trials: int = 25) -> dict[str, Any]:
    """Thm 1, last part: MDL queries get MDL rewritings (exact pipeline)."""
    from repro.automata.backward import backward_query_mdl
    from repro.automata.forward import (
        approximations_automaton,
        view_image_automaton_atomic,
    )
    from repro.certify.emit import certificate, claim_rewriting_sample
    from repro.core.schema import Schema
    from repro.rewriting.verification import check_rewriting

    q = DatalogQuery(parse_program(
        """
        P(x) <- U(x).
        P(x) <- R(x,y), P(y).
        Goal() <- S(x), P(x).
        """
    ), "Goal")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VU", parse_cq("V(x) <- U(x)")),
        View("VS", parse_cq("V(x) <- S(x)")),
    ])
    nta = view_image_automaton_atomic(approximations_automaton(q), views)
    rewriting = backward_query_mdl(nta, Schema({"VR": 2, "VU": 1, "VS": 1}))
    checks = [
        ("monadic", rewriting.program.is_monadic()),
        ("verified", check_rewriting(q, views, rewriting, trials=trials)
         is None),
    ]
    return finish(
        "mdl-rewriting", checks,
        f"monadic program with {len(rewriting.program)} rules verified "
        f"on {trials} random instances",
        {"rules": len(rewriting.program), "trials": trials},
        certificate=certificate(
            [claim_rewriting_sample(q, views, rewriting, trials=trials)],
            meta={"method": "automata pipeline (Thm 1, MDL)"},
        ),
    )
