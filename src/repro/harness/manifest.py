"""Run manifest: the machine-readable outcome of an evidence run.

The manifest diffs measured verdicts against the registry's expected
verdicts, merges per-job :class:`~repro.core.stats.EngineStats` from
the worker processes into run totals, and summarizes statuses.  The
CLI exits non-zero whenever ``summary.ok != summary.total`` — any
mismatch, failure, timeout or skip makes the run red.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from repro.core.stats import EngineStats
from repro.harness.job import Job, JobResult, JobStatus

MANIFEST_SCHEMA = 8  # 2: per-job certificate status; 3: optimize flag
                     # + optional baseline engine delta; 4: backend name
                     # + columnar join counters in the delta; 5: per-job
                     # cost-guard blocks + auto-backend resolutions +
                     # check_cost flag and summary; 6: per-job ivm
                     # maintenance blocks, ivm counters in the delta,
                     # ivm round totals in the summary; 7: per-job
                     # maintain-guard blocks + check_maintenance flag,
                     # maintain counters in the delta, maintain totals
                     # in the summary; 8: shards/check_sharding flags,
                     # per-job shard-guard blocks, shard counters in
                     # the delta, shard totals in the summary

#: EngineStats counters diffed against a baseline manifest
_DELTA_FIELDS = (
    "hom_calls",
    "search_steps",
    "rows_scanned",
    "fixpoint_rounds",
    "facts_derived",
    "join_build_rows",
    "join_probe_rows",
    "join_output_rows",
    "cost_bounds_checked",
    "cost_violations",
    "ivm_rounds",
    "ivm_inserted",
    "ivm_deleted",
    "ivm_rederived",
    "maintain_counting_strata",
    "maintain_dred_strata",
    "maintain_skipped_rederive",
    "shard_workers",
    "shard_exchanged_rows",
    "shard_local_rounds",
)


def check_result_certificates(
    results: Mapping[str, JobResult],
) -> dict[str, dict[str, Any]]:
    """Validate every result's certificate with the independent checker.

    Returns name -> ``{"status": "valid"|"invalid"|"absent", "claims":
    n, "failures": [...]}``.  Jobs that never produced a result payload
    (failed / timed out / skipped) are reported ``absent`` with a
    reason.  Validation uses :func:`repro.certify.check_certificate`
    only — naive evaluation and direct homomorphism replay, none of the
    engine fast paths the jobs themselves ran on.
    """
    from repro.certify import check_certificate

    checks: dict[str, dict[str, Any]] = {}
    for name, result in results.items():
        if result.certificate is None:
            reason = (
                "job emitted no certificate"
                if result.verdict is not None
                else f"no result payload ({result.status.value})"
            )
            checks[name] = {
                "status": "absent", "claims": 0, "failures": [reason]
            }
            continue
        outcome = check_certificate(result.certificate)
        checks[name] = {
            "status": "valid" if outcome.valid else "invalid",
            "claims": outcome.claims,
            "failures": list(outcome.failures),
        }
    return checks

#: status -> summary key, in render order
_STATUS_KEYS = {
    JobStatus.OK: "ok",
    JobStatus.MISMATCH: "mismatch",
    JobStatus.FAILED: "failed",
    JobStatus.TIMEOUT: "timeout",
    JobStatus.SKIPPED: "skipped",
}


def build_manifest(
    jobs: Sequence[Job],
    results: Mapping[str, JobResult],
    *,
    wall_seconds: float,
    workers: int,
    default_timeout: float,
    code_fingerprint: str,
    cache_used: bool,
    certificate_checks: Optional[Mapping[str, dict]] = None,
    optimize: bool = False,
    backend: str = "interpreted",
    check_cost: bool = False,
    check_maintenance: bool = False,
    shards: int = 0,
    check_sharding: bool = False,
    baseline: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble the manifest dict for one finished run.

    With ``certificate_checks`` (from
    :func:`check_result_certificates`) each job entry records its
    certificate status, the summary counts ``certified`` jobs, and
    :func:`manifest_exit_code` additionally requires every job's
    certificate to validate.

    ``optimize`` records whether the run evaluated through the
    certified optimizer; ``backend`` records which evaluation engine
    ran the jobs.  ``check_cost`` records that the run audited every
    fixpoint against the static cardinality bounds: the summary gains
    ``cost_checked`` (jobs that shipped a cost block) and ``cost_ok``
    (those with zero bound violations), and :func:`manifest_exit_code`
    turns any unsound prediction into a red run.  ``check_maintenance``
    is the incremental analogue: jobs ship ``maintain`` blocks from the
    :class:`~repro.analysis.maintain.MaintenanceGuard`, the summary
    gains ``maintain_checked``/``maintain_ok``, and any measured
    maintenance delta exceeding its static bound (or a counting round
    where the analysis demands DRed) makes the run red.  Jobs that
    drive a
    :class:`repro.ivm.MaterializedView` ship an ``ivm`` block; when
    any do, the summary gains ``ivm_jobs`` and ``ivm_rounds`` totals
    (their ``ivm_state`` certificates are validated through the same
    ``certificate_checks`` path as every other claim type).  ``shards``
    records how many worker processes the run partitioned fixpoints
    across (0 = single-process); ``check_sharding`` records that a
    :class:`~repro.analysis.shard.ShardGuard` audited every
    communication-free stratum for plan conformance: the summary gains
    ``shard_checked``/``shard_ok`` and any tuple observed on the wrong
    shard makes the run red.
    ``baseline`` is a previously written manifest to
    diff against: the new manifest gains a ``baseline`` block with
    per-counter engine deltas (current − baseline), the before/after
    evidence for the optimizer's or backend's effect on the same jobs.
    """
    engine_totals = EngineStats()
    job_entries = {}
    counts = {key: 0 for key in _STATUS_KEYS.values()}
    cached = 0
    certified = 0
    cost_checked = 0
    cost_ok = 0
    maintain_checked = 0
    maintain_ok = 0
    shard_checked = 0
    shard_ok = 0
    ivm_jobs = 0
    ivm_rounds = 0
    mismatches = []
    cost_violations = []
    maintain_violations = []
    shard_violations = []
    for job in jobs:
        result = results.get(job.name)
        if result is None:  # defensive: runner always reports every job
            result = JobResult(
                name=job.name,
                status=JobStatus.SKIPPED,
                expected=job.expected,
                measured="no result reported",
            )
        counts[_STATUS_KEYS[result.status]] += 1
        if result.cached:
            cached += 1
        if result.status is JobStatus.MISMATCH:
            mismatches.append({
                "job": job.name,
                "expected": result.expected,
                "measured_verdict": result.verdict,
            })
        if result.cost is not None:
            cost_checked += 1
            violations = result.cost.get("violations") or []
            if violations:
                cost_violations.append({
                    "job": job.name,
                    "violations": list(violations),
                })
            else:
                cost_ok += 1
        if result.maintain is not None:
            maintain_checked += 1
            violations = result.maintain.get("violations") or []
            if violations:
                maintain_violations.append({
                    "job": job.name,
                    "violations": list(violations),
                })
            else:
                maintain_ok += 1
        if result.shard is not None:
            shard_checked += 1
            violations = result.shard.get("violations") or []
            if violations:
                shard_violations.append({
                    "job": job.name,
                    "violations": list(violations),
                })
            else:
                shard_ok += 1
        if result.ivm is not None:
            ivm_jobs += 1
            ivm_rounds += int(result.ivm.get("rounds", 0))
        if result.engine:
            # report tooling: tolerate counters from a newer schema
            # (e.g. cached results written by a later version)
            engine_totals.merge(
                EngineStats.from_dict(result.engine, allow_unknown=True)
            )
        entry = result.as_dict()
        entry["claim"] = job.claim
        entry["tags"] = list(job.tags)
        entry["deps"] = list(job.deps)
        if certificate_checks is not None:
            check = certificate_checks.get(
                job.name,
                {"status": "absent", "claims": 0,
                 "failures": ["no result reported"]},
            )
            entry["certificate_check"] = check
            if check["status"] == "valid":
                certified += 1
        job_entries[job.name] = entry
    summary = {
        "total": len(jobs),
        **counts,
        "cached": cached,
        "wall_seconds": round(wall_seconds, 3),
    }
    if certificate_checks is not None:
        summary["certified"] = certified
    if check_cost:
        summary["cost_checked"] = cost_checked
        summary["cost_ok"] = cost_ok
    if check_maintenance:
        summary["maintain_checked"] = maintain_checked
        summary["maintain_ok"] = maintain_ok
    if check_sharding:
        summary["shard_checked"] = shard_checked
        summary["shard_ok"] = shard_ok
    if ivm_jobs:
        summary["ivm_jobs"] = ivm_jobs
        summary["ivm_rounds"] = ivm_rounds
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "created": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "code_fingerprint": code_fingerprint,
        "workers": workers,
        "default_timeout_s": default_timeout,
        "cache_used": cache_used,
        "optimize": optimize,
        "backend": backend,
        "check_cost": check_cost,
        "check_maintenance": check_maintenance,
        "shards": shards,
        "check_sharding": check_sharding,
        "jobs": job_entries,
        "mismatches": mismatches,
        "cost_violations": cost_violations,
        "maintain_violations": maintain_violations,
        "shard_violations": shard_violations,
        "engine_totals": engine_totals.to_dict(),
        "summary": summary,
    }
    if baseline is not None:
        base_engine = baseline.get("engine_totals") or {}
        current = engine_totals.to_dict()
        manifest["baseline"] = {
            "code_fingerprint": baseline.get("code_fingerprint", ""),
            "optimize": bool(baseline.get("optimize", False)),
            "backend": baseline.get("backend", "interpreted"),
            "engine_delta": {
                name: current.get(name, 0) - base_engine.get(name, 0)
                for name in _DELTA_FIELDS
            },
        }
    return manifest


def manifest_exit_code(manifest: dict[str, Any]) -> int:
    """0 iff every job ended OK (matched verdict, no failures/skips),
    when certificate checking ran every certificate validated, when
    cost checking ran no static bound was ever exceeded, and when
    maintenance checking ran every round stayed within its predicted
    delta bound on the planned strategy."""
    summary = manifest["summary"]
    if summary["ok"] != summary["total"]:
        return 1
    if "certified" in summary and summary["certified"] != summary["total"]:
        return 1
    if "cost_checked" in summary:
        if summary["cost_ok"] != summary["cost_checked"]:
            return 1
        if manifest.get("cost_violations"):
            return 1
    if "maintain_checked" in summary:
        if summary["maintain_ok"] != summary["maintain_checked"]:
            return 1
        if manifest.get("maintain_violations"):
            return 1
    if "shard_checked" in summary:
        if summary["shard_ok"] != summary["shard_checked"]:
            return 1
        if manifest.get("shard_violations"):
            return 1
    return 0


def write_manifest(manifest: dict[str, Any], path: Path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True))


def load_manifest(path: Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text())


def render_manifest(manifest: dict[str, Any], *, verbose: bool = False) -> str:
    """Human-readable run report."""
    lines = []
    summary = manifest["summary"]
    for name, entry in manifest["jobs"].items():
        status = entry["status"]
        flags = []
        if entry.get("cached"):
            flags.append("cached")
        if entry.get("attempts", 1) > 1:
            flags.append(f"attempt {entry['attempts']}")
        check = entry.get("certificate_check")
        if check is not None:
            flags.append(f"cert {check['status']}")
        cost = entry.get("cost")
        if cost is not None:
            violated = len(cost.get("violations") or [])
            flags.append(
                f"cost {'VIOLATED' if violated else 'ok'} "
                f"({cost.get('predicates', 0)} bounds)"
            )
        ivm = entry.get("ivm")
        if ivm is not None:
            flags.append(f"ivm {ivm.get('rounds', 0)} rounds")
        maintain = entry.get("maintain")
        if maintain is not None:
            violated = len(maintain.get("violations") or [])
            flags.append(
                f"maintain {'VIOLATED' if violated else 'ok'} "
                f"({maintain.get('checks', 0)} rounds)"
            )
        shard = entry.get("shard")
        if shard is not None:
            violated = len(shard.get("violations") or [])
            flags.append(
                f"shard {'VIOLATED' if violated else 'ok'} "
                f"({shard.get('strata', 0)} strata)"
            )
        flag_text = f" ({', '.join(flags)})" if flags else ""
        lines.append(
            f"  {status.upper():<9} {name:<34} "
            f"{entry.get('duration_s', 0):7.2f}s{flag_text}"
        )
        if check is not None and check["status"] != "valid":
            for failure in check["failures"]:
                lines.append(f"            certificate: {failure}")
        if status == "mismatch":
            lines.append(
                f"            expected {entry['expected']!r}, measured "
                f"{entry['verdict']!r}"
            )
        if verbose and entry.get("measured"):
            lines.append(f"            {entry['measured']}")
        if cost is not None:
            for violation in cost.get("violations") or []:
                lines.append(
                    f"            cost bound VIOLATED: "
                    f"{violation['pred']} measured "
                    f"{violation['measured']} > bound "
                    f"{violation['bound']} ({violation['basis']})"
                )
        if maintain is not None:
            for violation in maintain.get("violations") or []:
                if violation.get("kind") == "strategy":
                    lines.append(
                        f"            maintain strategy VIOLATED: "
                        f"{violation['pred']} ran "
                        f"{violation['actual']} where the analysis "
                        f"demands {violation['planned']}"
                    )
                else:
                    lines.append(
                        f"            maintain delta VIOLATED: "
                        f"{violation['pred']} measured "
                        f"{violation['measured']} > bound "
                        f"{violation['bound']} ({violation['basis']})"
                    )
        if shard is not None:
            for violation in shard.get("violations") or []:
                lines.append(
                    f"            shard boundary VIOLATED: "
                    f"{violation['pred']} fact {violation['fact']} "
                    f"landed on worker {violation['worker']} but "
                    f"hashes to {violation['owner']} "
                    f"(stratum {violation['stratum']})"
                )
        resolution = entry.get("backend_resolution")
        if verbose and resolution:
            picks = ", ".join(
                f"{r['backend']} (volume {r['volume']})"
                for r in resolution
            )
            lines.append(f"            auto backend: {picks}")
        if status in ("failed", "timeout") and entry.get("error"):
            last = entry["error"].strip().splitlines()[-1]
            lines.append(f"            {last}")
    lines.append(
        f"summary: {summary['ok']}/{summary['total']} ok, "
        f"{summary['mismatch']} mismatch, {summary['failed']} failed, "
        f"{summary['timeout']} timeout, {summary['skipped']} skipped "
        f"({summary['cached']} cached, "
        f"{summary['wall_seconds']:.2f}s wall)"
    )
    if "certified" in summary:
        lines.append(
            f"certificates: {summary['certified']}/{summary['total']} "
            "validated by the independent checker"
        )
    if "cost_checked" in summary:
        lines.append(
            f"cost bounds: {summary['cost_ok']}/"
            f"{summary['cost_checked']} job(s) within the static "
            "cardinality bounds"
        )
    if "maintain_checked" in summary:
        lines.append(
            f"maintenance: {summary['maintain_ok']}/"
            f"{summary['maintain_checked']} job(s) within the static "
            "delta bounds on the planned strategy"
        )
    if "shard_checked" in summary:
        shards = manifest.get("shards", 0)
        lines.append(
            f"sharding: {summary['shard_ok']}/"
            f"{summary['shard_checked']} job(s) conformant to the "
            f"shard plan across {shards} worker(s)"
        )
    if "ivm_jobs" in summary:
        lines.append(
            f"ivm: {summary['ivm_jobs']} job(s) maintained "
            f"materializations across {summary['ivm_rounds']} "
            "incremental rounds"
        )
    engine = manifest.get("engine_totals") or {}
    if engine.get("hom_calls") or engine.get("fixpoint_rounds"):
        tags = []
        backend = manifest.get("backend", "interpreted")
        if backend != "interpreted":
            tags.append(backend)
        if manifest.get("optimize"):
            tags.append("optimized")
        tag_text = f" ({', '.join(tags)})" if tags else ""
        parts = [
            f"{engine['hom_calls']} hom calls",
            f"{engine['rows_scanned']} rows scanned",
            f"{engine['fixpoint_rounds']} fixpoint rounds",
            f"{engine['facts_derived']} facts derived",
        ]
        if engine.get("join_probe_rows"):
            parts.append(f"{engine['join_probe_rows']} join probe rows")
        lines.append(f"engine{tag_text}: " + ", ".join(parts))
    baseline = manifest.get("baseline")
    if baseline is not None:
        delta = baseline.get("engine_delta", {})
        parts = []
        for name in _DELTA_FIELDS:
            value = delta.get(name, 0)
            if value:
                parts.append(f"{name} {value:+d}")
        lines.append(
            "vs baseline: " + (", ".join(parts) if parts else "no change")
        )
    return "\n".join(lines)
