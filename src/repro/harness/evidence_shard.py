"""Sharded-evaluation evidence — `repro.core.shard` against the oracle.

Each job runs the same fixpoint twice: hash-partitioned across worker
processes per the static shard plan (:mod:`repro.analysis.shard`), and
single-process.  The results must be identical, the :class:`ShardGuard`
must observe zero boundary violations, and the measured exchange
traffic must stay within the plan's certified bound.  The job's
certificate is an ``ivm_state`` claim over the *sharded* result, so
``--check-certificates`` re-derives the fixpoint with the naive replay
evaluator (which shares no code with the partitioned executor) and
demands exact equality.
"""

from __future__ import annotations

import time
from typing import Any

from repro.harness.evidence_common import finish


def _tenant_edges(
    tenants: int, nodes: int
) -> list[tuple[str, tuple[Any, ...]]]:
    """``tenants`` disjoint chains, tagged with their tenant id."""
    return [
        ("E", (t, i, i + 1))
        for t in range(tenants)
        for i in range(nodes - 1)
    ]


def _grid_edges(side: int) -> list[tuple[str, tuple[Any, ...]]]:
    edges: list[tuple[str, tuple[Any, ...]]] = []
    for i in range(side):
        for j in range(side):
            if i + 1 < side:
                edges.append(("E", ((i, j), (i + 1, j))))
            if j + 1 < side:
                edges.append(("E", ((i, j), (i, j + 1))))
    return edges


def _tenant_program() -> Any:
    from repro.core import parse_program

    return parse_program(
        """
        Reach(g,x,y) <- E(g,x,y).
        Reach(g,x,y) <- E(g,x,z), Reach(g,z,y).
        """
    )


def _reach_program() -> Any:
    from repro.core import parse_program

    return parse_program(
        """
        Reach(x,y) <- E(x,y).
        Reach(x,y) <- E(x,z), Reach(z,y).
        """
    )


def _run_both(
    program: Any, base: Any, shards: int
) -> dict[str, Any]:
    """Run sharded and single-process fixpoints; time and compare.

    The sharded run is audited by the ambient :class:`ShardGuard` when
    the harness installed one (``--check-sharding``); otherwise the job
    installs its own so the conformance checks below always have a
    tally to look at.
    """
    from repro.analysis.shard import (
        ShardGuard,
        active_shard_guard,
        set_shard_guard,
    )
    from repro.core.evaluation import fixpoint
    from repro.core.stats import EngineStats

    guard = active_shard_guard()
    installed = False
    if guard is None:
        guard = ShardGuard()
        set_shard_guard(guard)
        installed = True
    stats = EngineStats()
    try:
        start = time.perf_counter()
        sharded = fixpoint(program, base, stats=stats, shards=shards)
        sharded_s = time.perf_counter() - start
    finally:
        if installed:
            set_shard_guard(None)
    start = time.perf_counter()
    single = fixpoint(program, base, shards=0)
    single_s = time.perf_counter() - start
    # the per-run collector shadowed any ambient run-level collector
    # (e.g. the evidence worker's); fold the counters back so the
    # manifest's engine totals see the shard traffic too
    from repro.core import stats as _stats

    ambient = _stats.active()
    if ambient is not None:
        ambient.merge(stats)
    return {
        "sharded": sharded,
        "single": single,
        "stats": stats,
        "guard": guard.summary(),
        "sharded_seconds": round(sharded_s, 6),
        "single_seconds": round(single_s, 6),
    }


def shard_tenant_reachability(
    tenants: int = 12, nodes: int = 24, shards: int = 2
) -> dict[str, Any]:
    """Communication-free sharding of multi-tenant reachability.

    Every rule pivots on the tenant column, so the static plan proves
    the recursive stratum communication-free on ``E[0]``/``Reach[0]``:
    workers must reach the fixpoint without exchanging a single tuple,
    and every fact a worker derives must hash to that worker."""
    from repro.analysis.shard import COMMUNICATION_FREE, shard_report
    from repro.certify import certificate, claim_ivm_state
    from repro.core.instance import Instance

    program = _tenant_program()
    edges = _tenant_edges(tenants, nodes)
    base = Instance.from_tuples({"E": [args for _, args in edges]})
    plan = shard_report(program, instance=base, workers=shards)
    run = _run_both(program, base, shards)
    stats, guard = run["stats"], run["guard"]

    checks = [
        ("sharded-equals-single-process",
         run["sharded"] == run["single"]),
        ("stratum-classified-communication-free",
         plan.classification().get("Reach") == COMMUNICATION_FREE),
        ("workers-spawned", stats.shard_workers == shards),
        ("no-rows-exchanged", stats.shard_exchanged_rows == 0),
        ("guard-audited-stratum", guard["strata"] >= 1),
        ("no-boundary-violations", not guard["violations"]),
    ]
    claim = claim_ivm_state(program, base, run["sharded"])
    return finish(
        "shard-equivalent", checks,
        f"{tenants} tenant chains of {nodes} nodes across {shards} "
        f"workers: identical fixpoint with 0 exchanged rows, "
        f"{guard['facts']} facts audited on the right shard",
        {"tenants": tenants, "nodes": nodes, "shards": shards,
         "base_facts": len(base), "final_facts": len(run["sharded"]),
         "sharded_seconds": run["sharded_seconds"],
         "single_seconds": run["single_seconds"],
         "guard": guard},
        certificate=certificate(
            [claim],
            meta={"subsystem": "shard", "workload": "tenant-chains",
                  "shards": shards},
        ),
    )


def shard_grid_exchange(side: int = 12, shards: int = 2) -> dict[str, Any]:
    """Exchange-required sharding stays within the certified bound.

    Grid reachability has no common pivot (``Reach(x,y) <- E(x,z),
    Reach(z,y)`` joins on a column that never reaches the head), so the
    plan demands delta exchange between semi-naive rounds.  Every
    derived fact crosses the wire at most once per peer, so the total
    exchanged-row count must stay within the plan's per-round bound
    ``|Reach| * (shards - 1)`` computed from the instance's measured
    parameters."""
    from repro.analysis.shard import EXCHANGE_REQUIRED, shard_report
    from repro.certify import certificate, claim_ivm_state
    from repro.core.instance import Instance

    program = _reach_program()
    edges = _grid_edges(side)
    base = Instance.from_tuples({"E": [args for _, args in edges]})
    plan = shard_report(program, instance=base, workers=shards)
    stratum = plan.plan_of("Reach")
    assert stratum is not None
    run = _run_both(program, base, shards)
    stats = run["stats"]

    checks = [
        ("sharded-equals-single-process",
         run["sharded"] == run["single"]),
        ("stratum-classified-exchange-required",
         stratum.classification == EXCHANGE_REQUIRED),
        ("workers-spawned", stats.shard_workers == shards),
        ("rows-were-exchanged", stats.shard_exchanged_rows > 0),
        ("exchange-within-certified-bound",
         stats.shard_exchanged_rows <= stratum.exchange_bound),
    ]
    claim = claim_ivm_state(program, base, run["sharded"])
    return finish(
        "shard-equivalent", checks,
        f"{side}x{side} grid reachability across {shards} workers: "
        f"identical fixpoint, {stats.shard_exchanged_rows} rows "
        f"exchanged <= certified bound {stratum.exchange_bound}",
        {"side": side, "shards": shards, "base_facts": len(base),
         "final_facts": len(run["sharded"]),
         "exchanged_rows": stats.shard_exchanged_rows,
         "exchange_bound": stratum.exchange_bound,
         "local_rounds": stats.shard_local_rounds,
         "sharded_seconds": run["sharded_seconds"],
         "single_seconds": run["single_seconds"]},
        certificate=certificate(
            [claim],
            meta={"subsystem": "shard", "workload": "grid-exchange",
                  "shards": shards},
        ),
    )
