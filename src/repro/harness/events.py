"""JSONL event log for evidence runs.

One JSON object per line, written append-only and flushed per event so
a killed run leaves a readable trajectory.  Every event carries a
wall-clock ``ts`` and the fields the runner supplies (``event``,
``job``, ``status``, ...).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, IO, Optional


class EventLog:
    """Append-only JSONL sink usable as the runner's ``events`` hook."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = self.path.open("a")

    def __call__(self, event: dict[str, Any]) -> None:
        if self._fh is None:
            return
        record = {"ts": round(time.time(), 4), **event}
        self._fh.write(json.dumps(record, sort_keys=True, default=str))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_events(path: Path) -> list[dict[str, Any]]:
    """Parse an event log back into a list of dicts (bad lines skipped)."""
    events = []
    try:
        lines = Path(path).read_text().splitlines()
    except OSError:
        return []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events
