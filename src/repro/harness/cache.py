"""Content-addressed result cache for evidence jobs.

A job's cache key is a SHA-256 over

* the job's identity: name, ``fn`` reference and inputs (canonical
  JSON),
* a *code fingerprint*: the hash of every ``.py`` file in the
  ``repro`` package **plus** the source of the module that defines the
  job function (test jobs live outside the package), and
* the *run mode*: a structured dict of evaluation settings that change
  what the workers measure without changing any source — currently
  ``optimize`` and ``backend``.  The mode is part of the hashed
  payload, not a salt appended to the fingerprint, so new modes
  compose without colliding and the fingerprint stays meaningful in
  manifests.

So a re-run after any library edit recomputes everything, while a
killed run — or a second invocation on unchanged code in the same
mode — skips straight to the stored verdicts.  Entries are one JSON
file per key, written atomically (tmp + rename) so a killed writer
never leaves a torn entry.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os
from pathlib import Path
from typing import Optional

from repro.harness.job import Job, JobResult

#: bump to invalidate every existing cache entry on format changes
CACHE_SCHEMA = 3  # 2: results carry certificates; 3: structured
                  # run-mode dict in the key (optimize, backend)


def _hash_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def code_fingerprint(package_dir: Optional[Path] = None) -> str:
    """Hash of all ``.py`` sources under the ``repro`` package.

    Deterministic: files are walked in sorted relative-path order and
    each contributes ``(relpath, sha256(content))``.
    """
    if package_dir is None:
        import repro

        package_dir = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        rel = path.relative_to(package_dir).as_posix()
        digest.update(rel.encode())
        digest.update(_hash_bytes(path.read_bytes()).encode())
    return digest.hexdigest()


def _module_source_hash(module_name: str) -> str:
    """Hash of the source file defining ``module_name`` (no import).

    Falls back to the module name itself when the source cannot be
    located (frozen modules, REPL definitions) — the job then caches on
    the package fingerprint alone.
    """
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError):
        spec = None
    if spec is None or not spec.origin or not os.path.exists(spec.origin):
        return f"unresolved:{module_name}"
    return _hash_bytes(Path(spec.origin).read_bytes())


class ResultCache:
    """Directory of ``<key>.json`` entries, one per completed job."""

    def __init__(
        self,
        root: Path,
        fingerprint: Optional[str] = None,
        run_mode: Optional[dict[str, object]] = None,
    ) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        #: evaluation settings keyed into every entry; results computed
        #: under one mode are never served to a run in another
        self.run_mode = dict(run_mode) if run_mode else {}
        self._module_hashes: dict[str, str] = {}

    def key(self, job: Job) -> str:
        module_name = job.fn.partition(":")[0]
        if module_name not in self._module_hashes:
            self._module_hashes[module_name] = _module_source_hash(
                module_name
            )
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "name": job.name,
                "fn": job.fn,
                "inputs": dict(job.inputs),
                "code": self.fingerprint,
                "fn_module": self._module_hashes[module_name],
                "mode": self.run_mode,
            },
            sort_keys=True,
            default=str,
        )
        return _hash_bytes(payload.encode())

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, job: Job) -> Optional[JobResult]:
        """The stored result for ``job``, or None.

        The ``expected`` verdict is re-read from the *current* job
        declaration, so editing the registry's expectation (without a
        code change elsewhere) still re-diffs cached verdicts.
        """
        path = self._path(self.key(job))
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        result = JobResult.from_dict(data)
        result.expected = job.expected
        result.cached = True
        return result

    def store(self, job: Job, result: JobResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(self.key(job))
        data = result.as_dict()
        data["cached"] = False
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(data, sort_keys=True))
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
