"""``repro.harness`` — the evidence runner.

The paper's "experiments" are its theorems; this package regenerates
every Table 1 cell, Table 2 cell and Figure 1–5 construction as a
checked, cached job DAG:

* :mod:`repro.harness.job`       — ``Job`` / ``JobResult`` / ``JobStatus``
* :mod:`repro.harness.registry`  — the registry; ``default_registry()``
  declares one job per paper claim with its expected verdict
* :mod:`repro.harness.runner`    — parallel DAG execution on a process
  pool with per-job timeouts, bounded retries and failure poisoning
* :mod:`repro.harness.cache`     — content-addressed result cache
  (inputs + code fingerprint), so re-runs skip unchanged jobs
* :mod:`repro.harness.manifest`  — run manifest: measured vs expected
  verdicts, merged engine stats, JSONL event log
* :mod:`repro.harness.cli`       — ``python -m repro evidence
  {list,run,report}``

The evidence functions themselves live in ``evidence_table1`` /
``evidence_table2`` / ``evidence_figures``; the pytest benchmarks are
thin wrappers over the same functions (see ``benchmarks/conftest.py``).
"""

from repro.harness.cache import ResultCache, code_fingerprint
from repro.harness.job import Job, JobResult, JobStatus
from repro.harness.manifest import build_manifest, render_manifest
from repro.harness.registry import JobRegistry, default_registry
from repro.harness.runner import RunnerConfig, run_jobs

__all__ = [
    "Job",
    "JobResult",
    "JobStatus",
    "JobRegistry",
    "ResultCache",
    "RunnerConfig",
    "build_manifest",
    "code_fingerprint",
    "default_registry",
    "render_manifest",
    "run_jobs",
]
