"""Canonical forms for atom sets up to variable renaming.

Enumerating CQ approximations of a Datalog query (§2) produces many
isomorphic copies; deduplicating them keeps the test-based determinacy
checker and the containment procedures tractable.  ``canonical_form``
returns a hashable certificate that is invariant under renaming of
variables (constants and free/distinguished variables are held fixed),
computed by colour refinement followed by individualize-and-refine
backtracking that selects the lexicographically minimal certificate.

For patterns with very many variables the exact search can blow up; we
cap the backtracking width and fall back to a deterministic (sound but
possibly non-canonical) labelling, which only costs duplicate work
downstream, never incorrect answers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.core.atoms import Atom
from repro.core.terms import Variable, is_variable

_FALLBACK_VARIABLE_LIMIT = 40


def _refine(
    atoms: Sequence[Atom], colors: dict[Variable, tuple]
) -> dict[Variable, tuple]:
    """One round of colour refinement; returns the new colouring."""
    signature: dict[Variable, list] = defaultdict(list)
    for atom in atoms:
        for pos, term in enumerate(atom.args):
            if not is_variable(term):
                continue
            context = tuple(
                colors[t] if is_variable(t) else ("const", repr(t))
                for t in atom.args
            )
            signature[term].append((atom.pred, pos, context))
    return {
        var: (colors[var], tuple(sorted(signature.get(var, ()), key=repr)))
        for var in colors
    }


def _stable_colors(
    atoms: Sequence[Atom], free: Sequence[Variable]
) -> dict[Variable, tuple]:
    variables = sorted(
        {v for a in atoms for v in a.variables()}, key=lambda v: v.name
    )
    free_index = {v: i for i, v in enumerate(free)}
    colors: dict[Variable, tuple] = {
        v: (("free", free_index[v]) if v in free_index else ("bound",))
        for v in variables
    }
    for _ in range(len(variables) + 1):
        refined = _refine(atoms, colors)
        if len(set(refined.values())) == len(set(colors.values())):
            colors = refined
            break
        colors = refined
    return colors


def _certificate(
    atoms: Sequence[Atom], labels: dict[Variable, int],
    free: Sequence[Variable],
) -> tuple:
    rendered = []
    for atom in atoms:
        args = tuple(
            ("v", labels[t]) if is_variable(t) else ("c", repr(t))
            for t in atom.args
        )
        rendered.append((atom.pred, args))
    head = tuple(("v", labels[v]) for v in free)
    return (head, tuple(sorted(rendered)))


def _search_minimal(
    atoms: Sequence[Atom],
    order_groups: list[list[Variable]],
) -> tuple:
    """Backtracking over ambiguous colour classes for the minimal certificate."""
    best: list = [None]

    flat_free: Sequence[Variable] = order_groups[0] if order_groups else []

    def assign(groups: list[list[Variable]], labels: dict[Variable, int]):
        if not groups:
            cert = _certificate(atoms, labels, flat_free)
            if best[0] is None or cert < best[0]:
                best[0] = cert
            return
        group, rest = groups[0], groups[1:]
        if len(group) == 1:
            labels[group[0]] = len(labels)
            assign(rest, labels)
            del labels[group[0]]
            return
        for i, var in enumerate(group):
            labels[var] = len(labels)
            remaining = group[:i] + group[i + 1:]
            assign([remaining] + rest, labels)
            del labels[var]

    assign(order_groups[1:] if order_groups else [], {
        v: i for i, v in enumerate(flat_free)
    })
    if best[0] is None:
        best[0] = _certificate(atoms, {
            v: i for i, v in enumerate(flat_free)
        }, flat_free)
    return best[0]


def canonical_form(
    atoms: Iterable[Atom], free: Sequence[Variable] = ()
) -> tuple:
    """A renaming-invariant certificate of an atom set.

    ``free`` lists distinguished variables whose identity (order) matters,
    e.g. the answer variables of a CQ.
    """
    atom_list = sorted(set(atoms), key=repr)
    free = tuple(free)
    variables = {v for a in atom_list for v in a.variables()}
    bound = sorted(variables - set(free), key=lambda v: v.name)

    if len(bound) > _FALLBACK_VARIABLE_LIMIT:
        labels = {v: i for i, v in enumerate(free)}
        for var in bound:
            labels[var] = len(labels)
        return _certificate(atom_list, labels, free)

    colors = _stable_colors(atom_list, free)
    classes: dict[tuple, list[Variable]] = defaultdict(list)
    for var in bound:
        classes[colors[var]].append(var)
    groups = [list(free)] + [
        sorted(classes[c], key=lambda v: v.name)
        for c in sorted(classes, key=repr)
    ]
    return _search_minimal(atom_list, groups)
