"""Small shared utilities: fresh-name generation and canonical forms."""

from repro.util.fresh import FreshNames, fresh_constant, fresh_variable
from repro.util.canonical import canonical_form

__all__ = ["FreshNames", "fresh_constant", "fresh_variable", "canonical_form"]
