"""Fresh name generation.

Many constructions in the paper introduce "fresh elements" (nulls produced
by chasing inverse view rules, skolem witnesses, anonymous elements of
unravellings).  The helpers here centralize the naming discipline so that
freshness is guaranteed within a generator and the provenance of an element
remains readable in debug output.
"""

from __future__ import annotations

import itertools
from typing import Iterator


class FreshNames:
    """A source of fresh names sharing a common prefix.

    >>> fresh = FreshNames("null")
    >>> fresh()
    'null_0'
    >>> fresh()
    'null_1'
    """

    def __init__(self, prefix: str = "fresh") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def __call__(self) -> str:
        return f"{self._prefix}_{next(self._counter)}"

    def take(self, n: int) -> list[str]:
        """Return ``n`` fresh names at once."""
        return [self() for _ in range(n)]


_GLOBAL_CONST = FreshNames("c")
_GLOBAL_VAR = FreshNames("v")


def fresh_constant() -> str:
    """A globally fresh constant name (module-level counter)."""
    return _GLOBAL_CONST()


def fresh_variable() -> str:
    """A globally fresh variable name (module-level counter)."""
    return _GLOBAL_VAR()


def name_stream(prefix: str) -> Iterator[str]:
    """An infinite stream of names ``prefix_0, prefix_1, ...``."""
    for i in itertools.count():
        yield f"{prefix}_{i}"
