"""CQ/UCQ rewritings via the forward–backward method (Prop. 8).

For a CQ (resp. UCQ) query monotonically determined over arbitrary
Datalog views, the canonical candidate ``⋁_i V(Q_i)`` *is* a rewriting —
polynomial-size in ``|Q|`` and ``|V|``.  :func:`rewrite_forward_backward`
computes the candidate and (optionally) certifies it through the exact
Thm 5 containment check.
"""

from __future__ import annotations

from typing import Union

from repro.core.containment import Verdict
from repro.core.cq import ConjunctiveQuery
from repro.core.ucq import UCQ, as_ucq
from repro.views.view import ViewSet
from repro.determinacy.cq_query import decide_cq_ucq, forward_backward_candidate


class NotRewritableError(ValueError):
    """Raised when certification shows the query is not monotonically
    determined (hence has no monotone rewriting)."""


def rewrite_forward_backward(
    query: Union[ConjunctiveQuery, UCQ],
    views: ViewSet,
    certify: bool = True,
) -> UCQ:
    """The UCQ rewriting of a monotonically determined CQ/UCQ query.

    With ``certify=True`` (default) the Thm 5 decision procedure runs
    first and a :class:`NotRewritableError` carries the refutation when
    the query is not monotonically determined.  With ``certify=False``
    the candidate is returned unconditionally (it still computes a sound
    under-approximation: it is contained in any monotone rewriting).
    """
    if certify:
        result, rewriting = decide_cq_ucq(query, views)
        if result.verdict is not Verdict.YES:
            raise NotRewritableError(
                f"not monotonically determined: {result.detail}"
            )
        assert rewriting is not None
        return rewriting
    candidate, problem = forward_backward_candidate(query, views)
    if candidate is None:
        raise NotRewritableError(problem)
    return candidate


def rewrite_with_certificate(
    query: Union[ConjunctiveQuery, UCQ], views: ViewSet
) -> tuple[UCQ, dict]:
    """The certified rewriting plus its :mod:`repro.certify` certificate.

    The certificate re-states the equivalence ``R ∘ V ≡ Q`` in the
    claim vocabulary, so the independent checker can validate it
    without trusting the Thm 5 automata pipeline that produced it.
    """
    from repro.determinacy.certificates import positive_certificate

    rewriting = rewrite_forward_backward(query, views, certify=True)
    return rewriting, positive_certificate(
        query, views, rewriting,
        meta={"method": "forward-backward (Prop. 8)"},
    )


def rewrite_cq(
    query: ConjunctiveQuery, views: ViewSet, certify: bool = True
) -> ConjunctiveQuery:
    """The CQ rewriting of a CQ query (Prop. 8(1))."""
    ucq = rewrite_forward_backward(query, views, certify)
    assert len(ucq.disjuncts) == 1
    return ucq.disjuncts[0]


def evaluate_rewriting_over_base(
    rewriting: Union[ConjunctiveQuery, UCQ],
    views: ViewSet,
    base_instance,
) -> set[tuple]:
    """Evaluate a view-schema rewriting against a base instance."""
    return as_ucq(rewriting).evaluate(views.image(base_instance))
